//! The test problems must expose the event mixes the paper designed them
//! for (§IV-B): `stream` is facet-dominated (~7000 facets per particle at
//! paper scale), `scatter` is collision-dominated, `csp` is mixed.

use neutral_core::prelude::*;
use neutral_integration::tiny;

fn counters(case: TestCase) -> (EventCounters, usize) {
    let sim = tiny(case, 77);
    let n = sim.problem().n_particles;
    (
        sim.run(RunOptions {
            execution: Execution::Sequential,
            ..Default::default()
        })
        .counters,
        n,
    )
}

#[test]
fn stream_facets_extrapolate_to_paper_7000() {
    let (c, _) = counters(TestCase::Stream);
    // tiny scale = 128 cells/axis; the paper's mesh has 4000. Facet count
    // per history scales with resolution.
    let scaled = c.facets_per_history() * (4000.0 / 128.0);
    assert!(
        (4500.0..9500.0).contains(&scaled),
        "stream facets/history extrapolates to {scaled:.0}, paper says ~7000"
    );
    assert_eq!(c.collisions, 0, "stream is a vacuum");
    assert!(c.reflections > 0, "reflective walls must matter");
}

#[test]
fn scatter_is_collision_dominated() {
    let (c, n) = counters(TestCase::Scatter);
    assert!(
        c.collisions > 5 * c.facets,
        "scatter: {} collisions vs {} facets",
        c.collisions,
        c.facets
    );
    // Histories end by cutoff, not census.
    assert!(c.deaths as usize > n / 2);
    // Both collision branches fire under the analogue model.
    assert!(c.absorptions > 0 && c.scatters > 0);
}

#[test]
fn csp_is_mixed_and_realistic() {
    let (c, n) = counters(TestCase::Csp);
    assert!(c.facets > 0 && c.collisions > 0);
    // Some particles stream to census, others die in the square.
    assert!(c.census > 0, "some particles must survive");
    assert!(c.deaths > 0, "the dense square must kill some");
    assert!(c.census + c.deaths == n as u64 + c.stuck);
}

#[test]
fn collision_grind_dwarfs_facet_grind() {
    // §VI-A: collisions ~18 ns, facets ~3 ns. Absolute numbers are
    // host-dependent; the *ratio* (collision >= ~3x facet) is shape.
    use std::time::Instant;

    let scatter = tiny(TestCase::Scatter, 3);
    let t0 = Instant::now();
    let rs = scatter.run(RunOptions {
        execution: Execution::Sequential,
        ..Default::default()
    });
    let scatter_time = t0.elapsed();
    let ns_per_collision = scatter_time.as_nanos() as f64 / rs.counters.collisions.max(1) as f64;

    let stream = tiny(TestCase::Stream, 3);
    let t0 = Instant::now();
    let rf = stream.run(RunOptions {
        execution: Execution::Sequential,
        ..Default::default()
    });
    let stream_time = t0.elapsed();
    let ns_per_facet = stream_time.as_nanos() as f64 / rf.counters.facets.max(1) as f64;

    assert!(
        ns_per_collision > 2.0 * ns_per_facet,
        "collision {ns_per_collision:.1} ns vs facet {ns_per_facet:.1} ns"
    );
}

#[test]
fn xs_search_steps_stay_short_after_warmup() {
    // §VI-A: the cached linear search works because post-collision energy
    // jumps are small. Mean walk length per lookup must be far below a
    // binary search's ~log2(30000) ~ 15 *random* probes — the walk is a
    // few *contiguous* steps.
    let (c, _) = counters(TestCase::Scatter);
    let mean = c.mean_search_steps();
    assert!(
        mean < 40.0,
        "mean hinted-search walk is {mean:.1} grid steps"
    );
}
