//! Lookup-strategy equivalence across every transport driver.
//!
//! The acceptance property of the lookup subsystem: all drivers yield
//! identical census tallies and event counts for every
//! [`LookupStrategy`], because the backends are bitwise-equivalent and
//! only differ in how fast they find the containing energy bin.

use neutral_core::prelude::*;
use neutral_integration::{rel_diff, tiny};

fn with_strategy(case: TestCase, seed: u64, strategy: LookupStrategy) -> Simulation {
    let mut problem = case.build(ProblemScale::tiny(), seed);
    problem.transport.xs_search = strategy;
    Simulation::new(problem)
}

/// Sequential over-particles runs are bitwise identical across all four
/// strategies: same tally bits, same trajectories, same event counts.
#[test]
fn sequential_tallies_bitwise_identical_across_strategies() {
    for case in TestCase::ALL {
        let base = with_strategy(case, 7, LookupStrategy::Binary).run(RunOptions {
            execution: Execution::Sequential,
            ..Default::default()
        });
        for strategy in LookupStrategy::ALL {
            let r = with_strategy(case, 7, strategy).run(RunOptions {
                execution: Execution::Sequential,
                ..Default::default()
            });
            assert_eq!(
                r.counters.collisions, base.counters.collisions,
                "{case:?}/{strategy:?}"
            );
            assert_eq!(
                r.counters.facets, base.counters.facets,
                "{case:?}/{strategy:?}"
            );
            assert_eq!(
                r.counters.census, base.counters.census,
                "{case:?}/{strategy:?}"
            );
            assert_eq!(
                r.counters.deaths, base.counters.deaths,
                "{case:?}/{strategy:?}"
            );
            assert_eq!(r.alive, base.alive, "{case:?}/{strategy:?}");
            for (i, (a, b)) in base.tally.iter().zip(&r.tally).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{case:?}/{strategy:?}: tally cell {i}: {a} vs {b}"
                );
            }
        }
    }
}

/// Every driver (over-particles AoS/SoA, over-events scalar/vectorized,
/// scheduled, privatized) produces the same census tally for every
/// strategy — up to floating-point summation order for the parallel
/// reductions.
#[test]
fn all_drivers_agree_for_every_strategy() {
    let seed = 23;
    for case in TestCase::ALL {
        let base = with_strategy(case, seed, LookupStrategy::Binary).run(RunOptions {
            execution: Execution::Sequential,
            ..Default::default()
        });
        for strategy in LookupStrategy::ALL {
            let sim = with_strategy(case, seed, strategy);
            let combos = [
                RunOptions {
                    execution: Execution::Sequential,
                    ..Default::default()
                },
                RunOptions {
                    execution: Execution::Rayon,
                    ..Default::default()
                },
                RunOptions {
                    layout: Layout::Soa,
                    execution: Execution::Rayon,
                    ..Default::default()
                },
                RunOptions {
                    layout: Layout::SoaEventStepped,
                    execution: Execution::Rayon,
                    ..Default::default()
                },
                RunOptions {
                    scheme: Scheme::OverEvents,
                    execution: Execution::Sequential,
                    ..Default::default()
                },
                RunOptions {
                    scheme: Scheme::OverEvents,
                    backend: Backend::Vectorized,
                    execution: Execution::Rayon,
                    ..Default::default()
                },
                RunOptions {
                    execution: Execution::Scheduled {
                        threads: 3,
                        schedule: Schedule::Dynamic { chunk: 16 },
                    },
                    ..Default::default()
                },
                RunOptions {
                    execution: Execution::ScheduledPrivatized {
                        threads: 2,
                        schedule: Schedule::Static { chunk: None },
                    },
                    ..Default::default()
                },
            ];
            for opts in combos {
                let r = sim.run(opts);
                assert_eq!(
                    r.counters.collisions, base.counters.collisions,
                    "{case:?}/{strategy:?}/{opts:?}"
                );
                assert_eq!(
                    r.counters.facets, base.counters.facets,
                    "{case:?}/{strategy:?}/{opts:?}"
                );
                assert_eq!(
                    r.counters.census, base.counters.census,
                    "{case:?}/{strategy:?}/{opts:?}"
                );
                assert!(
                    rel_diff(base.tally_total(), r.tally_total()) < 1e-9,
                    "{case:?}/{strategy:?}/{opts:?}: tally {} vs {}",
                    base.tally_total(),
                    r.tally_total()
                );
            }
        }
    }
}

/// The params-file key and the library accelerators round-trip: a
/// parsed problem runs with the requested strategy and matches the
/// default-strategy physics.
#[test]
fn params_lookup_strategy_matches_default_physics() {
    let base_text =
        "nx 32\nny 32\ndensity 1e3\nparticles 80\nsource 0.4 0.6 0.4 0.6\nxs_points 512\n";
    let base = Simulation::new(
        neutral_core::params::ProblemParams::parse(base_text)
            .unwrap()
            .build(),
    )
    .run(RunOptions {
        execution: Execution::Sequential,
        ..Default::default()
    });
    for strategy in LookupStrategy::ALL {
        let text = format!("{base_text}lookup_strategy {}\n", strategy.name());
        let problem = neutral_core::params::ProblemParams::parse(&text)
            .unwrap()
            .build();
        assert_eq!(problem.transport.xs_search, strategy);
        let r = Simulation::new(problem).run(RunOptions {
            execution: Execution::Sequential,
            ..Default::default()
        });
        assert_eq!(
            r.counters.collisions, base.counters.collisions,
            "{strategy:?}"
        );
        assert!(
            rel_diff(base.tally_total(), r.tally_total()) == 0.0,
            "{strategy:?}"
        );
    }
}

/// Strategy switching mid-simulation is safe: hints left by one backend
/// are valid starting hints for another (all leave the containing bin).
#[test]
fn strategies_interchange_mid_run() {
    let sim = tiny(TestCase::Scatter, 5);
    let problem = sim.problem();
    let xs = problem.materials.library(0);
    let mut hints = neutral_xs::XsHints::default();
    let mut e = 1.0e6;
    let mut reference = Vec::new();
    while e > 1.0 {
        reference.push(xs.lookup_binary(e).total_barns());
        e *= 0.9;
    }
    // Replay the same walk rotating through the strategies each step.
    let mut e = 1.0e6;
    let mut i = 0;
    while e > 1.0 {
        let strategy = LookupStrategy::ALL[i % 4];
        let (micro, _) = xs.lookup_with(strategy, e, &mut hints);
        assert_eq!(
            micro.total_barns().to_bits(),
            reference[i].to_bits(),
            "step {i} via {strategy:?}"
        );
        e *= 0.9;
        i += 1;
    }
}
