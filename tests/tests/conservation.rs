//! Conservation and accounting invariants (paper §IV-C: "making it
//! straightforward to track the conservation of the particle population").

use neutral_core::prelude::*;
use neutral_core::validate::population_balance;
use neutral_integration::{tiny, DriverKind};

fn run_with_model(case: TestCase, model: CollisionModel, seed: u64) -> (RunReport, usize) {
    let mut problem = case.build(ProblemScale::tiny(), seed);
    problem.transport.collision_model = model;
    let n = problem.n_particles;
    let sim = Simulation::new(problem);
    (
        sim.run(RunOptions {
            execution: Execution::Sequential,
            ..Default::default()
        }),
        n,
    )
}

/// Every history must end as census, death or (never) stuck.
#[test]
fn population_is_conserved() {
    for case in TestCase::ALL {
        for model in [CollisionModel::Analogue, CollisionModel::ImplicitCapture] {
            let (r, n) = run_with_model(case, model, 5);
            assert!(
                population_balance(n as u64, &r.counters),
                "{case:?}/{model:?}: census {} + deaths {} + stuck {} != {n}",
                r.counters.census,
                r.counters.deaths,
                r.counters.stuck
            );
            assert_eq!(r.counters.stuck, 0, "{case:?}: runaway histories");
        }
    }
}

/// Under implicit capture the track-length estimator is consistent with
/// the population energy balance in expectation (DESIGN.md §3): source =
/// deposited + census residual + cutoff residual, up to Monte Carlo noise.
#[test]
fn energy_balance_implicit_capture() {
    for case in TestCase::ALL {
        for seed in [11, 99] {
            let (r, _) = run_with_model(case, CollisionModel::ImplicitCapture, seed);
            let b = r.energy_balance();
            assert!(b.weak_invariants_hold(), "{case:?}: {b:?}");
            let defect = b.relative_defect();
            // Stream has ~no collisions, so the defect is ~exactly zero;
            // collisional cases carry statistical noise.
            let tol = match case {
                TestCase::Stream => 1e-9,
                _ => 0.05,
            };
            assert!(
                defect.abs() < tol,
                "{case:?}/seed {seed}: defect {defect:+.4} exceeds {tol}"
            );
        }
    }
}

/// The default analogue branch is a response *proxy* (like the original
/// mini-app): exact conservation is not promised, but the weak invariants
/// and the vacuum limit must still hold.
#[test]
fn energy_invariants_analogue() {
    for case in TestCase::ALL {
        let (r, _) = run_with_model(case, CollisionModel::Analogue, 7);
        let b = r.energy_balance();
        assert!(b.weak_invariants_hold(), "{case:?}: {b:?}");
    }
    // Vacuum limit: no material, no deposit, full residual.
    let (r, n) = run_with_model(TestCase::Stream, CollisionModel::Analogue, 7);
    assert!(r.tally_total() < 1e-6);
    let expect = n as f64 * 1.0e6;
    assert!((r.counters.census_energy_ev - expect).abs() / expect < 1e-12);
}

/// Conservation holds under every tally strategy: population balance,
/// the weak energy invariants, and (under implicit capture) the closed
/// energy balance — including the cutoff-residual path, where histories
/// terminated by the weight cutoff book their in-flight energy as
/// `lost_energy_ev`.
#[test]
fn conservation_under_every_tally_strategy() {
    for strategy in TallyStrategy::ALL {
        for case in TestCase::ALL {
            // An aggressive cutoff so the cutoff-residual path fires in
            // the collisional cases.
            let mut problem = case.build(ProblemScale::tiny(), 17);
            problem.transport.collision_model = CollisionModel::ImplicitCapture;
            problem.transport.weight_cutoff = 1.0e-3;
            problem.transport.tally_strategy = strategy;
            let n = problem.n_particles;
            let r = Simulation::new(problem).run(DriverKind::OverParticles.options(3));

            assert!(
                population_balance(n as u64, &r.counters),
                "{strategy}/{case:?}: census {} + deaths {} + stuck {} != {n}",
                r.counters.census,
                r.counters.deaths,
                r.counters.stuck
            );
            assert_eq!(r.counters.stuck, 0, "{strategy}/{case:?}");
            let b = r.energy_balance();
            assert!(b.weak_invariants_hold(), "{strategy}/{case:?}: {b:?}");
            if case != TestCase::Stream {
                assert!(
                    r.counters.deaths > 0 && b.cutoff_residual_ev > 0.0,
                    "{strategy}/{case:?}: cutoff-residual path did not fire"
                );
            }
            let tol = if case == TestCase::Stream { 1e-9 } else { 0.05 };
            assert!(
                b.relative_defect().abs() < tol,
                "{strategy}/{case:?}: defect {:+.4}",
                b.relative_defect()
            );
            assert!(
                r.tally.iter().all(|&v| v >= 0.0 && v.is_finite()),
                "{strategy}/{case:?}: bad deposit"
            );
        }
    }
}

/// The cutoff residual is itself part of the deterministic merge: the
/// deterministic strategies book bitwise-identical `lost_energy_ev` for
/// any worker count.
#[test]
fn cutoff_residual_is_deterministic() {
    for strategy in [TallyStrategy::Replicated, TallyStrategy::Privatized] {
        let run = |workers: usize| {
            let mut problem = TestCase::Scatter.build(ProblemScale::tiny(), 23);
            problem.transport.weight_cutoff = 1.0e-3;
            problem.transport.collision_model = CollisionModel::ImplicitCapture;
            problem.transport.tally_strategy = strategy;
            Simulation::new(problem).run(DriverKind::OverParticles.options(workers))
        };
        let base = run(1);
        assert!(base.counters.lost_energy_ev > 0.0);
        for workers in [2, 7] {
            let r = run(workers);
            assert_eq!(
                r.counters.lost_energy_ev.to_bits(),
                base.counters.lost_energy_ev.to_bits(),
                "{strategy}/{workers}w: cutoff residual bits"
            );
        }
    }
}

/// Tally values are non-negative everywhere (deposits are energies).
#[test]
fn tally_is_non_negative() {
    for case in TestCase::ALL {
        let r = tiny(case, 13).run(RunOptions::default());
        assert!(
            r.tally.iter().all(|&v| v >= 0.0),
            "{case:?} produced a negative deposit"
        );
    }
}

/// Multi-timestep runs keep conserving: stream survivors re-census every
/// step and the deposited total stays ~zero.
#[test]
fn multi_step_population() {
    let mut problem = TestCase::Stream.build(ProblemScale::tiny(), 21);
    problem.n_timesteps = 4;
    let n = problem.n_particles;
    let r = Simulation::new(problem).run(RunOptions {
        execution: Execution::Sequential,
        ..Default::default()
    });
    assert_eq!(r.counters.census as usize, 4 * n);
    assert_eq!(r.counters.deaths, 0);
    assert_eq!(r.alive, n);
}

/// Russian roulette is unbiased: switching the low-weight policy from
/// termination to roulette must leave the deposited energy statistically
/// unchanged (it conserves expected weight), while reducing the number of
/// cutoff terminations booked as lost energy.
#[test]
fn russian_roulette_is_unbiased() {
    let run = |policy| {
        let mut problem = TestCase::Scatter.build(ProblemScale::tiny(), 3141);
        problem.transport.collision_model = CollisionModel::ImplicitCapture;
        problem.transport.low_weight = policy;
        Simulation::new(problem).run(RunOptions {
            execution: Execution::Sequential,
            ..Default::default()
        })
    };
    let term = run(LowWeightPolicy::Terminate);
    let roul = run(LowWeightPolicy::Roulette { target: 1.0e-3 });

    // Same estimator expectation: tally totals agree within MC noise.
    let rel = (term.tally_total() - roul.tally_total()).abs() / term.tally_total();
    assert!(rel < 0.05, "roulette biased the tally by {rel:.4}");

    // Roulette survivors prolong histories: more collisions processed.
    assert!(roul.counters.collisions > term.counters.collisions);

    // The energy balance still closes under implicit capture.
    let b = roul.energy_balance();
    assert!(
        b.relative_defect().abs() < 0.05,
        "defect {}",
        b.relative_defect()
    );
    // And the population is still fully accounted for.
    let n = TestCase::Scatter
        .build(ProblemScale::tiny(), 3141)
        .n_particles;
    assert!(population_balance(n as u64, &roul.counters));
}

/// Roulette keeps scheme equivalence: both schemes draw the roulette
/// random number at the same point in the per-particle stream.
#[test]
fn roulette_preserves_scheme_equivalence() {
    let mut problem = TestCase::Scatter.build(ProblemScale::tiny(), 99);
    problem.transport.low_weight = LowWeightPolicy::Roulette { target: 1.0e-3 };
    let sim = Simulation::new(problem);
    let op = sim.run(RunOptions {
        execution: Execution::Sequential,
        ..Default::default()
    });
    let oe = sim.run(RunOptions {
        scheme: Scheme::OverEvents,
        execution: Execution::Sequential,
        ..Default::default()
    });
    assert_eq!(op.counters.collisions, oe.counters.collisions);
    assert_eq!(op.counters.deaths, oe.counters.deaths);
    let (a, b) = (op.tally_total(), oe.tally_total());
    assert!(((a - b) / a).abs() < 1e-9);
}
