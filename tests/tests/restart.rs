//! Checkpoint/restart verification: interrupt-resume bitwise identity
//! across every driver × worker count × regroup policy, resumed runs
//! locked against golden fixtures, and the fault-injection matrix
//! (torn writes, bit flips, kills, config/version mismatches) proving
//! every failure is recovered or cleanly reported — never silently
//! absorbed.
//!
//! The identity claim under test (DESIGN.md §15): a solve checkpointed
//! at any census boundary — through the real serialized byte format —
//! and resumed yields tallies, counters and final particle records
//! byte-identical to the uninterrupted run.

use neutral_core::particle::Particle;
use neutral_core::prelude::*;
use neutral_integration::golden::{blessing, fixture_dir, tally_hash, GoldenTally};
use neutral_integration::{tiny_multistep, DriverKind, MULTISTEP_CONFIGS};
use std::path::PathBuf;

/// Workers exercised by the identity matrix (the acceptance set).
const WORKER_COUNTS: [usize; 3] = [1, 2, 7];

/// Worker count used when checking resumed runs against the committed
/// golden fixtures (any count yields the same bits; 2 exercises real
/// concurrency, matching the golden suite).
const GOLDEN_WORKERS: usize = 2;

fn tally_bits(tally: &[f64]) -> Vec<u64> {
    tally.iter().map(|v| v.to_bits()).collect()
}

fn assert_reports_bitwise(a: &RunReport, b: &RunReport, label: &str) {
    assert_eq!(a.counters, b.counters, "{label}: counters diverge");
    assert_eq!(
        tally_bits(&a.tally),
        tally_bits(&b.tally),
        "{label}: tally bits diverge"
    );
    assert_eq!(a.alive, b.alive, "{label}: alive count diverges");
    assert_eq!(a.timesteps, b.timesteps, "{label}: timestep count diverges");
}

/// A scratch directory for store-backed tests; unique per test name so
/// the suite can run multi-threaded.
fn temp_store(tag: &str) -> (PathBuf, CheckpointStore) {
    let dir = std::env::temp_dir().join(format!("neutral_restart_{}_{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let store = CheckpointStore::new(dir.join("solve.ckpt"));
    let _ = std::fs::remove_file(store.path());
    let _ = std::fs::remove_file(store.fallback_path());
    (dir, store)
}

/// The acceptance matrix: for each multistep config × driver × workers
/// {1, 2, 7} × {regroup off, by_alive}, a solve checkpointed at *every*
/// census boundary — serialized to bytes and parsed back, exactly what
/// the on-disk path does — and resumed produces tallies, counters and
/// final particle records byte-identical to the uninterrupted run.
#[test]
fn interrupt_resume_is_bitwise_identical() {
    for (case, steps, seed) in MULTISTEP_CONFIGS {
        for regroup in [RegroupPolicy::Off, RegroupPolicy::ByAlive] {
            for driver in DriverKind::ALL {
                for workers in WORKER_COUNTS {
                    if driver == DriverKind::History && workers != 1 {
                        continue; // History is the one-worker baseline.
                    }
                    let sim = tiny_multistep(case, steps, seed, TallyStrategy::Replicated, regroup);
                    let options = driver.options(workers);

                    let mut base = Solve::new(&sim, options);
                    while base.step() {}
                    let base_particles: Vec<Particle> = base.particles().to_vec();
                    let base_report = base.finish();

                    for cut in 1..steps {
                        let label = format!(
                            "{case:?}/{}/{workers}w/{regroup:?} cut@{cut}",
                            driver.name()
                        );
                        let mut first = Solve::new(&sim, options);
                        for _ in 0..cut {
                            assert!(first.step(), "{label}: premature end");
                        }
                        // Through the real byte format, not just the
                        // in-memory snapshot.
                        let bytes = first.checkpoint().to_bytes();
                        let ckpt = Checkpoint::from_bytes(&bytes)
                            .unwrap_or_else(|e| panic!("{label}: reload failed: {e}"));
                        let mut resumed = Solve::resume(&sim, options, &ckpt)
                            .unwrap_or_else(|e| panic!("{label}: resume failed: {e}"));
                        while resumed.step() {}
                        assert_eq!(
                            resumed.particles(),
                            &base_particles[..],
                            "{label}: final particle records diverge"
                        );
                        let report = resumed.finish();
                        assert_reports_bitwise(&report, &base_report, &label);
                    }
                }
            }
        }
    }
}

/// Resumed runs land on the *committed* golden bits: a solve interrupted
/// at the first census boundary and resumed reproduces the existing
/// multistep fixtures (captured from uninterrupted runs) field for field.
#[test]
fn resumed_runs_match_committed_goldens() {
    if blessing() {
        return;
    }
    for (case, steps, seed) in MULTISTEP_CONFIGS {
        for driver in DriverKind::ALL {
            let sim = tiny_multistep(
                case,
                steps,
                seed,
                TallyStrategy::Replicated,
                RegroupPolicy::Off,
            );
            let options = driver.options(GOLDEN_WORKERS);
            let mut first = Solve::new(&sim, options);
            first.step();
            let ckpt = Checkpoint::from_bytes(&first.checkpoint().to_bytes()).unwrap();
            let mut resumed = Solve::resume(&sim, options, &ckpt).unwrap();
            while resumed.step() {}
            let report = resumed.finish();

            let name = format!("{}_t{}", case.name(), steps);
            let captured = GoldenTally::capture(&name, driver.name(), seed, &report);
            let path = fixture_dir().join(format!("{}_{}.json", name, driver.name()));
            let text = std::fs::read_to_string(&path).expect("committed multistep fixture");
            let expected = GoldenTally::from_json(&text).unwrap();
            assert_eq!(
                captured.fields,
                expected.fields,
                "{}/{}: resumed run diverges from the committed golden fixture",
                name,
                driver.name()
            );
        }
    }
}

/// Golden fixtures for the full store-backed restart path: a solve
/// killed by an injected fault at the first census boundary, then
/// resumed from disk by a second `run_with_checkpoints` call. One
/// fixture per multistep config × driver; regenerate with
/// `NEUTRAL_BLESS=1 cargo test -p neutral-integration --test restart`.
#[test]
fn restarted_golden_tallies_match_fixtures() {
    let mut blessed = 0;
    for (case, steps, seed) in MULTISTEP_CONFIGS {
        for driver in DriverKind::ALL {
            let name = format!("restart_{}_t{}", case.name(), steps);
            let (dir, store) = temp_store(&format!("golden_{}_{}", case.name(), driver.name()));
            let sim = tiny_multistep(
                case,
                steps,
                seed,
                TallyStrategy::Replicated,
                RegroupPolicy::Off,
            );
            let options = driver.options(GOLDEN_WORKERS);
            // Kill at the *last* boundary: the kill fires before that
            // boundary's write, so the store holds the previous
            // boundary's checkpoint and the second invocation performs a
            // genuine from-disk resume of the final timestep.
            let plan: FaultPlan = format!("kill@{steps}").parse().unwrap();
            match run_with_checkpoints(&sim, options, &store, &plan).unwrap() {
                SolveOutcome::Killed { after_step } => assert_eq!(after_step, steps),
                SolveOutcome::Complete { .. } => panic!("kill must interrupt the solve"),
            }
            let report =
                match run_with_checkpoints(&sim, options, &store, &FaultPlan::none()).unwrap() {
                    SolveOutcome::Complete {
                        report,
                        resumed_from,
                        ..
                    } => {
                        assert_eq!(resumed_from, Some(steps - 1), "must resume from disk");
                        report
                    }
                    SolveOutcome::Killed { .. } => unreachable!("no faults planned"),
                };
            let _ = std::fs::remove_dir_all(&dir);

            let captured = GoldenTally::capture(&name, driver.name(), seed, &report);
            let path = fixture_dir().join(format!("{}_{}.json", name, driver.name()));
            if blessing() {
                std::fs::create_dir_all(fixture_dir()).expect("create tests/golden");
                std::fs::write(&path, captured.to_json()).expect("write fixture");
                blessed += 1;
                continue;
            }
            let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                panic!(
                    "missing golden fixture {path:?} ({e}); run with NEUTRAL_BLESS=1 to generate"
                )
            });
            let expected = GoldenTally::from_json(&text).unwrap();
            assert_eq!(
                captured.fields,
                expected.fields,
                "{}/{}: restarted run diverges from golden fixture {path:?}",
                name,
                driver.name()
            );
        }
    }
    if blessed > 0 {
        println!("blessed {blessed} restart fixtures");
    }
}

/// Kill at every census boundary through the on-disk store: each rerun
/// resumes from the last written checkpoint and finishes bitwise
/// identical to the uninterrupted run — zero silent divergence.
#[test]
fn kill_at_every_boundary_recovers_on_disk() {
    for (case, steps, seed) in MULTISTEP_CONFIGS {
        let sim = tiny_multistep(
            case,
            steps,
            seed,
            TallyStrategy::Replicated,
            RegroupPolicy::ByAlive,
        );
        let options = DriverKind::OverEvents.options(2);
        let baseline = sim.run(options);

        for kill_at in 1..=steps {
            let label = format!("{case:?} kill@{kill_at}");
            let (dir, store) = temp_store(&format!("kill_{}_{kill_at}", case.name()));
            let plan: FaultPlan = format!("kill@{kill_at}").parse().unwrap();
            match run_with_checkpoints(&sim, options, &store, &plan).unwrap() {
                SolveOutcome::Killed { after_step } => assert_eq!(after_step, kill_at, "{label}"),
                SolveOutcome::Complete { .. } => panic!("{label}: fault did not fire"),
            }
            let outcome = run_with_checkpoints(&sim, options, &store, &FaultPlan::none()).unwrap();
            let (report, resumed_from) = match outcome {
                SolveOutcome::Complete {
                    report,
                    resumed_from,
                    ..
                } => (report, resumed_from),
                SolveOutcome::Killed { .. } => unreachable!("no faults planned"),
            };
            // The kill fires *before* its boundary's write, so the store
            // holds the previous boundary (none at all for kill@1).
            assert_eq!(
                resumed_from,
                (kill_at > 1).then(|| kill_at - 1),
                "{label}: wrong resume point"
            );
            assert_reports_bitwise(&report, &baseline, &label);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// Torn writes and bit flips at a census boundary: the loader detects
/// the corruption (naming it), falls back to the rotated last-good
/// checkpoint, and the recovered solve is bitwise identical to the
/// uninterrupted run.
#[test]
fn corrupted_checkpoints_recover_from_fallback() {
    let (case, steps, seed) = MULTISTEP_CONFIGS[0]; // csp, 3 timesteps
    let sim = tiny_multistep(
        case,
        steps,
        seed,
        TallyStrategy::Replicated,
        RegroupPolicy::Off,
    );
    let options = DriverKind::History.options(1);
    let baseline = sim.run(options);

    for (spec, expect_truncated) in [("torn@2,kill@2", true), ("bitflip@2,kill@2", false)] {
        let label = format!("{case:?} {spec}");
        let (dir, store) = temp_store(&format!(
            "corrupt_{}",
            if expect_truncated { "torn" } else { "flip" }
        ));
        // Boundary 1 writes a good checkpoint; boundary 2's write is
        // corrupted (rotating the good one to the fallback slot) and the
        // solve is killed before it can be replaced.
        let plan: FaultPlan = spec.parse().unwrap();
        match run_with_checkpoints(&sim, options, &store, &plan).unwrap() {
            SolveOutcome::Killed { after_step } => assert_eq!(after_step, 2, "{label}"),
            SolveOutcome::Complete { .. } => panic!("{label}: kill did not fire"),
        }

        let outcome = run_with_checkpoints(&sim, options, &store, &FaultPlan::none()).unwrap();
        match outcome {
            SolveOutcome::Complete {
                report,
                resumed_from,
                recovery,
            } => {
                assert_eq!(
                    resumed_from,
                    Some(1),
                    "{label}: must fall back to boundary 1"
                );
                match recovery {
                    Some(Recovery::Fallback { primary_error }) => {
                        let named = primary_error.to_string();
                        if expect_truncated {
                            assert!(
                                matches!(*primary_error, CheckpointError::Truncated),
                                "{label}: expected Truncated, got {named}"
                            );
                        } else {
                            assert!(
                                matches!(*primary_error, CheckpointError::ChecksumMismatch { .. }),
                                "{label}: expected ChecksumMismatch, got {named}"
                            );
                        }
                        assert!(!named.is_empty(), "{label}: error must name the cause");
                    }
                    other => panic!("{label}: expected fallback recovery, got {other:?}"),
                }
                assert_reports_bitwise(&report, &baseline, &label);
            }
            SolveOutcome::Killed { .. } => unreachable!("no faults planned"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Fault-matrix extension for the length-field robustness fix: a bit
/// flip landing in the header's `payload_len` (bytes 12..20) must read
/// as a clean structural error — an inflated claim is `Truncated`, a
/// deflated one leaves trailing bytes (`Corrupt`) — never a huge
/// allocation or panic, and recovery from the rotated fallback still
/// reproduces the uninterrupted run bit for bit.
#[test]
fn length_field_bitflips_recover_from_fallback() {
    let (case, steps, seed) = MULTISTEP_CONFIGS[0]; // csp, 3 timesteps
    let sim = tiny_multistep(
        case,
        steps,
        seed,
        TallyStrategy::Replicated,
        RegroupPolicy::Off,
    );
    let options = DriverKind::History.options(1);
    let baseline = sim.run(options);

    for offset in 12..20 {
        let label = format!("{case:?} bitflip@2:{offset}");
        let (dir, store) = temp_store(&format!("lenflip_{offset}"));
        let plan: FaultPlan = format!("bitflip@2:{offset},kill@2").parse().unwrap();
        match run_with_checkpoints(&sim, options, &store, &plan).unwrap() {
            SolveOutcome::Killed { after_step } => assert_eq!(after_step, 2, "{label}"),
            SolveOutcome::Complete { .. } => panic!("{label}: kill did not fire"),
        }

        match run_with_checkpoints(&sim, options, &store, &FaultPlan::none()).unwrap() {
            SolveOutcome::Complete {
                report,
                resumed_from,
                recovery,
            } => {
                assert_eq!(
                    resumed_from,
                    Some(1),
                    "{label}: must fall back to boundary 1"
                );
                match recovery {
                    Some(Recovery::Fallback { primary_error }) => assert!(
                        matches!(
                            *primary_error,
                            CheckpointError::Truncated | CheckpointError::Corrupt(_)
                        ),
                        "{label}: expected a structural error, got {primary_error}"
                    ),
                    other => panic!("{label}: expected fallback recovery, got {other:?}"),
                }
                assert_reports_bitwise(&report, &baseline, &label);
            }
            SolveOutcome::Killed { .. } => unreachable!("no faults planned"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Hard-error paths: a checkpoint from a different configuration, an
/// unsupported format version, and corruption with no valid fallback
/// are all surfaced as errors naming the cause — never absorbed.
#[test]
fn mismatches_and_unrecoverable_corruption_are_hard_errors() {
    let (case, steps, seed) = MULTISTEP_CONFIGS[1]; // scatter, 2 timesteps
    let sim = tiny_multistep(
        case,
        steps,
        seed,
        TallyStrategy::Replicated,
        RegroupPolicy::Off,
    );
    let options = DriverKind::History.options(1);
    let (dir, store) = temp_store("hard_errors");

    // Interrupt after boundary 1 so the store holds a real checkpoint.
    let plan: FaultPlan = "kill@2".parse().unwrap();
    assert!(matches!(
        run_with_checkpoints(&sim, options, &store, &plan).unwrap(),
        SolveOutcome::Killed { after_step: 2 }
    ));
    let good = std::fs::read(store.path()).expect("checkpoint on disk");

    // A different seed is a different problem: hard ConfigMismatch.
    let other = tiny_multistep(
        case,
        steps,
        seed + 1,
        TallyStrategy::Replicated,
        RegroupPolicy::Off,
    );
    let err = run_with_checkpoints(&other, options, &store, &FaultPlan::none()).unwrap_err();
    assert!(
        matches!(err, CheckpointError::ConfigMismatch { .. }),
        "expected ConfigMismatch, got {err}"
    );
    assert!(err.to_string().contains("different problem"));

    // An unsupported version (correctly checksummed so the version check
    // itself fires) in the primary with no fallback: hard error.
    let _ = std::fs::remove_file(store.fallback_path());
    let mut wrong_version = good.clone();
    wrong_version[8..12].copy_from_slice(&99u32.to_le_bytes());
    let sum =
        neutral_core::checkpoint::fnv1a64(wrong_version[..wrong_version.len() - 8].iter().copied());
    let n = wrong_version.len();
    wrong_version[n - 8..].copy_from_slice(&sum.to_le_bytes());
    store.save_raw(&wrong_version).unwrap();
    let _ = std::fs::remove_file(store.fallback_path()); // save_raw rotated
    let err = run_with_checkpoints(&sim, options, &store, &FaultPlan::none()).unwrap_err();
    assert!(
        matches!(err, CheckpointError::UnsupportedVersion(99)),
        "expected UnsupportedVersion, got {err}"
    );

    // Truncation at arbitrary byte counts with no fallback: always a
    // clean, named error (Truncated or ChecksumMismatch) — never a
    // panic, never a silent fresh start.
    for keep in [0, 7, 19, 21, 60, good.len() / 2, good.len() - 1] {
        store.save_raw(&good[..keep]).unwrap();
        let _ = std::fs::remove_file(store.fallback_path());
        let err = run_with_checkpoints(&sim, options, &store, &FaultPlan::none()).unwrap_err();
        assert!(
            matches!(
                err,
                CheckpointError::Truncated | CheckpointError::ChecksumMismatch { .. }
            ),
            "keep={keep}: got {err}"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// A completed checkpointed run leaves a final-boundary checkpoint;
/// invoking the runner again resumes it as already done and reports the
/// same results without redoing any transport.
#[test]
fn completed_run_resumes_as_done() {
    let (case, steps, seed) = MULTISTEP_CONFIGS[1];
    let sim = tiny_multistep(
        case,
        steps,
        seed,
        TallyStrategy::Replicated,
        RegroupPolicy::Off,
    );
    let options = DriverKind::History.options(1);
    let (dir, store) = temp_store("completed");

    let first = match run_with_checkpoints(&sim, options, &store, &FaultPlan::none()).unwrap() {
        SolveOutcome::Complete { report, .. } => report,
        SolveOutcome::Killed { .. } => unreachable!(),
    };
    let again = match run_with_checkpoints(&sim, options, &store, &FaultPlan::none()).unwrap() {
        SolveOutcome::Complete {
            report,
            resumed_from,
            ..
        } => {
            assert_eq!(resumed_from, Some(steps), "must resume at the end");
            report
        }
        SolveOutcome::Killed { .. } => unreachable!(),
    };
    assert_eq!(first.counters, again.counters);
    assert_eq!(tally_bits(&first.tally), tally_bits(&again.tally));
    assert_eq!(again.timesteps, steps);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The checkpoint hash layer is the golden-fixture hasher: a checkpoint
/// round trip preserves the tally's `tally_hash` fingerprint exactly.
#[test]
fn checkpoint_preserves_tally_fingerprint() {
    let (case, steps, seed) = MULTISTEP_CONFIGS[0];
    let sim = tiny_multistep(
        case,
        steps,
        seed,
        TallyStrategy::Replicated,
        RegroupPolicy::Off,
    );
    let mut solve = Solve::new(&sim, DriverKind::History.options(1));
    solve.step();
    let ckpt = solve.checkpoint();
    let back = Checkpoint::from_bytes(&ckpt.to_bytes()).unwrap();
    assert_eq!(tally_hash(&ckpt.tally), tally_hash(&back.tally));
    assert_eq!(ckpt, back);
}
