//! Kernel-backend seam invariants (DESIGN.md §19): the Over-Events
//! drivers dispatch their per-round kernels through one of three
//! [`Backend`] implementations — scalar, auto-vectorized, explicit
//! SIMD — that compute the same per-lane expressions in the same order,
//! so every backend must be **bitwise** interchangeable: identical
//! merged tallies, physics counters and deterministically-folded energy
//! sums, for every driver family, any worker count, and with the
//! runtime AVX2 fallback forced on or off.
//!
//! The non-Over-Events families ignore the knob entirely; the matrix
//! sweeps them anyway to lock that the backend is inert where it has no
//! kernels to dispatch (a backend that leaked into the history-order
//! drivers would show up here first).

use neutral_core::prelude::*;
use neutral_integration::{physics_counters, tiny_multistep, DriverKind, MULTISTEP_CONFIGS};

fn assert_bitwise_tally(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: tally sizes diverge");
    assert!(
        a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()),
        "{what}: merged tally bits diverge"
    );
}

/// backend × driver × workers {1, 2, 7}: every cell of the matrix
/// reproduces its driver's scalar two-worker baseline bit for bit, on
/// both committed multi-timestep configurations.
#[test]
fn backends_bitwise_across_drivers_and_workers() {
    for (case, steps, seed) in MULTISTEP_CONFIGS {
        for driver in DriverKind::ALL {
            let base = tiny_multistep(
                case,
                steps,
                seed,
                TallyStrategy::Replicated,
                RegroupPolicy::Off,
            )
            .run(RunOptions {
                backend: Backend::Scalar,
                ..driver.options(2)
            });
            for backend in Backend::ALL {
                for workers in [1usize, 2, 7] {
                    let r = tiny_multistep(
                        case,
                        steps,
                        seed,
                        TallyStrategy::Replicated,
                        RegroupPolicy::Off,
                    )
                    .run(RunOptions {
                        backend,
                        ..driver.options(workers)
                    });
                    let what = format!(
                        "{}x{}/{}/{}/{}w",
                        case.name(),
                        steps,
                        driver.name(),
                        backend.name(),
                        workers
                    );
                    assert_eq!(
                        physics_counters(r.counters),
                        physics_counters(base.counters),
                        "{what}: physics counters diverge from the scalar baseline"
                    );
                    assert_eq!(
                        r.counters.census_energy_ev.to_bits(),
                        base.counters.census_energy_ev.to_bits(),
                        "{what}: census-energy fold diverges"
                    );
                    assert_eq!(
                        r.counters.lost_energy_ev.to_bits(),
                        base.counters.lost_energy_ev.to_bits(),
                        "{what}: lost-energy fold diverges"
                    );
                    assert_bitwise_tally(&r.tally, &base.tally, &what);
                }
            }
        }
    }
}

/// The `simd` backend's runtime fallback (taken on hardware without
/// AVX2, here forced through the test hook) is bitwise identical to the
/// vector path — so a fleet mixing AVX2 and non-AVX2 nodes still
/// reproduces one answer. Safe against concurrent tests in this binary:
/// forcing the fallback only reroutes `simd` runs onto the scalar
/// expressions, which this suite proves bitwise interchangeable.
#[test]
fn forced_simd_fallback_is_bitwise_identical() {
    let (case, steps, seed) = MULTISTEP_CONFIGS[0];
    let run = || {
        tiny_multistep(
            case,
            steps,
            seed,
            TallyStrategy::Replicated,
            RegroupPolicy::ByCell,
        )
        .run(RunOptions {
            backend: Backend::Simd,
            ..DriverKind::OverEvents.options(3)
        })
    };
    let native = run();
    force_simd_fallback(true);
    let fallback = run();
    force_simd_fallback(false);
    assert_eq!(
        physics_counters(native.counters),
        physics_counters(fallback.counters),
        "fallback: physics counters diverge"
    );
    assert_eq!(
        native.counters.census_energy_ev.to_bits(),
        fallback.counters.census_energy_ev.to_bits(),
        "fallback: census-energy fold diverges"
    );
    assert_bitwise_tally(&native.tally, &fallback.tally, "forced fallback");
}

/// The backend knob survives the params/CLI round trip: a params file
/// carrying `backend simd` (or the `kernel_style` alias) parses to the
/// backend the solve will run, and re-serializes canonically.
#[test]
fn backend_round_trips_through_params() {
    for backend in Backend::ALL {
        let text = format!("nx 8\nny 8\nparticles 32\nbackend {}\n", backend.name());
        let params = neutral_core::params::ProblemParams::parse(&text).unwrap();
        assert_eq!(params.backend, backend);
        assert!(params
            .to_params_text()
            .contains(&format!("backend {}", backend.name())));
    }
    let alias = neutral_core::params::ProblemParams::parse("kernel_style simd\n").unwrap();
    assert_eq!(alias.backend, Backend::Simd);
}
