//! The reproduction's keystone property: the *Over Particles* and *Over
//! Events* schemes compute identical physics.
//!
//! Both schemes advance every particle with the same event functions and
//! the same per-particle counter-based RNG stream (paper §IV-F), so for a
//! fixed seed every history follows the same trajectory regardless of
//! scheme, kernel style, threading, layout or tally backend. Tallies may
//! differ only by floating-point summation order.

use neutral_core::prelude::*;
use neutral_integration::{rel_diff, test_thread_counts, tiny, tiny_with_tally, DriverKind};

fn base(case: TestCase, seed: u64) -> RunReport {
    tiny(case, seed).run(RunOptions {
        execution: Execution::Sequential,
        ..Default::default()
    })
}

fn assert_same_physics(a: &RunReport, b: &RunReport, what: &str) {
    assert_eq!(a.counters.collisions, b.counters.collisions, "{what}");
    assert_eq!(a.counters.absorptions, b.counters.absorptions, "{what}");
    assert_eq!(a.counters.scatters, b.counters.scatters, "{what}");
    assert_eq!(a.counters.facets, b.counters.facets, "{what}");
    assert_eq!(a.counters.reflections, b.counters.reflections, "{what}");
    assert_eq!(a.counters.census, b.counters.census, "{what}");
    assert_eq!(a.counters.deaths, b.counters.deaths, "{what}");
    assert_eq!(a.counters.cs_lookups, b.counters.cs_lookups, "{what}");
    assert_eq!(a.alive, b.alive, "{what}");
    assert!(
        rel_diff(a.tally_total(), b.tally_total()) < 1e-9,
        "{what}: tally totals {} vs {}",
        a.tally_total(),
        b.tally_total()
    );
}

#[test]
fn every_execution_mode_matches_sequential() {
    for case in TestCase::ALL {
        for seed in [3, 1777] {
            let reference = base(case, seed);
            let combos: Vec<(&str, RunOptions)> = vec![
                (
                    "rayon",
                    RunOptions {
                        execution: Execution::Rayon,
                        ..Default::default()
                    },
                ),
                (
                    "scheduled-static",
                    RunOptions {
                        execution: Execution::Scheduled {
                            threads: 3,
                            schedule: Schedule::Static { chunk: None },
                        },
                        ..Default::default()
                    },
                ),
                (
                    "scheduled-guided-privatized",
                    RunOptions {
                        execution: Execution::ScheduledPrivatized {
                            threads: 4,
                            schedule: Schedule::Guided { min_chunk: 2 },
                        },
                        ..Default::default()
                    },
                ),
                (
                    "soa",
                    RunOptions {
                        layout: Layout::Soa,
                        execution: Execution::Rayon,
                        ..Default::default()
                    },
                ),
                (
                    "over-events-scalar",
                    RunOptions {
                        scheme: Scheme::OverEvents,
                        execution: Execution::Sequential,
                        ..Default::default()
                    },
                ),
                (
                    "over-events-vectorized",
                    RunOptions {
                        scheme: Scheme::OverEvents,
                        backend: Backend::Vectorized,
                        execution: Execution::Rayon,
                        ..Default::default()
                    },
                ),
            ];
            for (what, opts) in combos {
                let r = tiny(case, seed).run(opts);
                assert_same_physics(&reference, &r, &format!("{case:?}/{seed}/{what}"));
            }
        }
    }
}

#[test]
fn per_cell_tallies_match_across_schemes() {
    let op = base(TestCase::Csp, 42);
    let oe = tiny(TestCase::Csp, 42).run(RunOptions {
        scheme: Scheme::OverEvents,
        execution: Execution::Rayon,
        ..Default::default()
    });
    let total = op.tally_total();
    let mut nonzero = 0;
    for (i, (a, b)) in op.tally.iter().zip(&oe.tally).enumerate() {
        if *a != 0.0 {
            nonzero += 1;
        }
        let scale = a.abs().max(total * 1e-12);
        assert!(((a - b) / scale).abs() < 1e-6, "cell {i}: {a} vs {b}");
    }
    assert!(nonzero > 10, "csp should light up many cells");
}

/// The tally-subsystem keystone: for every driver family and every
/// deterministic strategy, the merged tally is **bitwise identical** at
/// worker counts {1, 2, 7} (plus `NEUTRAL_TEST_THREADS`), and identical
/// to the same driver run sequentially. The atomic strategy reproduces
/// the same physics (integer counters exactly, per-cell tallies to
/// floating-point reassociation error).
#[test]
fn tally_strategies_are_worker_count_equivalent() {
    let case = TestCase::Csp;
    let seed = 42;
    for driver in DriverKind::ALL {
        for strategy in TallyStrategy::ALL {
            let reference = tiny_with_tally(case, seed, strategy).run(driver.options(1));
            for workers in test_thread_counts() {
                let r = tiny_with_tally(case, seed, strategy).run(driver.options(workers));
                let what = format!("{}/{}/{workers}w", driver.name(), strategy.name());
                assert_eq!(
                    r.counters.collisions, reference.counters.collisions,
                    "{what}"
                );
                assert_eq!(r.counters.facets, reference.counters.facets, "{what}");
                assert_eq!(r.counters.census, reference.counters.census, "{what}");
                assert_eq!(r.counters.deaths, reference.counters.deaths, "{what}");
                if strategy.is_deterministic() {
                    assert_eq!(
                        r.counters, reference.counters,
                        "{what}: counters must merge deterministically"
                    );
                    assert!(
                        r.tally
                            .iter()
                            .zip(&reference.tally)
                            .all(|(a, b)| a.to_bits() == b.to_bits()),
                        "{what}: merged tally must be bitwise identical"
                    );
                } else {
                    let total = reference.tally_total();
                    for (i, (a, b)) in r.tally.iter().zip(&reference.tally).enumerate() {
                        let scale = b.abs().max(total * 1e-12).max(1e-30);
                        assert!(
                            ((a - b) / scale).abs() < 1e-6,
                            "{what}: cell {i}: {a} vs {b}"
                        );
                    }
                }
            }
        }
    }
}

/// All three strategies agree with each other per driver: deterministic
/// ones bitwise, atomic to reassociation error.
#[test]
fn tally_strategies_agree_per_driver() {
    for driver in DriverKind::ALL {
        let replicated =
            tiny_with_tally(TestCase::Csp, 9, TallyStrategy::Replicated).run(driver.options(2));
        let privatized =
            tiny_with_tally(TestCase::Csp, 9, TallyStrategy::Privatized).run(driver.options(2));
        let atomic =
            tiny_with_tally(TestCase::Csp, 9, TallyStrategy::Atomic).run(driver.options(2));
        assert_eq!(
            replicated.counters,
            privatized.counters,
            "{}",
            driver.name()
        );
        assert!(
            replicated
                .tally
                .iter()
                .zip(&privatized.tally)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "{}: replicated vs privatized bits",
            driver.name()
        );
        assert_eq!(
            atomic.counters.collisions,
            replicated.counters.collisions,
            "{}",
            driver.name()
        );
        assert!(
            rel_diff(atomic.tally_total(), replicated.tally_total()) < 1e-9,
            "{}: atomic total",
            driver.name()
        );
    }
}

#[test]
fn seeds_decorrelate_runs() {
    let a = base(TestCase::Csp, 1);
    let b = base(TestCase::Csp, 2);
    assert_ne!(a.counters.collisions, b.counters.collisions);
    assert!(rel_diff(a.tally_total(), b.tally_total()) > 1e-12);
    // ...but the physics is statistically stable: totals agree loosely.
    assert!(
        rel_diff(a.tally_total(), b.tally_total()) < 0.25,
        "seeds {} vs {}",
        a.tally_total(),
        b.tally_total()
    );
}
