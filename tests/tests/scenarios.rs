//! Multi-material scenario suite: the catalogue workloads must satisfy
//! every invariant the paper's three cases do — cross-driver agreement,
//! worker-count bitwise determinism of the deterministic tally backends,
//! and conservation accounting — plus the multi-material-specific ones
//! (material switches observed, per-cell material resolution).

use neutral_core::prelude::*;
use neutral_core::validate::population_balance;
use neutral_integration::{rel_diff, test_thread_counts, tiny_scenario_with_tally, DriverKind};

/// The two catalogue workloads the heavy sweeps run on: the most
/// streaming-like and the most collision-like of the new scenarios.
const SWEEP_SCENARIOS: [Scenario; 2] = [Scenario::ShieldedSlab, Scenario::FuelLattice];

/// Deterministic tally backends with the worker-count-invariance promise.
const DETERMINISTIC: [TallyStrategy; 2] = [TallyStrategy::Replicated, TallyStrategy::Privatized];

/// Every driver family computes identical physics on every multi-material
/// scenario: identical integer counters (collisions, facets, material
/// switches, ...) and tally totals within reassociation error.
#[test]
fn drivers_agree_on_multi_material_scenarios() {
    for scenario in Scenario::MULTI_MATERIAL {
        let sim = tiny_scenario_with_tally(scenario, 41, TallyStrategy::Replicated);
        let base = sim.run(DriverKind::History.options(1));
        assert!(base.counters.material_switches > 0, "{scenario:?}");
        for driver in [
            DriverKind::OverParticles,
            DriverKind::OverEvents,
            DriverKind::Soa,
        ] {
            let r = sim.run(driver.options(3));
            assert_eq!(
                r.counters.collisions, base.counters.collisions,
                "{scenario:?}/{driver:?}"
            );
            assert_eq!(
                r.counters.facets, base.counters.facets,
                "{scenario:?}/{driver:?}"
            );
            assert_eq!(
                r.counters.material_switches, base.counters.material_switches,
                "{scenario:?}/{driver:?}"
            );
            assert_eq!(
                r.counters.cs_lookups, base.counters.cs_lookups,
                "{scenario:?}/{driver:?}"
            );
            assert_eq!(
                r.counters.deaths, base.counters.deaths,
                "{scenario:?}/{driver:?}"
            );
            assert!(
                rel_diff(base.tally_total(), r.tally_total()) < 1e-9,
                "{scenario:?}/{driver:?}: tally {} vs {}",
                base.tally_total(),
                r.tally_total()
            );
        }
    }
}

/// The deterministic-merge invariant on multi-material workloads: for
/// Replicated and Privatized, merged tallies AND counters are bitwise
/// identical for any worker count, for all four driver families.
#[test]
fn worker_count_invariance_on_scenarios() {
    for scenario in SWEEP_SCENARIOS {
        for strategy in DETERMINISTIC {
            for driver in DriverKind::ALL {
                let sim = tiny_scenario_with_tally(scenario, 43, strategy);
                let base = sim.run(driver.options(1));
                for workers in test_thread_counts() {
                    let r = sim.run(driver.options(workers));
                    assert_eq!(
                        r.counters, base.counters,
                        "{scenario:?}/{strategy:?}/{driver:?}/{workers} workers"
                    );
                    assert!(
                        r.tally
                            .iter()
                            .zip(&base.tally)
                            .all(|(a, b)| a.to_bits() == b.to_bits()),
                        "{scenario:?}/{strategy:?}/{driver:?}/{workers} workers: \
                         merged tally bits differ"
                    );
                }
            }
        }
    }
}

/// Replicated and Privatized agree with each other bit for bit on every
/// scenario (they reduce the same lane partials the same way).
#[test]
fn deterministic_backends_agree_on_scenarios() {
    for scenario in Scenario::MULTI_MATERIAL {
        let a = tiny_scenario_with_tally(scenario, 47, TallyStrategy::Replicated)
            .run(DriverKind::OverParticles.options(3));
        let b = tiny_scenario_with_tally(scenario, 47, TallyStrategy::Privatized)
            .run(DriverKind::OverParticles.options(5));
        assert_eq!(a.counters, b.counters, "{scenario:?}");
        assert!(
            a.tally
                .iter()
                .zip(&b.tally)
                .all(|(x, y)| x.to_bits() == y.to_bits()),
            "{scenario:?}: replicated vs privatized bits differ"
        );
    }
}

/// Population accounting holds on every scenario, for every driver:
/// census + deaths + stuck == histories, and nothing gets stuck.
#[test]
fn population_conserved_on_scenarios() {
    for scenario in Scenario::MULTI_MATERIAL {
        for driver in DriverKind::ALL {
            let sim = tiny_scenario_with_tally(scenario, 53, TallyStrategy::Replicated);
            let n = sim.problem().n_particles as u64;
            let r = sim.run(driver.options(2));
            assert!(
                population_balance(n, &r.counters),
                "{scenario:?}/{driver:?}: census {} + deaths {} + stuck {} != {n}",
                r.counters.census,
                r.counters.deaths,
                r.counters.stuck
            );
            assert_eq!(r.counters.stuck, 0, "{scenario:?}/{driver:?}");
        }
    }
}

/// Under implicit capture the track-length estimator stays consistent
/// with the population energy balance on heterogeneous problems too —
/// per-cell material resolution must not leak energy at interfaces.
#[test]
fn energy_balance_on_scenarios() {
    for scenario in SWEEP_SCENARIOS {
        let mut problem = scenario.build(ProblemScale::tiny(), 59);
        problem.transport.collision_model = CollisionModel::ImplicitCapture;
        problem.transport.tally_strategy = TallyStrategy::Replicated;
        let r = Simulation::new(problem).run(DriverKind::History.options(1));
        let b = r.energy_balance();
        assert!(b.weak_invariants_hold(), "{scenario:?}: {b:?}");
        let defect = b.relative_defect();
        assert!(
            defect.abs() < 0.05,
            "{scenario:?}: energy-balance defect {defect:+.4}"
        );
    }
}

/// Lookup backends stay bitwise-equivalent per material: switching the
/// strategy must not change a single bit of a multi-material solve.
#[test]
fn lookup_strategies_agree_on_scenarios() {
    for scenario in SWEEP_SCENARIOS {
        let run_with = |strategy: LookupStrategy| {
            let mut problem = scenario.build(ProblemScale::tiny(), 61);
            problem.transport.xs_search = strategy;
            problem.transport.tally_strategy = TallyStrategy::Replicated;
            Simulation::new(problem).run(DriverKind::OverParticles.options(2))
        };
        let base = run_with(LookupStrategy::Hinted);
        for strategy in [
            LookupStrategy::Binary,
            LookupStrategy::Unionized,
            LookupStrategy::Hashed,
        ] {
            let r = run_with(strategy);
            assert_eq!(
                r.counters.collisions, base.counters.collisions,
                "{scenario:?}/{strategy:?}"
            );
            assert_eq!(
                r.counters.material_switches, base.counters.material_switches,
                "{scenario:?}/{strategy:?}"
            );
            assert!(
                r.tally
                    .iter()
                    .zip(&base.tally)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "{scenario:?}/{strategy:?}: lookup backend changed the physics bits"
            );
        }
    }
}
