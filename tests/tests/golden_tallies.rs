//! Golden-tally regression suite: three canonical configs × four drivers,
//! each locked against a committed JSON snapshot under `tests/golden/`.
//!
//! The snapshots are produced by the **replicated** tally strategy, whose
//! deterministic lane merge makes the merged mesh bitwise identical for
//! any worker count (so these fixtures are stable on any CI machine). The
//! suite additionally checks, against the same fixture, that
//!
//! * the **privatized** strategy reproduces the fixture bit for bit
//!   (its spill replay reconstructs the same lane partials), and
//! * the **atomic** strategy reproduces the physics (identical integer
//!   counters, totals within floating-point reassociation error).
//!
//! Regenerate after an intentional physics change with
//! `NEUTRAL_BLESS=1 cargo test -p neutral-integration --test golden_tallies`.

use neutral_core::prelude::*;
use neutral_integration::golden::{blessing, fixture_dir, tally_hash, GoldenTally};
use neutral_integration::{
    tiny_multistep, tiny_scenario_with_tally, tiny_with_tally, DriverKind, MULTISTEP_CONFIGS,
};

/// The three canonical configs: one per test case, seeds fixed forever.
const CONFIGS: [(TestCase, u64); 3] = [
    (TestCase::Csp, 3),
    (TestCase::Scatter, 7),
    (TestCase::Stream, 11),
];

/// The catalogue scenario configs, seeds fixed forever. The paper's
/// three cases are already covered by [`CONFIGS`] (identical problems).
/// `core_escape` is single-material — the coherence stress shape — so
/// the material-switch assertion below skips it.
const SCENARIO_CONFIGS: [(Scenario, u64); 5] = [
    (Scenario::ShieldedSlab, 13),
    (Scenario::StreamingDuct, 17),
    (Scenario::GradedModerator, 19),
    (Scenario::FuelLattice, 23),
    (Scenario::CoreEscape, 29),
];

/// Workers used when capturing/checking fixtures. Any worker count
/// yields the same bits; 2 exercises real concurrency.
const GOLDEN_WORKERS: usize = 2;

fn fixture_path(name: &str, driver: DriverKind) -> std::path::PathBuf {
    fixture_dir().join(format!("{}_{}.json", name, driver.name()))
}

fn run(case: TestCase, seed: u64, driver: DriverKind, strategy: TallyStrategy) -> RunReport {
    tiny_with_tally(case, seed, strategy).run(driver.options(GOLDEN_WORKERS))
}

fn run_scenario(
    scenario: Scenario,
    seed: u64,
    driver: DriverKind,
    strategy: TallyStrategy,
) -> RunReport {
    tiny_scenario_with_tally(scenario, seed, strategy).run(driver.options(GOLDEN_WORKERS))
}

#[test]
fn golden_tallies_match_fixtures() {
    let mut blessed = 0;
    for (case, seed) in CONFIGS {
        for driver in DriverKind::ALL {
            let report = run(case, seed, driver, TallyStrategy::Replicated);
            let captured = GoldenTally::capture(case.name(), driver.name(), seed, &report);
            let path = fixture_path(case.name(), driver);

            if blessing() {
                std::fs::create_dir_all(fixture_dir()).expect("create tests/golden");
                std::fs::write(&path, captured.to_json()).expect("write fixture");
                blessed += 1;
                continue;
            }

            let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                panic!(
                    "missing golden fixture {path:?} ({e}); run with NEUTRAL_BLESS=1 to generate"
                )
            });
            let expected = GoldenTally::from_json(&text).expect("parse fixture");
            assert_eq!(
                captured.fields,
                expected.fields,
                "{}/{}: run diverges from golden fixture {path:?} \
                 (if the physics change is intentional, re-bless)",
                case.name(),
                driver.name()
            );
        }
    }
    if blessed > 0 {
        println!("blessed {blessed} golden fixtures");
    }
}

/// Multi-timestep runs locked the same way: one fixture per config ×
/// driver, captured with the replicated strategy (and the default
/// `RegroupPolicy::Off`).
#[test]
fn multistep_golden_tallies_match_fixtures() {
    let mut blessed = 0;
    for (case, steps, seed) in MULTISTEP_CONFIGS {
        for driver in DriverKind::ALL {
            let report = tiny_multistep(
                case,
                steps,
                seed,
                TallyStrategy::Replicated,
                RegroupPolicy::Off,
            )
            .run(driver.options(GOLDEN_WORKERS));
            assert_eq!(report.timesteps, steps);
            let name = format!("{}_t{}", case.name(), steps);
            let captured = GoldenTally::capture(&name, driver.name(), seed, &report);
            let path = fixture_dir().join(format!("{}_{}.json", name, driver.name()));

            if blessing() {
                std::fs::create_dir_all(fixture_dir()).expect("create tests/golden");
                std::fs::write(&path, captured.to_json()).expect("write fixture");
                blessed += 1;
                continue;
            }

            let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                panic!(
                    "missing golden fixture {path:?} ({e}); run with NEUTRAL_BLESS=1 to generate"
                )
            });
            let expected = GoldenTally::from_json(&text).expect("parse fixture");
            assert_eq!(
                captured.fields,
                expected.fields,
                "{}/{}: run diverges from golden fixture {path:?} \
                 (if the physics change is intentional, re-bless)",
                name,
                driver.name()
            );
        }
    }
    if blessed > 0 {
        println!("blessed {blessed} multistep fixtures");
    }
}

/// The multi-material scenario catalogue, locked the same way: one
/// fixture per scenario × driver, captured with the replicated strategy.
#[test]
fn scenario_golden_tallies_match_fixtures() {
    let mut blessed = 0;
    for (scenario, seed) in SCENARIO_CONFIGS {
        for driver in DriverKind::ALL {
            let report = run_scenario(scenario, seed, driver, TallyStrategy::Replicated);
            assert!(
                report.counters.material_switches > 0 || !scenario.is_multi_material(),
                "{}/{}: a multi-material fixture must cross interfaces",
                scenario.name(),
                driver.name()
            );
            let captured = GoldenTally::capture(scenario.name(), driver.name(), seed, &report);
            let path = fixture_path(scenario.name(), driver);

            if blessing() {
                std::fs::create_dir_all(fixture_dir()).expect("create tests/golden");
                std::fs::write(&path, captured.to_json()).expect("write fixture");
                blessed += 1;
                continue;
            }

            let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                panic!(
                    "missing golden fixture {path:?} ({e}); run with NEUTRAL_BLESS=1 to generate"
                )
            });
            let expected = GoldenTally::from_json(&text).expect("parse fixture");
            assert_eq!(
                captured.fields,
                expected.fields,
                "{}/{}: run diverges from golden fixture {path:?} \
                 (if the physics change is intentional, re-bless)",
                scenario.name(),
                driver.name()
            );
        }
    }
    if blessed > 0 {
        println!("blessed {blessed} scenario fixtures");
    }
}

/// Privatized reproduces the scenario fixtures bit for bit too — the
/// deterministic-merge invariant holds on every catalogue workload.
#[test]
fn scenario_privatized_matches_golden_bitwise() {
    if blessing() {
        return;
    }
    for (scenario, seed) in SCENARIO_CONFIGS {
        for driver in DriverKind::ALL {
            let report = run_scenario(scenario, seed, driver, TallyStrategy::Privatized);
            let text =
                std::fs::read_to_string(fixture_path(scenario.name(), driver)).expect("fixture");
            let expected = GoldenTally::from_json(&text).unwrap();
            assert_eq!(
                Some(tally_hash(&report.tally)),
                expected.get_bits("tally_hash"),
                "{}/{}: privatized tally bits diverge from the golden mesh",
                scenario.name(),
                driver.name()
            );
            assert_eq!(
                Some(report.counters.material_switches.to_string().as_str()),
                expected.get("material_switches"),
                "{}/{}",
                scenario.name(),
                driver.name()
            );
        }
    }
}

/// The privatized backend must reproduce the replicated fixtures
/// bit for bit: both reduce the same lane partials with the same
/// pairwise merge.
#[test]
fn privatized_matches_golden_bitwise() {
    if blessing() {
        return;
    }
    for (case, seed) in CONFIGS {
        for driver in DriverKind::ALL {
            let report = run(case, seed, driver, TallyStrategy::Privatized);
            let text = std::fs::read_to_string(fixture_path(case.name(), driver)).expect("fixture");
            let expected = GoldenTally::from_json(&text).unwrap();
            assert_eq!(
                Some(tally_hash(&report.tally)),
                expected.get_bits("tally_hash"),
                "{}/{}: privatized tally bits diverge from the golden (replicated) mesh",
                case.name(),
                driver.name()
            );
            assert_eq!(
                Some(report.counters.collisions.to_string().as_str()),
                expected.get("collisions"),
                "{}/{}",
                case.name(),
                driver.name()
            );
        }
    }
}

/// The atomic backend computes the same physics as the fixtures: integer
/// counters exactly, deposited energy to reassociation error.
#[test]
fn atomic_matches_golden_physics() {
    if blessing() {
        return;
    }
    for (case, seed) in CONFIGS {
        for driver in DriverKind::ALL {
            let report = run(case, seed, driver, TallyStrategy::Atomic);
            let text = std::fs::read_to_string(fixture_path(case.name(), driver)).expect("fixture");
            let expected = GoldenTally::from_json(&text).unwrap();
            for key in ["collisions", "facets", "census", "deaths", "stuck", "alive"] {
                let got = match key {
                    "collisions" => report.counters.collisions,
                    "facets" => report.counters.facets,
                    "census" => report.counters.census,
                    "deaths" => report.counters.deaths,
                    "stuck" => report.counters.stuck,
                    _ => report.alive as u64,
                };
                assert_eq!(
                    Some(got.to_string().as_str()),
                    expected.get(key),
                    "{}/{}: {key}",
                    case.name(),
                    driver.name()
                );
            }
            let golden_total = f64::from_bits(expected.get_bits("tally_total_bits").unwrap());
            let total = report.tally_total();
            assert!(
                (total - golden_total).abs() <= 1e-9 * golden_total.abs().max(1e-30),
                "{}/{}: atomic total {total} vs golden {golden_total}",
                case.name(),
                driver.name()
            );
        }
    }
}
