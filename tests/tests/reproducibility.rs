//! Reproducibility guarantees of the counter-based RNG design (paper
//! §IV-F: CBRNGs "achieve reproducibility between runs for the purpose of
//! testing during debugging").

use neutral_core::history::TransportCtx;
use neutral_core::over_particles::run_sequential;
use neutral_core::particle::spawn_particles;
use neutral_core::prelude::*;
use neutral_integration::{rel_diff, tiny};
use neutral_mesh::tally::SequentialTally;
use neutral_rng::{Philox4x32, Threefry2x64};

/// Same seed, same options => bitwise-identical tallies, any number of
/// times.
#[test]
fn sequential_runs_are_bitwise_reproducible() {
    for case in TestCase::ALL {
        let a = tiny(case, 31).run(RunOptions {
            execution: Execution::Sequential,
            ..Default::default()
        });
        let b = tiny(case, 31).run(RunOptions {
            execution: Execution::Sequential,
            ..Default::default()
        });
        assert!(
            a.tally
                .iter()
                .zip(&b.tally)
                .all(|(x, y)| x.to_bits() == y.to_bits()),
            "{case:?}: sequential runs diverged"
        );
    }
}

/// Privatised tally + static schedule + fixed threads => bitwise
/// reproducible *parallel* runs (deterministic slot merge order).
#[test]
fn privatized_parallel_runs_are_bitwise_reproducible() {
    let opts = RunOptions {
        execution: Execution::ScheduledPrivatized {
            threads: 4,
            schedule: Schedule::Static { chunk: None },
        },
        ..Default::default()
    };
    let a = tiny(TestCase::Csp, 8).run(opts);
    let b = tiny(TestCase::Csp, 8).run(opts);
    assert!(a
        .tally
        .iter()
        .zip(&b.tally)
        .all(|(x, y)| x.to_bits() == y.to_bits()));
}

/// Atomic-tally parallel runs reorder float additions, so they are only
/// *numerically* reproducible — but the physics (integer counters) stays
/// bitwise identical.
#[test]
fn atomic_parallel_runs_reproduce_physics_exactly() {
    let opts = RunOptions {
        execution: Execution::Rayon,
        ..Default::default()
    };
    let a = tiny(TestCase::Scatter, 17).run(opts);
    let b = tiny(TestCase::Scatter, 17).run(opts);
    assert_eq!(a.counters.collisions, b.counters.collisions);
    assert_eq!(a.counters.absorptions, b.counters.absorptions);
    assert_eq!(a.counters.facets, b.counters.facets);
    assert!(rel_diff(a.tally_total(), b.tally_total()) < 1e-9);
}

/// Swapping the RNG *family* (Threefry -> Philox) changes every
/// trajectory but must leave the statistics intact — the solution is a
/// property of the physics, not of the generator (§IV-F's requirement of
/// statistical robustness).
#[test]
fn rng_family_swap_preserves_statistics() {
    let problem = TestCase::Scatter.build(ProblemScale::tiny(), 4242);
    let mut tallies = Vec::new();
    let mut collisions = Vec::new();

    // Threefry (the default engine).
    {
        let rng = Threefry2x64::new([problem.seed, 1]);
        let ctx = TransportCtx {
            mesh: &problem.mesh,
            materials: &problem.materials,
            rng: &rng,
            cfg: &problem.transport,
        };
        let mut particles = spawn_particles(&problem);
        let mut tally = SequentialTally::new(problem.mesh.num_cells());
        let c = run_sequential(&mut particles, &ctx, &mut tally);
        tallies.push(tally.total());
        collisions.push(c.collisions);
    }
    // Philox.
    {
        let rng = Philox4x32::new([problem.seed, 1]);
        let ctx = TransportCtx {
            mesh: &problem.mesh,
            materials: &problem.materials,
            rng: &rng,
            cfg: &problem.transport,
        };
        let mut particles = spawn_particles(&problem);
        let mut tally = SequentialTally::new(problem.mesh.num_cells());
        let c = run_sequential(&mut particles, &ctx, &mut tally);
        tallies.push(tally.total());
        collisions.push(c.collisions);
    }

    assert_ne!(
        collisions[0], collisions[1],
        "different engines, different paths"
    );
    let col_ratio = collisions[0] as f64 / collisions[1] as f64;
    assert!(
        (0.9..1.1).contains(&col_ratio),
        "collision counts diverged: {collisions:?}"
    );
    assert!(
        rel_diff(tallies[0], tallies[1]) < 0.1,
        "tally totals diverged: {tallies:?}"
    );
}
