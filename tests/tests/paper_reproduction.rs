//! Regression suite for the paper's headline results.
//!
//! Each test measures real event counters at test scale, extrapolates to
//! the paper's problem size, projects onto the paper's machines with
//! `neutral-perf`, and asserts the published ratio within a tolerance
//! band. Bands are deliberately wide — the claim being regression-tested
//! is the paper's *shape* (who wins, by roughly what factor), not the
//! third significant digit of a model. `EXPERIMENTS.md` tabulates the
//! exact model values alongside the paper's.

use neutral_core::prelude::*;
use neutral_perf::arch::{BROADWELL_2S, K20X, KNL_7210_DRAM, KNL_7210_MCDRAM, P100, POWER8_2S};
use neutral_perf::calibrate::ModelParams;
use neutral_perf::model::{predict, predict_with, KernelProfile, SchemeKind};

fn profile(case: TestCase, scheme: Scheme) -> KernelProfile {
    let scale = ProblemScale::tiny();
    let problem = case.build(scale, 1234);
    let n = problem.n_particles;
    let report = Simulation::new(problem).run(RunOptions {
        scheme,
        execution: Execution::Sequential,
        ..Default::default()
    });
    let kind = match scheme {
        Scheme::OverParticles => SchemeKind::OverParticles,
        Scheme::OverEvents => SchemeKind::OverEvents,
    };
    let rounds = report.kernel_timings.map_or(0, |t| t.rounds);
    KernelProfile::from_counters(kind, &report.counters, n, rounds).scaled(
        scale.particle_divisor as f64,
        4000.0 / scale.mesh_cells as f64,
    )
}

fn assert_band(label: &str, got: f64, paper: f64, lo: f64, hi: f64) {
    assert!(
        (lo..=hi).contains(&got),
        "{label}: model {got:.2} outside band [{lo}, {hi}] (paper {paper})"
    );
}

/// §VII / Figure 9, 11, 13: Over Particles beats Over Events — by ~4.6x
/// on Broadwell csp, ~3.8x on POWER8, ~3.6x on P100 — and "more than 2x
/// ... for our test cases and tested hardware" overall (§XI).
#[test]
fn over_particles_beats_over_events_on_csp() {
    let op = profile(TestCase::Csp, Scheme::OverParticles);
    let oe = profile(TestCase::Csp, Scheme::OverEvents);

    let bdw = predict(&oe, &BROADWELL_2S).total_s / predict(&op, &BROADWELL_2S).total_s;
    assert_band("BDW csp OE/OP", bdw, 4.56, 3.0, 7.0);

    let p8 = predict(&oe, &POWER8_2S).total_s / predict(&op, &POWER8_2S).total_s;
    assert_band("P8 csp OE/OP", p8, 3.75, 2.0, 6.0);

    let p100 = predict(&oe, &P100).total_s / predict(&op, &P100).total_s;
    assert_band("P100 csp OE/OP", p100, 3.64, 2.0, 6.0);

    let k20x = predict(&oe, &K20X).total_s / predict(&op, &K20X).total_s;
    assert!(k20x > 1.0, "K20X: OP must win csp ({k20x:.2})");
}

/// §VII-B / Figure 10: on KNL the Over-Events scheme loses csp by ~2.15x
/// but *wins* the scattering problem by ~1.73x (vectorised collisions +
/// MCDRAM), the paper's one scheme-crossover.
#[test]
fn knl_scheme_crossover() {
    let csp_op = profile(TestCase::Csp, Scheme::OverParticles);
    let csp_oe = profile(TestCase::Csp, Scheme::OverEvents);
    let sc_op = profile(TestCase::Scatter, Scheme::OverParticles);
    let sc_oe = profile(TestCase::Scatter, Scheme::OverEvents);

    let csp =
        predict(&csp_oe, &KNL_7210_MCDRAM).total_s / predict(&csp_op, &KNL_7210_MCDRAM).total_s;
    assert_band("KNL csp OE/OP", csp, 2.15, 1.2, 3.5);

    let scatter =
        predict(&sc_op, &KNL_7210_MCDRAM).total_s / predict(&sc_oe, &KNL_7210_MCDRAM).total_s;
    assert_band("KNL scatter OP/OE (OE wins)", scatter, 1.73, 1.2, 2.6);
}

/// §VII-B / Figure 10: moving the streaming-bound Over-Events scheme from
/// DRAM to MCDRAM is worth ~2.38x on csp; the latency-bound Over-Particles
/// scheme barely moves (the paper even measured DRAM slightly faster for
/// scatter, consistent with MCDRAM's higher latency).
#[test]
fn knl_mcdram_vs_dram() {
    let csp_oe = profile(TestCase::Csp, Scheme::OverEvents);
    let gain =
        predict(&csp_oe, &KNL_7210_DRAM).total_s / predict(&csp_oe, &KNL_7210_MCDRAM).total_s;
    assert_band("KNL OE csp DRAM/MCDRAM", gain, 2.38, 1.6, 4.0);

    let sc_op = profile(TestCase::Scatter, Scheme::OverParticles);
    let op_gain =
        predict(&sc_op, &KNL_7210_DRAM).total_s / predict(&sc_op, &KNL_7210_MCDRAM).total_s;
    assert!(
        op_gain < 1.15,
        "OP scatter must barely care about MCDRAM ({op_gain:.2})"
    );
}

/// §VIII / Figure 14: device ordering and the headline cross-device
/// speedups: P100 3.2x over dual Broadwell, 4.5x over K20X; Broadwell
/// 1.34x over POWER8; KNL beaten by the other architectures; K20X the
/// slowest device on csp among BDW/P8/K20X.
#[test]
fn figure14_device_ordering() {
    let op = profile(TestCase::Csp, Scheme::OverParticles);
    let bdw = predict(&op, &BROADWELL_2S).total_s;
    let knl = predict(&op, &KNL_7210_MCDRAM).total_s;
    let p8 = predict(&op, &POWER8_2S).total_s;
    let k20x = predict(&op, &K20X).total_s;
    let p100 = predict(&op, &P100).total_s;

    assert_band("P100 vs BDW", bdw / p100, 3.2, 2.2, 4.6);
    assert_band("P100 vs K20X", k20x / p100, 4.5, 3.2, 6.5);
    assert_band("BDW vs P8", p8 / bdw, 1.34, 1.0, 1.8);
    assert!(knl > bdw, "KNL must trail Broadwell");
    assert!(p100 < bdw.min(knl).min(p8).min(k20x), "P100 must win");
    assert!(
        k20x > bdw,
        "K20X should be the slowest non-KNL device on csp"
    );
}

/// §VI-E / Figure 6: hyperthreading gains — 1.37x Broadwell, 2.16x KNL,
/// 6.2x POWER8 SMT8 (we accept 4x+ for the POWER8's deep-SMT gain).
#[test]
fn hyperthreading_gains() {
    let params = ModelParams::default();
    let op = profile(TestCase::Csp, Scheme::OverParticles);

    let gain = |arch: &neutral_perf::Architecture, base: u32, full: u32| {
        predict_with(&op, arch, base, &params, None).total_s
            / predict_with(&op, arch, full, &params, None).total_s
    };

    assert_band("BDW SMT2", gain(&BROADWELL_2S, 44, 88), 1.37, 1.15, 1.9);
    assert_band("KNL SMT4", gain(&KNL_7210_MCDRAM, 64, 256), 2.16, 1.6, 3.0);
    assert_band("P8 SMT8", gain(&POWER8_2S, 20, 160), 6.2, 3.5, 8.5);

    // Oversubscription beyond hardware threads: minor improvement for
    // neutral (§VI-E).
    let over = gain(&BROADWELL_2S, 88, 176);
    assert!(
        over > 1.0 && over < 1.3,
        "oversubscription should be mildly positive ({over:.2})"
    );
}

/// §VII-A / §VI-H / §VII-E: GPU atomics and register pressure.
#[test]
fn gpu_atomics_and_registers() {
    let params = ModelParams::default();
    let op = profile(TestCase::Csp, Scheme::OverParticles);

    // Native f64 atomicAdd worth ~1.20x on P100.
    let mut cas_p100 = P100;
    cas_p100.has_native_f64_atomic = false;
    let atomic_gain = predict(&op, &cas_p100).total_s / predict(&op, &P100).total_s;
    assert_band("P100 atomic intrinsic", atomic_gain, 1.20, 1.05, 1.4);

    // K20X: capping 102 -> 64 registers is worth ~1.6x.
    let reg_gain =
        predict_with(&op, &K20X, 0, &params, Some(255)).total_s / predict(&op, &K20X).total_s;
    assert_band("K20X register cap", reg_gain, 1.6, 1.2, 2.0);

    // P100: the same cap *hurts* (~1.07x slower).
    let reg_pain =
        predict_with(&op, &P100, 0, &params, Some(64)).total_s / predict(&op, &P100).total_s;
    assert_band("P100 register cap slowdown", reg_pain, 1.07, 1.0, 1.2);
}

/// §VII-D/E: achieved-bandwidth shape — the random-access Over-Particles
/// kernel uses a small fraction of GPU bandwidth; the streaming
/// Over-Events kernels use a much larger fraction; and neither CPU scheme
/// saturates Broadwell's bandwidth (the paper: "not bound by memory
/// bandwidth").
#[test]
fn bandwidth_utilisation_shape() {
    let op = profile(TestCase::Csp, Scheme::OverParticles);
    let oe = profile(TestCase::Csp, Scheme::OverEvents);

    let k20x_op = predict(&op, &K20X);
    let k20x_oe = predict(&oe, &K20X);
    let op_frac = k20x_op.implied_bw_gbs / K20X.peak_bw_gbs;
    let oe_frac = k20x_oe.implied_bw_gbs / K20X.peak_bw_gbs;
    assert!(
        op_frac < 0.45,
        "OP must not look bandwidth-bound ({op_frac:.2})"
    );
    assert!(
        oe_frac > op_frac * 1.5,
        "OE must use the memory system harder ({oe_frac:.2} vs {op_frac:.2})"
    );

    let bdw_op = predict(&op, &BROADWELL_2S);
    assert!(
        bdw_op.implied_bw_gbs < 0.8 * BROADWELL_2S.peak_bw_gbs,
        "CPU OP must not saturate bandwidth"
    );
}
