//! The generative differential-testing suite (DESIGN.md §17).
//!
//! Three layers:
//!
//! 1. **Generator contracts** — same seed/index reproduce the same case
//!    byte for byte; the params serialization round-trips losslessly.
//! 2. **Live battery** — a handful of freshly generated cases pass all
//!    seven oracles, and the committed corpus under `tests/corpus/`
//!    (fuzz-found, shrunk, frozen forever) replays green.
//! 3. **Broken-oracle tests** — every oracle is fed a seeded mutation
//!    it *must* catch. A comparator that silently passes corrupted
//!    physics would make the whole fuzzer green-wash; these tests are
//!    the oracle's own oracles.

use neutral_core::checkpoint::Checkpoint;
use neutral_core::fuzz::{
    check_conservation, check_cross_backend, check_energy_bits, check_energy_close,
    check_reports_bitwise, check_same_physics, check_served_matches, check_tally_bitwise,
    check_tally_reassoc, generate, generate_with, run_case, shrink, FuzzCase, FuzzProfile, Oracle,
};
use neutral_core::prelude::*;
use neutral_integration::DriverKind;
use std::path::PathBuf;

/// Fixed fuzz seed of this suite (distinct from CI's smoke seed so the
/// two jobs cover different case families).
const SEED: u64 = 424_242;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

/// A quick-profile generated case with a real multi-timestep solve,
/// used as the live fixture of the mutation tests.
fn live_case() -> FuzzCase {
    let mut case = generate_with(SEED, 0, FuzzProfile::quick());
    case.params.timesteps = 3;
    case.params.particles = 80;
    case
}

// -------------------------------------------------------------------
// Layer 1: generator contracts.
// -------------------------------------------------------------------

#[test]
fn generator_determinism_across_profiles() {
    for index in 0..6 {
        let a = generate(SEED, index);
        let b = generate(SEED, index);
        assert_eq!(a.to_params_text(), b.to_params_text());
        let qa = generate_with(SEED, index, FuzzProfile::quick());
        let qb = generate_with(SEED, index, FuzzProfile::quick());
        assert_eq!(qa.to_params_text(), qb.to_params_text());
        assert!(qa.params.nx <= 32 && qa.params.particles <= 140);
    }
}

#[test]
fn params_serialization_is_a_fixpoint() {
    for index in 0..6 {
        let case = generate(SEED, index);
        let text = case.to_params_text();
        let back = FuzzCase::from_params_text(&case.label, &text).expect("round-trip parse");
        assert_eq!(back.to_params_text(), text, "case {index}");
        assert_eq!(back.driver, case.driver, "case {index}");
        assert_eq!(
            config_fingerprint(&back.params.build()),
            config_fingerprint(&case.params.build()),
            "case {index}: fingerprint drifted through text"
        );
    }
}

// -------------------------------------------------------------------
// Layer 2: live battery + corpus replay.
// -------------------------------------------------------------------

#[test]
fn generated_cases_pass_all_oracles() {
    for index in 0..4 {
        let case = generate_with(SEED, index, FuzzProfile::quick());
        let outcome = run_case(&case);
        assert!(
            outcome.passed(),
            "{label} failed: {failures:?}",
            label = case.label,
            failures = outcome.failures
        );
        assert!(outcome.events > 0, "{} ran no transport", case.label);
    }
}

#[test]
fn corpus_replays_green() {
    let dir = corpus_dir();
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("{}: {e}", dir.display()))
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "params"))
        .collect();
    files.sort();
    assert!(
        files.len() >= 5,
        "regression corpus must hold at least 5 cases, found {}",
        files.len()
    );
    for file in &files {
        let label = file.file_stem().unwrap().to_str().unwrap();
        let text = std::fs::read_to_string(file).unwrap();
        let case =
            FuzzCase::from_params_text(label, &text).unwrap_or_else(|e| panic!("{label}: {e}"));
        let outcome = run_case(&case);
        assert!(
            outcome.passed(),
            "corpus case {label} regressed: {:?}",
            outcome.failures
        );
    }
}

// -------------------------------------------------------------------
// Layer 3: broken-oracle tests — each oracle catches a seeded mutation.
// -------------------------------------------------------------------

#[test]
fn conservation_oracle_catches_population_and_tally_corruption() {
    let case = live_case();
    let problem = case.params.build();
    let sim = Simulation::new(case.params.build());
    let good = sim.run(case.driver.options(2));
    check_conservation(&problem, &good).expect("sane run must pass");

    // Mutation 1: one history ends twice (a driver double-counting
    // deaths, or losing a particle without accounting).
    let mut leak = good.clone();
    leak.counters.deaths += 1;
    let err = check_conservation(&problem, &leak).expect_err("population leak must be caught");
    assert!(err.contains("population leak"), "{err}");

    // Mutation 2: a negative deposit (impossible for a track-length
    // estimator; the signature of a merge/flush bug).
    let mut negative = good.clone();
    negative.tally[0] = -1.0;
    let err = check_conservation(&problem, &negative).expect_err("negative cell must be caught");
    assert!(err.contains("finite/non-negative"), "{err}");

    // Mutation 3: tampered cutoff-residual accounting — the balance
    // defect blows past any sampling tolerance.
    let mut lost = good.clone();
    lost.counters.lost_energy_ev += 10.0 * lost.initial_energy_ev;
    assert!(check_conservation(&problem, &lost).is_err());
}

#[test]
fn cross_driver_oracle_catches_single_bit_and_counter_divergence() {
    let case = live_case();
    let sim = Simulation::new(case.params.build());
    let a = sim.run(DriverKind::History.options(1));
    let mut b = a.clone();
    check_same_physics("self", &a, &b).expect("identical runs must pass");
    check_tally_bitwise("self", &a, &b).expect("identical runs must pass");
    check_energy_bits("self", &a, &b).expect("identical runs must pass");

    // One flipped mantissa bit in one tally cell.
    let hot = b
        .tally
        .iter()
        .position(|v| *v > 0.0)
        .expect("non-empty tally");
    b.tally[hot] = f64::from_bits(b.tally[hot].to_bits() ^ 1);
    assert!(check_tally_bitwise("bitflip", &a, &b).is_err());
    // ...and the reassociation-tolerant comparison still catches a
    // perturbation above summation noise.
    let mut coarse = a.clone();
    coarse.tally[hot] *= 1.0 + 1.0e-3;
    assert!(check_tally_reassoc("perturbed", &a, &coarse).is_err());
    assert!(check_tally_reassoc("bitflip-ok", &a, &b).is_ok());

    // A counter off by one event.
    let mut miscounted = a.clone();
    miscounted.counters.collisions += 1;
    assert!(check_same_physics("offbyone", &a, &miscounted).is_err());

    // Energy sums: a single-ulp drift trips the bitwise family check
    // while staying inside the Over Events tolerance; a real term-sized
    // drift trips both.
    let mut ulp = a.clone();
    ulp.counters.lost_energy_ev = f64::from_bits(ulp.counters.lost_energy_ev.to_bits() ^ 1);
    assert!(check_energy_bits("ulp", &a, &ulp).is_err());
    assert!(check_energy_close("ulp", &a, &ulp).is_ok());
    // (absolute nudge: the cutoff residual can legitimately be 0.0, in
    // which case a relative perturbation would be a no-op)
    let mut dropped_term = a.clone();
    dropped_term.counters.lost_energy_ev += 1.0;
    assert!(check_energy_close("dropped-term", &a, &dropped_term).is_err());
}

#[test]
fn worker_invariance_oracle_catches_schedule_dependent_results() {
    let case = live_case();
    let sim = Simulation::new(case.params.build());
    let w2 = sim.run(DriverKind::OverParticles.options(2));
    let w7 = sim.run(DriverKind::OverParticles.options(7));
    check_same_physics("2v7", &w2, &w7).expect("worker invariance must hold");
    check_energy_bits("2v7", &w2, &w7).expect("worker invariance must hold");
    check_tally_bitwise("2v7", &w2, &w7).expect("worker invariance must hold");

    // A worker-count-dependent tally (what the Atomic backend would
    // produce) must be caught by the bitwise comparison.
    let mut skewed = w7.clone();
    let hot = skewed
        .tally
        .iter()
        .position(|v| *v > 0.0)
        .expect("non-empty tally");
    skewed.tally[hot] = f64::from_bits(skewed.tally[hot].to_bits() ^ 1);
    assert!(check_tally_bitwise("skewed", &w2, &skewed).is_err());
}

#[test]
fn checkpoint_oracle_catches_state_tampering_through_the_byte_format() {
    let case = live_case();
    let sim = Simulation::new(case.params.build());
    let options = case.driver.options(2);
    let direct = sim.run(options);

    // Honest round-trip through the real byte format: bitwise identical.
    let run_from = |ckpt: &Checkpoint| {
        let mut core = SolveCore::resume(&sim, options, ckpt).expect("resume");
        while core.step(&sim) {}
        core.finish()
    };
    let mut cut = SolveCore::new(&sim, options);
    cut.step(&sim);
    let bytes = cut.checkpoint().to_bytes();
    let honest = Checkpoint::from_bytes(&bytes).expect("parse own bytes");
    check_reports_bitwise("honest resume", &direct, &run_from(&honest))
        .expect("uninterrupted and resumed runs must be bitwise identical");

    // Tampered mid-flight state: nudge every surviving particle's
    // energy. Resume validation (fingerprint, counts, key permutation)
    // still passes — only the *physics* downstream can expose it, and
    // the bitwise report comparison must.
    let mut tampered = Checkpoint::from_bytes(&bytes).expect("parse own bytes");
    for p in &mut tampered.particles {
        p.energy *= 1.5;
    }
    let report = run_from(&tampered);
    assert!(
        check_reports_bitwise("tampered resume", &direct, &report).is_err(),
        "energy-tampered checkpoint produced a bitwise-identical run"
    );
}

#[test]
fn serve_oracle_catches_result_substitution() {
    let case = live_case();
    let sim = Simulation::new(case.params.build());
    let direct = sim.run(case.driver.options(2));
    check_served_matches(case.params.nx, &direct, &direct.clone())
        .expect("a faithful served copy must pass");

    // A served result whose dump differs by one formatted byte (here:
    // one bit in one cell) must be rejected.
    let mut served = direct.clone();
    let hot = served
        .tally
        .iter()
        .position(|v| *v > 0.0)
        .expect("non-empty tally");
    served.tally[hot] = f64::from_bits(served.tally[hot].to_bits() ^ 1);
    assert!(check_served_matches(case.params.nx, &direct, &served).is_err());

    // A cache answering with the wrong entry entirely (different seed,
    // same shape) must also be rejected.
    let mut other_params = case.params.clone();
    other_params.seed ^= 0xdead_beef;
    let other = Simulation::new(other_params.build()).run(case.driver.options(2));
    assert!(check_served_matches(case.params.nx, &direct, &other).is_err());
}

#[test]
fn cross_backend_oracle_catches_backend_divergence() {
    // Pin the case to the Over-Events driver on the scalar backend; the
    // oracle then sweeps vectorized and simd against the given report.
    let mut case = live_case();
    case.params.backend = Backend::Scalar;
    let sim = Simulation::new(case.params.build());
    let honest = sim.run(RunOptions {
        scheme: Scheme::OverEvents,
        backend: Backend::Scalar,
        execution: Execution::Scheduled {
            threads: 2,
            schedule: Schedule::Dynamic { chunk: 16 },
        },
        ..Default::default()
    });
    check_cross_backend(&case, &honest)
        .expect("scalar, vectorized and simd must be bitwise identical");

    // A backend that moved one mantissa bit in one cell — the exact
    // failure mode a mis-ordered SIMD expression would produce — must
    // be caught. (The mutation stands in for the divergent backend: the
    // oracle compares the given report against fresh runs.)
    let mut divergent = honest.clone();
    let hot = divergent
        .tally
        .iter()
        .position(|v| *v > 0.0)
        .expect("non-empty tally");
    divergent.tally[hot] = f64::from_bits(divergent.tally[hot].to_bits() ^ 1);
    assert!(
        check_cross_backend(&case, &divergent).is_err(),
        "single-ulp backend divergence slipped past the oracle"
    );

    // A counter drift (an event decided differently) is caught too.
    let mut miscounted = honest.clone();
    miscounted.counters.facets += 1;
    assert!(check_cross_backend(&case, &miscounted).is_err());
}

// -------------------------------------------------------------------
// Shrinker: a fuzz-found failure minimizes to a replayable file.
// -------------------------------------------------------------------

#[test]
fn shrinker_emits_minimal_replayable_case() {
    let mut case = generate_with(SEED, 1, FuzzProfile::quick());
    case.params.particles = 120;
    case.params.timesteps = 2;
    // Stand-in failure predicate (a real one would be `!run_case(c)
    // .passed()`): fails whenever the mesh is tall and multi-timestep.
    let fails = |c: &FuzzCase| c.params.ny >= 8 && c.params.timesteps >= 2;
    assert!(fails(&case), "fixture must start out failing");
    let minimal = shrink(&case, fails);
    // Constrained axes stop exactly at the predicate boundary...
    assert_eq!(minimal.params.timesteps, 2);
    assert!(minimal.params.ny >= 8);
    // ...free axes hit their floors...
    assert_eq!(minimal.params.particles, 16);
    assert_eq!(minimal.params.nx, 8);
    assert_eq!(minimal.driver, DriverKind::History);
    // ...and the minimized case replays from its own params text.
    let text = minimal.to_params_text();
    let back = FuzzCase::from_params_text("repro", &text).expect("replayable");
    assert!(fails(&back), "replayed repro must still fail");
    assert_eq!(
        config_fingerprint(&back.params.build()),
        config_fingerprint(&minimal.params.build())
    );
}

/// The seven oracle names are stable (corpus tooling and CI grep on
/// them) and every oracle is reachable from a generated case.
#[test]
fn oracle_battery_is_complete() {
    let names: Vec<&str> = Oracle::ALL.iter().map(|o| o.name()).collect();
    assert_eq!(
        names,
        [
            "conservation",
            "cross_driver",
            "worker_invariance",
            "checkpoint_roundtrip",
            "serve_direct",
            "shard_invariance",
            "cross_backend"
        ]
    );
    // A multi-timestep case skips nothing.
    let case = live_case();
    let outcome = run_case(&case);
    assert!(outcome.passed(), "{:?}", outcome.failures);
    assert!(
        outcome.skipped.is_empty(),
        "multi-timestep case skipped {:?}",
        outcome.skipped
    );
    // A single-timestep case skips exactly the checkpoint round-trip
    // (no interior census boundary to cut at).
    let mut single = generate_with(SEED, 2, FuzzProfile::quick());
    single.params.timesteps = 1;
    let outcome = run_case(&single);
    assert!(outcome.passed(), "{:?}", outcome.failures);
    assert_eq!(outcome.skipped, vec![Oracle::CheckpointRoundTrip]);
}
