//! Params-file error paths: every malformed or inconsistent input must
//! be a hard error whose message names the offending key/value and (for
//! line-scoped failures) the 1-based line number — typos must never
//! silently change the physics. Covers the classic keys, the scenario
//! interaction rules, and the checkpoint/fault keys the restart
//! subsystem added.

use neutral_core::params::{ParamsError, ProblemParams};
use neutral_core::prelude::*;

/// Parse `text`, demand failure, and return the error.
fn fail(text: &str) -> ParamsError {
    match ProblemParams::parse(text) {
        Err(e) => e,
        Ok(_) => panic!("params must be rejected:\n{text}"),
    }
}

#[test]
fn unknown_keys_name_the_key_and_line() {
    let e = fail("nx 10\nny 10\ntimestep 3\n"); // singular typo of `timesteps`
    assert_eq!(e.line, 3);
    assert!(
        e.message.contains("unknown key `timestep`"),
        "{}",
        e.message
    );
    // Rendered form carries the line for editor jumps.
    assert!(e.to_string().starts_with("params line 3:"), "{e}");

    for bad in ["xs_strategy hinted", "tally atomic", "checkpoint run.ckpt"] {
        let e = fail(&format!("{bad}\n"));
        let key = bad.split_whitespace().next().unwrap();
        assert!(
            e.message.contains(&format!("unknown key `{key}`")),
            "{bad}: {}",
            e.message
        );
    }
}

#[test]
fn out_of_range_timesteps_are_rejected() {
    // Zero parses but fails validation with an actionable message.
    let e = fail("timesteps 0\n");
    assert!(e.message.contains("at least one timestep"), "{}", e.message);

    // Negative/garbage never parse.
    let e = fail("timesteps -1\n");
    assert_eq!(e.line, 1);
    assert!(
        e.message.contains("not a positive integer"),
        "{}",
        e.message
    );
    let e = fail("timesteps many\n");
    assert!(e.message.contains("`many`"), "{}", e.message);

    // Arity is enforced per key.
    let e = fail("timesteps 1 2\n");
    assert!(e.message.contains("exactly one value"), "{}", e.message);

    // Zero-sized runs of other kinds are rejected the same way.
    assert!(fail("particles 0\n")
        .message
        .contains("at least one particle"));
    assert!(fail("dt 0.0\n").message.contains("dt must be positive"));
    assert!(fail("nx 0\n").message.contains("mesh must have cells"));
}

#[test]
fn scenario_conflicts_are_rejected() {
    // `scenario` after a geometry/region key would silently clobber the
    // keys parsed before it — hard error naming the rule.
    let e = fail("region 0.0 0.5 0.0 1.0 5.0\nscenario csp\n");
    assert_eq!(e.line, 2);
    assert!(
        e.message.contains("`scenario` must be the first key"),
        "{}",
        e.message
    );
    let e = fail("nx 10\nscenario shielded_slab\n");
    assert_eq!(e.line, 2);
    assert!(e.message.contains("first key"), "{}", e.message);

    // A region key after a scenario is allowed — but it must still
    // reference a material the combined setup defines.
    let e = fail("scenario csp\nregion 0.0 0.5 0.0 1.0 5.0 7\n");
    assert!(e.message.contains("material `7`"), "{}", e.message);
    assert!(
        e.message.contains("material 7"),
        "fix hint must name the missing declaration: {}",
        e.message
    );

    // Unknown scenario names list the catalogue so the fix is obvious.
    let e = fail("scenario warp_core\n");
    assert_eq!(e.line, 1);
    assert!(e.message.contains("warp_core"), "{}", e.message);
    assert!(e.message.contains("shielded_slab"), "{}", e.message);
}

#[test]
fn duplicate_scenario_keys_are_rejected() {
    // A second `scenario` would silently restart the whole setup,
    // discarding everything the first one configured.
    let e = fail("scenario csp\nscenario shielded_slab\n");
    assert_eq!(e.line, 2);
    assert!(e.message.contains("duplicate `scenario`"), "{}", e.message);

    // Even a repeat of the *same* scenario is rejected — one file, one
    // starting point. The duplicate diagnosis wins over the
    // not-first-key one so the message names the actual mistake.
    let e = fail("scenario csp\nnx 16\nscenario csp\n");
    assert_eq!(e.line, 3);
    assert!(e.message.contains("duplicate `scenario`"), "{}", e.message);
}

#[test]
fn trailing_garbage_after_a_value_is_rejected() {
    // Every key enforces its arity, so stray tokens on a line are hard
    // errors naming the key and line, never silently ignored.
    for (text, line) in [
        ("nx 10 20\n", 1),
        ("nx 10\nseed 1 extra\n", 2),
        ("scenario csp extra\n", 1),
        ("source 0.4 0.6 0.4 0.6 0.5\n", 1),
        ("region 0.0 0.5 0.0 1.0 5.0 1 9\n", 1),
    ] {
        let e = fail(text);
        assert_eq!(e.line, line, "{text:?}");
        assert!(
            e.message.contains("exactly") || e.message.contains("takes"),
            "{text:?}: {}",
            e.message
        );
    }
}

#[test]
fn geometry_and_physics_range_errors_are_actionable() {
    assert!(fail("width 0.0\n").message.contains("extent"));
    assert!(fail("density -1.0\n").message.contains("non-negative"));
    assert!(fail("weight_cutoff 1.5\n")
        .message
        .contains("weight cutoff must be in [0, 1)"));
    assert!(fail("xs_points 1\n").message.contains(">= 2 points"));
    assert!(fail("initial_energy 0.5\nmin_energy 1.0\n")
        .message
        .contains("birth energy below cutoff"));
    assert!(fail("source 0.5 1.5 0.0 0.5\n")
        .message
        .contains("source region outside the domain"));
    let e = fail("region 0.9 0.4 0.0 1.0 5.0\n");
    assert!(e.message.contains("inverted"), "{}", e.message);
}

#[test]
fn backend_key_errors_are_line_numbered_and_actionable() {
    // Unknown backend values name the offender, list the menu, and
    // carry the line — under both spellings of the key.
    for key in ["backend", "kernel_style"] {
        let e = fail(&format!("nx 10\n{key} turbo\n"));
        assert_eq!(e.line, 2, "{key}");
        assert!(e.message.contains("turbo"), "{key}: {}", e.message);
        assert!(
            e.message.contains("scalar|vectorized|simd"),
            "error must list the valid backends: {}",
            e.message
        );
        // Arity is enforced like every other key.
        let e = fail(&format!("{key} scalar simd\n"));
        assert_eq!(e.line, 1);
        assert!(e.message.contains("exactly one value"), "{}", e.message);
    }
    // The happy path round-trips through the fixpoint serializer with
    // the alias normalized to the canonical spelling.
    let p = ProblemParams::parse("kernel_style vectorized\n").unwrap();
    assert_eq!(p.backend, Backend::Vectorized);
    let text = p.to_params_text();
    assert!(text.contains("backend vectorized"), "{text}");
    assert!(!text.contains("kernel_style"), "{text}");
    assert_eq!(
        ProblemParams::parse(&text).unwrap().backend,
        Backend::Vectorized
    );
}

#[test]
fn checkpoint_file_key_parses_and_enforces_arity() {
    let p = ProblemParams::parse("checkpoint_file run.ckpt\n").unwrap();
    assert_eq!(p.checkpoint_file.as_deref(), Some("run.ckpt"));
    assert!(p.fault.is_empty(), "no fault key means an empty plan");

    let e = fail("checkpoint_file a b\n");
    assert_eq!(e.line, 1);
    assert!(e.message.contains("exactly one value"), "{}", e.message);
}

#[test]
fn fault_key_parses_the_full_grammar() {
    let p = ProblemParams::parse("checkpoint_file run.ckpt\nfault kill@2\n").unwrap();
    assert_eq!(p.fault.faults, vec![Fault::Kill { after_step: 2 }]);

    let p = ProblemParams::parse("fault torn@1:12,bitflip@2:5,kill@3\n").unwrap();
    assert_eq!(
        p.fault.faults,
        vec![
            Fault::TornWrite {
                after_step: 1,
                keep_bytes: 12
            },
            Fault::BitFlip {
                after_step: 2,
                offset: 5
            },
            Fault::Kill { after_step: 3 },
        ]
    );
}

#[test]
fn bad_fault_specs_name_spec_and_line() {
    for (spec, why) in [
        ("explode@1", "unknown kind `explode`"),
        ("kill", "missing `@`"),
        ("kill@0", "timestep must be >= 1"),
        ("kill@two", "timestep is not a number"),
        ("kill@1:5", "kill takes no argument"),
        ("torn@1:lots", "argument is not a number"),
    ] {
        let e = fail(&format!("nx 10\nfault {spec}\n"));
        assert_eq!(e.line, 2, "{spec}");
        assert!(
            e.message.contains(&format!("bad fault spec `{spec}`")),
            "{spec}: {}",
            e.message
        );
        assert!(e.message.contains(why), "{spec}: {}", e.message);
        assert!(
            e.message.contains("expected kill@N"),
            "error must teach the grammar: {}",
            e.message
        );
    }
}

#[test]
fn valid_checkpointed_params_build_and_run() {
    // The happy path through the new keys: a params file that enables
    // checkpointing still builds a runnable problem, and the keys ride
    // along without perturbing the physics configuration.
    let text = "\
nx 32
ny 32
density 1e3
particles 50
source 0.4 0.6 0.4 0.6
xs_points 256
timesteps 2
checkpoint_file run.ckpt
fault kill@1
";
    let p = ProblemParams::parse(text).unwrap();
    assert_eq!(p.checkpoint_file.as_deref(), Some("run.ckpt"));
    assert_eq!(p.fault.faults.len(), 1);
    let bare = ProblemParams::parse(&text.lines().take(7).collect::<Vec<_>>().join("\n")).unwrap();
    assert_eq!(
        config_fingerprint(&p.build()),
        config_fingerprint(&bare.build()),
        "checkpoint keys must not change the problem fingerprint"
    );
    let report = Simulation::new(p.build()).run(RunOptions {
        execution: Execution::Sequential,
        ..Default::default()
    });
    assert!(report.counters.total_events() > 0);
}
