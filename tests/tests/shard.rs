//! Sharded-solve verification (DESIGN.md §18): sharded runs must be
//! **bitwise identical** to the unsharded run for any shard count,
//! across every driver family and both deterministic tally strategies;
//! every injected shard fault must either recover to the identical
//! result via retry or fail with a named cause; and the retry path must
//! work through the real on-disk per-shard checkpoint protocol.

use neutral_core::particle::Particle;
use neutral_core::prelude::*;
use neutral_integration::{tiny_multistep, DriverKind, MULTISTEP_CONFIGS};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Shard counts of the acceptance matrix (1 = the trivial plan, 2 = the
/// smallest real split, 5 = uneven lane division).
const SHARD_COUNTS: [usize; 3] = [1, 2, 5];

/// Worker count for the matrix (2 exercises real concurrency inside
/// each shard attempt; any count yields the same bits).
const WORKERS: usize = 2;

fn tally_bits(tally: &[f64]) -> Vec<u64> {
    tally.iter().map(|v| v.to_bits()).collect()
}

fn assert_reports_bitwise(a: &RunReport, b: &RunReport, label: &str) {
    assert_eq!(a.counters, b.counters, "{label}: counters diverge");
    assert_eq!(
        tally_bits(&a.tally),
        tally_bits(&b.tally),
        "{label}: tally bits diverge"
    );
    assert_eq!(a.alive, b.alive, "{label}: alive count diverges");
    assert_eq!(a.timesteps, b.timesteps, "{label}: timestep count diverges");
}

/// Matrix configuration: no backoff sleeps, default (generous)
/// heartbeat deadline — debug-build attempts can be slow.
fn fast_config(n_shards: usize) -> ShardConfig {
    let mut config = ShardConfig::new(n_shards);
    config.backoff = Duration::ZERO;
    config
}

/// Fault-injection configuration: as [`fast_config`], plus a short
/// heartbeat deadline so `hang` faults are detected quickly. Only used
/// with a fault plan (a clean tiny-scale shard attempt comfortably
/// beats 2 s even in debug builds, and heartbeats tick per phase).
fn fault_config(n_shards: usize, plan: &str) -> ShardConfig {
    let mut config = fast_config(n_shards);
    config.heartbeat_timeout = Duration::from_secs(2);
    config.fault_plan = plan.parse().expect("fault grammar");
    config
}

/// Run a sharded solve to completion, returning the final particle
/// records alongside the report.
fn run_sharded(
    sim: &Arc<Simulation>,
    options: RunOptions,
    config: ShardConfig,
) -> Result<(RunReport, Vec<Particle>, ShardStats), ShardError> {
    let mut solve = ShardedSolve::new(sim, options, config);
    while solve.step(sim)? {}
    let stats = solve.stats();
    let particles = solve.checkpoint().particles;
    Ok((solve.finish(), particles, stats))
}

/// The tentpole claim: for every multistep config × driver family ×
/// deterministic tally strategy × regroup policy, a solve sharded
/// {1, 2, 5} ways produces tallies, counters, alive counts and final
/// particle records bitwise identical to the unsharded run.
#[test]
fn sharded_is_bitwise_identical_to_unsharded() {
    for (case, steps, seed) in MULTISTEP_CONFIGS {
        for strategy in [TallyStrategy::Replicated, TallyStrategy::Privatized] {
            for regroup in [RegroupPolicy::Off, RegroupPolicy::ByAlive] {
                for driver in DriverKind::ALL {
                    let sim = Arc::new(tiny_multistep(case, steps, seed, strategy, regroup));
                    let options = driver.options(WORKERS);

                    let mut base = Solve::new(&sim, options);
                    while base.step() {}
                    let base_particles: Vec<Particle> = base.particles().to_vec();
                    let base_report = base.finish();

                    for n_shards in SHARD_COUNTS {
                        let label = format!(
                            "{case:?}/{}/{strategy:?}/{regroup:?} shards={n_shards}",
                            driver.name()
                        );
                        let (report, particles, _) =
                            run_sharded(&sim, options, fast_config(n_shards))
                                .unwrap_or_else(|e| panic!("{label}: {e}"));
                        assert_reports_bitwise(&report, &base_report, &label);
                        assert_eq!(
                            particles, base_particles,
                            "{label}: final particle records diverge"
                        );
                    }
                }
            }
        }
    }
}

/// The fault matrix, recovery half: each fault kind fired once against
/// shard 1 is retried and the solve completes bitwise identical to the
/// clean run, with the retry visible in the stats.
#[test]
fn every_injected_fault_recovers_identically() {
    let (case, steps, seed) = MULTISTEP_CONFIGS[0];
    let sim = Arc::new(tiny_multistep(
        case,
        steps,
        seed,
        TallyStrategy::Replicated,
        RegroupPolicy::Off,
    ));
    let options = DriverKind::OverParticles.options(WORKERS);
    let (clean_report, clean_particles, clean_stats) =
        run_sharded(&sim, options, fast_config(2)).expect("clean run");
    assert_eq!(clean_stats.retries, 0);
    assert_eq!(clean_stats.requeues, 0);

    for kind in ["kill", "hang", "corrupt", "panic"] {
        let config = fault_config(2, &format!("{kind}@1"));
        let label = format!("fault {kind}@1");
        let (report, particles, stats) =
            run_sharded(&sim, options, config).unwrap_or_else(|e| panic!("{label}: {e}"));
        assert_reports_bitwise(&report, &clean_report, &label);
        assert_eq!(particles, clean_particles, "{label}: particles diverge");
        assert_eq!(stats.retries, 1, "{label}: expected exactly one retry");
        assert_eq!(stats.requeues, 1, "{label}: expected exactly one requeue");
        assert_eq!(stats.quarantined, 0, "{label}: nothing should quarantine");
    }
}

/// The fault matrix, quarantine half: a fault that fires on every
/// attempt exhausts the retry budget and surfaces as a named
/// [`ShardError::Quarantined`] wrapping the right cause.
#[test]
fn persistent_faults_quarantine_with_named_cause() {
    let (case, steps, seed) = MULTISTEP_CONFIGS[0];
    let sim = Arc::new(tiny_multistep(
        case,
        steps,
        seed,
        TallyStrategy::Replicated,
        RegroupPolicy::Off,
    ));
    let options = DriverKind::OverParticles.options(WORKERS);

    for (kind, needle) in [
        ("kill", "died"),
        ("hang", "heartbeat"),
        ("corrupt", "corrupt"),
        ("panic", "panicked"),
    ] {
        let mut config = fault_config(2, &format!("{kind}@0:99"));
        config.max_retries = 1;
        let mut solve = ShardedSolve::new(&sim, options, config);
        let err = loop {
            match solve.step(&sim) {
                Ok(true) => {}
                Ok(false) => panic!("fault {kind}: solve completed despite persistent fault"),
                Err(e) => break e,
            }
        };
        match &err {
            ShardError::Quarantined {
                shard,
                attempts,
                cause,
            } => {
                assert_eq!(*shard, 0, "fault {kind}: wrong shard quarantined");
                assert_eq!(*attempts, 2, "fault {kind}: wrong attempt count");
                let cause = cause.to_string();
                assert!(
                    cause.contains(needle),
                    "fault {kind}: cause {cause:?} should contain {needle:?}"
                );
            }
            other => panic!("fault {kind}: expected quarantine, got {other}"),
        }
        assert_eq!(solve.stats().quarantined, 1);
        assert_eq!(solve.stats().retries, 1);
    }
}

/// Retries reload the shard's census-boundary input through the real
/// crash-safe per-shard checkpoint store, and still reproduce the clean
/// run's bits.
#[test]
fn checkpoint_backed_retry_recovers_bitwise() {
    let dir = std::env::temp_dir().join(format!("neutral_shard_ckpt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let base: PathBuf = dir.join("solve.ckpt");

    let (case, steps, seed) = MULTISTEP_CONFIGS[0];
    let sim = Arc::new(tiny_multistep(
        case,
        steps,
        seed,
        TallyStrategy::Replicated,
        RegroupPolicy::ByAlive,
    ));
    let options = DriverKind::OverEvents.options(WORKERS);
    let (clean_report, clean_particles, _) =
        run_sharded(&sim, options, fast_config(2)).expect("clean run");

    let mut config = fault_config(2, "kill@1,corrupt@0");
    config.checkpoint_base = Some(base.clone());
    let (report, particles, stats) =
        run_sharded(&sim, options, config).expect("checkpoint-backed recovery");
    assert_reports_bitwise(&report, &clean_report, "checkpoint-backed retry");
    assert_eq!(particles, clean_particles, "particles diverge");
    assert_eq!(stats.requeues, 2, "both injected faults should requeue");

    // The per-shard stores really were written through the crash-safe
    // protocol.
    for shard in 0..2 {
        let mut path = base.as_os_str().to_owned();
        path.push(format!(".shard{shard}"));
        assert!(
            PathBuf::from(path).exists(),
            "shard {shard} checkpoint missing"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Sharding composes with the solve-level checkpoint: a sharded solve's
/// census-boundary snapshot is byte-identical in shape to the unsharded
/// solve's, so the existing restart machinery can resume it.
#[test]
fn sharded_checkpoint_matches_unsharded_checkpoint() {
    let (case, steps, seed) = MULTISTEP_CONFIGS[0];
    let sim = Arc::new(tiny_multistep(
        case,
        steps,
        seed,
        TallyStrategy::Replicated,
        RegroupPolicy::Off,
    ));
    let options = DriverKind::OverParticles.options(WORKERS);

    let mut base = Solve::new(&sim, options);
    assert!(base.step());
    let base_ckpt = base.checkpoint();

    let mut sharded = ShardedSolve::new(&sim, options, fast_config(2));
    assert!(sharded.step(&sim).expect("step"));
    let sharded_ckpt = sharded.checkpoint();
    // Everything in the resumable state agrees bit-for-bit (elapsed and
    // the tally footprint are diagnostics, outside the bitwise contract).
    assert_eq!(sharded_ckpt.fingerprint, base_ckpt.fingerprint);
    assert_eq!(sharded_ckpt.next_step, base_ckpt.next_step);
    assert_eq!(sharded_ckpt.counters, base_ckpt.counters);
    assert_eq!(
        tally_bits(&sharded_ckpt.tally),
        tally_bits(&base_ckpt.tally)
    );
    assert_eq!(sharded_ckpt.particles, base_ckpt.particles);
    let sharded_bytes = sharded_ckpt.to_bytes();

    // And it resumes through the ordinary unsharded restart path.
    let ckpt = Checkpoint::from_bytes(&sharded_bytes).expect("parse");
    let mut resumed = Solve::resume(&sim, options, &ckpt).expect("resume");
    while resumed.step() {}

    let mut full = Solve::new(&sim, options);
    while full.step() {}
    assert_reports_bitwise(
        &resumed.finish(),
        &full.finish(),
        "resume from sharded checkpoint",
    );
}
