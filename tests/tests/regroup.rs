//! Regroup-subsystem invariants (DESIGN.md §14): the between-timestep
//! [`RegroupPolicy`] stage physically permutes the particle population —
//! identity (`key`, RNG counters, cached hints, tally-lane assignment)
//! travels with each record — and the drivers anchor every
//! order-sensitive `f64` stream back to identity order. Consequently
//! every policy must compute **bitwise** the same merged tallies,
//! counters (minus the documented work meters) and RNG consumption as
//! [`RegroupPolicy::Off`], for every driver family and any worker count.
//!
//! The suite locks four things:
//!
//! * **policy invariance** — regroup × driver × workers {1, 2, 7} on
//!   multi-timestep problems: merged tallies bitwise identical, counters
//!   identical (modulo `cs_search_steps`/`clustered_flushes`);
//! * **golden locks** — the committed multi-timestep fixtures reproduce
//!   byte-identically under every non-default regroup policy;
//! * **permute-then-run == run** — the underlying shuffle-invariance
//!   property: an *arbitrary* lane-local permutation applied to the
//!   spawned population (not just the policy-produced groupings) leaves
//!   merged tallies, counters and every particle's final record —
//!   including its RNG draw counter — bitwise unchanged;
//! * **regroup × sort interplay** — regrouping composes with the
//!   coherence sort stage without moving a bit.

use neutral_core::history::TransportCtx;
use neutral_core::over_events::{run_over_events_lanes, KernelStyle};
use neutral_core::over_particles::run_lanes;
use neutral_core::particle::{regroup_particles, spawn_particles, Particle};
use neutral_core::prelude::*;
use neutral_core::soa::{run_lanes_soa, ParticleSoA};
use neutral_integration::golden::{blessing, fixture_dir, GoldenTally};
use neutral_integration::{
    for_cases, physics_counters, tiny_multistep, DriverKind, Gen, MULTISTEP_CONFIGS,
};
use neutral_mesh::accum::DEFAULT_LANES;
use neutral_mesh::{LanePartition, TallyAccum};
use neutral_rng::Threefry2x64;

fn assert_bitwise_tally(a: &[f64], b: &[f64], what: &str) {
    assert!(
        a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits()),
        "{what}: merged tally bits diverge"
    );
}

#[test]
fn regroup_policies_bitwise_across_drivers_and_workers() {
    for (case, steps, seed) in MULTISTEP_CONFIGS {
        for driver in DriverKind::ALL {
            let base = tiny_multistep(
                case,
                steps,
                seed,
                TallyStrategy::Replicated,
                RegroupPolicy::Off,
            )
            .run(driver.options(2));
            for policy in RegroupPolicy::ALL {
                for workers in [1usize, 2, 7] {
                    let r = tiny_multistep(case, steps, seed, TallyStrategy::Replicated, policy)
                        .run(driver.options(workers));
                    let what = format!(
                        "{}x{}/{}/{}/{}w",
                        case.name(),
                        steps,
                        driver.name(),
                        policy.name(),
                        workers
                    );
                    assert_eq!(
                        physics_counters(r.counters),
                        physics_counters(base.counters),
                        "{what}: physics counters diverge from RegroupPolicy::Off"
                    );
                    assert_eq!(
                        r.counters.census_energy_ev.to_bits(),
                        base.counters.census_energy_ev.to_bits(),
                        "{what}: census-energy fold diverges"
                    );
                    assert_bitwise_tally(&r.tally, &base.tally, &what);
                }
            }
        }
    }
}

/// The committed multi-timestep golden fixtures (captured under
/// `RegroupPolicy::Off` by the golden suite) must reproduce
/// byte-identically under every other policy.
#[test]
fn multistep_fixtures_hold_under_every_regroup_policy() {
    if blessing() {
        return; // fixtures are blessed by the golden_tallies suite
    }
    for policy in [
        RegroupPolicy::ByCell,
        RegroupPolicy::ByEnergyBand,
        RegroupPolicy::ByAlive,
    ] {
        for (case, steps, seed) in MULTISTEP_CONFIGS {
            for driver in DriverKind::ALL {
                let name = format!("{}_t{}", case.name(), steps);
                let report = tiny_multistep(case, steps, seed, TallyStrategy::Replicated, policy)
                    .run(driver.options(2));
                let captured = GoldenTally::capture(&name, driver.name(), seed, &report);
                let path = fixture_dir().join(format!("{}_{}.json", name, driver.name()));
                let expected =
                    GoldenTally::from_json(&std::fs::read_to_string(&path).expect("fixture"))
                        .expect("parse fixture");
                assert_eq!(
                    captured.fields,
                    expected.fields,
                    "{}/{}/{}: diverges from golden fixture",
                    name,
                    driver.name(),
                    policy.name()
                );
            }
        }
    }
}

/// Regrouping composes with the coherence sort stage: a regrouped run
/// under every sort policy still reproduces the Off/Off bits.
#[test]
fn regroup_and_sort_policies_compose_bitwise() {
    let (case, steps, seed) = MULTISTEP_CONFIGS[0];
    let base = tiny_multistep(
        case,
        steps,
        seed,
        TallyStrategy::Replicated,
        RegroupPolicy::Off,
    )
    .run(DriverKind::OverEvents.options(2));
    for regroup in [RegroupPolicy::ByCell, RegroupPolicy::ByAlive] {
        for sort in SortPolicy::ALL {
            let sim = tiny_multistep(case, steps, seed, TallyStrategy::Replicated, regroup);
            let mut problem = sim.problem().clone();
            problem.transport.sort_policy = sort;
            let r = Simulation::new(problem).run(DriverKind::OverEvents.options(3));
            let what = format!("regroup={}/sort={}", regroup.name(), sort.name());
            assert_eq!(
                physics_counters(r.counters),
                physics_counters(base.counters),
                "{what}"
            );
            assert_bitwise_tally(&r.tally, &base.tally, &what);
        }
    }
}

/// Apply an arbitrary random permutation *within each tally-lane block*
/// (the granularity the regroup stage is specified at), returning the
/// identity map `order[key] = position`.
fn shuffle_within_lanes(particles: &mut [Particle], g: &mut Gen) -> Vec<u32> {
    let part = LanePartition::new(particles.len(), DEFAULT_LANES);
    for lane in 0..part.n_lanes {
        let range = part.range(lane);
        let lane_slice = &mut particles[range];
        for j in (1..lane_slice.len()).rev() {
            let k = g.usize_in(0, j + 1);
            lane_slice.swap(j, k);
        }
    }
    let mut order = vec![0u32; particles.len()];
    for (pos, p) in particles.iter().enumerate() {
        order[p.key as usize] = pos as u32;
    }
    order
}

/// The shuffle-invariance property behind the whole subsystem:
/// permute-then-run == run, bitwise, for every lane driver — not just
/// for the groupings the policies produce, but for *any* lane-local
/// permutation. Final particle records (sorted back into key order) must
/// match bitwise too, RNG draw counters included: identity consumption
/// is position-independent.
#[test]
fn permute_then_run_equals_run() {
    for_cases(6, |g| {
        let case = [TestCase::Csp, TestCase::Scatter, TestCase::Stream][g.usize_in(0, 3)];
        let seed = 1 + g.usize_in(0, 500) as u64;
        let problem = {
            let mut p = case.build(ProblemScale::tiny(), seed);
            p.transport.tally_strategy = TallyStrategy::Replicated;
            p
        };
        let rng = Threefry2x64::new([problem.seed, 1]);
        let ctx = TransportCtx {
            mesh: &problem.mesh,
            materials: &problem.materials,
            rng: &rng,
            cfg: &problem.transport,
        };
        let cells = problem.mesh.num_cells();
        let schedule = Schedule::Dynamic { chunk: 1 };
        let workers = 1 + g.usize_in(0, 4);

        // Driver runner: (merged tally, counters, final particles).
        let run_driver = |driver: DriverKind,
                          particles: &mut Vec<Particle>,
                          order: Option<&[u32]>|
         -> (Vec<f64>, EventCounters) {
            let mut accum = TallyAccum::new(TallyStrategy::Replicated, cells, DEFAULT_LANES);
            let counters = match driver {
                DriverKind::OverParticles | DriverKind::History => {
                    run_lanes(particles, &ctx, &mut accum, workers, schedule, order)
                }
                DriverKind::OverEvents => {
                    let mut soa = ParticleSoA::from_aos(particles);
                    let (c, _) = run_over_events_lanes(
                        &mut soa,
                        &ctx,
                        &mut accum,
                        KernelStyle::Scalar,
                        workers,
                        schedule,
                        &mut None,
                        order,
                    );
                    soa.write_aos(particles);
                    c
                }
                DriverKind::Soa => {
                    let mut soa = ParticleSoA::from_aos(particles);
                    let mut arenas = Vec::new();
                    let c = run_lanes_soa(
                        &mut soa,
                        &ctx,
                        &mut accum,
                        workers,
                        schedule,
                        false,
                        &mut arenas,
                        order,
                    );
                    soa.write_aos(particles);
                    c
                }
            };
            (accum.merge(), counters)
        };

        for driver in [
            DriverKind::OverParticles,
            DriverKind::OverEvents,
            DriverKind::Soa,
        ] {
            let mut straight = spawn_particles(&problem);
            let (tally_a, counters_a) = run_driver(driver, &mut straight, None);

            let mut permuted = spawn_particles(&problem);
            let order = shuffle_within_lanes(&mut permuted, g);
            let (tally_b, counters_b) = run_driver(driver, &mut permuted, Some(&order));

            let what = format!("{}/{}w/{}", case.name(), workers, driver.name());
            assert_eq!(
                physics_counters(counters_a),
                physics_counters(counters_b),
                "{what}: counters"
            );
            assert_eq!(
                counters_a.census_energy_ev.to_bits(),
                counters_b.census_energy_ev.to_bits(),
                "{what}: census energy bits"
            );
            assert_bitwise_tally(&tally_a, &tally_b, &what);

            // Identity travels: sorting the permuted population back into
            // key order must reproduce every final record bitwise —
            // trajectory, weight, hints and RNG draw counter included.
            permuted.sort_unstable_by_key(|p| p.key);
            assert_eq!(straight, permuted, "{what}: final particle records diverge");
        }
    });
}

/// The policy-level regroup entry point actually moves particles on a
/// multi-timestep run (sanity that the invariance above is not vacuous),
/// and the permutation helper groups what it claims to group.
#[test]
fn regroup_actually_regroups() {
    let problem = TestCase::Scatter.build(ProblemScale::tiny(), 7);
    let mut particles = spawn_particles(&problem);
    // Scatter a fake kill pattern so ByAlive has something to do.
    for (i, p) in particles.iter_mut().enumerate() {
        p.dead = i % 3 == 1;
    }
    let part = LanePartition::new(particles.len(), DEFAULT_LANES);
    let mut scratch = ScratchArena::new();
    let moved = regroup_particles(
        &mut particles,
        RegroupPolicy::ByAlive,
        problem.mesh.nx(),
        part.lane_size,
        &mut scratch,
    );
    assert!(moved, "a striped kill pattern must move records");
    for lane in 0..part.n_lanes {
        let lane_slice = &particles[part.range(lane)];
        let first_dead = lane_slice.iter().position(|p| p.dead);
        if let Some(fd) = first_dead {
            assert!(
                lane_slice[fd..].iter().all(|p| p.dead),
                "lane {lane}: survivors must form a contiguous prefix"
            );
        }
    }
}
