//! Property-based tests (proptest) across the workspace: randomised
//! problems and inputs, invariant assertions.

use neutral_core::prelude::*;
use neutral_core::scheduler::{parallel_for, Schedule};
use neutral_core::validate::population_balance;
use neutral_mesh::{Rect, StructuredMesh2D};
use neutral_xs::{CrossSectionLibrary, SynthParams, XsHints};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

fn arbitrary_problem() -> impl Strategy<Value = Problem> {
    (
        8usize..40,           // mesh cells per axis
        0usize..3,            // density regime
        1u64..1000,           // seed
        20usize..120,         // particles
        (0.05f64..0.7, 0.05f64..0.7), // source origin
    )
        .prop_map(|(n, regime, seed, particles, (sx, sy))| {
            let rho = match regime {
                0 => 1.0e-30,
                1 => 1.0e3,
                _ => 0.05,
            };
            let mut mesh = StructuredMesh2D::uniform(n, n, 1.0, 1.0, rho);
            if regime == 2 {
                mesh.set_region(Rect::new(0.4, 0.6, 0.4, 0.6), 1.0e3);
            }
            Problem {
                mesh,
                xs: CrossSectionLibrary::synthetic(512, seed),
                source: Rect::new(sx, sx + 0.2, sy, sy + 0.2),
                n_particles: particles,
                dt: 1.0e-7,
                n_timesteps: 1,
                seed,
                initial_energy_ev: 1.0e6,
                transport: TransportConfig::default(),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any random problem conserves its population, keeps particles in
    /// the domain, deposits non-negative energy and never trips the
    /// runaway guard.
    #[test]
    fn random_problems_hold_invariants(problem in arbitrary_problem()) {
        let n = problem.n_particles;
        let r = Simulation::new(problem).run(RunOptions {
            execution: Execution::Sequential,
            ..Default::default()
        });
        prop_assert!(population_balance(n as u64, &r.counters));
        prop_assert_eq!(r.counters.stuck, 0);
        prop_assert!(r.tally.iter().all(|&v| v >= 0.0 && v.is_finite()));
        let b = r.energy_balance();
        prop_assert!(b.weak_invariants_hold());
    }

    /// Scheme equivalence holds for random problems, not just the three
    /// canonical cases.
    #[test]
    fn random_problems_scheme_equivalence(problem in arbitrary_problem()) {
        let sim = Simulation::new(problem);
        let op = sim.run(RunOptions {
            execution: Execution::Sequential,
            ..Default::default()
        });
        let oe = sim.run(RunOptions {
            scheme: Scheme::OverEvents,
            execution: Execution::Sequential,
            ..Default::default()
        });
        prop_assert_eq!(op.counters.collisions, oe.counters.collisions);
        prop_assert_eq!(op.counters.facets, oe.counters.facets);
        prop_assert_eq!(op.counters.deaths, oe.counters.deaths);
        let (a, b) = (op.tally_total(), oe.tally_total());
        prop_assert!(((a - b).abs() <= 1e-9 * a.abs().max(1e-30)),
            "tallies {} vs {}", a, b);
    }

    /// The hinted cross-section lookup equals the binary lookup for any
    /// table and any energy/hint.
    #[test]
    fn hinted_lookup_equals_binary(
        points in 8usize..600,
        seed in 0u64..5000,
        exp in -6.0f64..7.5,
        hint in 0u32..600,
    ) {
        let lib = CrossSectionLibrary::synthetic(points, seed);
        let e = 10f64.powf(exp);
        let mut hints = XsHints { absorb: hint, scatter: hint / 2 };
        let hinted = lib.lookup(e, &mut hints);
        let binary = lib.lookup_binary(e);
        prop_assert_eq!(hinted, binary);
    }

    /// Synthetic tables are strictly positive and monotone-graded: capture
    /// at thermal energies exceeds capture at MeV energies.
    #[test]
    fn synthetic_tables_shape(points in 64usize..512, seed in 0u64..1000) {
        let p = SynthParams::default();
        let capture = neutral_xs::synthetic_capture(points, seed, &p);
        prop_assert!(capture.values().iter().all(|&v| v > 0.0));
        prop_assert!(capture.value_binary(1e-3) > capture.value_binary(1e6));
    }

    /// Every schedule policy covers every index exactly once for random
    /// shapes.
    #[test]
    fn scheduler_exact_coverage(
        n in 0usize..3000,
        threads in 1usize..9,
        which in 0usize..5,
        chunk in 1usize..100,
    ) {
        let schedule = match which {
            0 => Schedule::Static { chunk: None },
            1 => Schedule::Static { chunk: Some(chunk) },
            2 => Schedule::Dynamic { chunk },
            3 => Schedule::Guided { min_chunk: chunk },
            _ => Schedule::Dynamic { chunk: 1 },
        };
        let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        parallel_for(threads, n, schedule, |_t, range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        prop_assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    /// Mesh point-location and facet-crossing arithmetic agree for random
    /// geometry.
    #[test]
    fn mesh_locate_and_crossing(
        nx in 1usize..50,
        ny in 1usize..50,
        fx in 0.0f64..1.0,
        fy in 0.0f64..1.0,
    ) {
        let mesh = StructuredMesh2D::uniform(nx, ny, 2.0, 3.0, 1.0);
        let x = 2.0 * fx;
        let y = 3.0 * fy;
        let (ix, iy) = mesh.locate(x, y);
        prop_assert!(ix < nx && iy < ny);
        let (x0, x1, y0, y1) = mesh.cell_bounds(ix, iy);
        prop_assert!(x >= x0 - 1e-12 && x <= x1 + 1e-12);
        prop_assert!(y >= y0 - 1e-12 && y <= y1 + 1e-12);

        // Crossing out and back returns to the same cell.
        for facet in [
            neutral_mesh::Facet::XLow,
            neutral_mesh::Facet::XHigh,
            neutral_mesh::Facet::YLow,
            neutral_mesh::Facet::YHigh,
        ] {
            let (jx, jy, reflected) = mesh.cross_facet(ix, iy, facet);
            prop_assert!(jx < nx && jy < ny);
            if !reflected {
                let opposite = match facet {
                    neutral_mesh::Facet::XLow => neutral_mesh::Facet::XHigh,
                    neutral_mesh::Facet::XHigh => neutral_mesh::Facet::XLow,
                    neutral_mesh::Facet::YLow => neutral_mesh::Facet::YHigh,
                    neutral_mesh::Facet::YHigh => neutral_mesh::Facet::YLow,
                };
                let (kx, ky, _) = mesh.cross_facet(jx, jy, opposite);
                prop_assert_eq!((kx, ky), (ix, iy));
            }
        }
    }

    /// Fixed-key Threefry is a bijection: distinct counters can never
    /// produce the same block.
    #[test]
    fn threefry_injective(
        key in any::<[u64; 2]>(),
        a in any::<[u64; 2]>(),
        b in any::<[u64; 2]>(),
    ) {
        use neutral_rng::{CbRng, Threefry2x64};
        prop_assume!(a != b);
        let rng = Threefry2x64::new(key);
        prop_assert_ne!(rng.block(a), rng.block(b));
    }

    /// The perf model is monotone: more particles can never take less
    /// predicted time on any machine.
    #[test]
    fn model_monotone_in_work(mult in 1.0f64..50.0) {
        use neutral_perf::model::{predict, KernelProfile, SchemeKind};
        let n = 1.0e4;
        let base = KernelProfile {
            scheme: SchemeKind::OverParticles,
            n_particles: n,
            collisions: 50.0 * n,
            facets: 300.0 * n,
            census: n,
            cs_lookups: 51.0 * n,
            cs_search_steps: 500.0 * n,
            density_reads: 301.0 * n,
            tally_flushes: 300.0 * n,
            oe_rounds: 0.0,
        };
        let bigger = base.scaled(mult, 1.0);
        for arch in neutral_perf::arch::ALL {
            let t0 = predict(&base, arch).total_s;
            let t1 = predict(&bigger, arch).total_s;
            prop_assert!(t1 >= t0 * 0.999, "{}: {} vs {}", arch.name, t0, t1);
        }
    }
}
