//! Hand-rolled property tests across the workspace: randomised problems
//! and inputs, invariant assertions. Inputs come from the deterministic
//! [`neutral_integration::Gen`] harness (see `tests/src/lib.rs`), so a
//! failing case index reproduces exactly.

use neutral_core::prelude::*;
use neutral_core::scheduler::{parallel_for, parallel_for_owned, Schedule};
use neutral_core::validate::population_balance;
use neutral_integration::{for_cases, Gen};
use neutral_mesh::accum::pairwise_sum;
use neutral_mesh::{LaneSink, Rect, StructuredMesh2D, TallyAccum, TallyStrategy};
use neutral_xs::{CrossSectionLibrary, SynthParams, XsHints};
use std::sync::atomic::{AtomicU32, Ordering};

fn arbitrary_problem(g: &mut Gen) -> Problem {
    let n = g.usize_in(8, 40);
    let regime = g.usize_in(0, 3);
    let seed = 1 + g.usize_in(0, 999) as u64;
    let particles = g.usize_in(20, 120);
    let sx = g.f64_in(0.05, 0.7);
    let sy = g.f64_in(0.05, 0.7);

    let rho = match regime {
        0 => 1.0e-30,
        1 => 1.0e3,
        _ => 0.05,
    };
    let mut mesh = StructuredMesh2D::uniform(n, n, 1.0, 1.0, rho);
    if regime == 2 {
        mesh.set_region(Rect::new(0.4, 0.6, 0.4, 0.6), 1.0e3);
    }
    Problem {
        mesh,
        materials: neutral_xs::MaterialSet::single(CrossSectionLibrary::synthetic(512, seed)),
        source: Rect::new(sx, sx + 0.2, sy, sy + 0.2),
        n_particles: particles,
        dt: 1.0e-7,
        n_timesteps: 1,
        seed,
        initial_energy_ev: 1.0e6,
        transport: TransportConfig::default(),
    }
}

/// Any random problem conserves its population, keeps particles in the
/// domain, deposits non-negative energy and never trips the runaway
/// guard.
#[test]
fn random_problems_hold_invariants() {
    for_cases(24, |g| {
        let problem = arbitrary_problem(g);
        let n = problem.n_particles;
        let r = Simulation::new(problem).run(RunOptions {
            execution: Execution::Sequential,
            ..Default::default()
        });
        assert!(population_balance(n as u64, &r.counters));
        assert_eq!(r.counters.stuck, 0);
        assert!(r.tally.iter().all(|&v| v >= 0.0 && v.is_finite()));
        assert!(r.energy_balance().weak_invariants_hold());
    });
}

/// Scheme equivalence holds for random problems, not just the three
/// canonical cases.
#[test]
fn random_problems_scheme_equivalence() {
    for_cases(24, |g| {
        let problem = arbitrary_problem(g);
        let sim = Simulation::new(problem);
        let op = sim.run(RunOptions {
            execution: Execution::Sequential,
            ..Default::default()
        });
        let oe = sim.run(RunOptions {
            scheme: Scheme::OverEvents,
            execution: Execution::Sequential,
            ..Default::default()
        });
        assert_eq!(op.counters.collisions, oe.counters.collisions);
        assert_eq!(op.counters.facets, oe.counters.facets);
        assert_eq!(op.counters.deaths, oe.counters.deaths);
        let (a, b) = (op.tally_total(), oe.tally_total());
        assert!(
            (a - b).abs() <= 1e-9 * a.abs().max(1e-30),
            "tallies {a} vs {b}"
        );
    });
}

/// Every lookup backend agrees **bitwise** with the binary-search
/// baseline for any synthetic table and any energy or hint, including
/// energies outside the tabulated range — and leaves the hint at the
/// clamped containing bin.
#[test]
fn all_lookup_backends_equal_binary() {
    for_cases(200, |g| {
        let points = g.usize_in(8, 600);
        let seed = g.usize_in(0, 5000) as u64;
        let e = 10f64.powf(g.f64_in(-6.0, 7.5));
        let hint = g.usize_in(0, 600) as u32;

        let lib = CrossSectionLibrary::synthetic(points, seed);
        let expect_a = lib.absorb.value_binary(e);
        let expect_s = lib.scatter.value_binary(e);
        let expect_hint_a = lib.absorb.bin_index_binary(e) as u32;
        let expect_hint_s = lib.scatter.bin_index_binary(e) as u32;

        for strategy in LookupStrategy::ALL {
            let mut hints = XsHints {
                absorb: hint,
                scatter: hint / 2,
            };
            let (micro, _steps) = lib.lookup_with(strategy, e, &mut hints);
            assert_eq!(
                micro.absorb_barns.to_bits(),
                expect_a.to_bits(),
                "{strategy:?} absorb at E={e}, {points} pts, seed {seed}"
            );
            assert_eq!(
                micro.scatter_barns.to_bits(),
                expect_s.to_bits(),
                "{strategy:?} scatter at E={e}, {points} pts, seed {seed}"
            );
            assert_eq!(
                (hints.absorb, hints.scatter),
                (expect_hint_a, expect_hint_s),
                "{strategy:?} hint state at E={e}"
            );
        }
    });
}

/// The batched lane-block API produces exactly the per-call results for
/// random tables and random energy blocks.
#[test]
fn batched_lookup_equals_scalar() {
    for_cases(20, |g| {
        let points = g.usize_in(16, 1000);
        let seed = g.usize_in(0, 1000) as u64;
        let lib = CrossSectionLibrary::synthetic(points, seed);
        let n = g.usize_in(1, 200);
        let energies: Vec<f64> = (0..n).map(|_| g.log_uniform(1.0e-6, 1.0e8)).collect();
        for strategy in LookupStrategy::ALL {
            let mut ha = vec![0u32; n];
            let mut hs = vec![0u32; n];
            let mut oa = vec![0.0; n];
            let mut os = vec![0.0; n];
            lib.lookup_many_with(strategy, &energies, &mut ha, &mut hs, &mut oa, &mut os);
            for i in 0..n {
                let mut hints = XsHints::default();
                let (micro, _) = lib.lookup_with(strategy, energies[i], &mut hints);
                assert_eq!(
                    micro.absorb_barns.to_bits(),
                    oa[i].to_bits(),
                    "{strategy:?}"
                );
                assert_eq!(
                    micro.scatter_barns.to_bits(),
                    os[i].to_bits(),
                    "{strategy:?}"
                );
                assert_eq!(
                    (hints.absorb, hints.scatter),
                    (ha[i], hs[i]),
                    "{strategy:?}"
                );
            }
        }
    });
}

/// Synthetic tables are strictly positive and monotone-graded: capture at
/// thermal energies exceeds capture at MeV energies.
#[test]
fn synthetic_tables_shape() {
    for_cases(24, |g| {
        let points = g.usize_in(64, 512);
        let seed = g.usize_in(0, 1000) as u64;
        let p = SynthParams::default();
        let capture = neutral_xs::synthetic_capture(points, seed, &p);
        assert!(capture.values().iter().all(|&v| v > 0.0));
        assert!(capture.value_binary(1e-3) > capture.value_binary(1e6));
    });
}

/// Generate a random per-lane deposit script: for each lane, an ordered
/// list of `(cell, value)` deposits (values spread over many decades so
/// that summation order genuinely matters in `f64`).
fn arbitrary_deposits(g: &mut Gen, lanes: usize, cells: usize) -> Vec<Vec<(usize, f64)>> {
    (0..lanes)
        .map(|_| {
            let n = g.usize_in(0, 400);
            (0..n)
                .map(|_| (g.usize_in(0, cells), g.log_uniform(1.0e-9, 1.0e9)))
                .collect()
        })
        .collect()
}

/// Random per-lane partial deposits merged under shuffled lane-processing
/// orders (and worker counts) must produce bitwise-identical meshes for
/// the deterministic backends — the deterministic-merge invariant.
#[test]
fn deterministic_merge_shuffle_invariance() {
    for_cases(24, |g| {
        let cells = g.usize_in(4, 200);
        let lanes = g.usize_in(1, 12);
        let deposits = arbitrary_deposits(g, lanes, cells);
        let workers = [1, g.usize_in(2, 9), g.usize_in(2, 9)];

        for strategy in [TallyStrategy::Replicated, TallyStrategy::Privatized] {
            let mut merged: Vec<Vec<f64>> = Vec::new();
            for (round, &n_threads) in workers.iter().enumerate() {
                let mut accum = TallyAccum::new(strategy, cells, lanes);
                {
                    // Shuffle which lane is processed when by scheduling
                    // the lanes dynamically over the workers; the merge
                    // must not care.
                    let mut states: Vec<(usize, LaneSink<'_>)> =
                        accum.lane_views().into_iter().enumerate().collect();
                    // Vary the schedule between rounds too.
                    let schedule = if round % 2 == 0 {
                        Schedule::Dynamic { chunk: 1 }
                    } else {
                        Schedule::Guided { min_chunk: 1 }
                    };
                    parallel_for_owned(n_threads, schedule, &mut states, |_, (lane, view)| {
                        for &(cell, value) in &deposits[*lane] {
                            view.add(cell, value);
                        }
                    });
                }
                merged.push(accum.merge());
            }
            for other in &merged[1..] {
                assert!(
                    merged[0]
                        .iter()
                        .zip(other)
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "{strategy:?}: merge depends on worker count / interleaving"
                );
            }
        }
    });
}

/// Replicated and privatized merges agree bitwise on any deposit script,
/// and the atomic backend agrees to reassociation error; every backend's
/// merged total matches the pairwise sum of all deposits loosely.
#[test]
fn backends_cross_agree_on_random_deposits() {
    for_cases(24, |g| {
        let cells = g.usize_in(4, 120);
        let lanes = g.usize_in(1, 8);
        let deposits = arbitrary_deposits(g, lanes, cells);
        let mut merged = Vec::new();
        for strategy in TallyStrategy::ALL {
            let mut accum = TallyAccum::new(strategy, cells, lanes);
            {
                let mut views = accum.lane_views();
                for (lane, view) in views.iter_mut().enumerate() {
                    for &(cell, value) in &deposits[lane] {
                        view.add(cell, value);
                    }
                }
            }
            merged.push(accum.merge());
        }
        let [atomic, replicated, privatized] = &merged[..] else {
            unreachable!()
        };
        assert!(
            replicated
                .iter()
                .zip(privatized)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "replicated vs privatized bits"
        );
        let total = pairwise_sum(replicated);
        for (c, (a, b)) in atomic.iter().zip(replicated).enumerate() {
            let scale = b.abs().max(total.abs() * 1e-12).max(1e-30);
            assert!(((a - b) / scale).abs() < 1e-9, "cell {c}: {a} vs {b}");
        }
    });
}

/// Every schedule policy covers every index exactly once for random
/// shapes.
#[test]
fn scheduler_exact_coverage() {
    for_cases(24, |g| {
        let n = g.usize_in(0, 3000);
        let threads = g.usize_in(1, 9);
        let chunk = g.usize_in(1, 100);
        let schedule = match g.usize_in(0, 5) {
            0 => Schedule::Static { chunk: None },
            1 => Schedule::Static { chunk: Some(chunk) },
            2 => Schedule::Dynamic { chunk },
            3 => Schedule::Guided { min_chunk: chunk },
            _ => Schedule::Dynamic { chunk: 1 },
        };
        let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        parallel_for(threads, n, schedule, |_t, range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    });
}

/// Mesh point-location and facet-crossing arithmetic agree for random
/// geometry.
#[test]
fn mesh_locate_and_crossing() {
    for_cases(50, |g| {
        let nx = g.usize_in(1, 50);
        let ny = g.usize_in(1, 50);
        let mesh = StructuredMesh2D::uniform(nx, ny, 2.0, 3.0, 1.0);
        let x = 2.0 * g.f64_unit();
        let y = 3.0 * g.f64_unit();
        let (ix, iy) = mesh.locate(x, y);
        assert!(ix < nx && iy < ny);
        let (x0, x1, y0, y1) = mesh.cell_bounds(ix, iy);
        assert!(x >= x0 - 1e-12 && x <= x1 + 1e-12);
        assert!(y >= y0 - 1e-12 && y <= y1 + 1e-12);

        // Crossing out and back returns to the same cell.
        for facet in [
            neutral_mesh::Facet::XLow,
            neutral_mesh::Facet::XHigh,
            neutral_mesh::Facet::YLow,
            neutral_mesh::Facet::YHigh,
        ] {
            let (jx, jy, reflected) = mesh.cross_facet(ix, iy, facet);
            assert!(jx < nx && jy < ny);
            if !reflected {
                let opposite = match facet {
                    neutral_mesh::Facet::XLow => neutral_mesh::Facet::XHigh,
                    neutral_mesh::Facet::XHigh => neutral_mesh::Facet::XLow,
                    neutral_mesh::Facet::YLow => neutral_mesh::Facet::YHigh,
                    neutral_mesh::Facet::YHigh => neutral_mesh::Facet::YLow,
                };
                let (kx, ky, _) = mesh.cross_facet(jx, jy, opposite);
                assert_eq!((kx, ky), (ix, iy));
            }
        }
    });
}

/// Fixed-key Threefry is a bijection: distinct counters can never produce
/// the same block.
#[test]
fn threefry_injective() {
    for_cases(50, |g| {
        use neutral_rng::{CbRng, Threefry2x64};
        let key = [g.u64_any(), g.u64_any()];
        let a = [g.u64_any(), g.u64_any()];
        let b = [g.u64_any(), g.u64_any()];
        if a == b {
            return;
        }
        let rng = Threefry2x64::new(key);
        assert_ne!(rng.block(a), rng.block(b));
    });
}

/// The perf model is monotone: more particles can never take less
/// predicted time on any machine.
#[test]
fn model_monotone_in_work() {
    for_cases(24, |g| {
        use neutral_perf::model::{predict, KernelProfile, SchemeKind};
        let mult = g.f64_in(1.0, 50.0);
        let n = 1.0e4;
        let base = KernelProfile {
            scheme: SchemeKind::OverParticles,
            n_particles: n,
            collisions: 50.0 * n,
            facets: 300.0 * n,
            census: n,
            cs_lookups: 51.0 * n,
            cs_search_steps: 500.0 * n,
            density_reads: 301.0 * n,
            tally_flushes: 300.0 * n,
            oe_rounds: 0.0,
        };
        let bigger = base.scaled(mult, 1.0);
        for arch in neutral_perf::arch::ALL {
            let t0 = predict(&base, arch).total_s;
            let t1 = predict(&bigger, arch).total_s;
            assert!(t1 >= t0 * 0.999, "{}: {} vs {}", arch.name, t0, t1);
        }
    });
}
