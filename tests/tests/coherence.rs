//! Coherence-subsystem invariants (DESIGN.md §13): the [`SortPolicy`]
//! sort stage permutes *memory-access order only* — tally flush order
//! within a cell, lookup lane-block order — never particle identity, so
//! every policy must compute bitwise identical physics.
//!
//! The suite locks three things:
//!
//! * **policy invariance** — for the batched drivers (Over-Events, SoA)
//!   at worker counts {1, 2, 7}: merged tallies bitwise identical and
//!   counters identical (modulo `cs_search_steps`, the search-work meter
//!   the sort stage exists to reduce) across every policy;
//! * **golden locks** — every committed golden fixture reproduces
//!   byte-identically under every non-default policy;
//! * **lookup interplay** — the run-detection fast path of the grid
//!   backends stays bitwise under banded, sorted lane blocks.

use neutral_core::prelude::*;
use neutral_integration::golden::{blessing, fixture_dir, GoldenTally};
use neutral_integration::{
    physics_counters, tiny_scenario_with_tally, tiny_with_tally, DriverKind,
};

fn run_with(
    case: TestCase,
    seed: u64,
    driver: DriverKind,
    workers: usize,
    policy: SortPolicy,
    lookup: LookupStrategy,
) -> RunReport {
    let sim = tiny_with_tally(case, seed, TallyStrategy::Replicated);
    let mut problem = sim.problem().clone();
    problem.transport.sort_policy = policy;
    problem.transport.xs_search = lookup;
    Simulation::new(problem).run(driver.options(workers))
}

#[test]
fn sort_policies_are_bitwise_identical_on_batched_drivers() {
    let seed = 29;
    for case in [TestCase::Csp, TestCase::Scatter] {
        for driver in [DriverKind::OverEvents, DriverKind::Soa] {
            for lookup in [LookupStrategy::Hinted, LookupStrategy::Unionized] {
                let base = run_with(case, seed, driver, 1, SortPolicy::Off, lookup);
                for workers in [1usize, 2, 7] {
                    for policy in SortPolicy::ALL {
                        let r = run_with(case, seed, driver, workers, policy, lookup);
                        let what = format!(
                            "{}/{}/{}/{}w",
                            case.name(),
                            driver.name(),
                            policy.name(),
                            workers
                        );
                        assert_eq!(
                            physics_counters(r.counters),
                            physics_counters(base.counters),
                            "{what}: physics counters diverge from SortPolicy::Off"
                        );
                        assert!(
                            r.tally
                                .iter()
                                .zip(&base.tally)
                                .all(|(a, b)| a.to_bits() == b.to_bits()),
                            "{what}: merged tally bits diverge from SortPolicy::Off"
                        );
                    }
                }
            }
        }
    }
}

/// The history and Over-Particles drivers have no batched stage, so the
/// policy must be a strict no-op for them — bitwise including the work
/// meter.
#[test]
fn sort_policies_are_noops_for_unbatched_drivers() {
    for driver in [DriverKind::History, DriverKind::OverParticles] {
        let base = run_with(
            TestCase::Csp,
            31,
            driver,
            2,
            SortPolicy::Off,
            LookupStrategy::Hinted,
        );
        for policy in [SortPolicy::ByCell, SortPolicy::ByEnergyBand] {
            let r = run_with(TestCase::Csp, 31, driver, 2, policy, LookupStrategy::Hinted);
            assert_eq!(
                r.counters,
                base.counters,
                "{}/{}",
                driver.name(),
                policy.name()
            );
            assert!(
                r.tally
                    .iter()
                    .zip(&base.tally)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "{}/{}",
                driver.name(),
                policy.name()
            );
        }
    }
}

/// Every committed golden fixture — the paper's three configs and the
/// four multi-material scenarios, across all four driver families —
/// reproduces byte-identically under every non-default sort policy.
#[test]
fn golden_fixtures_hold_under_every_sort_policy() {
    if blessing() {
        return; // fixtures are blessed by the golden_tallies suite
    }
    const CONFIGS: [(TestCase, u64); 3] = [
        (TestCase::Csp, 3),
        (TestCase::Scatter, 7),
        (TestCase::Stream, 11),
    ];
    const SCENARIO_CONFIGS: [(Scenario, u64); 5] = [
        (Scenario::ShieldedSlab, 13),
        (Scenario::StreamingDuct, 17),
        (Scenario::GradedModerator, 19),
        (Scenario::FuelLattice, 23),
        (Scenario::CoreEscape, 29),
    ];
    for policy in [SortPolicy::ByCell, SortPolicy::ByEnergyBand] {
        for driver in DriverKind::ALL {
            for (case, seed) in CONFIGS {
                let sim = tiny_with_tally(case, seed, TallyStrategy::Replicated);
                let mut problem = sim.problem().clone();
                problem.transport.sort_policy = policy;
                let report = Simulation::new(problem).run(driver.options(2));
                let captured = GoldenTally::capture(case.name(), driver.name(), seed, &report);
                let path = fixture_dir().join(format!("{}_{}.json", case.name(), driver.name()));
                let expected =
                    GoldenTally::from_json(&std::fs::read_to_string(&path).expect("fixture"))
                        .expect("parse fixture");
                assert_eq!(
                    captured.fields,
                    expected.fields,
                    "{}/{}/{}: diverges from golden fixture",
                    case.name(),
                    driver.name(),
                    policy.name()
                );
            }
            for (scenario, seed) in SCENARIO_CONFIGS {
                let sim = tiny_scenario_with_tally(scenario, seed, TallyStrategy::Replicated);
                let mut problem = sim.problem().clone();
                problem.transport.sort_policy = policy;
                let report = Simulation::new(problem).run(driver.options(2));
                let captured = GoldenTally::capture(scenario.name(), driver.name(), seed, &report);
                let path =
                    fixture_dir().join(format!("{}_{}.json", scenario.name(), driver.name()));
                let expected =
                    GoldenTally::from_json(&std::fs::read_to_string(&path).expect("fixture"))
                        .expect("parse fixture");
                assert_eq!(
                    captured.fields,
                    expected.fields,
                    "{}/{}/{}: diverges from golden fixture",
                    scenario.name(),
                    driver.name(),
                    policy.name()
                );
            }
        }
    }
}

/// The `sort_policy auto` heuristic: when a window's deposits genuinely
/// share tally cells (a dense collision core on a coarse mesh), the
/// deposits-per-distinct-cell measurement must *sustain* the clustered
/// flush — well beyond the periodic probe floor — and the decisions,
/// recorded in the `clustered_flushes` meter, must be identical for any
/// worker count. On the streaming problem (no deposits at all in the
/// near-vacuum) the heuristic must hold fire entirely.
#[test]
fn auto_sort_policy_decides_per_window_and_stays_bitwise() {
    let seed = 29;
    // Scatter physics on a coarse mesh: each window's ~150 deposits land
    // in a handful of cells every round, so clustering genuinely pays.
    let dense_run = |workers: usize, sort: SortPolicy| {
        let mut problem = TestCase::Scatter.build(ProblemScale::tiny(), seed);
        problem.mesh = neutral_mesh::StructuredMesh2D::uniform(16, 16, 1.0, 1.0, 1.0e3);
        problem.transport.tally_strategy = TallyStrategy::Replicated;
        problem.transport.sort_policy = sort;
        Simulation::new(problem).run(DriverKind::OverEvents.options(workers))
    };
    let auto = dense_run(2, SortPolicy::Auto);
    let off = dense_run(2, SortPolicy::Off);
    let rounds = auto.kernel_timings.expect("OE reports timings").rounds;
    assert!(
        auto.counters.clustered_flushes > 2 * rounds,
        "auto must sustain clustering on the dense core (got {} over {rounds} rounds \
         — the probe floor alone is ~1 per round)",
        auto.counters.clustered_flushes
    );
    // ...while computing bitwise the same physics as Off.
    assert_eq!(
        physics_counters(auto.counters),
        physics_counters(off.counters)
    );
    assert!(auto
        .tally
        .iter()
        .zip(&off.tally)
        .all(|(a, b)| a.to_bits() == b.to_bits()));
    // Decisions are per-window state, so the meter is worker-count
    // invariant like everything else.
    for workers in [1usize, 7] {
        let r = dense_run(workers, SortPolicy::Auto);
        assert_eq!(
            r.counters.clustered_flushes, auto.counters.clustered_flushes,
            "{workers} workers: auto decisions must not depend on workers"
        );
    }
    // The streaming problem's deposits never share cells (every history
    // is off in its own corner of the vacuum), so the measurement must
    // keep rejecting clustering: only the periodic probes fire, bounded
    // by the probe cadence (≈ windows × rounds / interval ≈ rounds).
    let sparse = run_with(
        TestCase::Stream,
        seed,
        DriverKind::OverEvents,
        2,
        SortPolicy::Auto,
        LookupStrategy::Hinted,
    );
    let sparse_rounds = sparse.kernel_timings.expect("OE reports timings").rounds;
    assert!(
        sparse.counters.clustered_flushes <= sparse_rounds,
        "auto must hold fire on the streaming problem beyond the probe floor \
         (got {} clustered over {sparse_rounds} rounds)",
        sparse.counters.clustered_flushes
    );
}

/// Banded lane blocks through the grid backends: the run-detection fast
/// path must not change a single bit of the census tally, while honestly
/// reporting no more search work than the unsorted block.
#[test]
fn run_detection_reduces_search_work_without_moving_bits() {
    let seed = 37;
    for lookup in [LookupStrategy::Unionized, LookupStrategy::Hashed] {
        let off = run_with(
            TestCase::Scatter,
            seed,
            DriverKind::OverEvents,
            2,
            SortPolicy::Off,
            lookup,
        );
        let banded = run_with(
            TestCase::Scatter,
            seed,
            DriverKind::OverEvents,
            2,
            SortPolicy::ByEnergyBand,
            lookup,
        );
        assert!(
            banded
                .tally
                .iter()
                .zip(&off.tally)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "{lookup:?}: banded lanes moved tally bits"
        );
        assert_eq!(
            physics_counters(banded.counters),
            physics_counters(off.counters),
            "{lookup:?}"
        );
        assert!(
            banded.counters.cs_search_steps <= off.counters.cs_search_steps,
            "{lookup:?}: banding must never add search work ({} vs {})",
            banded.counters.cs_search_steps,
            off.counters.cs_search_steps
        );
    }
}
