//! Golden-tally fixtures: tiny flat-JSON snapshots of census tallies and
//! counters, locked bitwise via an FNV-1a hash over the merged tally's
//! `f64` bit patterns.
//!
//! Fixtures are generated with the **replicated** tally strategy — the
//! deterministic canonical path — so a snapshot taken at any worker count
//! matches a run at any other worker count bit for bit (see
//! `neutral_mesh::accum` and `DESIGN.md` §11). Regenerate with
//!
//! ```sh
//! NEUTRAL_BLESS=1 cargo test -p neutral-integration --test golden_tallies
//! ```
//!
//! The environment has no serde, so the format is a hand-rolled flat JSON
//! object (string and integer values only; `f64`s are stored as hex bit
//! patterns, which is what "bitwise regression lock" means in practice).

use neutral_core::prelude::*;
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Everything a golden fixture records about one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoldenTally {
    /// Flat key → value map; values are stored stringly but written with
    /// JSON types (numbers unquoted, strings quoted).
    pub fields: BTreeMap<String, String>,
}

/// FNV-1a 64-bit over a byte stream — the tally fingerprint.
#[must_use]
pub fn fnv1a64(bytes: impl Iterator<Item = u8>) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Hash a merged tally mesh: every cell's `f64` bit pattern, in cell
/// order. Bitwise-equal meshes — and only those — collide.
#[must_use]
pub fn tally_hash(tally: &[f64]) -> u64 {
    fnv1a64(tally.iter().flat_map(|v| v.to_bits().to_le_bytes()))
}

impl GoldenTally {
    /// Capture a run report into fixture fields.
    #[must_use]
    pub fn capture(config: &str, driver: &str, seed: u64, report: &RunReport) -> Self {
        let c = &report.counters;
        let mut f = BTreeMap::new();
        let mut put = |k: &str, v: String| {
            f.insert(k.to_owned(), v);
        };
        put("config", format!("\"{config}\""));
        put("driver", format!("\"{driver}\""));
        put("strategy", "\"replicated\"".to_owned());
        put("seed", seed.to_string());
        put("collisions", c.collisions.to_string());
        put("facets", c.facets.to_string());
        put("census", c.census.to_string());
        put("absorptions", c.absorptions.to_string());
        put("scatters", c.scatters.to_string());
        put("reflections", c.reflections.to_string());
        put("deaths", c.deaths.to_string());
        put("stuck", c.stuck.to_string());
        put("tally_flushes", c.tally_flushes.to_string());
        put("cs_lookups", c.cs_lookups.to_string());
        put("material_switches", c.material_switches.to_string());
        put("alive", report.alive.to_string());
        put(
            "lost_energy_bits",
            format!("\"{:#018x}\"", c.lost_energy_ev.to_bits()),
        );
        put(
            "census_energy_bits",
            format!("\"{:#018x}\"", c.census_energy_ev.to_bits()),
        );
        put("tally_cells", report.tally.len().to_string());
        put(
            "tally_nonzero",
            report
                .tally
                .iter()
                .filter(|&&v| v != 0.0)
                .count()
                .to_string(),
        );
        put(
            "tally_total_ev",
            format!("\"{:.6e}\"", report.tally_total()),
        );
        put(
            "tally_total_bits",
            format!("\"{:#018x}\"", report.tally_total().to_bits()),
        );
        put(
            "tally_hash",
            format!("\"{:#018x}\"", tally_hash(&report.tally)),
        );
        Self { fields: f }
    }

    /// Serialise as pretty flat JSON (sorted keys, one per line).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let mut first = true;
        for (k, v) in &self.fields {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!("  \"{k}\": {v}"));
        }
        out.push_str("\n}\n");
        out
    }

    /// Parse the flat JSON produced by [`Self::to_json`] (forgiving about
    /// whitespace, intolerant of nesting — fixtures are flat by design).
    pub fn from_json(text: &str) -> Result<Self, String> {
        let body = text
            .trim()
            .strip_prefix('{')
            .and_then(|s| s.strip_suffix('}'))
            .ok_or("fixture is not a JSON object")?;
        let mut fields = BTreeMap::new();
        for part in split_top_level(body) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (k, v) = part
                .split_once(':')
                .ok_or_else(|| format!("bad fixture entry `{part}`"))?;
            let key = k
                .trim()
                .strip_prefix('"')
                .and_then(|s| s.strip_suffix('"'))
                .ok_or_else(|| format!("bad fixture key `{k}`"))?;
            fields.insert(key.to_owned(), v.trim().to_owned());
        }
        Ok(Self { fields })
    }

    /// A field's raw value with any string quotes stripped.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        self.fields.get(key).map(|v| v.trim_matches('"'))
    }

    /// A `0x...` bit-pattern field decoded to `u64`.
    #[must_use]
    pub fn get_bits(&self, key: &str) -> Option<u64> {
        let raw = self.get(key)?.strip_prefix("0x")?;
        u64::from_str_radix(raw, 16).ok()
    }
}

/// Split `a: 1, b: "x,y"` on commas outside quotes.
fn split_top_level(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth_quote = false;
    let mut start = 0;
    for (i, ch) in s.char_indices() {
        match ch {
            '"' => depth_quote = !depth_quote,
            ',' if !depth_quote => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&s[start..]);
    parts
}

/// Directory of the committed fixtures (`tests/golden/`).
#[must_use]
pub fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("golden")
}

/// Whether the suite should regenerate fixtures instead of comparing.
#[must_use]
pub fn blessing() -> bool {
    std::env::var("NEUTRAL_BLESS").is_ok_and(|v| !v.is_empty() && v != "0")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vector() {
        // FNV-1a("a") from the reference implementation.
        assert_eq!(fnv1a64("a".bytes()), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn json_round_trip() {
        let mut fields = BTreeMap::new();
        fields.insert("config".to_owned(), "\"csp\"".to_owned());
        fields.insert("collisions".to_owned(), "42".to_owned());
        fields.insert("tally_hash".to_owned(), "\"0x00000000deadbeef\"".to_owned());
        let g = GoldenTally { fields };
        let back = GoldenTally::from_json(&g.to_json()).unwrap();
        assert_eq!(g, back);
        assert_eq!(back.get("config"), Some("csp"));
        assert_eq!(back.get_bits("tally_hash"), Some(0xdead_beef));
    }

    #[test]
    fn hash_is_bit_sensitive() {
        let a = vec![1.0, 2.0, 0.0];
        let mut b = a.clone();
        assert_eq!(tally_hash(&a), tally_hash(&b));
        b[2] = -0.0; // same value, different bits
        assert_ne!(tally_hash(&a), tally_hash(&b));
    }
}
