//! Support library for the `neutral-integration` test package.
//!
//! The actual integration tests live in `tests/tests/*.rs`; this crate
//! only provides shared fixtures.

use neutral_core::prelude::*;

/// Standard tiny-scale fixture used across the integration suite.
pub fn tiny(case: TestCase, seed: u64) -> Simulation {
    Simulation::new(case.build(ProblemScale::tiny(), seed))
}

/// Relative difference |a-b| / max(|a|, floor).
pub fn rel_diff(a: f64, b: f64) -> f64 {
    (a - b).abs() / a.abs().max(1e-30)
}
