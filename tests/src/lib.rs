//! Support library for the `neutral-integration` test package.
//!
//! The actual integration tests live in `tests/tests/*.rs`; this crate
//! provides shared fixtures. The deterministic property-test harness
//! ([`Gen`], [`for_cases`]) and the driver-family/physics-comparison
//! vocabulary ([`DriverKind`], [`physics_counters`], [`rel_diff`]) now
//! live in [`neutral_core::fuzz`] — the generative fuzzer is built on
//! them — and are re-exported here so the suites keep one import path.

use neutral_core::prelude::*;

pub mod golden;

pub use neutral_core::fuzz::{for_cases, physics_counters, rel_diff, DriverKind, Gen};

/// Standard tiny-scale fixture used across the integration suite.
pub fn tiny(case: TestCase, seed: u64) -> Simulation {
    Simulation::new(case.build(ProblemScale::tiny(), seed))
}

/// Build a tiny-scale simulation with an explicit tally strategy.
pub fn tiny_with_tally(case: TestCase, seed: u64, strategy: TallyStrategy) -> Simulation {
    let mut problem = case.build(ProblemScale::tiny(), seed);
    problem.transport.tally_strategy = strategy;
    Simulation::new(problem)
}

/// The committed multi-timestep golden configs (fixture names
/// `<case>_t<steps>`, seeds fixed forever): ≥ 2 timesteps so the
/// between-timestep machinery — persistent transport state,
/// census-boundary regrouping — actually executes. Captured by the
/// golden suite under `RegroupPolicy::Off`; the regroup suite proves
/// every other policy reproduces them byte-identically.
pub const MULTISTEP_CONFIGS: [(TestCase, usize, u64); 2] =
    [(TestCase::Csp, 3, 41), (TestCase::Scatter, 2, 43)];

/// Build a tiny-scale, multi-timestep simulation with an explicit tally
/// strategy and regroup policy — the fixture shape of the regroup suite
/// (≥ 2 timesteps so the between-timestep regroup stage and the
/// persistent transport state actually execute).
pub fn tiny_multistep(
    case: TestCase,
    timesteps: usize,
    seed: u64,
    strategy: TallyStrategy,
    regroup: RegroupPolicy,
) -> Simulation {
    let mut problem = case.build(ProblemScale::tiny(), seed);
    problem.n_timesteps = timesteps;
    problem.transport.tally_strategy = strategy;
    problem.transport.regroup_policy = regroup;
    Simulation::new(problem)
}

/// Build a tiny-scale catalogue scenario with an explicit tally strategy.
pub fn tiny_scenario_with_tally(
    scenario: Scenario,
    seed: u64,
    strategy: TallyStrategy,
) -> Simulation {
    let mut problem = scenario.build(ProblemScale::tiny(), seed);
    problem.transport.tally_strategy = strategy;
    Simulation::new(problem)
}

/// Worker counts exercised by the multi-thread suites: always {1, 2, 7},
/// plus whatever `NEUTRAL_TEST_THREADS` adds (the CI multi-thread job
/// sets it to the runner's core count).
#[must_use]
pub fn test_thread_counts() -> Vec<usize> {
    let mut counts = vec![1, 2, 7];
    if let Some(n) = std::env::var("NEUTRAL_TEST_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
    {
        if n > 0 && !counts.contains(&n) {
            counts.push(n);
        }
    }
    counts
}
