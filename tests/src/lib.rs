//! Support library for the `neutral-integration` test package.
//!
//! The actual integration tests live in `tests/tests/*.rs`; this crate
//! provides shared fixtures plus [`Gen`], a tiny deterministic random
//! generator driving the hand-rolled property tests (the environment has
//! no crates.io access, so `proptest` is replaced by this counter-based
//! harness — shrinking is traded for perfectly reproducible cases).

use neutral_core::prelude::*;
use neutral_rng::{CounterStream, Threefry2x64};

/// Standard tiny-scale fixture used across the integration suite.
pub fn tiny(case: TestCase, seed: u64) -> Simulation {
    Simulation::new(case.build(ProblemScale::tiny(), seed))
}

/// Relative difference |a-b| / max(|a|, floor).
pub fn rel_diff(a: f64, b: f64) -> f64 {
    (a - b).abs() / a.abs().max(1e-30)
}

/// Deterministic random-input generator for property tests, backed by the
/// workspace's own counter-based RNG. A failing case is reproduced by its
/// case index alone.
pub struct Gen {
    rng: Threefry2x64,
    counter: u64,
}

impl Gen {
    /// One generator per property case; `seed` is the case index.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            rng: Threefry2x64::new([seed, 0x9e37_79b9_7f4a_7c15]),
            counter: 0,
        }
    }

    /// Uniform in `[0, 1)`.
    pub fn f64_unit(&mut self) -> f64 {
        let mut stream = CounterStream::new(&self.rng, 0);
        stream.next_f64(&mut self.counter)
    }

    /// Uniform in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64_unit()
    }

    /// Log-uniform in `[lo, hi)` (both positive).
    pub fn log_uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo * (hi / lo).powf(self.f64_unit())
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi);
        lo + (self.f64_unit() * (hi - lo) as f64) as usize
    }

    /// Uniform `u64` over the full range.
    pub fn u64_any(&mut self) -> u64 {
        (self.f64_unit() * 2.0f64.powi(32)) as u64
            ^ ((self.f64_unit() * 2.0f64.powi(32)) as u64) << 32
    }
}

/// Run `body` over `cases` deterministic generator instances, labelling
/// panics with the failing case index.
pub fn for_cases(cases: u64, mut body: impl FnMut(&mut Gen)) {
    for case in 0..cases {
        let mut g = Gen::new(case);
        // Any panic inside `body` reports `case` via the unwind message of
        // the assert that fired; print the index for quick reproduction.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut g)));
        if let Err(e) = result {
            panic!("property failed at case {case}: {}", panic_message(&e));
        }
    }
}

fn panic_message(e: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}
