//! Support library for the `neutral-integration` test package.
//!
//! The actual integration tests live in `tests/tests/*.rs`; this crate
//! provides shared fixtures plus [`Gen`], a tiny deterministic random
//! generator driving the hand-rolled property tests (the environment has
//! no crates.io access, so `proptest` is replaced by this counter-based
//! harness — shrinking is traded for perfectly reproducible cases).

use neutral_core::prelude::*;
use neutral_rng::{CounterStream, Threefry2x64};

pub mod golden;

/// Standard tiny-scale fixture used across the integration suite.
pub fn tiny(case: TestCase, seed: u64) -> Simulation {
    Simulation::new(case.build(ProblemScale::tiny(), seed))
}

/// Build a tiny-scale simulation with an explicit tally strategy.
pub fn tiny_with_tally(case: TestCase, seed: u64, strategy: TallyStrategy) -> Simulation {
    let mut problem = case.build(ProblemScale::tiny(), seed);
    problem.transport.tally_strategy = strategy;
    Simulation::new(problem)
}

/// The committed multi-timestep golden configs (fixture names
/// `<case>_t<steps>`, seeds fixed forever): ≥ 2 timesteps so the
/// between-timestep machinery — persistent transport state,
/// census-boundary regrouping — actually executes. Captured by the
/// golden suite under `RegroupPolicy::Off`; the regroup suite proves
/// every other policy reproduces them byte-identically.
pub const MULTISTEP_CONFIGS: [(TestCase, usize, u64); 2] =
    [(TestCase::Csp, 3, 41), (TestCase::Scatter, 2, 43)];

/// Counters with the work/decision meters masked out: reducing search
/// work (`cs_search_steps`) and choosing when to cluster the flush
/// (`clustered_flushes`) are exactly what the sort/regroup stages are
/// for — they move between policies without any physics change, so the
/// policy-equality contracts exclude them.
#[must_use]
pub fn physics_counters(mut c: EventCounters) -> EventCounters {
    c.cs_search_steps = 0;
    c.clustered_flushes = 0;
    c
}

/// Build a tiny-scale, multi-timestep simulation with an explicit tally
/// strategy and regroup policy — the fixture shape of the regroup suite
/// (≥ 2 timesteps so the between-timestep regroup stage and the
/// persistent transport state actually execute).
pub fn tiny_multistep(
    case: TestCase,
    timesteps: usize,
    seed: u64,
    strategy: TallyStrategy,
    regroup: RegroupPolicy,
) -> Simulation {
    let mut problem = case.build(ProblemScale::tiny(), seed);
    problem.n_timesteps = timesteps;
    problem.transport.tally_strategy = strategy;
    problem.transport.regroup_policy = regroup;
    Simulation::new(problem)
}

/// Build a tiny-scale catalogue scenario with an explicit tally strategy.
pub fn tiny_scenario_with_tally(
    scenario: Scenario,
    seed: u64,
    strategy: TallyStrategy,
) -> Simulation {
    let mut problem = scenario.build(ProblemScale::tiny(), seed);
    problem.transport.tally_strategy = strategy;
    Simulation::new(problem)
}

/// Worker counts exercised by the multi-thread suites: always {1, 2, 7},
/// plus whatever `NEUTRAL_TEST_THREADS` adds (the CI multi-thread job
/// sets it to the runner's core count).
#[must_use]
pub fn test_thread_counts() -> Vec<usize> {
    let mut counts = vec![1, 2, 7];
    if let Some(n) = std::env::var("NEUTRAL_TEST_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
    {
        if n > 0 && !counts.contains(&n) {
            counts.push(n);
        }
    }
    counts
}

/// The four driver families of the golden/equivalence suites, with run
/// options parameterised by worker count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DriverKind {
    /// Sequential history loop (Over Particles, AoS, one worker).
    History,
    /// Parallel Over Particles (AoS, explicit scheduler).
    OverParticles,
    /// Breadth-first Over Events.
    OverEvents,
    /// Over Particles on the SoA layout.
    Soa,
}

impl DriverKind {
    /// All four, in golden-fixture order.
    pub const ALL: [DriverKind; 4] = [
        DriverKind::History,
        DriverKind::OverParticles,
        DriverKind::OverEvents,
        DriverKind::Soa,
    ];

    /// Stable name used in fixture files.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DriverKind::History => "history",
            DriverKind::OverParticles => "over_particles",
            DriverKind::OverEvents => "over_events",
            DriverKind::Soa => "soa",
        }
    }

    /// Run options driving this family on `workers` workers. `History`
    /// ignores the worker count (it is the one-worker baseline).
    #[must_use]
    pub fn options(self, workers: usize) -> RunOptions {
        let scheduled = Execution::Scheduled {
            threads: workers,
            schedule: Schedule::Dynamic { chunk: 16 },
        };
        match self {
            DriverKind::History => RunOptions {
                execution: Execution::Sequential,
                ..Default::default()
            },
            DriverKind::OverParticles => RunOptions {
                execution: scheduled,
                ..Default::default()
            },
            DriverKind::OverEvents => RunOptions {
                scheme: Scheme::OverEvents,
                execution: scheduled,
                ..Default::default()
            },
            DriverKind::Soa => RunOptions {
                layout: Layout::Soa,
                execution: scheduled,
                ..Default::default()
            },
        }
    }
}

/// Relative difference |a-b| / max(|a|, floor).
pub fn rel_diff(a: f64, b: f64) -> f64 {
    (a - b).abs() / a.abs().max(1e-30)
}

/// Deterministic random-input generator for property tests, backed by the
/// workspace's own counter-based RNG. A failing case is reproduced by its
/// case index alone.
pub struct Gen {
    rng: Threefry2x64,
    counter: u64,
}

impl Gen {
    /// One generator per property case; `seed` is the case index.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            rng: Threefry2x64::new([seed, 0x9e37_79b9_7f4a_7c15]),
            counter: 0,
        }
    }

    /// Uniform in `[0, 1)`.
    pub fn f64_unit(&mut self) -> f64 {
        let mut stream = CounterStream::new(&self.rng, 0);
        stream.next_f64(&mut self.counter)
    }

    /// Uniform in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64_unit()
    }

    /// Log-uniform in `[lo, hi)` (both positive).
    pub fn log_uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo * (hi / lo).powf(self.f64_unit())
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi);
        lo + (self.f64_unit() * (hi - lo) as f64) as usize
    }

    /// Uniform `u64` over the full range.
    pub fn u64_any(&mut self) -> u64 {
        (self.f64_unit() * 2.0f64.powi(32)) as u64
            ^ ((self.f64_unit() * 2.0f64.powi(32)) as u64) << 32
    }
}

/// Run `body` over `cases` deterministic generator instances, labelling
/// panics with the failing case index.
pub fn for_cases(cases: u64, mut body: impl FnMut(&mut Gen)) {
    for case in 0..cases {
        let mut g = Gen::new(case);
        // Any panic inside `body` reports `case` via the unwind message of
        // the assert that fired; print the index for quick reproduction.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut g)));
        if let Err(e) = result {
            panic!("property failed at case {case}: {}", panic_message(&e));
        }
    }
}

fn panic_message(e: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}
