//! A minimal stand-in for `crossbeam::scope`, backed by
//! `std::thread::scope` (the build environment has no crates.io access).
//!
//! Semantics differ from real crossbeam in one benign way: a panicking
//! child thread propagates its panic when the scope exits instead of
//! surfacing as `Err`, so the `Ok` returned here is unconditional. Callers
//! that `.expect(...)` the result behave identically either way.

use std::any::Any;

/// Scope handle passed to the closure of [`scope`].
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. The closure receives a placeholder argument
    /// (crossbeam passes the scope itself; every call site ignores it).
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(()) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        self.inner.spawn(move || f(()))
    }
}

/// Create a scope for spawning threads that may borrow from the caller.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_share_borrows() {
        let data = [1u64, 2, 3, 4];
        let total = std::sync::atomic::AtomicU64::new(0);
        super::scope(|scope| {
            for chunk in data.chunks(2) {
                let total = &total;
                scope.spawn(move |_| {
                    total.fetch_add(
                        chunk.iter().sum::<u64>(),
                        std::sync::atomic::Ordering::Relaxed,
                    );
                });
            }
        })
        .expect("worker thread panicked");
        assert_eq!(total.load(std::sync::atomic::Ordering::Relaxed), 10);
    }
}
