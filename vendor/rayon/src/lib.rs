//! A minimal, dependency-free stand-in for the subset of the `rayon` API
//! this workspace uses, backed by `std::thread::scope`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the few third-party surfaces it needs. This is *not* a
//! work-stealing deque: every terminal operation splits its index space
//! into `current_num_threads()` contiguous ranges and runs one OS thread
//! per range. That preserves rayon's semantics (disjoint mutable access,
//! fold/reduce accumulator shape, real parallel execution) for the
//! data-parallel patterns the transport drivers use, at the cost of
//! work-stealing load balance. Swap back to the real crate by deleting
//! `vendor/` and restoring the crates.io dependency when networked.

use std::cell::Cell;
use std::marker::PhantomData;
use std::mem::ManuallyDrop;

thread_local! {
    /// Per-thread pool-size override (0 = none). Thread-local rather than
    /// process-global so concurrent `ThreadPool::install` calls (e.g.
    /// parallel test runners) cannot cross-contaminate each other.
    static POOL_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Number of worker threads terminals will use (the installed pool size
/// on this thread, or the machine's available parallelism).
pub fn current_num_threads() -> usize {
    let n = POOL_THREADS.with(Cell::get);
    if n > 0 {
        n
    } else {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    }
}

/// Error type of [`ThreadPoolBuilder::build`] (never produced here).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = match self.num_threads {
            Some(0) | None => {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            }
            Some(n) => n,
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A "pool": a thread-count override installed for the duration of a
/// closure (workers themselves are spawned per terminal operation).
pub struct ThreadPool {
    num_threads: usize,
}

struct PoolGuard(usize);

impl Drop for PoolGuard {
    fn drop(&mut self) {
        POOL_THREADS.with(|c| c.set(self.0));
    }
}

impl ThreadPool {
    /// Run `f` with this pool's thread count installed on the calling
    /// thread (terminals split work where they are invoked, so the
    /// caller-thread override is what they observe).
    pub fn install<T: Send, F: FnOnce() -> T + Send>(&self, f: F) -> T {
        let _guard = PoolGuard(POOL_THREADS.with(|c| c.replace(self.num_threads)));
        f()
    }

    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Index-addressed production of a parallel iterator's items.
///
/// # Safety
/// Implementations must tolerate `par_get` being called concurrently from
/// multiple threads, provided each index in `0..par_len()` is fetched at
/// most once overall.
pub unsafe trait ParAccess: Send + Sync + Sized {
    type Item: Send;
    fn par_len(&self) -> usize;
    /// # Safety
    /// Each index may be fetched at most once across all threads.
    unsafe fn par_get(&self, i: usize) -> Self::Item;
}

/// Split `0..p.par_len()` into per-thread contiguous ranges, run `work`
/// over each range on scoped threads and collect the per-range results.
fn run_parts<P: ParAccess, A: Send, W>(p: &P, work: W) -> Vec<A>
where
    W: Fn(usize, usize) -> A + Sync,
{
    let n = p.par_len();
    if n == 0 {
        return Vec::new();
    }
    let threads = current_num_threads().clamp(1, n);
    if threads == 1 {
        return vec![work(0, n)];
    }
    let per = n.div_ceil(threads);
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(threads);
        for t in 0..threads {
            let (lo, hi) = (t * per, ((t + 1) * per).min(n));
            if lo >= hi {
                break;
            }
            let work = &work;
            handles.push(s.spawn(move || work(lo, hi)));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

/// The combinator surface shared by every parallel iterator.
pub trait ParallelIterator: ParAccess {
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    fn zip<Z>(self, other: Z) -> Zip<Self, Z::Iter>
    where
        Z: IntoParallelIterator,
    {
        Zip {
            a: self,
            b: other.into_par_iter(),
        }
    }

    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        run_parts(&self, |lo, hi| {
            for i in lo..hi {
                // SAFETY: ranges are disjoint, each index fetched once.
                f(unsafe { self.par_get(i) });
            }
        });
    }

    fn fold<A, ID, F>(self, identity: ID, fold_op: F) -> Fold<Self, ID, F>
    where
        A: Send,
        ID: Fn() -> A + Sync + Send,
        F: Fn(A, Self::Item) -> A + Sync + Send,
    {
        Fold {
            base: self,
            identity,
            fold_op,
        }
    }

    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync + Send,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync + Send,
    {
        let parts = run_parts(&self, |lo, hi| {
            let mut acc = identity();
            for i in lo..hi {
                // SAFETY: disjoint ranges.
                acc = op(acc, unsafe { self.par_get(i) });
            }
            acc
        });
        parts.into_iter().fold(identity(), op)
    }

    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
    {
        let parts = run_parts(&self, |lo, hi| {
            // SAFETY: disjoint ranges.
            (lo..hi).map(|i| unsafe { self.par_get(i) }).sum::<S>()
        });
        parts.into_iter().sum()
    }
}

impl<P: ParAccess> ParallelIterator for P {}

/// Pending fold: holds the per-range accumulator recipe until `reduce`.
pub struct Fold<P, ID, F> {
    base: P,
    identity: ID,
    fold_op: F,
}

impl<P, A, ID, F> Fold<P, ID, F>
where
    P: ParAccess,
    A: Send,
    ID: Fn() -> A + Sync + Send,
    F: Fn(A, P::Item) -> A + Sync + Send,
{
    pub fn reduce<ID2, OP>(self, identity: ID2, op: OP) -> A
    where
        ID2: Fn() -> A + Sync + Send,
        OP: Fn(A, A) -> A + Sync + Send,
    {
        let parts = run_parts(&self.base, |lo, hi| {
            let mut acc = (self.identity)();
            for i in lo..hi {
                // SAFETY: disjoint ranges.
                acc = (self.fold_op)(acc, unsafe { self.base.par_get(i) });
            }
            acc
        });
        parts.into_iter().fold(identity(), op)
    }
}

/// `(index, item)` adapter.
pub struct Enumerate<P> {
    base: P,
}

unsafe impl<P: ParAccess> ParAccess for Enumerate<P> {
    type Item = (usize, P::Item);

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    unsafe fn par_get(&self, i: usize) -> Self::Item {
        (i, self.base.par_get(i))
    }
}

/// Mapping adapter.
pub struct Map<P, F> {
    base: P,
    f: F,
}

unsafe impl<P, R, F> ParAccess for Map<P, F>
where
    P: ParAccess,
    R: Send,
    F: Fn(P::Item) -> R + Sync + Send,
{
    type Item = R;

    fn par_len(&self) -> usize {
        self.base.par_len()
    }

    unsafe fn par_get(&self, i: usize) -> R {
        (self.f)(self.base.par_get(i))
    }
}

/// Lock-step pairing adapter (length = shorter side).
pub struct Zip<A, B> {
    a: A,
    b: B,
}

unsafe impl<A: ParAccess, B: ParAccess> ParAccess for Zip<A, B> {
    type Item = (A::Item, B::Item);

    fn par_len(&self) -> usize {
        self.a.par_len().min(self.b.par_len())
    }

    unsafe fn par_get(&self, i: usize) -> Self::Item {
        (self.a.par_get(i), self.b.par_get(i))
    }
}

/// Shared-slice parallel iterator.
pub struct ParIter<'a, T> {
    slice: &'a [T],
}

unsafe impl<'a, T: Sync> ParAccess for ParIter<'a, T> {
    type Item = &'a T;

    fn par_len(&self) -> usize {
        self.slice.len()
    }

    unsafe fn par_get(&self, i: usize) -> &'a T {
        self.slice.get_unchecked(i)
    }
}

/// Mutable-slice parallel iterator (disjoint indices, shared pointer).
pub struct ParIterMut<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

unsafe impl<T: Send> Send for ParIterMut<'_, T> {}
unsafe impl<T: Send> Sync for ParIterMut<'_, T> {}

unsafe impl<'a, T: Send> ParAccess for ParIterMut<'a, T> {
    type Item = &'a mut T;

    fn par_len(&self) -> usize {
        self.len
    }

    unsafe fn par_get(&self, i: usize) -> &'a mut T {
        &mut *self.ptr.add(i)
    }
}

/// Mutable chunked view of a slice.
pub struct ParChunksMut<'a, T> {
    ptr: *mut T,
    len: usize,
    chunk: usize,
    _marker: PhantomData<&'a mut [T]>,
}

unsafe impl<T: Send> Send for ParChunksMut<'_, T> {}
unsafe impl<T: Send> Sync for ParChunksMut<'_, T> {}

unsafe impl<'a, T: Send> ParAccess for ParChunksMut<'a, T> {
    type Item = &'a mut [T];

    fn par_len(&self) -> usize {
        self.len.div_ceil(self.chunk)
    }

    unsafe fn par_get(&self, i: usize) -> &'a mut [T] {
        let lo = i * self.chunk;
        let hi = (lo + self.chunk).min(self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(lo), hi - lo)
    }
}

/// Owned-vector parallel iterator: items are moved out index-wise.
pub struct IntoParVec<T> {
    items: Vec<ManuallyDrop<T>>,
}

unsafe impl<T: Send> Sync for IntoParVec<T> {}

unsafe impl<T: Send> ParAccess for IntoParVec<T> {
    type Item = T;

    fn par_len(&self) -> usize {
        self.items.len()
    }

    unsafe fn par_get(&self, i: usize) -> T {
        // SAFETY: the driver fetches each index at most once, so this
        // moves each element out exactly once. Elements not fetched (only
        // possible if a worker panicked) are leaked, never double-dropped.
        ManuallyDrop::into_inner(std::ptr::read(self.items.get_unchecked(i)))
    }
}

/// Conversion into a parallel iterator (`vec.into_par_iter()`, tuples of
/// iterators, pass-through for existing iterators).
pub trait IntoParallelIterator {
    type Item: Send;
    type Iter: ParAccess<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = IntoParVec<T>;

    fn into_par_iter(self) -> IntoParVec<T> {
        IntoParVec {
            items: self.into_iter().map(ManuallyDrop::new).collect(),
        }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Iter = ParIter<'a, T>;

    fn into_par_iter(self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    type Iter = ParIter<'a, T>;

    fn into_par_iter(self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

impl<A: IntoParallelIterator, B: IntoParallelIterator> IntoParallelIterator for (A, B) {
    type Item = (A::Item, B::Item);
    type Iter = Zip<A::Iter, B::Iter>;

    fn into_par_iter(self) -> Self::Iter {
        Zip {
            a: self.0.into_par_iter(),
            b: self.1.into_par_iter(),
        }
    }
}

impl<P: ParAccess> IntoParallelIterator for P {
    type Item = P::Item;
    type Iter = P;

    fn into_par_iter(self) -> P {
        self
    }
}

/// `par_iter` on shared slices.
pub trait ParallelSlice<T: Sync> {
    fn par_iter(&self) -> ParIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<'_, T> {
        ParIter { slice: self }
    }
}

/// `par_iter_mut` / `par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;
    fn par_chunks_mut(&mut self, chunk: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
        ParIterMut {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            _marker: PhantomData,
        }
    }

    fn par_chunks_mut(&mut self, chunk: usize) -> ParChunksMut<'_, T> {
        assert!(chunk > 0, "chunk size must be positive");
        ParChunksMut {
            ptr: self.as_mut_ptr(),
            len: self.len(),
            chunk,
            _marker: PhantomData,
        }
    }
}

pub mod prelude {
    pub use crate::{
        IntoParallelIterator, ParAccess, ParallelIterator, ParallelSlice, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn chunks_fold_reduce() {
        let mut v: Vec<u64> = (0..10_000).collect();
        let total = v
            .par_chunks_mut(37)
            .fold(|| 0u64, |acc, c| acc + c.iter().sum::<u64>())
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 9_999 * 10_000 / 2);
    }

    #[test]
    fn iter_mut_enumerate_for_each() {
        let mut v = vec![0usize; 5_000];
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i));
    }

    #[test]
    fn zip_map_sum() {
        let a = vec![1.0f64; 1_000];
        let b = vec![2.0f64; 1_000];
        let dot: f64 = a.par_iter().zip(&b).map(|(x, y)| x * y).sum();
        assert_eq!(dot, 2_000.0);
    }

    #[test]
    fn tuple_multizip() {
        let mut a = vec![0.0f64; 100];
        let mut b = vec![0.0f64; 100];
        (a.par_iter_mut(), b.par_iter_mut())
            .into_par_iter()
            .enumerate()
            .for_each(|(i, (x, y))| {
                *x = i as f64;
                *y = 2.0 * i as f64;
            });
        assert_eq!(a[99], 99.0);
        assert_eq!(b[99], 198.0);
    }

    #[test]
    fn vec_into_par_map_reduce() {
        let v: Vec<u64> = (0..1_000).collect();
        let total = v.into_par_iter().map(|x| x * 2).reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 999 * 1_000);
    }

    #[test]
    fn pool_install_overrides_thread_count() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        let n = pool.install(crate::current_num_threads);
        assert_eq!(n, 3);
    }
}
