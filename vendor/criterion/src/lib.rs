//! A minimal stand-in for the `criterion` benchmark API used by this
//! workspace (the build environment has no crates.io access).
//!
//! It measures honestly but simply: each benchmark is warmed up, then
//! timed over `sample_size` samples whose batch size is auto-calibrated so
//! a sample lasts roughly `measurement_time / sample_size`. The median
//! per-iteration time is reported, with throughput when configured. No
//! statistical regression machinery, no HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput declaration for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for parameterised benchmarks.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Top-level benchmark configuration.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && !a.is_empty());
        Self {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            filter,
        }
    }
}

impl Criterion {
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(&id, |b| f(b));
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(&id.id, |b| f(b, input));
        self
    }

    pub fn finish(self) {}

    fn run_one(&self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.parent.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            sample_size: self.sample_size.unwrap_or(self.parent.sample_size),
            measurement_time: self.parent.measurement_time,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&full, self.throughput);
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    samples_ns: Vec<f64>,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and batch calibration: find how many iterations fit in
        // one sample slot.
        let slot = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let mut batch = 1u64;
        let per_iter = loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed().as_secs_f64();
            if dt > slot.min(0.05) || batch > 1 << 30 {
                break dt / batch as f64;
            }
            batch *= 2;
        };
        let batch = ((slot / per_iter.max(1e-12)) as u64).clamp(1, 1 << 32);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples_ns
                .push(t0.elapsed().as_secs_f64() * 1.0e9 / batch as f64);
        }
    }

    fn report(&mut self, id: &str, throughput: Option<Throughput>) {
        if self.samples_ns.is_empty() {
            println!("{id:<48} (no samples)");
            return;
        }
        self.samples_ns.sort_by(f64::total_cmp);
        let median = self.samples_ns[self.samples_ns.len() / 2];
        let lo = self.samples_ns[self.samples_ns.len() / 20];
        let hi = self.samples_ns[self.samples_ns.len() - 1 - self.samples_ns.len() / 20];
        let rate = match throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>12.3e} elem/s", n as f64 * 1.0e9 / median)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:>12.3e} B/s", n as f64 * 1.0e9 / median)
            }
            None => String::new(),
        };
        println!("{id:<48} time: [{lo:>11.2} ns {median:>11.2} ns {hi:>11.2} ns]{rate}");
    }
}

/// Declare a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declare the benchmark binary's `main`, mirroring criterion's macro.
///
/// `cargo test` runs `harness = false` bench binaries with `--test`; real
/// criterion switches to a smoke-test mode there, this stand-in simply
/// exits successfully without measuring.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}
