//! Minimal std-only HTTP/1.1 server (and test client) for the
//! `neutral_serve` solve service.
//!
//! The build environment has no crates.io access, so instead of a hyper
//! stack this vendors the smallest HTTP surface the workspace needs:
//!
//! - a blocking accept loop over [`std::net::TcpListener`] with one
//!   thread per connection, a bounded concurrent-connection cap
//!   (over-cap peers get an immediate `503` with a `Retry-After`
//!   hint instead of an unbounded thread pile-up), and HTTP/1.1
//!   keep-alive,
//! - request parsing (request line, headers, `Content-Length` bodies)
//!   with hard size limits so a malformed peer cannot balloon memory,
//! - a tiny response builder, and
//! - a one-shot [`client`] used by the end-to-end tests and CI smoke.
//!
//! Shutdown drains cleanly: the read half of every open connection is
//! shut down so idle keep-alive threads wake immediately, while
//! in-flight responses still complete before their threads are joined.
//!
//! It deliberately does not implement chunked transfer encoding, TLS,
//! pipelining, or HTTP/2 — the solve API needs none of them.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Maximum accepted request head (request line + headers) in bytes.
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Maximum accepted request body in bytes.
const MAX_BODY_BYTES: usize = 1024 * 1024;
/// Per-connection socket read timeout; a stalled peer frees its thread.
const READ_TIMEOUT: Duration = Duration::from_secs(30);
/// Default cap on concurrently served connections.
const DEFAULT_MAX_CONNECTIONS: usize = 64;
/// `Retry-After` hint (seconds) sent with over-capacity 503 rejects.
const RETRY_AFTER_SECS: u64 = 1;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, `DELETE`, ...).
    pub method: String,
    /// Decoded path component, without the query string.
    pub path: String,
    /// Raw query string (no leading `?`), empty when absent.
    pub query: String,
    /// Header `(name, value)` pairs; names are lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (case-insensitive), if present.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Value of query parameter `key` (`k=v` pairs split on `&`).
    #[must_use]
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == key).then_some(v)
        })
    }

    /// Body interpreted as UTF-8 (lossy).
    #[must_use]
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// An HTTP response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (the reason phrase is derived from it).
    pub status: u16,
    /// Extra header `(name, value)` pairs.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A `text/plain` response.
    #[must_use]
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            headers: vec![("content-type".into(), "text/plain; charset=utf-8".into())],
            body: body.into().into_bytes(),
        }
    }

    /// An `application/json` response.
    #[must_use]
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            headers: vec![("content-type".into(), "application/json".into())],
            body: body.into().into_bytes(),
        }
    }

    /// Append a header.
    #[must_use]
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            201 => "Created",
            202 => "Accepted",
            204 => "No Content",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    fn write_to(&self, out: &mut impl Write) -> io::Result<()> {
        write!(out, "HTTP/1.1 {} {}\r\n", self.status, self.reason())?;
        write!(out, "content-length: {}\r\n", self.body.len())?;
        for (name, value) in &self.headers {
            write!(out, "{name}: {value}\r\n")?;
        }
        out.write_all(b"\r\n")?;
        out.write_all(&self.body)?;
        out.flush()
    }
}

/// Why reading the next request off a connection stopped.
enum ReadOutcome {
    /// A complete request was parsed.
    Request(Box<Request>),
    /// Clean end of stream before a request line (keep-alive close).
    Closed,
    /// Malformed input; the given response was the reject reason.
    Bad(Response),
}

fn read_request(reader: &mut BufReader<TcpStream>) -> io::Result<ReadOutcome> {
    let mut line = String::new();
    // Request line. EOF here is a normal keep-alive termination.
    match read_head_line(reader, &mut line)? {
        None => return Ok(ReadOutcome::Bad(head_too_large())),
        Some(0) => return Ok(ReadOutcome::Closed),
        Some(_) => {}
    }
    let mut parts = line.split_whitespace();
    let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
        return Ok(ReadOutcome::Bad(Response::text(
            400,
            "malformed request line\n",
        )));
    };
    let (path, query) = target.split_once('?').unwrap_or((target, ""));
    let mut req = Request {
        method: method.to_ascii_uppercase(),
        path: path.to_string(),
        query: query.to_string(),
        headers: Vec::new(),
        body: Vec::new(),
    };
    // Headers.
    let mut head_bytes = line.len();
    loop {
        line.clear();
        let Some(n) = read_head_line(reader, &mut line)? else {
            return Ok(ReadOutcome::Bad(head_too_large()));
        };
        if n == 0 || line.is_empty() {
            break;
        }
        head_bytes += n;
        if head_bytes > MAX_HEAD_BYTES {
            return Ok(ReadOutcome::Bad(head_too_large()));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Ok(ReadOutcome::Bad(Response::text(
                400,
                "malformed header line\n",
            )));
        };
        req.headers
            .push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    // Body. Without chunked-encoding support a body-bearing method has
    // no other way to frame its payload, so `Content-Length` is
    // mandatory there — silently treating the body as empty would make
    // the stray payload bytes parse as the next pipelined request.
    if let Some(len) = req.header("content-length") {
        let Ok(len) = len.parse::<usize>() else {
            return Ok(ReadOutcome::Bad(Response::text(
                400,
                "bad content-length\n",
            )));
        };
        if len > MAX_BODY_BYTES {
            return Ok(ReadOutcome::Bad(Response::text(
                413,
                "request body too large\n",
            )));
        }
        let mut body = vec![0u8; len];
        reader.read_exact(&mut body)?;
        req.body = body;
    } else if matches!(req.method.as_str(), "POST" | "PUT") {
        return Ok(ReadOutcome::Bad(Response::text(
            400,
            "missing content-length\n",
        )));
    }
    Ok(ReadOutcome::Request(Box::new(req)))
}

fn head_too_large() -> Response {
    Response::text(413, "request head too large\n")
}

/// Read one CRLF-terminated head line into `buf` (trimmed); returns the
/// raw byte count (0 at EOF), or `None` when a single line exceeds
/// [`MAX_HEAD_BYTES`] — the caller answers that with a 413 instead of
/// dropping the connection without a response.
fn read_head_line(
    reader: &mut BufReader<TcpStream>,
    buf: &mut String,
) -> io::Result<Option<usize>> {
    buf.clear();
    let mut raw = Vec::with_capacity(80);
    let n = reader
        .by_ref()
        .take(MAX_HEAD_BYTES as u64 + 1)
        .read_until(b'\n', &mut raw)?;
    if n > MAX_HEAD_BYTES {
        return Ok(None);
    }
    while raw.last().is_some_and(|b| *b == b'\n' || *b == b'\r') {
        raw.pop();
    }
    buf.push_str(&String::from_utf8_lossy(&raw));
    Ok(Some(n))
}

/// The request handler signature: pure function of the parsed request.
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

/// A bound, not-yet-serving HTTP server.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    max_connections: usize,
}

/// The open-connection table: admission counting for the concurrency
/// cap, plus a read-half kill switch for prompt shutdown drains.
#[derive(Default)]
struct ConnTable {
    next_id: AtomicU64,
    streams: Mutex<HashMap<u64, TcpStream>>,
}

impl ConnTable {
    fn active(&self) -> usize {
        self.streams.lock().expect("conn table lock").len()
    }

    /// Register a served connection; the stored clone shares the fd, so
    /// shutting its read half down wakes the serving thread's read.
    fn insert(&self, stream: &TcpStream) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            self.streams
                .lock()
                .expect("conn table lock")
                .insert(id, clone);
        }
        id
    }

    fn remove(&self, id: u64) {
        self.streams.lock().expect("conn table lock").remove(&id);
    }

    /// Shut down the read half of every open connection. Idle
    /// keep-alive reads return EOF immediately; in-flight responses
    /// still go out on the intact write half.
    fn shutdown_reads(&self) {
        for stream in self.streams.lock().expect("conn table lock").values() {
            let _ = stream.shutdown(std::net::Shutdown::Read);
        }
    }
}

/// Answer an over-capacity peer with `503` + `Retry-After` and close.
/// The pending request is drained first (with a short timeout bounding
/// the accept thread's stall) so the close is a clean FIN — dropping
/// unread request bytes would turn it into an RST that can race the
/// 503 response past the peer.
fn reject_over_capacity(stream: TcpStream) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(250)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let _ = read_request(&mut reader);
    Response::text(503, "server at connection capacity, retry shortly\n")
        .with_header("retry-after", &RETRY_AFTER_SECS.to_string())
        .write_to(&mut writer)
}

impl Server {
    /// Bind to `addr` (use port 0 for an ephemeral test port).
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Self {
            listener,
            addr,
            max_connections: DEFAULT_MAX_CONNECTIONS,
        })
    }

    /// Cap the number of concurrently served connections (minimum 1);
    /// peers past the cap are answered `503` + `Retry-After` and
    /// closed rather than queued behind an unbounded thread spawn.
    #[must_use]
    pub fn max_connections(mut self, cap: usize) -> Self {
        self.max_connections = cap.max(1);
        self
    }

    /// The bound socket address.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serve connections in background threads until the returned
    /// handle's [`ServerHandle::shutdown`] is called.
    pub fn spawn(self, handler: Handler) -> ServerHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let open = Arc::new(ConnTable::default());
        let addr = self.addr;
        let accept_stop = Arc::clone(&stop);
        let accept_open = Arc::clone(&open);
        let max_connections = self.max_connections;
        let accept = std::thread::spawn(move || {
            let mut conns: Vec<JoinHandle<()>> = Vec::new();
            for stream in self.listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                conns.retain(|h| !h.is_finished());
                if accept_open.active() >= max_connections {
                    // Reject on the accept thread: cheap, and it keeps
                    // the thread count bounded by the cap.
                    let _ = reject_over_capacity(stream);
                    continue;
                }
                let token = accept_open.insert(&stream);
                let handler = Arc::clone(&handler);
                let conn_stop = Arc::clone(&accept_stop);
                let conn_open = Arc::clone(&accept_open);
                conns.push(std::thread::spawn(move || {
                    let _ = serve_connection(stream, &handler, &conn_stop);
                    conn_open.remove(token);
                }));
            }
            for conn in conns {
                let _ = conn.join();
            }
        });
        ServerHandle {
            addr,
            stop,
            open,
            accept: Some(accept),
        }
    }
}

fn serve_connection(stream: TcpStream, handler: &Handler, stop: &AtomicBool) -> io::Result<()> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        match read_request(&mut reader)? {
            ReadOutcome::Closed => return Ok(()),
            ReadOutcome::Bad(resp) => {
                resp.write_to(&mut writer)?;
                return Ok(());
            }
            ReadOutcome::Request(req) => {
                let close = req
                    .header("connection")
                    .is_some_and(|c| c.eq_ignore_ascii_case("close"));
                let resp = handler(&req);
                resp.write_to(&mut writer)?;
                if close {
                    return Ok(());
                }
            }
        }
    }
}

/// Handle to a running [`Server`]; shuts the server down when told to
/// (and on drop).
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    open: Arc<ConnTable>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server is listening on.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, wake the accept loop, drain open connections,
    /// and join all threads. Idle keep-alive connections are woken by
    /// shutting their read halves down (EOF, not an error), so the
    /// drain is prompt; responses already in flight still complete on
    /// the intact write halves.
    pub fn shutdown(&mut self) {
        if let Some(accept) = self.accept.take() {
            self.stop.store(true, Ordering::SeqCst);
            // Unblock the accept() call with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
            self.open.shutdown_reads();
            let _ = accept.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A one-shot HTTP client (each call opens a fresh `Connection: close`
/// connection) — enough for the e2e tests and CI smoke checks.
pub mod client {
    use super::*;

    /// A parsed client-side response.
    #[derive(Debug)]
    pub struct ClientResponse {
        /// Status code from the status line.
        pub status: u16,
        /// Lowercased header `(name, value)` pairs.
        pub headers: Vec<(String, String)>,
        /// Response body bytes.
        pub body: Vec<u8>,
    }

    impl ClientResponse {
        /// First value of header `name` (case-insensitive).
        #[must_use]
        pub fn header(&self, name: &str) -> Option<&str> {
            let name = name.to_ascii_lowercase();
            self.headers
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| v.as_str())
        }

        /// Body as UTF-8 (lossy).
        #[must_use]
        pub fn body_text(&self) -> String {
            String::from_utf8_lossy(&self.body).into_owned()
        }
    }

    /// Issue `method path` against `addr` with an optional body.
    pub fn request(
        addr: SocketAddr,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> io::Result<ClientResponse> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(READ_TIMEOUT))?;
        let body = body.unwrap_or(&[]);
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nhost: {addr}\r\nconnection: close\r\ncontent-length: {}\r\n\r\n",
            body.len()
        )?;
        stream.write_all(body)?;
        stream.flush()?;
        let mut raw = Vec::new();
        let mut reader = BufReader::new(stream);
        reader.read_to_end(&mut raw)?;
        parse_response(&raw)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed HTTP response"))
    }

    fn parse_response(raw: &[u8]) -> Option<ClientResponse> {
        let head_end = raw.windows(4).position(|w| w == b"\r\n\r\n")?;
        let head = std::str::from_utf8(&raw[..head_end]).ok()?;
        let mut lines = head.split("\r\n");
        let status_line = lines.next()?;
        let status: u16 = status_line.split_whitespace().nth(1)?.parse().ok()?;
        let headers = lines
            .filter_map(|l| l.split_once(':'))
            .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
            .collect();
        Some(ClientResponse {
            status,
            headers,
            body: raw[head_end + 4..].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_server() -> ServerHandle {
        let server = Server::bind("127.0.0.1:0").unwrap();
        server.spawn(Arc::new(|req: &Request| {
            match (req.method.as_str(), req.path.as_str()) {
                ("GET", "/ping") => Response::text(200, "pong\n"),
                ("POST", "/echo") => Response::text(200, req.body_text()),
                ("GET", "/q") => {
                    Response::text(200, req.query_param("k").unwrap_or("missing").to_string())
                }
                _ => Response::text(404, "not found\n"),
            }
        }))
    }

    #[test]
    fn round_trip_get_post_and_404() {
        let mut server = echo_server();
        let addr = server.addr();
        let r = client::request(addr, "GET", "/ping", None).unwrap();
        assert_eq!((r.status, r.body_text().as_str()), (200, "pong\n"));
        let r = client::request(addr, "POST", "/echo", Some(b"payload bytes")).unwrap();
        assert_eq!((r.status, r.body_text().as_str()), (200, "payload bytes"));
        let r = client::request(addr, "GET", "/nope", None).unwrap();
        assert_eq!(r.status, 404);
        let r = client::request(addr, "GET", "/q?k=v42", None).unwrap();
        assert_eq!(r.body_text(), "v42");
        server.shutdown();
    }

    #[test]
    fn oversized_body_rejected() {
        let mut server = echo_server();
        let addr = server.addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "POST /echo HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
            MAX_BODY_BYTES + 1
        )
        .unwrap();
        stream.flush().unwrap();
        let mut raw = Vec::new();
        BufReader::new(stream).read_to_end(&mut raw).unwrap();
        let text = String::from_utf8_lossy(&raw);
        assert!(text.starts_with("HTTP/1.1 413"), "got: {text}");
        server.shutdown();
    }

    /// Send `raw` over one fresh connection and return everything the
    /// server wrote back before closing.
    fn raw_exchange(addr: SocketAddr, raw: &[u8]) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(raw).unwrap();
        stream.flush().unwrap();
        let mut out = Vec::new();
        BufReader::new(stream).read_to_end(&mut out).unwrap();
        String::from_utf8_lossy(&out).into_owned()
    }

    #[test]
    fn oversized_single_head_line_rejected_with_413() {
        let mut server = echo_server();
        let addr = server.addr();
        // One request line longer than the whole head budget: the
        // server must answer 413, not drop the connection silently.
        // Sized to exactly what the server reads before rejecting, so
        // the close is a clean FIN (no unread bytes → no RST racing
        // the response past the client).
        let mut raw = Vec::from(&b"GET /"[..]);
        raw.resize(MAX_HEAD_BYTES + 1, b'a');
        let text = raw_exchange(addr, &raw);
        assert!(text.starts_with("HTTP/1.1 413"), "got: {text}");
        server.shutdown();
    }

    #[test]
    fn oversized_cumulative_headers_rejected_with_413() {
        let mut server = echo_server();
        let addr = server.addr();
        // Each header line is small, but together they blow the
        // budget. 256 lines of exactly 64 raw bytes cross the 16 KiB
        // limit on the last line sent, so the server consumes every
        // byte before answering (clean FIN, as above).
        let mut raw = Vec::from(&b"GET /ping HTTP/1.1\r\n"[..]);
        for i in 0..256 {
            let line = format!("x-pad-{i:04}: {:050}\r\n", 0);
            assert_eq!(line.len(), 64);
            raw.extend_from_slice(line.as_bytes());
        }
        let text = raw_exchange(addr, &raw);
        assert!(text.starts_with("HTTP/1.1 413"), "got: {text}");
        server.shutdown();
    }

    #[test]
    fn malformed_request_line_rejected_with_400() {
        let mut server = echo_server();
        let addr = server.addr();
        let text = raw_exchange(addr, b"GARBAGE\r\n\r\n");
        assert!(text.starts_with("HTTP/1.1 400"), "got: {text}");
        assert!(text.contains("malformed request line"), "got: {text}");
        server.shutdown();
    }

    #[test]
    fn post_without_content_length_rejected_with_400() {
        let mut server = echo_server();
        let addr = server.addr();
        let text = raw_exchange(addr, b"POST /echo HTTP/1.1\r\n\r\n");
        assert!(text.starts_with("HTTP/1.1 400"), "got: {text}");
        assert!(text.contains("missing content-length"), "got: {text}");
        server.shutdown();
    }

    #[test]
    fn connection_reused_after_handler_4xx() {
        let mut server = echo_server();
        let addr = server.addr();
        // A handler-level 404 must not poison the keep-alive
        // connection: the second request on the same stream still gets
        // served.
        let text = raw_exchange(
            addr,
            b"GET /nope HTTP/1.1\r\n\r\n\
              GET /ping HTTP/1.1\r\nconnection: close\r\n\r\n",
        );
        assert!(text.starts_with("HTTP/1.1 404"), "got: {text}");
        assert!(text.contains("HTTP/1.1 200"), "got: {text}");
        assert!(text.contains("pong"), "got: {text}");
        server.shutdown();
    }

    /// Open a keep-alive connection, issue `GET /ping`, and block until
    /// the full response has arrived (the connection stays open, so the
    /// serving thread stays counted against the cap).
    fn open_pinned_connection(addr: SocketAddr) -> TcpStream {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(READ_TIMEOUT)).unwrap();
        stream.write_all(b"GET /ping HTTP/1.1\r\n\r\n").unwrap();
        stream.flush().unwrap();
        let mut seen = Vec::new();
        let mut buf = [0u8; 256];
        while !seen.windows(5).any(|w| w == b"pong\n") {
            let n = stream.read(&mut buf).unwrap();
            assert_ne!(n, 0, "server closed a keep-alive connection");
            seen.extend_from_slice(&buf[..n]);
        }
        stream
    }

    #[test]
    fn over_cap_connection_gets_503_with_retry_after() {
        let server = Server::bind("127.0.0.1:0").unwrap().max_connections(1);
        let mut server = server.spawn(Arc::new(|_req: &Request| Response::text(200, "pong\n")));
        let addr = server.addr();

        // The pinned connection occupies the single slot...
        let pinned = open_pinned_connection(addr);

        // ...so the next connection is turned away at the door.
        let r = client::request(addr, "GET", "/ping", None).unwrap();
        assert_eq!(r.status, 503, "expected over-capacity reject");
        assert_eq!(r.header("retry-after"), Some("1"));
        assert!(r.body_text().contains("capacity"), "{}", r.body_text());

        // Releasing the slot restores service (the accept loop prunes
        // the finished thread on the next accept, so poll briefly).
        drop(pinned);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let r = client::request(addr, "GET", "/ping", None).unwrap();
            if r.status == 200 {
                break;
            }
            assert_eq!(r.status, 503);
            assert!(
                std::time::Instant::now() < deadline,
                "cap never released after the pinned connection closed"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        server.shutdown();
    }

    #[test]
    fn shutdown_drains_idle_keepalive_connections_promptly() {
        let mut server = echo_server();
        let addr = server.addr();
        // An idle keep-alive connection parks its serving thread in a
        // blocking read; shutdown must wake and join it well before the
        // 30 s socket read timeout, without erroring the peer.
        let mut pinned = open_pinned_connection(addr);
        let t0 = std::time::Instant::now();
        server.shutdown();
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "shutdown took {:?}, drain is not prompt",
            t0.elapsed()
        );
        // The drained connection sees a clean close, not a reset.
        let mut rest = Vec::new();
        pinned.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty(), "unexpected trailing bytes: {rest:?}");
    }

    #[test]
    fn shutdown_joins_cleanly() {
        let mut server = echo_server();
        let addr = server.addr();
        assert_eq!(
            client::request(addr, "GET", "/ping", None).unwrap().status,
            200
        );
        server.shutdown();
        // Idempotent.
        server.shutdown();
    }
}
