//! Reactor shielding study: how much energy leaks through a shield slab?
//!
//! Shielding calculations are one of the classic applications of Monte
//! Carlo neutral particle transport (paper §III-A). This example drives
//! the scenario catalogue's `shielded_slab` workload (a true
//! multi-material problem: reference background, absorber slab) and
//! sweeps the slab thickness by overriding the scenario's region list —
//! the same declarative parameters a `neutral.params` file carries.
//!
//! ```sh
//! cargo run --release --example reactor_shield
//! ```

use neutral_core::prelude::*;
use neutral_mesh::Rect;

/// The catalogue scenario with the slab thickness (m) overridden.
///
/// `Scenario::params` returns the declarative parameter set, so the sweep
/// only has to repaint the slab region; materials (reference background,
/// absorber slab) and the wall source come from the catalogue entry.
fn shield_problem(thickness: f64, n_particles: usize, seed: u64) -> Problem {
    let mut params = Scenario::ShieldedSlab.params(ProblemScale::tiny(), seed);
    params.nx = 256;
    params.ny = 256;
    params.particles = n_particles;
    params.regions = vec![(Rect::new(0.4, 0.4 + thickness, 0.0, 1.0), 10.0, 1)];
    // Implicit capture keeps the energy bookkeeping exact in
    // expectation, which is what a dose estimate wants.
    params.collision_model = CollisionModel::ImplicitCapture;
    params.build()
}

fn main() {
    println!("shield-thickness sweep: energy deposited beyond the slab\n");
    println!(
        "  {:>12} {:>16} {:>16} {:>12} {:>10}",
        "slab (mm)", "behind slab (eV)", "in slab (eV)", "attenuation", "switches"
    );

    let n_particles = 20_000;
    let mut reference = None;
    for thickness_mm in [1.0f64, 10.0, 25.0, 50.0, 100.0] {
        let thickness = thickness_mm / 1000.0;
        let problem = shield_problem(thickness, n_particles, 7);
        let nx = problem.mesh.nx();
        let cell_w = problem.mesh.cell_dx();
        let report = Simulation::new(problem).run(RunOptions::default());

        // Energy deposited beyond the back face of the slab.
        let back_face_cell = ((0.4 + thickness) / cell_w).ceil() as usize;
        let mut behind = 0.0;
        let mut inside = 0.0;
        for (i, &v) in report.tally.iter().enumerate() {
            let ix = i % nx;
            if ix > back_face_cell {
                behind += v;
            } else if ix >= (0.4 / cell_w) as usize {
                inside += v;
            }
        }
        let reference = *reference.get_or_insert(behind.max(1e-30));
        let attenuation = if behind > 0.0 {
            format!("{:>11.1}x", reference / behind)
        } else {
            // Nothing made it through at this particle budget.
            format!("{:>12}", "total")
        };
        println!(
            "  {thickness_mm:>12.1} {behind:>16.3e} {inside:>16.3e} {attenuation} {:>10}",
            report.counters.material_switches,
        );
    }

    println!(
        "\nThicker shields absorb more in-slab and attenuate the transmitted\n\
         energy roughly exponentially — the deep-penetration regime that\n\
         motivates codes like COG (paper ref. [11]). Every slab entry/exit\n\
         is a material switch: the counter scales with the slab surface the\n\
         histories sample."
    );
}
