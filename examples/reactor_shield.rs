//! Reactor shielding study: how much energy leaks through a shield slab?
//!
//! Shielding calculations are one of the classic applications of Monte
//! Carlo neutral particle transport (paper §III-A). This example builds a
//! *custom* problem — not one of the paper's three test cases — with a
//! neutron source on the left and a dense shield slab in the middle, then
//! sweeps the slab thickness and reports the energy deposited beyond it.
//!
//! ```sh
//! cargo run --release --example reactor_shield
//! ```

use neutral_core::prelude::*;
use neutral_mesh::{Rect, StructuredMesh2D};
use neutral_xs::CrossSectionLibrary;

/// Build a shielding problem: vacuum-ish background, a vertical shield
/// slab of the given thickness (m) at x = 0.4, source at the left wall.
///
/// The slab density is chosen so one mean free path is ~3 mm with the
/// synthetic cross sections (sigma_t ~ 1.1e4 barn at 1 MeV): millimetre
/// slabs then attenuate by measurable factors rather than absorbing
/// everything outright.
fn shield_problem(thickness: f64, n_particles: usize, seed: u64) -> Problem {
    let n = 512;
    let mut mesh = StructuredMesh2D::uniform(n, n, 1.0, 1.0, 1.0e-3);
    mesh.set_region(Rect::new(0.4, 0.4 + thickness, 0.0, 1.0), 50.0);

    Problem {
        mesh,
        xs: CrossSectionLibrary::synthetic(30_000, seed ^ 0xc5_0dd),
        source: Rect::new(0.01, 0.05, 0.3, 0.7),
        n_particles,
        dt: 1.0e-7,
        n_timesteps: 1,
        seed,
        initial_energy_ev: 1.0e6,
        transport: TransportConfig {
            // Implicit capture keeps the energy bookkeeping exact in
            // expectation, which is what a dose estimate wants.
            collision_model: CollisionModel::ImplicitCapture,
            ..Default::default()
        },
    }
}

fn main() {
    println!("shield-thickness sweep: energy deposited beyond the slab\n");
    println!(
        "  {:>12} {:>16} {:>16} {:>12}",
        "slab (mm)", "behind slab (eV)", "in slab (eV)", "attenuation"
    );

    let n_particles = 20_000;
    let mut reference = None;
    for thickness_mm in [0.0f64, 2.0, 4.0, 8.0, 16.0] {
        let thickness = thickness_mm / 1000.0;
        let problem = shield_problem(thickness.max(1e-6), n_particles, 7);
        let nx = problem.mesh.nx();
        let cell_w = problem.mesh.cell_dx();
        let report = Simulation::new(problem).run(RunOptions::default());

        // Energy deposited beyond the back face of the slab.
        let back_face_cell = ((0.4 + thickness) / cell_w).ceil() as usize;
        let mut behind = 0.0;
        let mut inside = 0.0;
        for (i, &v) in report.tally.iter().enumerate() {
            let ix = i % nx;
            if ix > back_face_cell {
                behind += v;
            } else if ix >= (0.4 / cell_w) as usize {
                inside += v;
            }
        }
        let reference = *reference.get_or_insert(behind.max(1e-30));
        println!(
            "  {thickness_mm:>12.1} {behind:>16.3e} {inside:>16.3e} {:>11.1}x",
            reference / behind.max(1e-30)
        );
    }

    println!(
        "\nThicker shields absorb more in-slab and attenuate the transmitted\n\
         energy roughly exponentially — the deep-penetration regime that\n\
         motivates codes like COG (paper ref. [11])."
    );
}
