//! Scheme face-off: run the same problem under Over Particles and Over
//! Events and verify they compute *identical physics* — the property that
//! makes the paper's scheme comparison apples-to-apples.
//!
//! Both schemes consume the same per-particle counter-based RNG streams
//! (§IV-F), so every history follows the same trajectory; only the
//! execution order (and therefore performance) differs.
//!
//! ```sh
//! cargo run --release --example scheme_faceoff
//! ```

use neutral_core::prelude::*;

fn main() {
    let problem = TestCase::Csp.build(ProblemScale::small(), 99);
    let sim = Simulation::new(problem);

    let op = sim.run(RunOptions {
        scheme: Scheme::OverParticles,
        execution: Execution::Rayon,
        ..Default::default()
    });
    let oe = sim.run(RunOptions {
        scheme: Scheme::OverEvents,
        execution: Execution::Rayon,
        ..Default::default()
    });

    println!("Over Particles: {}", op.summary());
    println!("Over Events:    {}", oe.summary());

    // Identical physics...
    assert_eq!(op.counters.collisions, oe.counters.collisions);
    assert_eq!(op.counters.facets, oe.counters.facets);
    assert_eq!(op.counters.census, oe.counters.census);
    assert_eq!(op.counters.deaths, oe.counters.deaths);
    let (a, b) = (op.tally_total(), oe.tally_total());
    assert!(((a - b) / a).abs() < 1e-9, "tallies diverged: {a} vs {b}");
    println!(
        "\nphysics check: identical event counts, tallies agree to {:.1e} relative",
        ((a - b) / a).abs()
    );

    // ...different performance.
    println!(
        "\nwall-clock: OP {} s vs OE {} s -> OE/OP = {:.2}x (paper: >2x on every tested machine)",
        op.elapsed.as_secs_f64(),
        oe.elapsed.as_secs_f64(),
        oe.elapsed.as_secs_f64() / op.elapsed.as_secs_f64()
    );

    let t = oe.kernel_timings.expect("OE reports kernel timings");
    println!(
        "OE kernel breakdown over {} rounds: decide {:.2}s, collision {:.2}s, facet {:.2}s, tally {:.2}s ({:.0}% of kernel time), census {:.2}s",
        t.rounds,
        t.decide.as_secs_f64(),
        t.collision.as_secs_f64(),
        t.facet.as_secs_f64(),
        t.tally.as_secs_f64(),
        100.0 * t.tally_fraction(),
        t.census.as_secs_f64(),
    );
}
