//! Radiation dose mapping: the medical-physics use case from the paper's
//! introduction ("for medical sciences the algorithms can be used to
//! determine radiation dosages", §III-A).
//!
//! A collimated source irradiates a water-like phantom containing a
//! denser inclusion; the energy-deposition tally *is* the dose map. The
//! phantom is a genuine multi-material setup built on the scenario
//! subsystem's declarative parameters: a moderator phantom (tissue) with
//! a fuel-kind inclusion (the "tumour" — denser and far more absorbing),
//! in a near-vacuum surround. The example prints an ASCII isodose chart
//! and checks the statistical energy balance.
//!
//! ```sh
//! cargo run --release --example dose_map
//! ```

use neutral_core::params::ProblemParams;
use neutral_core::prelude::*;
use neutral_mesh::Rect;

fn main() {
    // Densities are scaled to the synthetic cross sections (sigma_t
    // ~ 1e4 barn at 1 MeV) so the phantom is a few mean free paths
    // across and the inclusion is locally optically thick.
    let params = ProblemParams {
        nx: 256,
        ny: 256,
        density: 1.0e-6,
        materials: vec![
            (
                1,
                MaterialSpec {
                    kind: MaterialKind::Moderator, // tissue
                    n_points: 30_000,
                    seed: 0xd05e,
                },
            ),
            (
                2,
                MaterialSpec {
                    kind: MaterialKind::Fuel, // absorbing inclusion
                    n_points: 30_000,
                    seed: 0xd05e ^ 0x70_4e0,
                },
            ),
        ],
        regions: vec![
            (Rect::new(0.30, 0.70, 0.30, 0.70), 1.5, 1),
            (Rect::new(0.50, 0.64, 0.44, 0.58), 15.0, 2),
        ],
        // Narrow source below the phantom, beaming upward-ish
        // (directions are isotropic; collimation comes from geometry).
        source: Rect::new(0.45, 0.55, 0.02, 0.06),
        particles: 30_000,
        seed: 2026,
        collision_model: CollisionModel::ImplicitCapture,
        ..ProblemParams::default()
    };
    let sim = Simulation::new(params.build());
    let report = sim.run(RunOptions::default());
    println!("{}", report.summary());
    println!(
        "material interfaces crossed: {}",
        report.counters.material_switches
    );

    // Energy accounting: with implicit capture the track-length estimator
    // matches the population energy loss in expectation.
    let balance = report.energy_balance();
    println!(
        "energy balance defect: {:+.2}% (statistical; ~0 in expectation)",
        100.0 * balance.relative_defect()
    );

    // ASCII isodose chart: 10 dose deciles on a coarse grid.
    let nx = sim.problem().mesh.nx();
    let ny = sim.problem().mesh.ny();
    let coarse = 32;
    let mut dose = vec![0.0f64; coarse * coarse];
    for (i, &v) in report.tally.iter().enumerate() {
        let (ix, iy) = (i % nx, i / nx);
        let (cx, cy) = (ix * coarse / nx, iy * coarse / ny);
        dose[cy * coarse + cx] += v;
    }
    let max = dose.iter().cloned().fold(0.0, f64::max);
    println!("\nisodose map (0-9 = dose deciles of log scale, '.' = none):");
    const RAMP: &[u8] = b"0123456789";
    for cy in (0..coarse).rev() {
        let mut line = String::from("  ");
        for cx in 0..coarse {
            let v = dose[cy * coarse + cx];
            if v <= 0.0 || v < max * 1e-4 {
                line.push('.');
            } else {
                // log scale over 4 decades of dynamic range.
                let rel = ((v / max).log10() / 4.0 + 1.0).clamp(0.0, 0.999);
                line.push(RAMP[(rel * 10.0) as usize] as char);
            }
        }
        println!("{line}");
    }
    println!(
        "\nThe beam deposits heavily at the phantom entry surface and inside\n\
         the absorbing inclusion — the build-up/attenuation structure a dose\n\
         planning calculation looks for."
    );
}
