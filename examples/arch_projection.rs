//! Architecture projection: measure a transport run on this machine, then
//! project it onto the paper's five evaluation machines with the
//! `neutral-perf` model — a miniature of Figure 14.
//!
//! ```sh
//! cargo run --release --example arch_projection
//! ```

use neutral_core::prelude::*;
use neutral_perf::arch;
use neutral_perf::model::{predict, KernelProfile, SchemeKind};

fn main() {
    // Measure at small scale...
    let scale = ProblemScale::small();
    let case = TestCase::Csp;
    let problem = case.build(scale, 11);
    let n_particles = problem.n_particles;
    let sim = Simulation::new(problem);
    let report = sim.run(RunOptions {
        execution: Execution::Sequential,
        ..Default::default()
    });
    println!("measured on this host: {}", report.summary());

    // ...extrapolate the event counts to the paper's full problem size...
    let profile =
        KernelProfile::from_counters(SchemeKind::OverParticles, &report.counters, n_particles, 0)
            .scaled(
                scale.particle_divisor as f64,
                4000.0 / scale.mesh_cells as f64,
            );
    println!(
        "paper-scale profile: {:.2e} events ({:.1} facets/history), {:.2e} atomic tallies\n",
        profile.events(),
        profile.facets / profile.n_particles,
        profile.tally_flushes
    );

    // ...and predict each machine.
    println!(
        "  {:<28} {:>9} {:>10} {:>10} {:>10} {:>11}",
        "architecture", "total (s)", "latency(s)", "compute(s)", "bw (s)", "conc. reqs"
    );
    for a in [
        &arch::BROADWELL_2S,
        &arch::KNL_7210_MCDRAM,
        &arch::KNL_7210_DRAM,
        &arch::POWER8_2S,
        &arch::K20X,
        &arch::P100,
    ] {
        let p = predict(&profile, a);
        println!(
            "  {:<28} {:>9.2} {:>10.2} {:>10.2} {:>10.2} {:>11.0}",
            a.name, p.total_s, p.latency_s, p.compute_s, p.bandwidth_s, p.concurrency
        );
    }

    println!(
        "\nThe latency column dominates everywhere — the paper's conclusion that\n\
         the algorithm is memory-latency bound — and the P100 wins on raw\n\
         concurrent-request capacity, not bandwidth or FLOPS."
    );
}
