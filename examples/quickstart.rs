//! Quickstart: build one of the paper's test problems, run the transport
//! solve, and inspect the results.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use neutral_core::prelude::*;

fn main() {
    // The paper's "center square problem" (csp): a low-density domain with
    // a dense square in the middle, particles born in the bottom-left
    // corner (§IV-B). `small()` scales the 4000^2 / 1e6-particle paper
    // configuration down to laptop size; `ProblemScale::paper()` runs the
    // full thing.
    let problem = TestCase::Csp.build(ProblemScale::small(), 42);
    println!(
        "mesh {}x{} cells, {} particles, dt = {:.1e} s",
        problem.mesh.nx(),
        problem.mesh.ny(),
        problem.n_particles,
        problem.dt
    );

    let sim = Simulation::new(problem);

    // Default options: Over-Particles scheme, AoS layout, Rayon threading,
    // shared atomic tally — the paper's fastest CPU configuration.
    let report = sim.run(RunOptions::default());

    println!("{}", report.summary());
    println!(
        "events: {} collisions ({} absorptions, {} scatters), {} facets ({} reflections), {} census",
        report.counters.collisions,
        report.counters.absorptions,
        report.counters.scatters,
        report.counters.facets,
        report.counters.reflections,
        report.counters.census,
    );
    println!(
        "per history: {:.1} facets, {:.2} collisions",
        report.counters.facets_per_history(),
        report.counters.collisions_per_history()
    );

    // Energy bookkeeping (exact in expectation under ImplicitCapture; a
    // response proxy under the default Analogue model — see DESIGN.md).
    let balance = report.energy_balance();
    println!(
        "energy: source {:.3e} eV, deposited {:.3e} eV, census residual {:.3e} eV, cutoff residual {:.3e} eV",
        balance.initial_ev,
        balance.deposited_ev,
        balance.census_residual_ev,
        balance.cutoff_residual_ev
    );

    // Where did the energy go? Coarse 8x8 summary of the deposition mesh.
    let nx = sim.problem().mesh.nx();
    let ny = sim.problem().mesh.ny();
    println!("\ndeposition map (log10 eV per coarse cell, '.' = empty):");
    let coarse = 8;
    for cy in (0..coarse).rev() {
        let mut line = String::from("  ");
        for cx in 0..coarse {
            let mut sum = 0.0;
            for iy in (cy * ny / coarse)..((cy + 1) * ny / coarse) {
                for ix in (cx * nx / coarse)..((cx + 1) * nx / coarse) {
                    sum += report.tally[iy * nx + ix];
                }
            }
            if sum > 0.0 {
                line.push_str(&format!("{:3.0}", sum.log10()));
            } else {
                line.push_str("  .");
            }
        }
        println!("{line}");
    }
}
