//! Distributions required by neutral particle transport.
//!
//! Everything here is a pure function of uniforms drawn from a
//! [`crate::CounterStream`], so the physics kernels stay deterministic and
//! scheme-independent.

use crate::{CbRng, CounterStream};

/// Sample an exponentially distributed number of mean-free-paths,
/// `-ln(u)` with `u ~ U(0,1]` — the distance (in mean-free-path units) to
/// the next collision (paper §IV-F).
#[inline]
pub fn exponential_mfp<R: CbRng>(stream: &mut CounterStream<'_, R>, counter: &mut u64) -> f64 {
    -stream.next_f64_open(counter).ln()
}

/// Sample a uniform value on `[lo, hi)`.
#[inline]
pub fn uniform_range<R: CbRng>(
    stream: &mut CounterStream<'_, R>,
    counter: &mut u64,
    lo: f64,
    hi: f64,
) -> f64 {
    lo + (hi - lo) * stream.next_f64(counter)
}

/// Sample an isotropic unit direction in the 2D plane (paper §IV-F:
/// "random numbers determine the initial particle locations and directions").
#[inline]
pub fn isotropic_direction<R: CbRng>(
    stream: &mut CounterStream<'_, R>,
    counter: &mut u64,
) -> (f64, f64) {
    let theta = 2.0 * std::f64::consts::PI * stream.next_f64(counter);
    let (s, c) = theta.sin_cos();
    (c, s)
}

/// Sample a cosine `μ ~ U(-1, 1)` — the centre-of-mass scattering angle
/// for isotropic elastic scattering.
#[inline]
pub fn scattering_cosine<R: CbRng>(stream: &mut CounterStream<'_, R>, counter: &mut u64) -> f64 {
    2.0 * stream.next_f64(counter) - 1.0
}

/// Sample a random sign (`+1.0` or `-1.0`) — used to pick the rotation
/// direction of the in-plane scattering angle.
#[inline]
pub fn random_sign<R: CbRng>(stream: &mut CounterStream<'_, R>, counter: &mut u64) -> f64 {
    if stream.next_u64(counter) & 1 == 0 {
        1.0
    } else {
        -1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Threefry2x64;

    fn stream_and_counter() -> (Threefry2x64, u64) {
        (Threefry2x64::new([99, 0]), 0)
    }

    #[test]
    fn exponential_is_positive_and_mean_one() {
        let (rng, mut c) = stream_and_counter();
        let mut s = CounterStream::new(&rng, 0);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = exponential_mfp(&mut s, &mut c);
            assert!(x > 0.0 && x.is_finite());
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn direction_is_unit() {
        let (rng, mut c) = stream_and_counter();
        let mut s = CounterStream::new(&rng, 1);
        for _ in 0..1000 {
            let (x, y) = isotropic_direction(&mut s, &mut c);
            let norm = x.hypot(y);
            assert!((norm - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn direction_covers_all_quadrants() {
        let (rng, mut c) = stream_and_counter();
        let mut s = CounterStream::new(&rng, 2);
        let mut quadrants = [false; 4];
        for _ in 0..1000 {
            let (x, y) = isotropic_direction(&mut s, &mut c);
            let q = usize::from(x < 0.0) | (usize::from(y < 0.0) << 1);
            quadrants[q] = true;
        }
        assert!(quadrants.iter().all(|&q| q), "{quadrants:?}");
    }

    #[test]
    fn cosine_bounds_and_mean() {
        let (rng, mut c) = stream_and_counter();
        let mut s = CounterStream::new(&rng, 3);
        let mut sum = 0.0;
        let n = 20_000;
        for _ in 0..n {
            let mu = scattering_cosine(&mut s, &mut c);
            assert!((-1.0..=1.0).contains(&mu));
            sum += mu;
        }
        assert!((sum / f64::from(n)).abs() < 0.02);
    }

    #[test]
    fn uniform_range_respects_bounds() {
        let (rng, mut c) = stream_and_counter();
        let mut s = CounterStream::new(&rng, 4);
        for _ in 0..1000 {
            let v = uniform_range(&mut s, &mut c, -3.0, 7.5);
            assert!((-3.0..7.5).contains(&v));
        }
    }

    #[test]
    fn signs_are_balanced() {
        let (rng, mut c) = stream_and_counter();
        let mut s = CounterStream::new(&rng, 5);
        let n = 10_000;
        let pos: u32 = (0..n)
            .map(|_| u32::from(random_sign(&mut s, &mut c) > 0.0))
            .sum();
        let frac = f64::from(pos) / f64::from(n);
        assert!((frac - 0.5).abs() < 0.03, "sign fraction {frac}");
    }
}
