//! Philox-4x32-10: a multiply-based counter PRF from the Random123 suite.
//!
//! Philox trades the ARX structure of Threefry for 32x32→64-bit multiplies,
//! which are cheap on GPUs. It is included as an alternative generator and
//! as a statistical cross-check: the transport results must be invariant
//! (within Monte Carlo error) under swapping the RNG family.

use crate::CbRng;

/// Round multipliers (Salmon et al., SC'11, §5.3).
const M0: u32 = 0xD251_1F53;
const M1: u32 = 0xCD9E_8D57;
/// Weyl sequence key increments: the golden ratio and sqrt(3)-1 in 0.32
/// fixed point — the same constants used by the Skein/Threefish family.
const W0: u32 = 0x9E37_79B9;
const W1: u32 = 0xBB67_AE85;
/// Random123's default round count for philox4x32.
const ROUNDS: usize = 10;

/// Philox-4x32-10 keyed counter-based generator.
///
/// The native shape is a 128-bit counter split into four 32-bit lanes and a
/// 64-bit key split into two lanes. The [`CbRng`] impl adapts the
/// `[u64; 2]` counter/block interface used across this crate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Philox4x32 {
    key: [u32; 2],
    key64: [u64; 2],
}

impl Philox4x32 {
    /// Create a generator. Only the low 64 bits of key material are used
    /// (Philox-4x32 has a 64-bit key); the full `[u64; 2]` is retained so
    /// [`CbRng::key`] round-trips.
    #[must_use]
    pub fn new(key: [u64; 2]) -> Self {
        // Fold both words into the 64-bit native key so that differing
        // high words still select different streams.
        let folded = key[0] ^ key[1].rotate_left(32);
        Self {
            key: [folded as u32, (folded >> 32) as u32],
            key64: key,
        }
    }

    /// One Philox round: two multiplies plus xors, lanes permuted.
    #[inline(always)]
    fn round(ctr: [u32; 4], key: [u32; 2]) -> [u32; 4] {
        let p0 = u64::from(M0) * u64::from(ctr[0]);
        let p1 = u64::from(M1) * u64::from(ctr[2]);
        let hi0 = (p0 >> 32) as u32;
        let lo0 = p0 as u32;
        let hi1 = (p1 >> 32) as u32;
        let lo1 = p1 as u32;
        [hi1 ^ ctr[1] ^ key[0], lo1, hi0 ^ ctr[3] ^ key[1], lo0]
    }

    /// The 10-round Philox-4x32 permutation.
    #[inline]
    #[must_use]
    pub fn permute(&self, counter: [u32; 4]) -> [u32; 4] {
        let mut ctr = counter;
        let mut key = self.key;
        for r in 0..ROUNDS {
            ctr = Self::round(ctr, key);
            if r + 1 < ROUNDS {
                key[0] = key[0].wrapping_add(W0);
                key[1] = key[1].wrapping_add(W1);
            }
        }
        ctr
    }
}

impl CbRng for Philox4x32 {
    #[inline]
    fn block(&self, counter: [u64; 2]) -> [u64; 2] {
        let ctr = [
            counter[0] as u32,
            (counter[0] >> 32) as u32,
            counter[1] as u32,
            (counter[1] >> 32) as u32,
        ];
        let out = self.permute(ctr);
        [
            u64::from(out[0]) | (u64::from(out[1]) << 32),
            u64::from(out[2]) | (u64::from(out[3]) << 32),
        ]
    }

    fn key(&self) -> [u64; 2] {
        self.key64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let rng = Philox4x32::new([5, 6]);
        assert_eq!(rng.block([7, 8]), rng.block([7, 8]));
    }

    #[test]
    fn counter_lanes_all_matter() {
        let rng = Philox4x32::new([0, 0]);
        let base = rng.permute([0, 0, 0, 0]);
        for lane in 0..4 {
            let mut c = [0u32; 4];
            c[lane] = 1;
            assert_ne!(base, rng.permute(c), "lane {lane} ignored");
        }
    }

    /// Known-answer test from the Random123 distribution for
    /// `philox4x32` with 10 rounds, zero key and zero counter:
    /// `6627e8d5 e169c58d bc57ac4c 9b00dbd8`.
    #[test]
    fn random123_known_answer_vector() {
        let rng = Philox4x32::new([0, 0]);
        let out = rng.permute([0, 0, 0, 0]);
        assert_eq!(out, [0x6627_e8d5, 0xe169_c58d, 0xbc57_ac4c, 0x9b00_dbd8]);
    }

    /// Self-golden regression vector for the 64-bit adapter path.
    #[test]
    fn golden_vector_stable() {
        let ones = Philox4x32::new([u64::MAX, u64::MAX]).block([u64::MAX, u64::MAX]);
        assert_eq!(ones, [0x26f7_33a8_3f9d_0c45, 0x22d2_ed02_4f9f_3099]);
    }

    #[test]
    fn key_high_word_selects_stream() {
        let a = Philox4x32::new([1, 0]).block([0, 0]);
        let b = Philox4x32::new([1, 1]).block([0, 0]);
        assert_ne!(a, b);
    }

    #[test]
    fn avalanche() {
        let rng = Philox4x32::new([0x1234_5678, 0x9abc_def0]);
        let mut total = 0u32;
        let trials = 256;
        for t in 0..trials {
            let base = [t as u64, (t * 97) as u64];
            let ref_out = rng.block(base);
            let flipped = rng.block([base[0], base[1] ^ (1 << (t % 64))]);
            total += (ref_out[0] ^ flipped[0]).count_ones();
            total += (ref_out[1] ^ flipped[1]).count_ones();
        }
        let mean = f64::from(total) / f64::from(trials);
        assert!(
            (mean - 64.0).abs() < 4.0,
            "avalanche mean {mean} not near 64"
        );
    }
}
