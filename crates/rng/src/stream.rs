//! Per-particle random number streams over a counter-based generator.
//!
//! A particle's stream is identified by `(simulation key, particle id)` and
//! positioned by the particle's own draw counter. The counter lives *in the
//! particle state*, not in the stream object, so that both parallelisation
//! schemes (Over Particles and Over Events) advance the same stream in the
//! same order and therefore reproduce identical histories.

use crate::{u64_to_f64_open, u64_to_f64_unit, CbRng};

/// A buffered view of one particle's random stream.
///
/// Each underlying PRF evaluation yields a 128-bit block = two `u64`s; the
/// stream hands them out one at a time and only re-invokes the PRF every
/// other draw. The draw counter is borrowed from the caller on every call
/// so that it can be persisted in particle storage.
#[derive(Clone, Copy, Debug)]
pub struct CounterStream<'a, R: CbRng> {
    rng: &'a R,
    stream_id: u64,
    buffer: [u64; 2],
    /// Index of the next unconsumed word in `buffer`; 2 = empty.
    cursor: u8,
    /// Counter value the buffer was generated from (for validity checks).
    buffered_at: u64,
}

impl<'a, R: CbRng> CounterStream<'a, R> {
    /// Open particle `stream_id`'s stream on generator `rng`.
    #[must_use]
    pub fn new(rng: &'a R, stream_id: u64) -> Self {
        Self {
            rng,
            stream_id,
            buffer: [0, 0],
            cursor: 2,
            buffered_at: u64::MAX,
        }
    }

    /// Draw the next 64 random bits, advancing `counter`.
    ///
    /// `counter` counts *draws*, not blocks: draw `2k` and `2k+1` come from
    /// block `k`. This makes the particle-persisted counter sufficient to
    /// resume the stream exactly, even mid-block.
    #[inline]
    pub fn next_u64(&mut self, counter: &mut u64) -> u64 {
        let (block_idx, word_idx) = draw_position(*counter);
        if self.cursor > word_idx || self.buffered_at != block_idx {
            self.buffer = self.rng.block([block_idx, self.stream_id]);
            self.buffered_at = block_idx;
        }
        self.cursor = word_idx + 1;
        *counter += 1;
        self.buffer[word_idx as usize]
    }

    /// Draw a uniform double on `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self, counter: &mut u64) -> f64 {
        u64_to_f64_unit(self.next_u64(counter))
    }

    /// Draw a uniform double on `(0, 1]` (safe to pass to `ln`).
    #[inline]
    pub fn next_f64_open(&mut self, counter: &mut u64) -> f64 {
        u64_to_f64_open(self.next_u64(counter))
    }

    /// The stream (particle) identifier.
    #[must_use]
    pub fn stream_id(&self) -> u64 {
        self.stream_id
    }
}

/// Decompose a persisted draw counter into its PRF position: the 128-bit
/// block index and the word within that block. This is the stream
/// position a checkpoint exports — draws `2k` and `2k+1` both live in
/// block `k`, so `(key, counter)` alone re-seeks a [`CounterStream`] to
/// the exact draw, even mid-block. The inverse is `block * 2 + word`.
#[must_use]
#[inline]
pub const fn draw_position(counter: u64) -> (u64, u8) {
    (counter / 2, (counter % 2) as u8)
}

/// Draw `n` uniforms on `[0,1)` from a fresh stream — convenience for
/// initialisation code and tests.
pub fn uniforms<R: CbRng>(rng: &R, stream_id: u64, counter: &mut u64, out: &mut [f64]) {
    let mut s = CounterStream::new(rng, stream_id);
    for v in out.iter_mut() {
        *v = s.next_f64(counter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Threefry2x64;

    #[test]
    fn resume_mid_block_is_exact() {
        let rng = Threefry2x64::new([11, 0]);
        // Draw four values in one go.
        let mut c = 0u64;
        let mut s = CounterStream::new(&rng, 3);
        let all: Vec<u64> = (0..4).map(|_| s.next_u64(&mut c)).collect();

        // Re-open the stream at counter = 1 (mid-block) and at 3.
        let mut c1 = 1u64;
        let mut s1 = CounterStream::new(&rng, 3);
        assert_eq!(s1.next_u64(&mut c1), all[1]);
        assert_eq!(s1.next_u64(&mut c1), all[2]);
        assert_eq!(s1.next_u64(&mut c1), all[3]);
    }

    /// The checkpoint contract: persisting `(stream_id, counter)` at any
    /// draw offset and re-opening a fresh stream from it continues the
    /// sequence bit-for-bit — the property particle-record serialization
    /// relies on to resume transport mid-history.
    #[test]
    fn exported_counter_resumes_any_offset_exactly() {
        let rng = Threefry2x64::new([99, 1]);
        let mut c = 0u64;
        let mut s = CounterStream::new(&rng, 7);
        let all: Vec<u64> = (0..12).map(|_| s.next_u64(&mut c)).collect();
        for cut in 0..=all.len() {
            // "Export" the counter at the cut, "import" into a new stream.
            let mut resumed = cut as u64;
            let (block, word) = draw_position(resumed);
            assert_eq!(block * 2 + u64::from(word), resumed, "position inverse");
            let mut s2 = CounterStream::new(&rng, 7);
            let tail: Vec<u64> = (cut..all.len())
                .map(|_| s2.next_u64(&mut resumed))
                .collect();
            assert_eq!(tail, all[cut..], "resume at draw {cut}");
            assert_eq!(resumed, all.len() as u64);
        }
    }

    #[test]
    fn streams_are_independent() {
        let rng = Threefry2x64::new([11, 0]);
        let mut ca = 0u64;
        let mut cb = 0u64;
        let mut a = CounterStream::new(&rng, 0);
        let mut b = CounterStream::new(&rng, 1);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64(&mut ca)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64(&mut cb)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn counter_advances_once_per_draw() {
        let rng = Threefry2x64::new([0, 0]);
        let mut c = 0u64;
        let mut s = CounterStream::new(&rng, 0);
        for expected in 1..=10 {
            s.next_u64(&mut c);
            assert_eq!(c, expected);
        }
    }

    #[test]
    fn uniforms_fills_range() {
        let rng = Threefry2x64::new([7, 0]);
        let mut c = 0;
        let mut buf = [0.0f64; 64];
        uniforms(&rng, 42, &mut c, &mut buf);
        assert!(buf.iter().all(|v| (0.0..1.0).contains(v)));
        assert_eq!(c, 64);
        // Not all equal (vanishingly unlikely for a working RNG).
        assert!(buf.windows(2).any(|w| w[0] != w[1]));
    }
}
