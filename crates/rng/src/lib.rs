//! Counter-based random number generation for Monte Carlo particle transport.
//!
//! The `neutral` mini-app (Martineau & McIntosh-Smith, CLUSTER 2017, §IV-F)
//! selects the *Random123* suite of counter-based RNGs (CBRNGs), in
//! particular the **Threefry** method, because CBRNGs are stateless and
//! deterministically map a `(key, counter)` pair to a block of random bits.
//! Storing a key/counter pair per particle gives:
//!
//! * **reproducibility** — the same seed produces the same particle
//!   histories regardless of thread count or parallelisation scheme;
//! * **parallelisability** — no shared generator state, no locking;
//! * **scheme equivalence** — the *Over Particles* and *Over Events*
//!   drivers consume the same per-particle stream in the same order, so
//!   they compute bit-identical physics trajectories (a key validation
//!   property of this reproduction).
//!
//! This crate implements from scratch:
//!
//! * [`Threefry2x64`] — the Threefry-2x64-20 block cipher PRF (the paper's
//!   generator),
//! * [`Philox4x32`] — the Philox-4x32-10 multiply-based PRF (an
//!   alternative CBRNG from the same suite, used for cross-checks),
//! * [`CounterStream`] — a buffered per-particle stream view over a CBRNG,
//! * [`dist`] — the distributions transport needs (uniform, exponential,
//!   isotropic directions, ranges).
//!
//! # Example
//!
//! ```
//! use neutral_rng::{Threefry2x64, CounterStream, CbRng};
//!
//! // One generator per simulation, keyed by the global seed.
//! let rng = Threefry2x64::new([42, 0]);
//!
//! // Each particle owns an independent stream selected by its id.
//! let particle_id = 7;
//! let mut counter = 0u64; // stored in the particle
//! let mut stream = CounterStream::new(&rng, particle_id);
//! let u = stream.next_f64(&mut counter);
//! assert!((0.0..1.0).contains(&u));
//!
//! // Replaying with the same key/counter reproduces the value exactly.
//! let mut counter2 = 0u64;
//! let mut stream2 = CounterStream::new(&rng, particle_id);
//! assert_eq!(u.to_bits(), stream2.next_f64(&mut counter2).to_bits());
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod dist;
mod philox;
mod stream;
mod threefry;

pub use philox::Philox4x32;
pub use stream::{draw_position, uniforms, CounterStream};
pub use threefry::Threefry2x64;

/// A counter-based random number generator: a keyed pseudo-random function
/// from a 128-bit counter to a 128-bit block.
///
/// Implementations must be *bijective* for a fixed key (both Threefry and
/// Philox are bijections, being keyed permutations), which guarantees that
/// distinct counters never produce colliding blocks.
pub trait CbRng: Send + Sync {
    /// Evaluate the PRF: map a counter block to a random block.
    fn block(&self, counter: [u64; 2]) -> [u64; 2];

    /// The key this generator was constructed with, as two 64-bit words.
    fn key(&self) -> [u64; 2];
}

/// Convert 64 random bits into a double uniform on `[0, 1)` with 53 bits of
/// precision (the standard "shift right 11, scale by 2^-53" construction).
#[inline(always)]
pub fn u64_to_f64_unit(bits: u64) -> f64 {
    const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
    (bits >> 11) as f64 * SCALE
}

/// Convert 64 random bits into a double uniform on `(0, 1]`.
///
/// Useful as the argument of `ln` when sampling exponentials: the result is
/// never zero, so `-ln(u)` is always finite.
#[inline(always)]
pub fn u64_to_f64_open(bits: u64) -> f64 {
    const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
    ((bits >> 11) + 1) as f64 * SCALE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_interval_bounds() {
        assert_eq!(u64_to_f64_unit(0), 0.0);
        assert!(u64_to_f64_unit(u64::MAX) < 1.0);
        assert!(u64_to_f64_open(0) > 0.0);
        assert_eq!(u64_to_f64_open(u64::MAX), 1.0);
    }

    #[test]
    fn unit_interval_monotone_in_high_bits() {
        let a = u64_to_f64_unit(1u64 << 32);
        let b = u64_to_f64_unit(1u64 << 33);
        assert!(b > a);
    }
}
