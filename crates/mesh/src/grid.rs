//! The 2D structured grid.
//!
//! The paper deliberately chooses a two-dimensional structured grid "in
//! order to expose those issues that are independent of the geometry"
//! (§IV-C): facet intersection checking reduces to a Cartesian
//! intersection, and the interesting costs are the *random* reads of
//! cell-centred density and the tally write traffic, not geometry handling.

/// An axis-aligned rectangle in mesh coordinates, `[x0, x1) x [y0, y1)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Rect {
    /// Lower x bound (inclusive).
    pub x0: f64,
    /// Upper x bound (exclusive).
    pub x1: f64,
    /// Lower y bound (inclusive).
    pub y0: f64,
    /// Upper y bound (exclusive).
    pub y1: f64,
}

impl Rect {
    /// Construct a rectangle; panics if the bounds are inverted or non-finite.
    #[must_use]
    pub fn new(x0: f64, x1: f64, y0: f64, y1: f64) -> Self {
        assert!(
            x0.is_finite() && x1.is_finite() && y0.is_finite() && y1.is_finite(),
            "rect bounds must be finite"
        );
        assert!(
            x0 < x1 && y0 < y1,
            "rect bounds inverted: [{x0},{x1})x[{y0},{y1})"
        );
        Self { x0, x1, y0, y1 }
    }

    /// Whether a point lies inside the rectangle.
    #[must_use]
    pub fn contains(&self, x: f64, y: f64) -> bool {
        x >= self.x0 && x < self.x1 && y >= self.y0 && y < self.y1
    }

    /// Area of the rectangle.
    #[must_use]
    pub fn area(&self) -> f64 {
        (self.x1 - self.x0) * (self.y1 - self.y0)
    }
}

/// Which facet of its containing cell a particle hit.
///
/// Used by the facet-event handler to update the cell index arithmetically
/// (particles are never re-binned from floating-point coordinates, which
/// would be both slower and fragile at cell boundaries).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Facet {
    /// The low-x cell face.
    XLow,
    /// The high-x cell face.
    XHigh,
    /// The low-y cell face.
    YLow,
    /// The high-y cell face.
    YHigh,
}

/// A 2D structured mesh with cell-centred mass densities and material
/// indices.
///
/// Cells are indexed `(ix, iy)` with `0 <= ix < nx`, `0 <= iy < ny`; the
/// linear index is row-major (`iy * nx + ix`). Edge coordinate arrays are
/// stored explicitly — the grid is uniform, but keeping the arrays mirrors
/// the original mini-app's memory behaviour and supports future
/// non-uniform extensions. The material map ([`crate::MaterialMap`])
/// defaults to homogeneous material 0, the paper's single-material
/// configuration.
#[derive(Clone, Debug)]
pub struct StructuredMesh2D {
    nx: usize,
    ny: usize,
    width: f64,
    height: f64,
    edge_x: Vec<f64>,
    edge_y: Vec<f64>,
    density: Vec<f64>,
    materials: crate::MaterialMap,
}

impl StructuredMesh2D {
    /// Build a mesh with homogeneous density `rho` (kg/m^3) over a
    /// `width` x `height` (metres) domain divided into `nx` x `ny` cells.
    #[must_use]
    pub fn uniform(nx: usize, ny: usize, width: f64, height: f64, rho: f64) -> Self {
        assert!(nx > 0 && ny > 0, "mesh must have at least one cell");
        assert!(
            width > 0.0 && height > 0.0 && width.is_finite() && height.is_finite(),
            "mesh extents must be positive and finite"
        );
        assert!(rho >= 0.0, "density must be non-negative");
        let edge_x = (0..=nx).map(|i| width * i as f64 / nx as f64).collect();
        let edge_y = (0..=ny).map(|j| height * j as f64 / ny as f64).collect();
        Self {
            nx,
            ny,
            width,
            height,
            edge_x,
            edge_y,
            density: vec![rho; nx * ny],
            materials: crate::MaterialMap::uniform(nx, ny, 0),
        }
    }

    /// Overwrite the density of every cell whose *centre* lies inside
    /// `region`. Returns the number of cells changed.
    pub fn set_region(&mut self, region: Rect, rho: f64) -> usize {
        assert!(rho >= 0.0, "density must be non-negative");
        let mut changed = 0;
        for iy in 0..self.ny {
            let cy = 0.5 * (self.edge_y[iy] + self.edge_y[iy + 1]);
            for ix in 0..self.nx {
                let cx = 0.5 * (self.edge_x[ix] + self.edge_x[ix + 1]);
                if region.contains(cx, cy) {
                    let idx = iy * self.nx + ix;
                    self.density[idx] = rho;
                    changed += 1;
                }
            }
        }
        changed
    }

    /// Overwrite the material index of every cell whose *centre* lies
    /// inside `region`. Returns the number of cells changed.
    pub fn set_material_region(&mut self, region: Rect, id: crate::MaterialId) -> usize {
        let mut changed = 0;
        for iy in 0..self.ny {
            let cy = 0.5 * (self.edge_y[iy] + self.edge_y[iy + 1]);
            for ix in 0..self.nx {
                let cx = 0.5 * (self.edge_x[ix] + self.edge_x[ix + 1]);
                if region.contains(cx, cy) {
                    self.materials.set(ix, iy, id);
                    changed += 1;
                }
            }
        }
        changed
    }

    /// Overwrite density **and** material of every cell whose centre lies
    /// inside `region` — the material-zone primitive of the scenario
    /// builders (DESIGN.md §12). Returns the number of cells changed.
    pub fn set_zone(&mut self, region: Rect, rho: f64, id: crate::MaterialId) -> usize {
        let changed = self.set_region(region, rho);
        let also = self.set_material_region(region, id);
        debug_assert_eq!(changed, also);
        changed
    }

    /// Number of cells along x.
    #[must_use]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Number of cells along y.
    #[must_use]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Total number of cells.
    #[must_use]
    pub fn num_cells(&self) -> usize {
        self.nx * self.ny
    }

    /// Domain width in metres.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Domain height in metres.
    #[must_use]
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Row-major linear index of cell `(ix, iy)`.
    #[inline]
    #[must_use]
    pub fn index(&self, ix: usize, iy: usize) -> usize {
        debug_assert!(ix < self.nx && iy < self.ny);
        iy * self.nx + ix
    }

    /// Cell-centred density of cell `(ix, iy)`.
    ///
    /// This is the random-access read on the particle's critical path
    /// (paper §VI-A: "the cached local density needs to be updated,
    /// requiring a read from the cell centred density mesh").
    #[inline]
    #[must_use]
    pub fn density(&self, ix: usize, iy: usize) -> f64 {
        self.density[self.index(ix, iy)]
    }

    /// The raw density field (row-major).
    #[must_use]
    pub fn density_field(&self) -> &[f64] {
        &self.density
    }

    /// Mutable access to the raw density field (row-major), for builders.
    pub fn density_field_mut(&mut self) -> &mut [f64] {
        &mut self.density
    }

    /// Material index of cell `(ix, iy)`.
    ///
    /// Read on the particle's critical path at facet crossings, next to
    /// the density read: the pair selects both the local number density
    /// and the cross-section library of the cell (DESIGN.md §12).
    #[inline]
    #[must_use]
    pub fn material(&self, ix: usize, iy: usize) -> crate::MaterialId {
        self.materials.get(ix, iy)
    }

    /// The per-cell material map.
    #[must_use]
    pub fn material_map(&self) -> &crate::MaterialMap {
        &self.materials
    }

    /// Mutable access to the material map, for builders.
    pub fn material_map_mut(&mut self) -> &mut crate::MaterialMap {
        &mut self.materials
    }

    /// Geometric bounds `(x0, x1, y0, y1)` of cell `(ix, iy)`.
    #[inline]
    #[must_use]
    pub fn cell_bounds(&self, ix: usize, iy: usize) -> (f64, f64, f64, f64) {
        debug_assert!(ix < self.nx && iy < self.ny);
        (
            self.edge_x[ix],
            self.edge_x[ix + 1],
            self.edge_y[iy],
            self.edge_y[iy + 1],
        )
    }

    /// The x cell-edge coordinates (`nx + 1` entries, ascending). Same
    /// values [`Self::cell_bounds`] reads — exposed as a slice so SIMD
    /// kernels can gather edge pairs for several cells at once.
    #[inline]
    #[must_use]
    pub fn edges_x(&self) -> &[f64] {
        &self.edge_x
    }

    /// The y cell-edge coordinates (`ny + 1` entries, ascending).
    #[inline]
    #[must_use]
    pub fn edges_y(&self) -> &[f64] {
        &self.edge_y
    }

    /// Cell width along x (uniform grid).
    #[must_use]
    pub fn cell_dx(&self) -> f64 {
        self.width / self.nx as f64
    }

    /// Cell height along y (uniform grid).
    #[must_use]
    pub fn cell_dy(&self) -> f64 {
        self.height / self.ny as f64
    }

    /// Locate the cell containing point `(x, y)`; coordinates are clamped
    /// into the domain. Used only at particle *initialisation* — during
    /// tracking, cell indices are updated arithmetically at facet events.
    #[must_use]
    pub fn locate(&self, x: f64, y: f64) -> (usize, usize) {
        let fx = (x / self.width).clamp(0.0, 1.0 - f64::EPSILON);
        let fy = (y / self.height).clamp(0.0, 1.0 - f64::EPSILON);
        let ix = ((fx * self.nx as f64) as usize).min(self.nx - 1);
        let iy = ((fy * self.ny as f64) as usize).min(self.ny - 1);
        (ix, iy)
    }

    /// Apply a facet crossing to a cell index under reflective boundary
    /// conditions (paper §IV-C: "We currently enforce reflective boundary
    /// conditions").
    ///
    /// Returns `(new_ix, new_iy, reflected)`. When the facet is on the
    /// domain boundary the cell index is unchanged and `reflected` is
    /// `true`: the caller must flip the corresponding direction component.
    #[inline]
    #[must_use]
    pub fn cross_facet(&self, ix: usize, iy: usize, facet: Facet) -> (usize, usize, bool) {
        match facet {
            Facet::XLow => {
                if ix == 0 {
                    (ix, iy, true)
                } else {
                    (ix - 1, iy, false)
                }
            }
            Facet::XHigh => {
                if ix + 1 == self.nx {
                    (ix, iy, true)
                } else {
                    (ix + 1, iy, false)
                }
            }
            Facet::YLow => {
                if iy == 0 {
                    (ix, iy, true)
                } else {
                    (ix, iy - 1, false)
                }
            }
            Facet::YHigh => {
                if iy + 1 == self.ny {
                    (ix, iy, true)
                } else {
                    (ix, iy + 1, false)
                }
            }
        }
    }

    /// Approximate resident size of the mesh data in bytes (edge arrays,
    /// the density field and the material map). Used for the paper's
    /// memory-footprint arithmetic (§VI-F).
    #[must_use]
    pub fn footprint_bytes(&self) -> usize {
        (self.edge_x.len() + self.edge_y.len() + self.density.len()) * std::mem::size_of::<f64>()
            + self.materials.footprint_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> StructuredMesh2D {
        StructuredMesh2D::uniform(10, 8, 2.0, 1.6, 1.0)
    }

    #[test]
    fn uniform_geometry() {
        let m = mesh();
        assert_eq!(m.num_cells(), 80);
        assert!((m.cell_dx() - 0.2).abs() < 1e-15);
        assert!((m.cell_dy() - 0.2).abs() < 1e-15);
        let (x0, x1, y0, y1) = m.cell_bounds(0, 0);
        assert_eq!((x0, y0), (0.0, 0.0));
        assert!((x1 - 0.2).abs() < 1e-15 && (y1 - 0.2).abs() < 1e-15);
        let (.., y1) = m.cell_bounds(9, 7);
        assert!((y1 - 1.6).abs() < 1e-12);
    }

    #[test]
    fn locate_inverts_bounds() {
        let m = mesh();
        for iy in 0..m.ny() {
            for ix in 0..m.nx() {
                let (x0, x1, y0, y1) = m.cell_bounds(ix, iy);
                let (cx, cy) = (0.5 * (x0 + x1), 0.5 * (y0 + y1));
                assert_eq!(m.locate(cx, cy), (ix, iy));
            }
        }
    }

    #[test]
    fn locate_clamps_outside_points() {
        let m = mesh();
        assert_eq!(m.locate(-1.0, -1.0), (0, 0));
        assert_eq!(m.locate(5.0, 5.0), (9, 7));
        assert_eq!(m.locate(2.0, 1.6), (9, 7)); // exactly on far edges
    }

    #[test]
    fn set_region_hits_expected_cells() {
        let mut m = mesh();
        // One column of cells: x in [0, 0.2), all y.
        let n = m.set_region(Rect::new(0.0, 0.2, 0.0, 1.6), 7.0);
        assert_eq!(n, 8);
        assert_eq!(m.density(0, 0), 7.0);
        assert_eq!(m.density(1, 0), 1.0);
    }

    #[test]
    fn cross_facet_interior_and_boundary() {
        let m = mesh();
        assert_eq!(m.cross_facet(5, 5, Facet::XHigh), (6, 5, false));
        assert_eq!(m.cross_facet(5, 5, Facet::YLow), (5, 4, false));
        assert_eq!(m.cross_facet(0, 5, Facet::XLow), (0, 5, true));
        assert_eq!(m.cross_facet(9, 5, Facet::XHigh), (9, 5, true));
        assert_eq!(m.cross_facet(5, 0, Facet::YLow), (5, 0, true));
        assert_eq!(m.cross_facet(5, 7, Facet::YHigh), (5, 7, true));
    }

    #[test]
    fn footprint_matches_fields() {
        let m = mesh();
        assert_eq!(m.footprint_bytes(), (11 + 9 + 80) * 8 + 80 * 2);
    }

    #[test]
    fn fresh_mesh_is_single_material() {
        let m = mesh();
        assert!(m.material_map().is_homogeneous());
        assert_eq!(m.material(3, 3), 0);
    }

    #[test]
    fn set_zone_updates_density_and_material_together() {
        let mut m = mesh();
        let n = m.set_zone(Rect::new(0.0, 0.2, 0.0, 1.6), 7.0, 2);
        assert_eq!(n, 8);
        assert_eq!(m.density(0, 0), 7.0);
        assert_eq!(m.material(0, 0), 2);
        assert_eq!(m.material(1, 0), 0);
        assert_eq!(m.material_map().max_id(), 2);
        // Material-only regions leave the density untouched.
        let n = m.set_material_region(Rect::new(0.2, 0.4, 0.0, 1.6), 1);
        assert_eq!(n, 8);
        assert_eq!(m.material(1, 0), 1);
        assert_eq!(m.density(1, 0), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn zero_cells_rejected() {
        let _ = StructuredMesh2D::uniform(0, 4, 1.0, 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_rect_rejected() {
        let _ = Rect::new(1.0, 0.0, 0.0, 1.0);
    }
}
