//! Per-cell material indices.
//!
//! The paper's mesh carries a single scalar field — the cell-centred mass
//! density — because the mini-app models one material (§IV-D). The
//! multi-material scenario subsystem adds a second, parallel field: a
//! compact per-cell material *index* that selects which cross-section
//! library the transport kernels resolve against (`neutral_xs`'s
//! `MaterialSet`). Like the density, it is read on the particle's
//! critical path at facet crossings, so it is stored as a dense row-major
//! `u16` array — one predictable load, no indirection.

/// Per-cell material index (matches `neutral_xs::MaterialId`).
pub type MaterialId = u16;

/// A dense row-major field of per-cell material indices.
///
/// Indexing mirrors [`crate::StructuredMesh2D`]: cell `(ix, iy)` lives at
/// `iy * nx + ix`. A fresh map is homogeneous material 0 — the paper's
/// single-material configuration costs nothing extra.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MaterialMap {
    nx: usize,
    ny: usize,
    ids: Vec<MaterialId>,
}

impl MaterialMap {
    /// A homogeneous map of `nx * ny` cells, all material `id`.
    #[must_use]
    pub fn uniform(nx: usize, ny: usize, id: MaterialId) -> Self {
        assert!(nx > 0 && ny > 0, "material map must have at least one cell");
        Self {
            nx,
            ny,
            ids: vec![id; nx * ny],
        }
    }

    /// Cells along x.
    #[must_use]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Cells along y.
    #[must_use]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Material index of cell `(ix, iy)` — the random read on the
    /// particle's critical path, alongside the density read.
    #[inline]
    #[must_use]
    pub fn get(&self, ix: usize, iy: usize) -> MaterialId {
        debug_assert!(ix < self.nx && iy < self.ny);
        self.ids[iy * self.nx + ix]
    }

    /// Set the material of cell `(ix, iy)`.
    #[inline]
    pub fn set(&mut self, ix: usize, iy: usize, id: MaterialId) {
        debug_assert!(ix < self.nx && iy < self.ny);
        self.ids[iy * self.nx + ix] = id;
    }

    /// The raw index field (row-major).
    #[must_use]
    pub fn ids(&self) -> &[MaterialId] {
        &self.ids
    }

    /// Highest material index present — the mesh's materials must all
    /// resolve in a `MaterialSet` of at least `max_id() + 1` entries.
    #[must_use]
    pub fn max_id(&self) -> MaterialId {
        self.ids.iter().copied().max().unwrap_or(0)
    }

    /// Whether every cell is material 0 (the paper's configuration).
    #[must_use]
    pub fn is_homogeneous(&self) -> bool {
        self.ids.iter().all(|&id| id == 0)
    }

    /// Resident bytes of the index field.
    #[must_use]
    pub fn footprint_bytes(&self) -> usize {
        self.ids.len() * std::mem::size_of::<MaterialId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_map_is_homogeneous() {
        let m = MaterialMap::uniform(4, 3, 0);
        assert!(m.is_homogeneous());
        assert_eq!(m.max_id(), 0);
        assert_eq!((m.nx(), m.ny()), (4, 3));
        assert_eq!(m.footprint_bytes(), 12 * 2);
    }

    #[test]
    fn set_and_get_round_trip() {
        let mut m = MaterialMap::uniform(4, 3, 0);
        m.set(2, 1, 7);
        assert_eq!(m.get(2, 1), 7);
        assert_eq!(m.get(1, 2), 0);
        assert_eq!(m.max_id(), 7);
        assert!(!m.is_homogeneous());
        assert_eq!(m.ids()[4 + 2], 7); // row-major: iy * nx + ix
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn zero_cells_rejected() {
        let _ = MaterialMap::uniform(0, 3, 0);
    }
}
