//! The computational mesh substrate of the `neutral` mini-app.
//!
//! Monte Carlo particle transport is "embarrassingly parallel" over particle
//! histories *except* for the computational mesh: particles read
//! cell-centred material densities as they move, and write energy-deposition
//! tallies into the mesh (Martineau & McIntosh-Smith, CLUSTER 2017, §III).
//! This crate provides that mesh and the tally structures whose costs
//! dominate the paper's analysis:
//!
//! * [`StructuredMesh2D`] — a 2D structured grid with cell-centred
//!   densities and reflective domain boundaries (paper §IV-C);
//! * [`MaterialMap`] — the per-cell material-index field of the
//!   multi-material scenario subsystem: a dense `u16` per cell selecting
//!   which cross-section library the transport kernels resolve against
//!   (DESIGN.md §12);
//! * [`tally::AtomicTally`] — an `f64` tally mesh updated with atomic
//!   compare-exchange read-modify-write operations (one per facet
//!   encounter, paper §V-C);
//! * [`tally::PrivatizedTally`] — one private tally mesh per thread,
//!   trading the atomics for a ×`n_threads` memory footprint (paper §VI-F);
//! * [`tally::SequentialTally`] — the plain serial baseline;
//! * [`accum`] — the pluggable tally-accumulation subsystem
//!   ([`TallyStrategy`]: atomic / replicated / privatized backends behind
//!   one lane-indexed deposit API, merged with a deterministic pairwise
//!   reduction so parallel tallies are bitwise reproducible).
//!
//! # Example
//!
//! ```
//! use neutral_mesh::{StructuredMesh2D, Rect, tally::AtomicTally};
//!
//! // A 1 m x 1 m mesh, 100x100 cells, low background density with a dense
//! // square in the centre — the shape of the paper's `csp` test problem.
//! let mut mesh = StructuredMesh2D::uniform(100, 100, 1.0, 1.0, 0.05);
//! mesh.set_region(Rect::new(0.375, 0.625, 0.375, 0.625), 1.0e3);
//!
//! let tally = AtomicTally::new(mesh.num_cells());
//! tally.add(mesh.index(50, 50), 1.25e6);
//! assert_eq!(tally.snapshot()[mesh.index(50, 50)], 1.25e6);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod accum;
mod grid;
mod material;
pub mod tally;

pub use accum::{LanePartition, LaneSink, TallyAccum, TallyAccumulator, TallyStrategy};
pub use grid::{Facet, Rect, StructuredMesh2D};
pub use material::{MaterialId, MaterialMap};
