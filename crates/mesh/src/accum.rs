//! Pluggable tally-accumulation backends with a deterministic merge.
//!
//! The paper's central on-node finding is that *how* the energy-deposition
//! tally is accumulated — shared atomics versus thread-private replication
//! (§VI-F, Figures 3/7/8) — decides thread scaling. This module makes that
//! choice a runtime [`TallyStrategy`], mirroring the `XsLookup` backend
//! layer in `neutral_xs`: every transport driver deposits through a
//! [`LaneSink`] checked out from a [`TallyAccum`], and the backend decides
//! what a deposit costs and what the merged mesh looks like.
//!
//! # Lanes and the deterministic-merge invariant
//!
//! Parallel `f64` reduction is famously non-reproducible: addition does
//! not associate, so the merged tally of a naive per-*thread* reduction
//! changes bitwise with the worker count and, under atomics, with the
//! interleaving of every run. This subsystem instead keys accumulation on
//! **lanes**: fixed, contiguous slices of the particle index space whose
//! size is independent of how many workers execute the solve (see
//! [`LanePartition`]). A lane is the unit of scheduling — exactly one
//! worker processes a lane's particles, in index order — so lane partials
//! are bitwise well-defined, and [`TallyAccum::merge`] combines them with
//! a fixed pairwise (binary-tree) summation in lane order. The result:
//!
//! > For the `Replicated` and `Privatized` backends, the merged tally is
//! > **bitwise identical** for any worker count and any schedule — the
//! > lane count never depends on the worker count, and workers beyond it
//! > simply find no lane to claim.
//!
//! The `Atomic` backend keeps the paper's single shared mesh, so
//! concurrent CAS adds to one cell still commit in arrival order; it is
//! bitwise reproducible only single-threaded, and agrees with the other
//! backends to floating-point reassociation error otherwise (this is
//! exactly the reproducibility/footprint trade-off OpenMC and MC/DC
//! document for their tally servers). See `DESIGN.md` §11.

use crate::tally::AtomicTally;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::ops::Range;

/// Multiplicative hasher for the privatized spill maps, whose keys are
/// plain `u32` cell indices: one `wrapping_mul` by a 64-bit odd constant
/// (Fibonacci hashing) replaces the default SipHash on the write path of
/// every out-of-block deposit. Deterministic and DoS-hardening-free by
/// design — the keys are mesh cells, not attacker input, and the merged
/// result never depends on map iteration order (per-cell contributions
/// are re-sorted by lane before the pairwise tree).
#[derive(Default)]
pub struct CellHasher {
    state: u64,
}

impl Hasher for CellHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Only taken for compound keys; fold bytes in deterministically.
        for &b in bytes {
            self.state = (self.state ^ u64::from(b)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.state = u64::from(v).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }
}

/// The spill buffer of one privatized lane: running per-cell sums for
/// deposits outside the lane's owned cell block.
pub type SpillMap = HashMap<u32, f64, BuildHasherDefault<CellHasher>>;

/// Default lane count: the concurrency ceiling of the lane-decomposed
/// drivers (a lane is processed by one worker) and the replication
/// factor of the `Replicated` backend. Deliberately a fixed constant —
/// deriving it from the worker count would make the merge order, and so
/// the merged bits, depend on how many threads ran.
pub const DEFAULT_LANES: usize = 32;

/// Which tally-accumulation backend a run uses (paper §VI-F).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum TallyStrategy {
    /// One shared mesh updated with `AtomicU64` bit-cast `f64`
    /// compare-exchange adds — the paper's `#pragma omp atomic` baseline.
    /// Minimal footprint, contended hot path, not bitwise reproducible
    /// across thread counts.
    #[default]
    Atomic,
    /// One private dense mesh per lane, pairwise-merged in lane order
    /// after the solve — the paper's privatisation (§VI-F) keyed on lanes
    /// instead of threads so the merge is deterministic. Footprint is
    /// `lanes ×` the mesh.
    Replicated,
    /// Cell-block ownership with a spill buffer: lane `l` owns the `l`-th
    /// contiguous block of one shared dense mesh and writes it directly;
    /// deposits outside the owned block spill to a per-lane sparse buffer
    /// replayed at merge time. One dense mesh total plus sparse spill —
    /// the low-footprint deterministic middle ground.
    Privatized,
}

impl TallyStrategy {
    /// All strategies, in benchmarking order.
    pub const ALL: [TallyStrategy; 3] = [
        TallyStrategy::Atomic,
        TallyStrategy::Replicated,
        TallyStrategy::Privatized,
    ];

    /// Stable lower-case name (used by parameter files, CLI flags and
    /// figure output).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TallyStrategy::Atomic => "atomic",
            TallyStrategy::Replicated => "replicated",
            TallyStrategy::Privatized => "privatized",
        }
    }

    /// Whether merged tallies are bitwise-invariant to worker count and
    /// interleaving.
    #[must_use]
    pub fn is_deterministic(self) -> bool {
        !matches!(self, TallyStrategy::Atomic)
    }
}

impl std::str::FromStr for TallyStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "atomic" => Ok(TallyStrategy::Atomic),
            "replicated" => Ok(TallyStrategy::Replicated),
            "privatized" => Ok(TallyStrategy::Privatized),
            other => Err(format!(
                "unknown tally strategy `{other}` (atomic|replicated|privatized)"
            )),
        }
    }
}

impl std::fmt::Display for TallyStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The fixed decomposition of an item (particle) index space into lanes.
///
/// Lane size is `ceil(n_items / target_lanes)` so that lane `l` covers
/// `[l * size, (l+1) * size)` — the same arithmetic the chunked drivers
/// use — and the partition depends only on `(n_items, target_lanes)`,
/// never on the worker count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LanePartition {
    /// Total number of items (particles).
    pub n_items: usize,
    /// Items per lane (last lane may be short).
    pub lane_size: usize,
    /// Number of (non-empty) lanes.
    pub n_lanes: usize,
}

impl LanePartition {
    /// Partition `n_items` into at most `target_lanes` equal chunks.
    #[must_use]
    pub fn new(n_items: usize, target_lanes: usize) -> Self {
        let target = target_lanes.max(1);
        let lane_size = n_items.div_ceil(target).max(1);
        let n_lanes = n_items.div_ceil(lane_size).max(1);
        Self {
            n_items,
            lane_size,
            n_lanes,
        }
    }

    /// Index range of lane `lane`.
    #[must_use]
    pub fn range(&self, lane: usize) -> Range<usize> {
        let start = lane * self.lane_size;
        start..((start + self.lane_size).min(self.n_items))
    }

    /// The lane containing item `item`.
    #[must_use]
    pub fn lane_of(&self, item: usize) -> usize {
        item / self.lane_size
    }
}

/// A worker-side deposit handle for one lane. Checked out from
/// [`TallyAccum::lane_views`]; the caller must drive each view from one
/// worker at a time (the lane-granular schedulers guarantee this).
#[derive(Debug)]
pub enum LaneSink<'a> {
    /// All lanes alias one shared atomic mesh (contended CAS adds).
    Shared(&'a AtomicTally),
    /// This lane's private dense mesh.
    Dense(&'a mut [f64]),
    /// This lane's owned cell-block of the shared dense mesh plus its
    /// sparse spill buffer for every other cell.
    Blocked {
        /// Cells `[block.start, block.end)` of the merged mesh, owned
        /// exclusively by this lane.
        owned: &'a mut [f64],
        /// First cell index of `owned`.
        block_start: usize,
        /// Running per-cell sums for deposits outside the owned block.
        /// Each cell's adds land in chronological order, which is what
        /// makes the replayed partial bitwise-equal to a dense one.
        spill: &'a mut SpillMap,
    },
}

impl LaneSink<'_> {
    /// Add `value` to `cell` through this lane's backend mechanism.
    #[inline]
    pub fn add(&mut self, cell: usize, value: f64) {
        match self {
            LaneSink::Shared(mesh) => mesh.add(cell, value),
            LaneSink::Dense(lane) => lane[cell] += value,
            LaneSink::Blocked {
                owned,
                block_start,
                spill,
            } => {
                if let Some(slot) = cell
                    .checked_sub(*block_start)
                    .and_then(|off| owned.get_mut(off))
                {
                    *slot += value;
                } else {
                    *spill.entry(cell as u32).or_insert(0.0) += value;
                }
            }
        }
    }
}

/// A tally-accumulation backend: lane-indexed deposit sinks during the
/// solve, one deterministic merged mesh afterwards.
///
/// Contract (enforced by the golden/equivalence/property suites):
///
/// * [`lane_views`](TallyAccumulator::lane_views) hands out exactly
///   [`n_lanes`](TallyAccumulator::n_lanes) sinks, and sinks of distinct
///   lanes may be driven concurrently;
/// * [`merge`](TallyAccumulator::merge) combines lane partials with the
///   shared pairwise reduction in lane order, so for the deterministic
///   backends the result depends only on the per-lane deposit sequences.
pub trait TallyAccumulator {
    /// The backend's strategy tag.
    fn strategy(&self) -> TallyStrategy;
    /// Number of mesh cells.
    fn cells(&self) -> usize;
    /// Number of accumulation lanes.
    fn n_lanes(&self) -> usize;
    /// Check out one deposit sink per lane (disjoint except `Atomic`,
    /// where every view aliases the shared mesh).
    fn lane_views(&mut self) -> Vec<LaneSink<'_>>;
    /// Merge all lanes into one mesh (deterministic pairwise reduction
    /// for the deterministic backends).
    fn merge(&self) -> Vec<f64>;
    /// Zero every lane for the next timestep.
    fn reset(&mut self);
    /// Resident bytes of the backend's accumulation state.
    fn footprint_bytes(&self) -> usize;
}

/// Pairwise (binary-tree) sum of a slice — the deterministic reduction
/// used for merged-tally totals and scalar counter merges.
#[must_use]
pub fn pairwise_sum(values: &[f64]) -> f64 {
    match values.len() {
        0 => 0.0,
        1 => values[0],
        n => {
            let (lo, hi) = values.split_at(n / 2);
            pairwise_sum(lo) + pairwise_sum(hi)
        }
    }
}

/// Pairwise merge of `n_lanes` dense partials materialised on demand:
/// leaf `l` is `leaf(l)`, internal nodes add element-wise. The tree shape
/// depends only on `n_lanes`, so the result is a pure function of the
/// lane partials. Peak memory is `O(log n_lanes)` meshes.
///
/// Exported so a cross-shard coordinator can replay the exact reduction
/// an unsharded [`TallyAccum::merge`] would run, with leaves drawn from
/// whichever shard owns each lane (see `neutral_core::shard`).
#[must_use]
pub fn merge_lanes_pairwise(n_lanes: usize, leaf: &impl Fn(usize) -> Vec<f64>) -> Vec<f64> {
    fn node(lo: usize, hi: usize, leaf: &impl Fn(usize) -> Vec<f64>) -> Vec<f64> {
        if hi - lo == 1 {
            return leaf(lo);
        }
        let mid = lo + (hi - lo) / 2;
        let mut a = node(lo, mid, leaf);
        let b = node(mid, hi, leaf);
        for (x, y) in a.iter_mut().zip(&b) {
            *x += y;
        }
        a
    }
    node(0, n_lanes.max(1), leaf)
}

/// The paper's shared-atomic backend: one mesh, every lane view aliases
/// it, deposits are CAS read-modify-writes.
#[derive(Debug)]
pub struct AtomicAccum {
    mesh: AtomicTally,
    n_lanes: usize,
}

impl AtomicAccum {
    /// Create a zeroed shared mesh served to `n_lanes` lanes.
    #[must_use]
    pub fn new(cells: usize, n_lanes: usize) -> Self {
        Self {
            mesh: AtomicTally::new(cells),
            n_lanes: n_lanes.max(1),
        }
    }
}

impl TallyAccumulator for AtomicAccum {
    fn strategy(&self) -> TallyStrategy {
        TallyStrategy::Atomic
    }

    fn cells(&self) -> usize {
        self.mesh.len()
    }

    fn n_lanes(&self) -> usize {
        self.n_lanes
    }

    fn lane_views(&mut self) -> Vec<LaneSink<'_>> {
        let mesh = &self.mesh;
        (0..self.n_lanes).map(|_| LaneSink::Shared(mesh)).collect()
    }

    fn merge(&self) -> Vec<f64> {
        self.mesh.snapshot()
    }

    fn reset(&mut self) {
        self.mesh.reset();
    }

    fn footprint_bytes(&self) -> usize {
        self.mesh.footprint_bytes()
    }
}

/// Lane-replicated backend: one private dense mesh per lane.
#[derive(Debug)]
pub struct ReplicatedAccum {
    cells: usize,
    lanes: Vec<Vec<f64>>,
}

impl ReplicatedAccum {
    /// Create `n_lanes` zeroed private meshes of `cells` cells.
    #[must_use]
    pub fn new(cells: usize, n_lanes: usize) -> Self {
        Self {
            cells,
            lanes: (0..n_lanes.max(1)).map(|_| vec![0.0; cells]).collect(),
        }
    }
}

impl TallyAccumulator for ReplicatedAccum {
    fn strategy(&self) -> TallyStrategy {
        TallyStrategy::Replicated
    }

    fn cells(&self) -> usize {
        self.cells
    }

    fn n_lanes(&self) -> usize {
        self.lanes.len()
    }

    fn lane_views(&mut self) -> Vec<LaneSink<'_>> {
        self.lanes.iter_mut().map(|l| LaneSink::Dense(l)).collect()
    }

    fn merge(&self) -> Vec<f64> {
        merge_lanes_pairwise(self.lanes.len(), &|l| self.lanes[l].clone())
    }

    fn reset(&mut self) {
        for lane in &mut self.lanes {
            lane.fill(0.0);
        }
    }

    fn footprint_bytes(&self) -> usize {
        self.lanes.len() * self.cells * std::mem::size_of::<f64>()
    }
}

/// Cell-block-ownership backend: lane `l` owns cell block `l` of one
/// shared dense mesh and spills foreign-cell deposits to a sparse buffer.
#[derive(Debug)]
pub struct PrivatizedAccum {
    cells: usize,
    block_size: usize,
    owned: Vec<Vec<f64>>,
    spill: Vec<SpillMap>,
}

impl PrivatizedAccum {
    /// Create the blocked mesh: `cells` split into `n_lanes` contiguous
    /// owned blocks plus one empty spill buffer per lane.
    #[must_use]
    pub fn new(cells: usize, n_lanes: usize) -> Self {
        let n_lanes = n_lanes.max(1);
        let block_size = cells.div_ceil(n_lanes).max(1);
        let owned = (0..n_lanes)
            .map(|l| {
                let start = (l * block_size).min(cells);
                let end = ((l + 1) * block_size).min(cells);
                vec![0.0; end - start]
            })
            .collect();
        Self {
            cells,
            block_size,
            owned,
            spill: (0..n_lanes).map(|_| SpillMap::default()).collect(),
        }
    }
}

/// Pairwise-tree sum of a cell's sparse lane contributions, emulating the
/// dense tree of [`merge_lanes_pairwise`] over the lane range `[lo, hi)`:
/// `contribs` holds `(lane, value)` sorted by lane, absent lanes are the
/// `0.0` identity, and the split point mirrors the dense tree's, so the
/// result is bitwise what the dense merge would compute. (Deposits are
/// non-negative, so `-0.0` leaves — the one case where dropping a `+ 0.0`
/// would change bits — cannot occur.)
fn tree_sum_sparse(lo: usize, hi: usize, contribs: &[(usize, f64)]) -> f64 {
    match contribs.len() {
        0 => 0.0,
        1 => contribs[0].1,
        _ => {
            let mid = lo + (hi - lo) / 2;
            let split = contribs.partition_point(|&(lane, _)| lane < mid);
            tree_sum_sparse(lo, mid, &contribs[..split])
                + tree_sum_sparse(mid, hi, &contribs[split..])
        }
    }
}

impl TallyAccumulator for PrivatizedAccum {
    fn strategy(&self) -> TallyStrategy {
        TallyStrategy::Privatized
    }

    fn cells(&self) -> usize {
        self.cells
    }

    fn n_lanes(&self) -> usize {
        self.owned.len()
    }

    fn lane_views(&mut self) -> Vec<LaneSink<'_>> {
        let block_size = self.block_size;
        let cells = self.cells;
        self.owned
            .iter_mut()
            .zip(self.spill.iter_mut())
            .enumerate()
            .map(|(l, (owned, spill))| LaneSink::Blocked {
                owned,
                block_start: (l * block_size).min(cells),
                spill,
            })
            .collect()
    }

    fn merge(&self) -> Vec<f64> {
        // Lane `l`'s partial for cell `c` is its owned-block slot when it
        // owns `c`, its spill entry otherwise — per cell, both mechanisms
        // applied the lane's adds in chronological order, so each partial
        // is bitwise what a dense (`Replicated`) lane would hold. Rather
        // than materialise those dense partials (lanes × mesh of
        // transient memory — the very blow-up this backend exists to
        // avoid), copy the disjoint owned blocks straight into the output
        // and re-run the pairwise tree only for the sparse set of spilled
        // cells.
        let n_lanes = self.owned.len();
        let mut out = vec![0.0; self.cells];
        for (l, block) in self.owned.iter().enumerate() {
            let start = (l * self.block_size).min(self.cells);
            out[start..start + block.len()].copy_from_slice(block);
        }
        let mut touched: HashMap<u32, Vec<(usize, f64)>> = HashMap::new();
        for (l, spill) in self.spill.iter().enumerate() {
            for (&cell, &value) in spill {
                touched.entry(cell).or_default().push((l, value));
            }
        }
        for (cell, mut contribs) in touched {
            let c = cell as usize;
            contribs.push((c / self.block_size, out[c]));
            contribs.sort_unstable_by_key(|&(lane, _)| lane);
            out[c] = tree_sum_sparse(0, n_lanes, &contribs);
        }
        out
    }

    fn reset(&mut self) {
        for block in &mut self.owned {
            block.fill(0.0);
        }
        for spill in &mut self.spill {
            spill.clear();
        }
    }

    fn footprint_bytes(&self) -> usize {
        let spill: usize = self
            .spill
            .iter()
            .map(|s| s.len() * (std::mem::size_of::<u32>() + std::mem::size_of::<f64>()))
            .sum();
        self.cells * std::mem::size_of::<f64>() + spill
    }
}

/// Runtime-dispatched accumulator: the concrete backend behind a
/// [`TallyStrategy`], with the [`TallyAccumulator`] contract surfaced as
/// inherent methods so callers need no trait import.
#[derive(Debug)]
pub enum TallyAccum {
    /// Shared atomic mesh.
    Atomic(AtomicAccum),
    /// Per-lane replicated meshes.
    Replicated(ReplicatedAccum),
    /// Cell-block ownership with spill buffers.
    Privatized(PrivatizedAccum),
}

impl TallyAccum {
    /// Build the backend for `strategy` over a `cells`-cell mesh with
    /// `n_lanes` accumulation lanes.
    #[must_use]
    pub fn new(strategy: TallyStrategy, cells: usize, n_lanes: usize) -> Self {
        match strategy {
            TallyStrategy::Atomic => TallyAccum::Atomic(AtomicAccum::new(cells, n_lanes)),
            TallyStrategy::Replicated => {
                TallyAccum::Replicated(ReplicatedAccum::new(cells, n_lanes))
            }
            TallyStrategy::Privatized => {
                TallyAccum::Privatized(PrivatizedAccum::new(cells, n_lanes))
            }
        }
    }

    fn inner(&self) -> &dyn TallyAccumulator {
        match self {
            TallyAccum::Atomic(a) => a,
            TallyAccum::Replicated(a) => a,
            TallyAccum::Privatized(a) => a,
        }
    }

    fn inner_mut(&mut self) -> &mut dyn TallyAccumulator {
        match self {
            TallyAccum::Atomic(a) => a,
            TallyAccum::Replicated(a) => a,
            TallyAccum::Privatized(a) => a,
        }
    }

    /// The backend's strategy tag.
    #[must_use]
    pub fn strategy(&self) -> TallyStrategy {
        self.inner().strategy()
    }

    /// Number of mesh cells.
    #[must_use]
    pub fn cells(&self) -> usize {
        self.inner().cells()
    }

    /// Number of accumulation lanes.
    #[must_use]
    pub fn n_lanes(&self) -> usize {
        self.inner().n_lanes()
    }

    /// One deposit sink per lane (see [`TallyAccumulator::lane_views`]).
    pub fn lane_views(&mut self) -> Vec<LaneSink<'_>> {
        self.inner_mut().lane_views()
    }

    /// Deterministically merged mesh (see [`TallyAccumulator::merge`]).
    #[must_use]
    pub fn merge(&self) -> Vec<f64> {
        self.inner().merge()
    }

    /// Zero all lanes.
    pub fn reset(&mut self) {
        self.inner_mut().reset();
    }

    /// Resident bytes of the accumulation state.
    #[must_use]
    pub fn footprint_bytes(&self) -> usize {
        self.inner().footprint_bytes()
    }

    /// Dense partial of lane `lane`: the per-cell sums that lane's
    /// deposit sequence produced, independent of backend blocking. For
    /// `Replicated` this is the lane's private mesh; for `Privatized`
    /// it is the owned block plus spill entries re-densified (both hold
    /// each cell's adds in chronological order, so the materialised
    /// partial is bitwise what a dense lane would hold). This is the
    /// serialisation unit of sharded solves: feeding these partials to
    /// [`merge_lanes_pairwise`] reproduces [`TallyAccum::merge`] bit
    /// for bit.
    ///
    /// # Panics
    ///
    /// Panics for the `Atomic` backend, whose shared mesh has no
    /// well-defined per-lane decomposition.
    #[must_use]
    pub fn lane_partial(&self, lane: usize) -> Vec<f64> {
        match self {
            TallyAccum::Atomic(_) => {
                panic!("lane partials are only defined for deterministic tally strategies")
            }
            TallyAccum::Replicated(a) => a.lanes[lane].clone(),
            TallyAccum::Privatized(a) => {
                let mut out = vec![0.0; a.cells];
                let start = (lane * a.block_size).min(a.cells);
                out[start..start + a.owned[lane].len()].copy_from_slice(&a.owned[lane]);
                for (&cell, &value) in &a.spill[lane] {
                    out[cell as usize] = value;
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_names_round_trip() {
        for s in TallyStrategy::ALL {
            assert_eq!(s.name().parse::<TallyStrategy>().unwrap(), s);
            assert_eq!(format!("{s}"), s.name());
        }
        assert!("magic".parse::<TallyStrategy>().is_err());
    }

    #[test]
    fn lane_partition_covers_exactly() {
        for (n, target) in [(0usize, 4usize), (1, 4), (7, 3), (500, 32), (1000, 7)] {
            let p = LanePartition::new(n, target);
            assert!(p.n_lanes <= target.max(1) || n == 0);
            let mut next = 0;
            for l in 0..p.n_lanes {
                let r = p.range(l);
                assert_eq!(r.start, next);
                next = r.end;
                for i in r.clone() {
                    assert_eq!(p.lane_of(i), l, "item {i}");
                }
            }
            assert_eq!(next, n, "partition of {n} into {target}");
        }
    }

    #[test]
    fn lane_partition_is_idempotent() {
        // Re-deriving the partition from its own lane count must not
        // change it — drivers recompute it from `accum.n_lanes()`.
        for (n, target) in [(500usize, 32usize), (10, 4), (100, 32), (3, 7)] {
            let p = LanePartition::new(n, target);
            assert_eq!(LanePartition::new(n, p.n_lanes), p);
        }
    }

    #[test]
    fn pairwise_sum_matches_naive_for_exact_values() {
        let v: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert_eq!(pairwise_sum(&v), v.iter().sum::<f64>());
        assert_eq!(pairwise_sum(&[]), 0.0);
        assert_eq!(pairwise_sum(&[2.5]), 2.5);
    }

    /// The cross-backend keystone: identical per-lane deposit sequences
    /// must merge to bitwise-identical meshes under Replicated and
    /// Privatized, and to the same totals under Atomic.
    #[test]
    fn backends_agree_on_lane_deposits() {
        let cells = 37;
        let lanes = 5;
        // A deterministic pseudo-random deposit sequence per lane.
        let deposits: Vec<Vec<(usize, f64)>> = (0..lanes)
            .map(|l| {
                (0..200)
                    .map(|i| {
                        let cell = (l * 17 + i * 13) % cells;
                        let value = 0.1 + ((l * 31 + i * 7) % 100) as f64 * 1.7e-3;
                        (cell, value)
                    })
                    .collect()
            })
            .collect();

        let mut merged: Vec<Vec<f64>> = Vec::new();
        for strategy in TallyStrategy::ALL {
            let mut accum = TallyAccum::new(strategy, cells, lanes);
            {
                let mut views = accum.lane_views();
                for (l, view) in views.iter_mut().enumerate() {
                    for &(cell, value) in &deposits[l] {
                        view.add(cell, value);
                    }
                }
            }
            merged.push(accum.merge());
        }
        let [atomic, replicated, privatized] = &merged[..] else {
            unreachable!()
        };
        // Deterministic backends: bitwise identical.
        for (c, (a, b)) in replicated.iter().zip(privatized).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "cell {c}");
        }
        // Atomic: same sums up to reassociation.
        for (c, (a, b)) in atomic.iter().zip(replicated).enumerate() {
            assert!((a - b).abs() <= 1e-12 * a.abs().max(1.0), "cell {c}");
        }
    }

    /// Concurrently driving disjoint lanes must not change the merged
    /// bits of the deterministic backends.
    #[test]
    fn deterministic_merge_is_interleaving_invariant() {
        let cells = 64;
        let lanes = 8;
        let run = |strategy: TallyStrategy, threaded: bool| -> Vec<f64> {
            let mut accum = TallyAccum::new(strategy, cells, lanes);
            {
                let views = accum.lane_views();
                let work = |l: usize, view: &mut LaneSink<'_>| {
                    for i in 0..500 {
                        view.add((l * 11 + i * 3) % cells, 1.0e-3 * (1 + l + i) as f64);
                    }
                };
                if threaded {
                    std::thread::scope(|s| {
                        for (l, mut view) in views.into_iter().enumerate() {
                            s.spawn(move || work(l, &mut view));
                        }
                    });
                } else {
                    for (l, mut view) in views.into_iter().enumerate() {
                        work(l, &mut view);
                    }
                }
            }
            accum.merge()
        };
        for strategy in [TallyStrategy::Replicated, TallyStrategy::Privatized] {
            let serial = run(strategy, false);
            let threaded = run(strategy, true);
            assert!(
                serial
                    .iter()
                    .zip(&threaded)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "{strategy:?}"
            );
        }
    }

    /// Re-merging materialised lane partials through the exported
    /// pairwise tree must reproduce `merge()` bitwise — the contract
    /// the sharded executor's cross-shard reduction stands on.
    #[test]
    fn lane_partials_remerge_bitwise() {
        let cells = 37;
        let lanes = 5;
        for strategy in [TallyStrategy::Replicated, TallyStrategy::Privatized] {
            let mut accum = TallyAccum::new(strategy, cells, lanes);
            {
                let mut views = accum.lane_views();
                for (l, view) in views.iter_mut().enumerate() {
                    for i in 0..200 {
                        let cell = (l * 17 + i * 13) % cells;
                        view.add(cell, 0.1 + ((l * 31 + i * 7) % 100) as f64 * 1.7e-3);
                    }
                }
            }
            let merged = accum.merge();
            let remerged = merge_lanes_pairwise(lanes, &|l| accum.lane_partial(l));
            for (c, (a, b)) in merged.iter().zip(&remerged).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "{strategy:?} cell {c}");
            }
        }
    }

    #[test]
    fn privatized_spills_foreign_cells() {
        let mut accum = PrivatizedAccum::new(100, 4); // blocks of 25
        {
            let mut views = accum.lane_views();
            views[0].add(3, 1.0); // owned by lane 0
            views[0].add(80, 2.0); // spills (owned by lane 3)
            views[3].add(80, 4.0); // owned by lane 3
        }
        assert!(accum.spill[0].contains_key(&80));
        let merged = accum.merge();
        assert_eq!(merged[3], 1.0);
        assert_eq!(merged[80], 6.0);
        assert_eq!(accum.spill[0].len(), 1);
    }

    #[test]
    fn footprints_rank_as_documented() {
        let cells = 10_000;
        let lanes = 16;
        let atomic = TallyAccum::new(TallyStrategy::Atomic, cells, lanes).footprint_bytes();
        let replicated = TallyAccum::new(TallyStrategy::Replicated, cells, lanes).footprint_bytes();
        let privatized = TallyAccum::new(TallyStrategy::Privatized, cells, lanes).footprint_bytes();
        assert_eq!(replicated, lanes * atomic);
        assert_eq!(privatized, atomic); // empty spill: one dense mesh
    }

    #[test]
    fn reset_zeroes_all_backends() {
        for strategy in TallyStrategy::ALL {
            let mut accum = TallyAccum::new(strategy, 16, 3);
            {
                let mut views = accum.lane_views();
                for v in views.iter_mut() {
                    v.add(5, 1.0);
                    v.add(15, 2.0);
                }
            }
            accum.reset();
            assert!(
                accum.merge().iter().all(|&v| v == 0.0),
                "{strategy:?} reset"
            );
        }
    }
}
