//! Energy-deposition tally meshes.
//!
//! The tally is "essentially a reduction into the mesh that must be
//! performed atomically to avoid race conditions" (paper §V-C). Every facet
//! encounter flushes a register-accumulated deposit with one atomic
//! read-modify-write, and sample profiling attributed ~50% of the
//! Over-Particles runtime to tallying (§VI-A). The paper studies two
//! implementations, both provided here:
//!
//! * [`AtomicTally`]: `f64` adds emulated with a compare-exchange loop on
//!   `AtomicU64` bit patterns. This is precisely the emulation the paper
//!   had to use on the K20X, which predates hardware double-precision
//!   `atomicAdd` (§VII-A); on CPUs it is also how `f64` atomic adds are
//!   expressed in Rust/LLVM.
//! * [`PrivatizedTally`]: one private copy of the tally mesh per thread,
//!   removing the atomics at the cost of an `n_threads` x footprint
//!   (0.3 GB -> 31 GB for the paper's `csp` problem at 256 KNL threads,
//!   §VI-F) plus a merge ("compression") pass at the end of the solve.
//!
//! Memory ordering: all tally operations use `Relaxed` ordering. The adds
//! are commutative and independent; the final values are observed only
//! after the worker threads have been joined, and thread join/spawn create
//! the necessary happens-before edges (see "Rust Atomics and Locks",
//! ch. 3: synchronisation comes from spawn/join, not from the data
//! operations themselves).

use std::sync::atomic::{AtomicU64, Ordering};

/// A shared tally mesh updated with atomic compare-exchange adds.
///
/// Values are stored as `f64` bit patterns inside `AtomicU64`s so that the
/// mesh can be written concurrently from any number of threads without
/// locks, exactly mirroring the mini-app's `#pragma omp atomic` /
/// CAS-emulated `atomicAdd` update.
#[derive(Debug)]
pub struct AtomicTally {
    cells: Vec<AtomicU64>,
}

impl AtomicTally {
    /// Create a zeroed tally with `len` cells.
    #[must_use]
    pub fn new(len: usize) -> Self {
        let mut cells = Vec::with_capacity(len);
        cells.resize_with(len, || AtomicU64::new(0f64.to_bits()));
        Self { cells }
    }

    /// Number of cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the tally has zero cells.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Atomically add `value` to `cell`.
    ///
    /// One call per facet encounter is the dominant synchronisation cost of
    /// the Over-Particles scheme; the compare-exchange loop retries under
    /// contention, which is what makes conflicting tallies expensive.
    #[inline]
    pub fn add(&self, cell: usize, value: f64) {
        let slot = &self.cells[cell];
        let mut current = slot.load(Ordering::Relaxed);
        loop {
            let new = f64::from_bits(current) + value;
            match slot.compare_exchange_weak(
                current,
                new.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    /// Copy the tally out as plain `f64`s.
    #[must_use]
    pub fn snapshot(&self) -> Vec<f64> {
        self.cells
            .iter()
            .map(|c| f64::from_bits(c.load(Ordering::Relaxed)))
            .collect()
    }

    /// Sum of all cells.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.cells
            .iter()
            .map(|c| f64::from_bits(c.load(Ordering::Relaxed)))
            .sum()
    }

    /// Reset every cell to zero (start of a new timestep).
    pub fn reset(&self) {
        for c in &self.cells {
            c.store(0f64.to_bits(), Ordering::Relaxed);
        }
    }

    /// Resident bytes.
    #[must_use]
    pub fn footprint_bytes(&self) -> usize {
        self.cells.len() * std::mem::size_of::<AtomicU64>()
    }
}

/// One thread's private slice of a [`PrivatizedTally`].
///
/// Handed out by [`PrivatizedTally::slots_mut`]; plain stores, no atomics.
#[derive(Debug)]
pub struct TallySlot {
    data: Vec<f64>,
}

impl TallySlot {
    /// Add `value` to `cell` — a plain (non-atomic) accumulate.
    #[inline]
    pub fn add(&mut self, cell: usize, value: f64) {
        self.data[cell] += value;
    }

    /// Read-only view of this slot's accumulated values.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.data
    }
}

/// A tally mesh privatised per thread (paper §VI-F).
///
/// Each worker thread owns one [`TallySlot`]; the slots are merged
/// ("compressed", in the paper's wording) into a single mesh at the end of
/// the solve. The safe API hands out disjoint `&mut` slots, so no
/// synchronisation of any kind happens on the hot path.
#[derive(Debug)]
pub struct PrivatizedTally {
    slots: Vec<TallySlot>,
    len: usize,
}

impl PrivatizedTally {
    /// Create `n_threads` private zeroed tallies of `len` cells each.
    #[must_use]
    pub fn new(n_threads: usize, len: usize) -> Self {
        assert!(n_threads > 0, "need at least one thread slot");
        Self {
            slots: (0..n_threads)
                .map(|_| TallySlot {
                    data: vec![0.0; len],
                })
                .collect(),
            len,
        }
    }

    /// Number of cells per private copy.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tally has zero cells.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of private copies (threads).
    #[must_use]
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }

    /// Disjoint mutable access to every thread's slot; hand one to each
    /// worker (e.g. via `crossbeam::scope`).
    pub fn slots_mut(&mut self) -> impl Iterator<Item = &mut TallySlot> {
        self.slots.iter_mut()
    }

    /// Merge all private copies into a single mesh. Deterministic: slots
    /// are summed in thread-index order, so a run with a fixed thread
    /// count and a static schedule is bitwise reproducible.
    #[must_use]
    pub fn merge(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.len];
        for slot in &self.slots {
            for (o, v) in out.iter_mut().zip(&slot.data) {
                *o += v;
            }
        }
        out
    }

    /// Sum over all cells of all slots.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.slots.iter().map(|s| s.data.iter().sum::<f64>()).sum()
    }

    /// Reset all private copies to zero.
    pub fn reset(&mut self) {
        for slot in &mut self.slots {
            slot.data.fill(0.0);
        }
    }

    /// Total resident bytes across all private copies — the paper's
    /// footprint blow-up (`len * n_threads * 8` bytes, §VI-F).
    #[must_use]
    pub fn footprint_bytes(&self) -> usize {
        self.slots.len() * self.len * std::mem::size_of::<f64>()
    }
}

/// The serial baseline: a plain `Vec<f64>` tally.
#[derive(Debug, Clone)]
pub struct SequentialTally {
    data: Vec<f64>,
}

impl SequentialTally {
    /// Create a zeroed tally with `len` cells.
    #[must_use]
    pub fn new(len: usize) -> Self {
        Self {
            data: vec![0.0; len],
        }
    }

    /// Add `value` to `cell`.
    #[inline]
    pub fn add(&mut self, cell: usize, value: f64) {
        self.data[cell] += value;
    }

    /// Number of cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tally has zero cells.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The accumulated values.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.data
    }

    /// Consume into the underlying vector.
    #[must_use]
    pub fn into_values(self) -> Vec<f64> {
        self.data
    }

    /// Sum of all cells.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Reset every cell to zero.
    pub fn reset(&mut self) {
        self.data.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn atomic_add_accumulates() {
        let t = AtomicTally::new(4);
        t.add(2, 1.5);
        t.add(2, 2.5);
        t.add(0, -1.0);
        assert_eq!(t.snapshot(), vec![-1.0, 0.0, 4.0, 0.0]);
        assert_eq!(t.total(), 3.0);
    }

    #[test]
    fn atomic_concurrent_adds_match_sequential_sum() {
        let t = Arc::new(AtomicTally::new(16));
        let threads = 8;
        let adds_per_thread = 10_000;
        let handles: Vec<_> = (0..threads)
            .map(|ti| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for i in 0..adds_per_thread {
                        t.add((ti + i) % 16, 0.5);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let expect = 0.5 * (threads * adds_per_thread) as f64;
        // All adds are 0.5, an exactly-representable value: the total must
        // be exact regardless of interleaving.
        assert_eq!(t.total(), expect);
    }

    #[test]
    fn atomic_reset_zeroes() {
        let t = AtomicTally::new(3);
        t.add(1, 9.0);
        t.reset();
        assert_eq!(t.total(), 0.0);
    }

    #[test]
    fn privatized_merge_sums_slots() {
        let mut t = PrivatizedTally::new(3, 4);
        for (i, slot) in t.slots_mut().enumerate() {
            slot.add(i, (i + 1) as f64);
        }
        assert_eq!(t.merge(), vec![1.0, 2.0, 3.0, 0.0]);
        assert_eq!(t.total(), 6.0);
    }

    #[test]
    fn privatized_footprint_scales_with_threads() {
        let t1 = PrivatizedTally::new(1, 1000);
        let t256 = PrivatizedTally::new(256, 1000);
        assert_eq!(t256.footprint_bytes(), 256 * t1.footprint_bytes());
    }

    #[test]
    fn privatized_parallel_use_is_safe_and_exact() {
        let mut t = PrivatizedTally::new(4, 8);
        std::thread::scope(|s| {
            for (ti, slot) in t.slots_mut().enumerate() {
                s.spawn(move || {
                    for i in 0..1000 {
                        slot.add((ti + i) % 8, 1.0);
                    }
                });
            }
        });
        assert_eq!(t.total(), 4000.0);
    }

    #[test]
    fn sequential_tally_basics() {
        let mut t = SequentialTally::new(2);
        t.add(0, 3.0);
        t.add(1, 4.0);
        t.add(0, 1.0);
        assert_eq!(t.values(), &[4.0, 4.0]);
        assert_eq!(t.total(), 8.0);
        t.reset();
        assert_eq!(t.total(), 0.0);
    }

    #[test]
    fn paper_knl_footprint_arithmetic() {
        // Paper §VI-F: a 4000^2 mesh tally is ~0.128 GB; privatised over
        // 256 threads it exceeds 31 GB (quoted with the rest of the
        // problem state as 0.3 GB -> 31 GB).
        let cells = 4000 * 4000;
        let single = PrivatizedTally::new(1, cells).footprint_bytes() as f64 / 1e9;
        let knl = PrivatizedTally::new(256, cells).footprint_bytes() as f64 / 1e9;
        assert!((single - 0.128).abs() < 1e-3);
        assert!(knl > 31.0 && knl < 34.0, "privatised footprint {knl} GB");
    }
}
