//! The named-scenario catalogue.
//!
//! The paper validates against three single-material test problems
//! (Stream / Scatter / Csp, §IV-B). Real transport mini-apps in the same
//! lineage (MC/DC, the performance-portable OpenMC ports) validate across
//! many heterogeneous, multi-material workloads; this module is the
//! repository's registry of such workloads, built on the multi-material
//! subsystem (mesh material map + `neutral_xs::MaterialSet`).
//!
//! Every scenario is expressed as a [`ProblemParams`] value — the same
//! declarative description a `neutral.params` file produces — so each
//! catalogue entry doubles as documentation of an exactly reproducible
//! parameter file (see the scenario catalogue table in DESIGN.md §12 and
//! the README's scenario gallery). The paper's three cases are members of
//! the catalogue too, and build the same problems as
//! [`crate::config::TestCase`].
//!
//! Run any scenario from the command line:
//!
//! ```sh
//! neutral_cli --scenario shielded_slab --scale tiny
//! ```

use crate::config::{Problem, ProblemScale, TestCase};
use crate::params::{default_material_seed, ProblemParams};
use neutral_mesh::Rect;
use neutral_xs::{MaterialKind, MaterialSpec};

/// A named workload from the scenario catalogue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scenario {
    /// The paper's homogeneous near-vacuum streaming problem (§IV-B).
    Stream,
    /// The paper's homogeneous dense-medium collision problem (§IV-B).
    Scatter,
    /// The paper's "center square problem" (§IV-B).
    Csp,
    /// Deep-penetration shielding: a thin dense absorber slab across a
    /// near-vacuum reference background; a wall source streams into the
    /// slab and is attenuated, with measurable transmission behind it.
    ShieldedSlab,
    /// A low-density duct through thick moderator walls: particles born
    /// in the duct stream along it (facet-dominated) and leak into the
    /// walls where they thermalise (collision clusters at the lining).
    StreamingDuct,
    /// A density-graded stack of alternating moderator/reference bands
    /// terminated by an absorber back wall: the event mix shifts from
    /// streaming to collision-dominated across the domain, with a
    /// material interface at every band boundary.
    GradedModerator,
    /// A 2-D 4x4 lattice of fuel pins in a moderator bath: the
    /// reactor-lattice workload, collision-heavy with frequent
    /// moderator/fuel material switches.
    FuelLattice,
    /// A dense core in a near-vacuum with the source *inside* the core:
    /// most histories die in the core within a couple hundred rounds,
    /// while the escaping few stream across the vacuum for thousands
    /// more. The live fraction collapses early, making this the stress
    /// shape for the event-based driver's stream compaction
    /// (DESIGN.md §13) — the seed's whole-array kernel sweeps paid for
    /// the dead ~90% on every one of those streaming rounds.
    CoreEscape,
}

impl Scenario {
    /// The whole catalogue, paper cases first.
    pub const ALL: [Scenario; 8] = [
        Scenario::Stream,
        Scenario::Scatter,
        Scenario::Csp,
        Scenario::ShieldedSlab,
        Scenario::StreamingDuct,
        Scenario::GradedModerator,
        Scenario::FuelLattice,
        Scenario::CoreEscape,
    ];

    /// The multi-material scenarios beyond the paper's three.
    pub const MULTI_MATERIAL: [Scenario; 4] = [
        Scenario::ShieldedSlab,
        Scenario::StreamingDuct,
        Scenario::GradedModerator,
        Scenario::FuelLattice,
    ];

    /// Stable lower-case name (CLI `--scenario`, fixture files, figures).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Scenario::Stream => "stream",
            Scenario::Scatter => "scatter",
            Scenario::Csp => "csp",
            Scenario::ShieldedSlab => "shielded_slab",
            Scenario::StreamingDuct => "streaming_duct",
            Scenario::GradedModerator => "graded_moderator",
            Scenario::FuelLattice => "fuel_lattice",
            Scenario::CoreEscape => "core_escape",
        }
    }

    /// One-line description for catalogues and CLI output.
    #[must_use]
    pub fn description(self) -> &'static str {
        match self {
            Scenario::Stream => "homogeneous near-vacuum; pure streaming (paper §IV-B)",
            Scenario::Scatter => "homogeneous dense medium; pure collisions (paper §IV-B)",
            Scenario::Csp => "dense centre square in a thin background (paper §IV-B)",
            Scenario::ShieldedSlab => "absorber slab across a streaming background",
            Scenario::StreamingDuct => "empty duct through thick moderator walls",
            Scenario::GradedModerator => "graded moderator bands with an absorber back wall",
            Scenario::FuelLattice => "4x4 fuel-pin lattice in a moderator bath",
            Scenario::CoreEscape => "interior source in a dense core; escapees stream a vacuum",
        }
    }

    /// The dominant event mix the scenario is designed to produce, as
    /// shown in the DESIGN.md §12 catalogue table.
    #[must_use]
    pub fn expected_mix(self) -> &'static str {
        match self {
            Scenario::Stream => "facets only",
            Scenario::Scatter => "collisions only",
            Scenario::Csp => "streaming into a collision core",
            Scenario::ShieldedSlab => "streaming + absorption burst in the slab",
            Scenario::StreamingDuct => "duct streaming + wall collision clusters",
            Scenario::GradedModerator => "facet->collision gradient, many interfaces",
            Scenario::FuelLattice => "collision-heavy, frequent material switches",
            Scenario::CoreEscape => "collision burst, then a thin streaming tail",
        }
    }

    /// Resolve a scenario by its [`Scenario::name`]. The error lists the
    /// whole catalogue, so a typo is immediately actionable.
    pub fn from_name(name: &str) -> Result<Scenario, String> {
        Scenario::ALL
            .into_iter()
            .find(|s| s.name() == name)
            .ok_or_else(|| {
                let known: Vec<&str> = Scenario::ALL.iter().map(|s| s.name()).collect();
                format!("unknown scenario `{name}` (known: {})", known.join("|"))
            })
    }

    /// Particle count at the paper's full scale (§IV-B for the paper's
    /// cases; 1e6 histories for the catalogue additions).
    #[must_use]
    pub fn paper_particles(self) -> usize {
        match self {
            Scenario::Stream | Scenario::Csp => 1_000_000,
            Scenario::Scatter => 10_000_000,
            _ => 1_000_000,
        }
    }

    /// Whether the scenario exercises more than one material.
    #[must_use]
    pub fn is_multi_material(self) -> bool {
        Scenario::MULTI_MATERIAL.contains(&self)
    }

    /// The scenario's declarative parameter set at `scale` — exactly what
    /// an equivalent `neutral.params` file would parse to. `seed` drives
    /// source sampling, RNG streams and synthetic-table generation.
    #[must_use]
    pub fn params(self, scale: ProblemScale, seed: u64) -> ProblemParams {
        let n = scale.mesh_cells;
        let particles = (self.paper_particles() / scale.particle_divisor).max(1);
        let mat = |id: u16, kind: MaterialKind| {
            (
                id,
                MaterialSpec {
                    kind,
                    n_points: 30_000,
                    seed: default_material_seed(seed, id),
                },
            )
        };
        let mut p = ProblemParams {
            nx: n,
            ny: n,
            particles,
            seed,
            regions: Vec::new(),
            ..ProblemParams::default()
        };

        match self {
            Scenario::Stream => {
                p.density = 1.0e-30;
                p.source = Rect::new(0.45, 0.55, 0.45, 0.55);
            }
            Scenario::Scatter => {
                p.density = 1.0e3;
                p.source = Rect::new(0.45, 0.55, 0.45, 0.55);
            }
            Scenario::Csp => {
                p.density = 0.05;
                p.regions = vec![(Rect::new(0.375, 0.625, 0.375, 0.625), 1.0e3, 0)];
                p.source = Rect::new(0.0, 0.1, 0.0, 0.1);
            }
            Scenario::ShieldedSlab => {
                // Reference background thin enough to stream (mfp >> 1 m),
                // a five-ish-mfp absorber slab at x ~ 0.4.
                p.density = 1.0e-3;
                p.materials = vec![mat(1, MaterialKind::Absorber)];
                p.regions = vec![(Rect::new(0.40, 0.45, 0.0, 1.0), 10.0, 1)];
                p.source = Rect::new(0.02, 0.08, 0.3, 0.7);
            }
            Scenario::StreamingDuct => {
                // Moderator walls fill the domain; the duct is a thin
                // near-vacuum reference channel.
                p.density = 20.0;
                p.materials = vec![
                    mat(0, MaterialKind::Moderator),
                    mat(1, MaterialKind::Reference),
                ];
                p.regions = vec![(Rect::new(0.0, 1.0, 0.45, 0.55), 1.0e-6, 1)];
                p.source = Rect::new(0.0, 0.05, 0.46, 0.54);
            }
            Scenario::GradedModerator => {
                // Eight bands over x in [0, 0.9), density doubling per
                // band, alternating moderator/reference, then an absorber
                // back wall.
                p.density = 0.2;
                p.materials = vec![
                    mat(0, MaterialKind::Moderator),
                    mat(1, MaterialKind::Reference),
                    mat(2, MaterialKind::Absorber),
                ];
                p.regions = (0..8)
                    .map(|i| {
                        let x0 = 0.9 * i as f64 / 8.0;
                        let x1 = 0.9 * (i + 1) as f64 / 8.0;
                        let rho = 0.2 * 2.0f64.powi(i);
                        (Rect::new(x0, x1, 0.0, 1.0), rho, (i % 2) as u16)
                    })
                    .collect();
                p.regions.push((Rect::new(0.9, 1.0, 0.0, 1.0), 80.0, 2));
                p.source = Rect::new(0.0, 0.05, 0.4, 0.6);
            }
            Scenario::CoreEscape => {
                // Dense-but-leaky core (a ~10 cm square at 100 kg/m^3)
                // with the source inside it: ~85-90% of histories hit
                // the energy cutoff inside the core, the rest escape and
                // stream the near-vacuum to census. Tuned so the escape
                // fraction is large enough to measure and small enough
                // that dead lanes dominate the late rounds.
                p.density = 1.0e-30;
                p.regions = vec![(Rect::new(0.45, 0.55, 0.45, 0.55), 100.0, 0)];
                p.source = Rect::new(0.47, 0.53, 0.47, 0.53);
            }
            Scenario::FuelLattice => {
                // Moderator bath with a 4x4 lattice of fuel pins (pitch
                // 0.25 m, pin half-width 0.04 m), source in the centre.
                p.density = 5.0;
                p.materials = vec![mat(0, MaterialKind::Moderator), mat(1, MaterialKind::Fuel)];
                p.regions = (0..16)
                    .map(|k| {
                        let (cx, cy) =
                            (0.125 + 0.25 * (k % 4) as f64, 0.125 + 0.25 * (k / 4) as f64);
                        (
                            Rect::new(cx - 0.04, cx + 0.04, cy - 0.04, cy + 0.04),
                            100.0,
                            1u16,
                        )
                    })
                    .collect();
                p.source = Rect::new(0.4, 0.6, 0.4, 0.6);
            }
        }
        p
    }

    /// Build the scenario's [`Problem`] at `scale` with `seed`.
    #[must_use]
    pub fn build(self, scale: ProblemScale, seed: u64) -> Problem {
        self.params(scale, seed).build()
    }
}

impl From<TestCase> for Scenario {
    fn from(case: TestCase) -> Self {
        match case {
            TestCase::Stream => Scenario::Stream,
            TestCase::Scatter => Scenario::Scatter,
            TestCase::Csp => Scenario::Csp,
        }
    }
}

impl std::str::FromStr for Scenario {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Scenario::from_name(s)
    }
}

impl std::fmt::Display for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{Execution, RunOptions, Simulation};

    fn tiny(s: Scenario) -> Problem {
        s.build(ProblemScale::tiny(), 5)
    }

    fn run_tiny(s: Scenario) -> crate::sim::RunReport {
        Simulation::new(tiny(s)).run(RunOptions {
            execution: Execution::Sequential,
            ..Default::default()
        })
    }

    #[test]
    fn names_round_trip_and_are_unique() {
        for s in Scenario::ALL {
            assert_eq!(Scenario::from_name(s.name()).unwrap(), s);
            assert_eq!(s.name().parse::<Scenario>().unwrap(), s);
        }
        let mut names: Vec<&str> = Scenario::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Scenario::ALL.len());
    }

    #[test]
    fn unknown_name_lists_catalogue() {
        let e = Scenario::from_name("kugelblitz").unwrap_err();
        assert!(e.contains("kugelblitz"));
        assert!(e.contains("shielded_slab") && e.contains("csp"));
    }

    #[test]
    fn paper_scenarios_match_test_cases() {
        for case in TestCase::ALL {
            let scenario: Scenario = case.into();
            let a = case.build(ProblemScale::tiny(), 3);
            let b = scenario.build(ProblemScale::tiny(), 3);
            assert_eq!(a.mesh.density_field(), b.mesh.density_field());
            assert_eq!(a.mesh.material_map(), b.mesh.material_map());
            assert_eq!(a.source, b.source);
            assert_eq!(a.n_particles, b.n_particles);
            assert_eq!(
                a.materials.library(0).absorb,
                b.materials.library(0).absorb,
                "{case:?}: material tables must be identical"
            );
        }
    }

    #[test]
    fn multi_material_scenarios_really_are() {
        for s in Scenario::MULTI_MATERIAL {
            let p = tiny(s);
            assert!(p.materials.len() >= 2, "{s:?}");
            assert!(!p.mesh.material_map().is_homogeneous(), "{s:?}");
            assert!(
                usize::from(p.mesh.material_map().max_id()) < p.materials.len(),
                "{s:?}: mesh references an undefined material"
            );
        }
    }

    #[test]
    fn scenarios_run_and_produce_their_event_mix() {
        for s in Scenario::MULTI_MATERIAL {
            let r = run_tiny(s);
            assert!(r.counters.total_events() > 0, "{s:?}");
            assert_eq!(r.counters.stuck, 0, "{s:?}");
            assert!(r.counters.facets > 0, "{s:?}: no facet events");
            assert!(r.counters.collisions > 0, "{s:?}: no collisions");
            assert!(
                r.counters.material_switches > 0,
                "{s:?}: never crossed a material interface"
            );
            assert!(r.tally_total() > 0.0, "{s:?}: nothing deposited");
        }
    }

    #[test]
    fn duct_is_facet_dominated_lattice_is_collision_heavy() {
        let duct = run_tiny(Scenario::StreamingDuct);
        assert!(
            duct.counters.facets > duct.counters.collisions,
            "duct: {} facets vs {} collisions",
            duct.counters.facets,
            duct.counters.collisions
        );
        let lattice = run_tiny(Scenario::FuelLattice);
        assert!(
            lattice.counters.collisions_per_history() > 10.0,
            "lattice: {} collisions/history",
            lattice.counters.collisions_per_history()
        );
    }

    #[test]
    fn shielded_slab_attenuates() {
        let p = tiny(Scenario::ShieldedSlab);
        let nx = p.mesh.nx();
        let cell_w = p.mesh.cell_dx();
        let r = Simulation::new(p).run(RunOptions {
            execution: Execution::Sequential,
            ..Default::default()
        });
        // Deposits in the slab must dominate deposits behind it.
        let (mut in_slab, mut behind) = (0.0, 0.0);
        for (i, &v) in r.tally.iter().enumerate() {
            let x = ((i % nx) as f64 + 0.5) * cell_w;
            if (0.40..0.45).contains(&x) {
                in_slab += v;
            } else if x >= 0.45 {
                behind += v;
            }
        }
        assert!(in_slab > 0.0);
        assert!(behind < in_slab, "slab must absorb more than it transmits");
    }

    #[test]
    fn scenario_params_survive_file_round_trip() {
        // The scenario's params must be expressible as a params file: the
        // `scenario` key reproduces the same problem.
        for s in Scenario::MULTI_MATERIAL {
            let direct = s.params(ProblemScale::small(), 20_170_905).build();
            let via_file = ProblemParams::parse(&format!("scenario {}\n", s.name()))
                .unwrap()
                .build();
            assert_eq!(direct.mesh.density_field(), via_file.mesh.density_field());
            assert_eq!(direct.mesh.material_map(), via_file.mesh.material_map());
            assert_eq!(direct.n_particles, via_file.n_particles);
            assert_eq!(direct.materials.len(), via_file.materials.len());
        }
    }
}
