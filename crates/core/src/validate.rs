//! Physics validation: conservation accounting and population bookkeeping.
//!
//! The mini-app tracks "the conservation of the particle population"
//! (paper §IV-C) and validates the compressed energy-deposition tally at
//! the end of the solve (§VI-F). This module provides both checks:
//!
//! * [`population_balance`] — every spawned history must be accounted for
//!   as census, death or (never, in practice) stuck;
//! * [`EnergyBalance`] — source energy versus deposited energy plus the
//!   residual energy still carried by the population. The track-length
//!   estimator matches the population energy loss *in expectation* under
//!   [`crate::config::CollisionModel::ImplicitCapture`] (see DESIGN.md
//!   §3/§10); under `Analogue` the estimator is a response proxy, exactly
//!   as in the original mini-app, and only the weaker bounds hold.

use crate::counters::EventCounters;

/// Energy bookkeeping of a completed solve, all in weighted eV.
#[derive(Clone, Copy, Debug)]
pub struct EnergyBalance {
    /// Total source energy (`n_particles * E0 * w0`).
    pub initial_ev: f64,
    /// Sum of the energy-deposition tally.
    pub deposited_ev: f64,
    /// Energy still carried by particles alive at census.
    pub census_residual_ev: f64,
    /// Energy carried by particles terminated at a cutoff.
    pub cutoff_residual_ev: f64,
}

impl EnergyBalance {
    /// Assemble the balance from a run's outputs.
    #[must_use]
    pub fn new(initial_ev: f64, tally_total_ev: f64, counters: &EventCounters) -> Self {
        Self {
            initial_ev,
            deposited_ev: tally_total_ev,
            census_residual_ev: counters.census_energy_ev,
            cutoff_residual_ev: counters.lost_energy_ev,
        }
    }

    /// `initial - deposited - census residual - cutoff residual`, as a
    /// fraction of the initial energy. Zero in expectation under the
    /// implicit-capture collision model.
    #[must_use]
    pub fn relative_defect(&self) -> f64 {
        (self.initial_ev - self.deposited_ev - self.census_residual_ev - self.cutoff_residual_ev)
            / self.initial_ev
    }

    /// Weak invariants that hold under *both* collision models: every
    /// component is non-negative, and the population residuals can never
    /// exceed the source energy.
    #[must_use]
    pub fn weak_invariants_hold(&self) -> bool {
        self.initial_ev > 0.0
            && self.deposited_ev >= 0.0
            && self.census_residual_ev >= -1e-12
            && self.cutoff_residual_ev >= -1e-12
            && self.census_residual_ev + self.cutoff_residual_ev <= self.initial_ev * (1.0 + 1e-9)
    }
}

/// Check that every history is accounted for: `census + deaths + stuck`
/// must equal the number of histories launched in the step.
#[must_use]
pub fn population_balance(n_particles: u64, counters: &EventCounters) -> bool {
    counters.census + counters.deaths + counters.stuck == n_particles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defect_is_zero_when_balanced() {
        let c = EventCounters {
            census_energy_ev: 30.0,
            lost_energy_ev: 20.0,
            ..Default::default()
        };
        let b = EnergyBalance::new(100.0, 50.0, &c);
        assert!(b.relative_defect().abs() < 1e-12);
        assert!(b.weak_invariants_hold());
    }

    #[test]
    fn defect_signals_imbalance() {
        let c = EventCounters {
            census_energy_ev: 10.0,
            lost_energy_ev: 0.0,
            ..Default::default()
        };
        let b = EnergyBalance::new(100.0, 50.0, &c);
        assert!((b.relative_defect() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn population_accounting() {
        let c = EventCounters {
            census: 90,
            deaths: 9,
            stuck: 1,
            ..Default::default()
        };
        assert!(population_balance(100, &c));
        assert!(!population_balance(101, &c));
    }
}
