//! Pure event physics: the collision, facet and census handlers plus the
//! distance calculations that decide which event a particle encounters
//! first (paper §IV-A, Figure 1).
//!
//! Everything here is scheme-agnostic: the Over-Particles history loop
//! ([`crate::history`]) and the Over-Events kernels
//! ([`crate::over_events`]) call the same functions with the same
//! per-particle RNG streams, which is what makes the two schemes produce
//! identical physics (DESIGN.md §9).

use crate::config::{CollisionModel, LowWeightPolicy, TransportConfig};
use crate::counters::EventCounters;
use crate::particle::Particle;
use neutral_mesh::tally::{SequentialTally, TallySlot};
use neutral_mesh::{tally::AtomicTally, Facet, StructuredMesh2D};
use neutral_rng::{dist, CbRng, CounterStream};
use neutral_xs::constants::{mean_elastic_retention, speed_m_per_s, MASS_NO};
use neutral_xs::{
    macroscopic_per_m, CrossSectionLibrary, LookupStrategy, MaterialId, MaterialSet, MicroXs,
    XsHints,
};

/// Where energy deposits go. Implemented by all three tally variants plus
/// [`NullTally`] (used to measure the tally share of runtime, §VI-A).
pub trait TallySink {
    /// Add `value` (eV, weighted) to `cell`.
    fn deposit(&mut self, cell: usize, value: f64);
}

/// A sink that discards deposits — subtracting a `NullTally` run from a
/// real run isolates the cost of tallying, reproducing the paper's
/// sample-profiling observation that tallying is ~50% of the
/// Over-Particles runtime.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullTally;

impl TallySink for NullTally {
    #[inline]
    fn deposit(&mut self, _cell: usize, _value: f64) {}
}

impl TallySink for SequentialTally {
    #[inline]
    fn deposit(&mut self, cell: usize, value: f64) {
        self.add(cell, value);
    }
}

impl TallySink for &AtomicTally {
    #[inline]
    fn deposit(&mut self, cell: usize, value: f64) {
        self.add(cell, value);
    }
}

impl TallySink for TallySlot {
    #[inline]
    fn deposit(&mut self, cell: usize, value: f64) {
        self.add(cell, value);
    }
}

impl TallySink for neutral_mesh::LaneSink<'_> {
    #[inline]
    fn deposit(&mut self, cell: usize, value: f64) {
        self.add(cell, value);
    }
}

impl<T: TallySink + ?Sized> TallySink for &mut T {
    #[inline]
    fn deposit(&mut self, cell: usize, value: f64) {
        (**self).deposit(cell, value);
    }
}

/// Resolve both microscopic cross sections at `energy_ev` with the
/// configured lookup strategy, updating the caller's cached table hints
/// and the instrumentation counters.
///
/// This is the single seam between the transport kernels and the
/// `neutral_xs` lookup-backend layer: every driver (history loop,
/// event kernels, SoA trackers) funnels through here, so switching
/// [`LookupStrategy`] retunes all of them at once.
#[inline]
pub fn resolve_micro_xs(
    xs: &CrossSectionLibrary,
    strategy: LookupStrategy,
    energy_ev: f64,
    hints: &mut XsHints,
    counters: &mut EventCounters,
) -> MicroXs {
    counters.cs_lookups += 1;
    let (micro, steps) = xs.lookup_with(strategy, energy_ev, hints);
    counters.cs_search_steps += u64::from(steps);
    micro
}

/// Batched [`resolve_micro_xs`]: resolve a whole lane block of energies —
/// `energies[i]` in material `mats[i]` — in one call through the
/// material set's grouped `lookup_many`, updating the SoA hint lanes in
/// place. Slices must have equal lengths. Bitwise identical to
/// per-particle [`resolve_micro_xs`] calls against each particle's
/// material library. `scratch` holds the mixed-material staging lanes
/// (untouched on single-material blocks), so multi-material blocks stop
/// allocating per call.
#[allow(clippy::too_many_arguments)] // mirrors the five parallel SoA lanes
pub fn resolve_micro_xs_many(
    materials: &MaterialSet,
    strategy: LookupStrategy,
    mats: &[MaterialId],
    energies: &[f64],
    hints_absorb: &mut [u32],
    hints_scatter: &mut [u32],
    out_absorb: &mut [f64],
    out_scatter: &mut [f64],
    counters: &mut EventCounters,
    scratch: &mut neutral_xs::LaneScratch,
) {
    counters.cs_lookups += energies.len() as u64;
    counters.batched_lookups += energies.len() as u64;
    counters.cs_search_steps += materials.lookup_many_with_scratch(
        strategy,
        mats,
        energies,
        hints_absorb,
        hints_scatter,
        out_absorb,
        out_scatter,
        scratch,
    );
}

/// The event a particle will encounter next.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum NextEvent {
    /// A collision after travelling the stored distance (m).
    Collision(f64),
    /// A facet crossing after the stored distance (m).
    Facet(f64, Facet),
    /// Census (end of timestep) after the stored distance (m).
    Census(f64),
}

impl NextEvent {
    /// Distance to the event (m).
    #[inline]
    #[must_use]
    pub fn distance(&self) -> f64 {
        match *self {
            NextEvent::Collision(d) | NextEvent::Census(d) => d,
            NextEvent::Facet(d, _) => d,
        }
    }
}

/// Distance from `(x, y)` travelling along `(ox, oy)` to the boundary of
/// the cell `[x0,x1] x [y0,y1]`, and which facet is struck.
///
/// "The problem is essentially solved as a simple intersection in
/// Cartesian space" (§IV-C). Distances are clamped non-negative so that a
/// particle sitting marginally outside its cell (floating-point dust from
/// a previous move) still makes progress through the cell index update.
#[inline]
#[must_use]
pub fn facet_distance(
    x: f64,
    y: f64,
    ox: f64,
    oy: f64,
    bounds: (f64, f64, f64, f64),
) -> (f64, Facet) {
    let (x0, x1, y0, y1) = bounds;
    let (dx, fx) = if ox > 0.0 {
        ((x1 - x) / ox, Facet::XHigh)
    } else if ox < 0.0 {
        ((x0 - x) / ox, Facet::XLow)
    } else {
        (f64::INFINITY, Facet::XHigh)
    };
    let (dy, fy) = if oy > 0.0 {
        ((y1 - y) / oy, Facet::YHigh)
    } else if oy < 0.0 {
        ((y0 - y) / oy, Facet::YLow)
    } else {
        (f64::INFINITY, Facet::YHigh)
    };
    if dx <= dy {
        (clamp_nonneg(dx), fx)
    } else {
        (clamp_nonneg(dy), fy)
    }
}

/// `d.max(0.0)` with a pinned `+0.0` on the `-0.0` tie (a particle
/// exactly on its cell edge travelling inward). `f64::max` lowers to
/// `llvm.maxnum`, whose zero-sign result on equal operands is
/// codegen-dependent — debug and release builds disagree — while the
/// AVX2 `vmaxpd(d, 0.0)` of the explicit-SIMD distance pass always
/// returns its second operand (`+0.0`). The explicit compare pins every
/// build, every driver, and every backend to the vector semantics (a
/// NaN also maps to `0.0` on both paths).
#[inline(always)]
pub fn clamp_nonneg(d: f64) -> f64 {
    if d > 0.0 {
        d
    } else {
        0.0
    }
}

/// Decide the next event for a particle given the local macroscopic total
/// cross section (per m). Tie-break order: census, then facet, then
/// collision (§IV-A maintains per-event timers; ties are measure-zero but
/// must still resolve deterministically).
#[inline]
#[must_use]
pub fn next_event(p: &Particle, sigma_t_per_m: f64, bounds: (f64, f64, f64, f64)) -> NextEvent {
    next_event_parts(
        p.x,
        p.y,
        p.omega_x,
        p.omega_y,
        p.energy,
        p.dt_to_census,
        p.mfp_to_collision,
        sigma_t_per_m,
        bounds,
    )
}

/// [`next_event`] over the individual particle fields — the form the
/// column-storage kernels call so the decision never gathers a whole
/// [`Particle`] record. Same expressions in the same order, so both
/// entry points compute identical bits.
#[allow(clippy::too_many_arguments)] // mirrors the particle fields read
#[inline]
#[must_use]
pub fn next_event_parts(
    x: f64,
    y: f64,
    omega_x: f64,
    omega_y: f64,
    energy: f64,
    dt_to_census: f64,
    mfp_to_collision: f64,
    sigma_t_per_m: f64,
    bounds: (f64, f64, f64, f64),
) -> NextEvent {
    let speed = speed_m_per_s(energy);
    let d_census = speed * dt_to_census;
    let d_coll = if sigma_t_per_m > 0.0 {
        mfp_to_collision / sigma_t_per_m
    } else {
        f64::INFINITY
    };
    let (d_facet, facet) = facet_distance(x, y, omega_x, omega_y, bounds);
    if d_census <= d_coll && d_census <= d_facet {
        NextEvent::Census(d_census)
    } else if d_facet <= d_coll {
        NextEvent::Facet(d_facet, facet)
    } else {
        NextEvent::Collision(d_coll)
    }
}

/// Track-length energy-deposition estimator for a path segment (§V-C):
/// expected number of collisions along the segment times the expected
/// energy transfer per collision, weighted by the particle weight.
///
/// `path_m * n * sigma_t * barn` is the expected collision count;
/// the bracket is the mean deposit per collision: full energy on
/// absorption (mean exit energy 0) and `E (1 - (A^2+1)/(A+1)^2)` on
/// isotropic-CM elastic scatter.
#[inline]
#[must_use]
pub fn energy_deposition(
    energy_ev: f64,
    weight: f64,
    path_m: f64,
    number_density_m3: f64,
    micro: MicroXs,
) -> f64 {
    let sigma_t = micro.total_barns();
    if sigma_t <= 0.0 {
        return 0.0;
    }
    let p_absorb = micro.absorb_barns / sigma_t;
    let absorption_heating = p_absorb * energy_ev;
    let mean_exit = energy_ev * mean_elastic_retention(MASS_NO);
    let scattering_heating = (1.0 - p_absorb) * (energy_ev - mean_exit);
    weight
        * (absorption_heating + scattering_heating)
        * path_m
        * macroscopic_per_m(sigma_t, number_density_m3)
}

/// Advance a particle `distance` metres along its direction and debit the
/// event timers: `mfp -= d * sigma_t`, `dt -= d / v`.
#[inline]
pub fn move_particle(p: &mut Particle, distance: f64, sigma_t_per_m: f64) {
    move_particle_parts(
        &mut p.x,
        &mut p.y,
        &mut p.mfp_to_collision,
        &mut p.dt_to_census,
        p.omega_x,
        p.omega_y,
        p.energy,
        distance,
        sigma_t_per_m,
    );
}

/// [`move_particle`] over the individual particle fields — the form the
/// column-storage kernels call so the move touches only the four columns
/// it writes. Same expressions in the same order as [`move_particle`].
#[allow(clippy::too_many_arguments)] // mirrors the particle fields touched
#[inline]
pub fn move_particle_parts(
    x: &mut f64,
    y: &mut f64,
    mfp_to_collision: &mut f64,
    dt_to_census: &mut f64,
    omega_x: f64,
    omega_y: f64,
    energy: f64,
    distance: f64,
    sigma_t_per_m: f64,
) {
    *x += distance * omega_x;
    *y += distance * omega_y;
    *mfp_to_collision = (*mfp_to_collision - distance * sigma_t_per_m).max(0.0);
    let speed = speed_m_per_s(energy);
    *dt_to_census = (*dt_to_census - distance / speed).max(0.0);
}

/// Resolve a collision event at the particle's current position.
///
/// Returns `true` if the history terminated (energy or weight cutoff).
/// RNG draws per collision, in stream order:
/// `Analogue`: select, then on scatter `(mu, sign)`, then mfp resample —
/// 2 draws for absorption, 4 for scatter. `ImplicitCapture`: mu, sign,
/// mfp — always 3.
#[inline]
pub fn handle_collision<R: CbRng>(
    p: &mut Particle,
    stream: &mut CounterStream<'_, R>,
    micro: MicroXs,
    cfg: &TransportConfig,
    counters: &mut EventCounters,
) -> bool {
    counters.collisions += 1;
    let p_absorb = micro.absorb_probability();

    let mut died = false;
    match cfg.collision_model {
        CollisionModel::Analogue => {
            let select = stream.next_f64(&mut p.rng_counter);
            if select < p_absorb {
                // Absorption: the weight absorbs the event, the direction
                // is unchanged (§IV-E).
                counters.absorptions += 1;
                p.weight *= 1.0 - p_absorb;
                if low_weight(p, stream, cfg) || p.energy < cfg.min_energy_ev {
                    died = true;
                }
            } else {
                counters.scatters += 1;
                elastic_scatter(p, stream);
                if p.energy < cfg.min_energy_ev {
                    died = true;
                }
            }
        }
        CollisionModel::ImplicitCapture => {
            counters.scatters += 1;
            p.weight *= 1.0 - p_absorb;
            elastic_scatter(p, stream);
            if low_weight(p, stream, cfg) || p.energy < cfg.min_energy_ev {
                died = true;
            }
        }
    }

    if died {
        counters.deaths += 1;
        counters.lost_energy_ev += p.weighted_energy();
        p.dead = true;
    } else {
        // New number of mean-free-paths until the next collision (§IV-F).
        p.mfp_to_collision = dist::exponential_mfp(stream, &mut p.rng_counter);
    }
    died
}

/// Resolve a below-cutoff weight according to the configured policy.
/// Returns `true` if the history must end. Under Russian roulette the
/// survivor's weight is raised to the target so the expected weight is
/// conserved: `P(survive) * target = (w/target) * target = w`.
#[inline]
fn low_weight<R: CbRng>(
    p: &mut Particle,
    stream: &mut CounterStream<'_, R>,
    cfg: &TransportConfig,
) -> bool {
    if p.weight >= cfg.weight_cutoff {
        return false;
    }
    match cfg.low_weight {
        LowWeightPolicy::Terminate => true,
        LowWeightPolicy::Roulette { target } => {
            debug_assert!(target > cfg.weight_cutoff);
            let survive_prob = (p.weight / target).min(1.0);
            if stream.next_f64(&mut p.rng_counter) < survive_prob {
                p.weight = target;
                false
            } else {
                true
            }
        }
    }
}

/// Isotropic-CM elastic scatter off a stationary nucleus of mass number
/// `A`, in the 2D plane model: sample `mu_cm ~ U(-1,1)`, apply two-body
/// kinematics for the exit energy, convert to the laboratory frame and
/// rotate the direction by the lab angle with a random sign.
///
/// Contains the three square roots the paper attributes to the collision
/// handler (§VI-A).
#[inline]
fn elastic_scatter<R: CbRng>(p: &mut Particle, stream: &mut CounterStream<'_, R>) {
    const A: f64 = MASS_NO;
    let mu_cm = dist::scattering_cosine(stream, &mut p.rng_counter);
    let sign = dist::random_sign(stream, &mut p.rng_counter);

    let e_old = p.energy;
    let e_new = e_old * (A * A + 2.0 * A * mu_cm + 1.0) / ((A + 1.0) * (A + 1.0));
    // cos(theta_lab) = ((A+1) sqrt(E'/E) - (A-1) sqrt(E/E')) / 2
    //               = (1 + A mu_cm) / sqrt(A^2 + 2 A mu_cm + 1).
    let cos_lab = 0.5 * ((A + 1.0) * (e_new / e_old).sqrt() - (A - 1.0) * (e_old / e_new).sqrt());
    let cos_lab = cos_lab.clamp(-1.0, 1.0);
    let sin_lab = sign * (1.0 - cos_lab * cos_lab).max(0.0).sqrt();

    let (ox, oy) = (p.omega_x, p.omega_y);
    p.omega_x = ox * cos_lab - oy * sin_lab;
    p.omega_y = ox * sin_lab + oy * cos_lab;
    p.energy = e_new;
    debug_assert!((p.omega_x.hypot(p.omega_y) - 1.0).abs() < 1e-9);
}

/// Resolve a facet event: update the cell index arithmetically or reflect
/// off the domain boundary (§IV-C). Returns `true` if reflected.
#[inline]
pub fn handle_facet(
    p: &mut Particle,
    facet: Facet,
    mesh: &StructuredMesh2D,
    counters: &mut EventCounters,
) -> bool {
    handle_facet_parts(
        &mut p.omega_x,
        &mut p.omega_y,
        &mut p.cellx,
        &mut p.celly,
        facet,
        mesh,
        counters,
    )
}

/// [`handle_facet`] over the individual fields, for the SoA column
/// drivers: a facet event touches only the cell index (crossing) or one
/// direction cosine (reflection), so the column kernels pass just those
/// lanes instead of gathering the whole particle. Same expressions in
/// the same order as the record form — bitwise identical results.
#[inline]
#[allow(clippy::too_many_arguments)] // exploded Particle fields
pub fn handle_facet_parts(
    omega_x: &mut f64,
    omega_y: &mut f64,
    cellx: &mut u32,
    celly: &mut u32,
    facet: Facet,
    mesh: &StructuredMesh2D,
    counters: &mut EventCounters,
) -> bool {
    counters.facets += 1;
    let (nx, ny, reflected) = mesh.cross_facet(*cellx as usize, *celly as usize, facet);
    if reflected {
        counters.reflections += 1;
        match facet {
            Facet::XLow | Facet::XHigh => *omega_x = -*omega_x,
            Facet::YLow | Facet::YHigh => *omega_y = -*omega_y,
        }
    } else {
        *cellx = nx as u32;
        *celly = ny as u32;
    }
    reflected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TransportConfig;
    use neutral_rng::Threefry2x64;
    use neutral_xs::XsHints;

    fn test_particle() -> Particle {
        Particle {
            x: 0.5,
            y: 0.5,
            omega_x: 1.0,
            omega_y: 0.0,
            energy: 1.0e6,
            weight: 1.0,
            dt_to_census: 1.0e-7,
            mfp_to_collision: 1.0,
            cellx: 5,
            celly: 5,
            xs_hints: XsHints::default(),
            key: 0,
            rng_counter: 0,
            dead: false,
        }
    }

    #[test]
    fn facet_distance_axis_aligned() {
        let bounds = (0.0, 1.0, 0.0, 1.0);
        let (d, f) = facet_distance(0.25, 0.5, 1.0, 0.0, bounds);
        assert!((d - 0.75).abs() < 1e-15);
        assert_eq!(f, Facet::XHigh);
        let (d, f) = facet_distance(0.25, 0.5, -1.0, 0.0, bounds);
        assert!((d - 0.25).abs() < 1e-15);
        assert_eq!(f, Facet::XLow);
        let (d, f) = facet_distance(0.5, 0.1, 0.0, -1.0, bounds);
        assert!((d - 0.1).abs() < 1e-15);
        assert_eq!(f, Facet::YLow);
    }

    #[test]
    fn facet_distance_diagonal_picks_nearest() {
        let bounds = (0.0, 1.0, 0.0, 1.0);
        let inv = std::f64::consts::FRAC_1_SQRT_2;
        // From (0.9, 0.5) heading up-right: x boundary first.
        let (_, f) = facet_distance(0.9, 0.5, inv, inv, bounds);
        assert_eq!(f, Facet::XHigh);
        // From (0.5, 0.9): y boundary first.
        let (_, f) = facet_distance(0.5, 0.9, inv, inv, bounds);
        assert_eq!(f, Facet::YHigh);
    }

    #[test]
    fn facet_distance_never_negative() {
        // Particle marginally outside the cell moving away: clamp to 0.
        let bounds = (0.0, 1.0, 0.0, 1.0);
        let (d, _) = facet_distance(1.0 + 1e-15, 0.5, 1.0, 0.0, bounds);
        assert_eq!(d, 0.0);
    }

    #[test]
    fn next_event_prefers_census_on_tie() {
        let mut p = test_particle();
        // No material: collision at infinity; census far beyond facet.
        p.dt_to_census = 1.0; // ~1.4e7 m of track
        let ev = next_event(&p, 0.0, (0.0, 1.0, 0.0, 1.0));
        assert!(matches!(ev, NextEvent::Facet(..)));
        p.dt_to_census = 0.0;
        let ev = next_event(&p, 0.0, (0.0, 1.0, 0.0, 1.0));
        assert!(matches!(ev, NextEvent::Census(d) if d == 0.0));
    }

    #[test]
    fn next_event_collision_when_dense() {
        let p = test_particle();
        // Huge cross section: collision within a nanometre.
        let ev = next_event(&p, 1.0e9, (0.0, 1.0, 0.0, 1.0));
        assert!(matches!(ev, NextEvent::Collision(d) if d < 1e-8));
    }

    #[test]
    fn move_particle_debits_timers() {
        let mut p = test_particle();
        let sigma_t = 2.0;
        move_particle(&mut p, 0.25, sigma_t);
        assert!((p.x - 0.75).abs() < 1e-15);
        assert!((p.mfp_to_collision - 0.5).abs() < 1e-12);
        assert!(p.dt_to_census < 1.0e-7);
        // Timers never go negative.
        move_particle(&mut p, 1e9, sigma_t);
        assert_eq!(p.mfp_to_collision, 0.0);
        assert_eq!(p.dt_to_census, 0.0);
    }

    #[test]
    fn deposition_scales_linearly() {
        let micro = MicroXs {
            absorb_barns: 100.0,
            scatter_barns: 900.0,
        };
        let n = 1.0e27;
        let d1 = energy_deposition(1.0e6, 1.0, 0.1, n, micro);
        let d2 = energy_deposition(1.0e6, 2.0, 0.1, n, micro);
        let d3 = energy_deposition(1.0e6, 1.0, 0.2, n, micro);
        assert!(d1 > 0.0);
        assert!((d2 / d1 - 2.0).abs() < 1e-12);
        assert!((d3 / d1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn deposition_zero_in_vacuum() {
        let micro = MicroXs {
            absorb_barns: 0.0,
            scatter_barns: 0.0,
        };
        assert_eq!(energy_deposition(1.0e6, 1.0, 0.1, 1.0e27, micro), 0.0);
    }

    #[test]
    fn elastic_scatter_loses_energy_and_keeps_unit_direction() {
        let rng = Threefry2x64::new([3, 0]);
        let mut p = test_particle();
        let mut stream = CounterStream::new(&rng, p.key);
        for _ in 0..500 {
            let e_before = p.energy;
            elastic_scatter(&mut p, &mut stream);
            assert!(p.energy <= e_before);
            assert!(
                p.energy
                    >= e_before * neutral_xs::constants::min_elastic_retention(MASS_NO) * 0.999_999
            );
            let norm = p.omega_x.hypot(p.omega_y);
            assert!((norm - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn collision_analogue_conserves_or_kills() {
        let rng = Threefry2x64::new([4, 0]);
        let cfg = TransportConfig::default();
        let micro = MicroXs {
            absorb_barns: 500.0,
            scatter_barns: 500.0,
        };
        let mut counters = EventCounters::default();
        let mut alive = 0;
        for id in 0..200 {
            let mut p = test_particle();
            p.key = id;
            let mut stream = CounterStream::new(&rng, p.key);
            let w_before = p.weight;
            let died = handle_collision(&mut p, &mut stream, micro, &cfg, &mut counters);
            assert!(p.weight <= w_before);
            if !died {
                alive += 1;
                assert!(p.mfp_to_collision > 0.0);
            }
        }
        assert_eq!(counters.collisions, 200);
        assert_eq!(counters.absorptions + counters.scatters, 200);
        // p_absorb = 0.5: both branches must be exercised.
        assert!(counters.absorptions > 50 && counters.scatters > 50);
        assert!(alive > 0);
    }

    #[test]
    fn collision_implicit_capture_always_reduces_weight() {
        let rng = Threefry2x64::new([5, 0]);
        let cfg = TransportConfig {
            collision_model: CollisionModel::ImplicitCapture,
            ..Default::default()
        };
        let micro = MicroXs {
            absorb_barns: 250.0,
            scatter_barns: 750.0,
        };
        let mut counters = EventCounters::default();
        let mut p = test_particle();
        let mut stream = CounterStream::new(&rng, p.key);
        let died = handle_collision(&mut p, &mut stream, micro, &cfg, &mut counters);
        assert!(!died);
        assert!((p.weight - 0.75).abs() < 1e-12);
        assert_eq!(counters.scatters, 1);
        assert_eq!(counters.absorptions, 0);
    }

    #[test]
    fn weight_cutoff_kills_and_books_energy() {
        let rng = Threefry2x64::new([6, 0]);
        let cfg = TransportConfig {
            collision_model: CollisionModel::ImplicitCapture,
            weight_cutoff: 0.9,
            ..Default::default()
        };
        let micro = MicroXs {
            absorb_barns: 500.0,
            scatter_barns: 500.0,
        };
        let mut counters = EventCounters::default();
        let mut p = test_particle();
        let mut stream = CounterStream::new(&rng, p.key);
        let died = handle_collision(&mut p, &mut stream, micro, &cfg, &mut counters);
        assert!(died);
        assert!(p.dead);
        assert_eq!(counters.deaths, 1);
        assert!(counters.lost_energy_ev > 0.0);
    }

    #[test]
    fn facet_crossing_updates_cell_or_reflects() {
        let mesh = StructuredMesh2D::uniform(10, 10, 1.0, 1.0, 1.0);
        let mut counters = EventCounters::default();

        let mut p = test_particle();
        assert!(!handle_facet(&mut p, Facet::XHigh, &mesh, &mut counters));
        assert_eq!((p.cellx, p.celly), (6, 5));

        let mut p = test_particle();
        p.cellx = 9;
        let ox = p.omega_x;
        assert!(handle_facet(&mut p, Facet::XHigh, &mesh, &mut counters));
        assert_eq!(p.cellx, 9);
        assert_eq!(p.omega_x, -ox);
        assert_eq!(counters.facets, 2);
        assert_eq!(counters.reflections, 1);
    }
}
