//! Event instrumentation.
//!
//! Every transport driver counts the events it processes. The counters
//! serve three purposes:
//!
//! 1. **Validation** — e.g. the `stream` problem must produce ~7000 facet
//!    events per particle (paper §IV-B) and essentially zero collisions;
//! 2. **Profiling** — the per-method grind times and tally-share numbers
//!    of §VI-A are ratios of these counters and timed sections;
//! 3. **Architecture modelling** — `neutral-perf` maps the counters onto
//!    machine descriptors to reproduce the paper's cross-architecture
//!    figures (the hardware-substitution strategy of DESIGN.md §5).
//!
//! Counters are accumulated thread-locally as plain integers and merged
//! after the parallel region — they never touch the hot path with atomics.

/// Counts of everything that happened during a transport solve.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EventCounters {
    /// Collision events handled (absorption + elastic scatter).
    pub collisions: u64,
    /// Facet (cell-boundary) events handled.
    pub facets: u64,
    /// Census events (histories that reached the end of the timestep).
    pub census: u64,
    /// Collisions resolved as absorption.
    pub absorptions: u64,
    /// Collisions resolved as elastic scattering.
    pub scatters: u64,
    /// Boundary reflections (subset of facet events).
    pub reflections: u64,
    /// Histories terminated by the energy or weight cutoff.
    pub deaths: u64,
    /// Histories abandoned by the runaway guard (should be zero).
    pub stuck: u64,
    /// Flushes of the register-accumulated deposit onto the tally mesh —
    /// each one is an atomic read-modify-write in the shared-tally
    /// configuration (paper §V-C).
    pub tally_flushes: u64,
    /// Grid steps walked by the hinted cross-section searches (§VI-A).
    pub cs_search_steps: u64,
    /// Tally-flush passes that ran the cell-clustered (radix-sorted)
    /// flush — every pass under [`crate::SortPolicy::ByCell`], and
    /// exactly the passes the per-window heuristic enabled under
    /// [`crate::SortPolicy::Auto`]. A decision/work meter like
    /// `cs_search_steps`: it moves between sort policies without any
    /// physics change, so the policy-equality contract excludes it.
    pub clustered_flushes: u64,
    /// Cross-section table lookups performed.
    pub cs_lookups: u64,
    /// Subset of `cs_lookups` resolved through the batched
    /// `lookup_many` lane-block API (event-based and SoA drivers).
    pub batched_lookups: u64,
    /// Cell-centred density reads (the random mesh access, §VI-A).
    pub density_reads: u64,
    /// Facet crossings that changed the local material, forcing an extra
    /// cross-section re-resolution (multi-material scenarios only; always
    /// zero on the paper's single-material problems — DESIGN.md §12).
    pub material_switches: u64,
    /// Weighted energy (eV) carried by particles terminated at a cutoff.
    pub lost_energy_ev: f64,
    /// Weighted energy (eV) still in flight at the end of the solve.
    pub census_energy_ev: f64,
}

impl EventCounters {
    /// Merge another counter set into this one (used to reduce per-thread
    /// counters after a parallel region).
    pub fn merge(&mut self, other: &EventCounters) {
        self.collisions += other.collisions;
        self.facets += other.facets;
        self.census += other.census;
        self.absorptions += other.absorptions;
        self.scatters += other.scatters;
        self.reflections += other.reflections;
        self.deaths += other.deaths;
        self.stuck += other.stuck;
        self.tally_flushes += other.tally_flushes;
        self.cs_search_steps += other.cs_search_steps;
        self.clustered_flushes += other.clustered_flushes;
        self.cs_lookups += other.cs_lookups;
        self.batched_lookups += other.batched_lookups;
        self.density_reads += other.density_reads;
        self.material_switches += other.material_switches;
        self.lost_energy_ev += other.lost_energy_ev;
        self.census_energy_ev += other.census_energy_ev;
    }

    /// Deterministically merge per-lane counter sets, in lane order.
    ///
    /// The integer fields are order-insensitive sums, but the energy
    /// fields are `f64` accumulations: merging them thread-by-thread
    /// would make their bits depend on the worker count. This merge uses
    /// the same pairwise (binary-tree) reduction as the tally subsystem
    /// (`neutral_mesh::accum`), so a lane-decomposed run reports
    /// bitwise-identical counters for any worker count.
    #[must_use]
    pub fn merge_deterministic(parts: &[EventCounters]) -> EventCounters {
        let mut out = EventCounters::default();
        for p in parts {
            out.merge(p);
        }
        // Re-do the f64 fields pairwise, in lane order.
        let lost: Vec<f64> = parts.iter().map(|p| p.lost_energy_ev).collect();
        let census: Vec<f64> = parts.iter().map(|p| p.census_energy_ev).collect();
        out.lost_energy_ev = neutral_mesh::accum::pairwise_sum(&lost);
        out.census_energy_ev = neutral_mesh::accum::pairwise_sum(&census);
        out
    }

    /// Total of the three tracked event types.
    #[must_use]
    pub fn total_events(&self) -> u64 {
        self.collisions + self.facets + self.census
    }

    /// Facet events per census-reaching or terminated history.
    #[must_use]
    pub fn facets_per_history(&self) -> f64 {
        let histories = self.census + self.deaths;
        if histories == 0 {
            0.0
        } else {
            self.facets as f64 / histories as f64
        }
    }

    /// Collision events per history.
    #[must_use]
    pub fn collisions_per_history(&self) -> f64 {
        let histories = self.census + self.deaths;
        if histories == 0 {
            0.0
        } else {
            self.collisions as f64 / histories as f64
        }
    }

    /// Mean hinted-search walk length per cross-section lookup.
    #[must_use]
    pub fn mean_search_steps(&self) -> f64 {
        if self.cs_lookups == 0 {
            0.0
        } else {
            self.cs_search_steps as f64 / self.cs_lookups as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = EventCounters {
            collisions: 1,
            facets: 2,
            census: 3,
            lost_energy_ev: 0.5,
            ..Default::default()
        };
        let b = EventCounters {
            collisions: 10,
            facets: 20,
            census: 30,
            lost_energy_ev: 1.5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.collisions, 11);
        assert_eq!(a.facets, 22);
        assert_eq!(a.census, 33);
        assert!((a.lost_energy_ev - 2.0).abs() < 1e-12);
        assert_eq!(a.total_events(), 66);
    }

    #[test]
    fn deterministic_merge_is_order_of_workers_free() {
        // Lane partials with energies whose sum order matters in f64.
        let parts: Vec<EventCounters> = (0..7)
            .map(|i| EventCounters {
                collisions: i,
                lost_energy_ev: 1.0e10 / (i as f64 + 1.0) + 1.0e-6 * i as f64,
                census_energy_ev: 3.0f64.powi(i as i32),
                ..Default::default()
            })
            .collect();
        let a = EventCounters::merge_deterministic(&parts);
        let b = EventCounters::merge_deterministic(&parts);
        assert_eq!(a.lost_energy_ev.to_bits(), b.lost_energy_ev.to_bits());
        assert_eq!(a.census_energy_ev.to_bits(), b.census_energy_ev.to_bits());
        assert_eq!(a.collisions, 21);
        // ...and it is close to (though not necessarily bit-equal with)
        // the sequential fold.
        let mut seq = EventCounters::default();
        for p in &parts {
            seq.merge(p);
        }
        assert!((a.lost_energy_ev - seq.lost_energy_ev).abs() < 1e-3);
    }

    #[test]
    fn per_history_ratios() {
        let c = EventCounters {
            facets: 700,
            collisions: 70,
            census: 8,
            deaths: 2,
            ..Default::default()
        };
        assert!((c.facets_per_history() - 70.0).abs() < 1e-12);
        assert!((c.collisions_per_history() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn ratios_handle_zero_histories() {
        let c = EventCounters::default();
        assert_eq!(c.facets_per_history(), 0.0);
        assert_eq!(c.mean_search_steps(), 0.0);
    }
}
