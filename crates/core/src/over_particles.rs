//! Drivers for the **Over Particles** parallelisation scheme (paper §V-A):
//! each worker follows whole particle histories from birth to census.
//!
//! Three drivers share the same inner loop ([`crate::history`]):
//!
//! * [`run_sequential`] — the single-threaded baseline, generic over any
//!   tally sink;
//! * [`run_rayon`] — work-stealing data parallelism over particles via
//!   Rayon (the idiomatic Rust equivalent of `#pragma omp parallel for`),
//!   atomic tally;
//! * [`run_scheduled`] — explicit threads with OpenMP-style
//!   static/dynamic/guided scheduling (for the Fig 4/6 studies), with
//!   either the shared atomic tally or per-thread privatised tallies
//!   (Fig 7).
//!
//! All three resolve cross sections through the configured
//! [`crate::config::LookupStrategy`] (via the history loop's shared
//! `resolve_micro_xs` seam), so the lookup backend is swappable without
//! touching any driver.

use crate::counters::EventCounters;
use crate::events::TallySink;
use crate::history::{track_to_census, TransportCtx};
use crate::particle::{total_weighted_energy, total_weighted_energy_ordered, Particle};
use crate::scheduler::{parallel_for_owned, parallel_for_stateful, Schedule, SharedSliceMut};
use neutral_mesh::tally::{AtomicTally, PrivatizedTally};
use neutral_mesh::{LanePartition, LaneSink, TallyAccum};
use neutral_rng::CbRng;
use rayon::prelude::*;

/// Track every particle to census on the current thread.
pub fn run_sequential<R: CbRng, T: TallySink>(
    particles: &mut [Particle],
    ctx: &TransportCtx<'_, R>,
    tally: &mut T,
) -> EventCounters {
    let mut counters = EventCounters::default();
    for p in particles.iter_mut() {
        track_to_census(p, ctx, tally, &mut counters);
    }
    counters.census_energy_ev = total_weighted_energy(particles);
    counters
}

/// Track every particle to census on Rayon's current thread pool, tallying
/// into the shared atomic mesh.
///
/// Counters are folded per worker task and reduced — nothing but the tally
/// itself is shared between threads, mirroring the OpenMP implementation
/// where the tally atomics are the only synchronisation (§V-A: "Thread
/// synchronisation is minimised"). Work is dealt in contiguous chunks with
/// the same policy as the SoA driver, so the Figure 5 layout comparison
/// isolates the layout and not the scheduling granularity.
pub fn run_rayon<R: CbRng>(
    particles: &mut [Particle],
    ctx: &TransportCtx<'_, R>,
    tally: &AtomicTally,
) -> EventCounters {
    let chunk = rayon_chunk_size(particles.len());
    let mut counters = particles
        .par_chunks_mut(chunk)
        .fold(EventCounters::default, |mut local, chunk| {
            let mut sink = tally;
            for p in chunk {
                track_to_census(p, ctx, &mut sink, &mut local);
            }
            local
        })
        .reduce(EventCounters::default, |mut a, b| {
            a.merge(&b);
            a
        });
    counters.census_energy_ev = total_weighted_energy(particles);
    counters
}

/// Chunk size shared by the Rayon AoS and SoA drivers: ~8 chunks per
/// worker for stealing slack, but never so small that per-chunk overhead
/// dominates.
#[must_use]
pub fn rayon_chunk_size(n: usize) -> usize {
    (n / (rayon::current_num_threads() * 8)).max(64)
}

/// Tally backend for the scheduled driver.
pub enum ScheduledTally<'a> {
    /// Shared mesh with atomic read-modify-write updates.
    Atomic(&'a AtomicTally),
    /// One private mesh per thread, merged after the solve (§VI-F). The
    /// tally must have been created with `n_threads` slots.
    Privatized(&'a mut PrivatizedTally),
}

/// Track every particle on `n_threads` explicit threads under the given
/// OpenMP-style schedule.
pub fn run_scheduled<R: CbRng>(
    particles: &mut [Particle],
    ctx: &TransportCtx<'_, R>,
    tally: ScheduledTally<'_>,
    n_threads: usize,
    schedule: Schedule,
) -> EventCounters {
    assert!(n_threads > 0, "need at least one thread");
    let n = particles.len();
    let shared = SharedSliceMut::new(particles);

    let mut merged = EventCounters::default();
    match tally {
        ScheduledTally::Atomic(tally) => {
            let mut states: Vec<EventCounters> = vec![EventCounters::default(); n_threads];
            parallel_for_stateful(n, schedule, &mut states, |local, range| {
                // SAFETY: scheduler ranges are disjoint (see SharedSliceMut).
                let chunk = unsafe { shared.range_mut(range) };
                let mut sink = tally;
                for p in chunk {
                    track_to_census(p, ctx, &mut sink, local);
                }
            });
            for s in &states {
                merged.merge(s);
            }
        }
        ScheduledTally::Privatized(tally) => {
            assert_eq!(
                tally.num_slots(),
                n_threads,
                "privatised tally must have one slot per thread"
            );
            let mut states: Vec<(EventCounters, &mut neutral_mesh::tally::TallySlot)> = tally
                .slots_mut()
                .map(|slot| (EventCounters::default(), slot))
                .collect();
            parallel_for_stateful(n, schedule, &mut states, |(local, slot), range| {
                // SAFETY: scheduler ranges are disjoint (see SharedSliceMut).
                let chunk = unsafe { shared.range_mut(range) };
                for p in chunk {
                    track_to_census(p, ctx, &mut *slot, local);
                }
            });
            for (s, _) in &states {
                merged.merge(s);
            }
        }
    }
    merged.census_energy_ev = total_weighted_energy(particles);
    merged
}

/// Track every particle on `n_threads` workers with the pluggable tally
/// subsystem: the particle list is cut into the accumulator's fixed lanes
/// ([`LanePartition`]), whole lanes are scheduled across the workers, and
/// each lane deposits through its own [`LaneSink`]. Per-lane counters are
/// merged with the deterministic pairwise reduction, so for the
/// deterministic backends the merged tally *and* the counters are bitwise
/// identical for any `n_threads`.
///
/// `order`, when present, is the identity map of a regrouped population
/// (`order[k]` = physical position of the particle with key `k`, a
/// permutation of `0..n` that never crosses a lane boundary): each lane
/// then tracks *its own* particles in ascending key order, so every
/// deposit and counter accumulates in exactly the sequence the
/// unregrouped run produces — the identity-remap invariant of
/// DESIGN.md §14. One extra gather per history; the history itself still
/// runs register-resident.
pub fn run_lanes<R: CbRng>(
    particles: &mut [Particle],
    ctx: &TransportCtx<'_, R>,
    accum: &mut TallyAccum,
    n_threads: usize,
    schedule: Schedule,
    order: Option<&[u32]>,
) -> EventCounters {
    let part = LanePartition::new(particles.len(), accum.n_lanes());
    let partials = run_lanes_partitioned(particles, ctx, accum, n_threads, schedule, order, part);
    let mut merged = EventCounters::merge_deterministic(&partials);
    merged.census_energy_ev = match order {
        Some(ord) => total_weighted_energy_ordered(particles, ord),
        None => total_weighted_energy(particles),
    };
    merged
}

/// The lane loop of [`run_lanes`] over an *explicit* partition, returning
/// the raw per-lane counters instead of the deterministic merge.
///
/// This is the sharding seam: a shard holds a contiguous run of the
/// global lane space, so it must process its particles with the *global*
/// `lane_size` (a tail shard's local `LanePartition::new` would compute a
/// smaller one) and hand its per-lane partials — tally lanes via
/// [`TallyAccum::lane_partial`], counters via this return value — to the
/// coordinator, which replays the global pairwise merges. The census
/// energy field of each partial is left untouched (zero): the caller owns
/// that fold.
pub fn run_lanes_partitioned<R: CbRng>(
    particles: &mut [Particle],
    ctx: &TransportCtx<'_, R>,
    accum: &mut TallyAccum,
    n_threads: usize,
    schedule: Schedule,
    order: Option<&[u32]>,
    part: LanePartition,
) -> Vec<EventCounters> {
    assert!(n_threads > 0, "need at least one thread");
    assert_eq!(
        part.n_items,
        particles.len(),
        "partition must cover the slice"
    );
    if let Some(ord) = order {
        assert_eq!(ord.len(), particles.len(), "order must be a permutation");
    }
    let shared = SharedSliceMut::new(particles);

    let mut states: Vec<(LaneSink<'_>, EventCounters)> = accum
        .lane_views()
        .into_iter()
        .take(part.n_lanes)
        .map(|view| (view, EventCounters::default()))
        .collect();
    parallel_for_owned(
        n_threads,
        schedule.lane_granular(),
        &mut states,
        |lane, (sink, local)| match order {
            None => {
                // SAFETY: lane ranges are disjoint (see LanePartition).
                let chunk = unsafe { shared.range_mut(part.range(lane)) };
                for p in chunk {
                    track_to_census(p, ctx, sink, local);
                }
            }
            Some(ord) => {
                for &pos in &ord[part.range(lane)] {
                    let pos = pos as usize;
                    // SAFETY: `order` is a permutation, and the key
                    // ranges of distinct lanes are disjoint, so distinct
                    // lanes touch disjoint physical positions.
                    let p = unsafe { &mut shared.range_mut(pos..pos + 1)[0] };
                    track_to_census(p, ctx, sink, local);
                }
            }
        },
    );

    states.iter().map(|(_, c)| *c).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ProblemScale, TestCase};
    use crate::particle::spawn_particles;
    use neutral_mesh::tally::SequentialTally;
    use neutral_rng::Threefry2x64;

    struct Fixture {
        problem: crate::config::Problem,
        rng: Threefry2x64,
    }

    impl Fixture {
        fn new(case: TestCase) -> Self {
            let problem = case.build(ProblemScale::tiny(), 99);
            let rng = Threefry2x64::new([problem.seed, 1]);
            Self { problem, rng }
        }

        fn ctx(&self) -> TransportCtx<'_, Threefry2x64> {
            TransportCtx {
                mesh: &self.problem.mesh,
                materials: &self.problem.materials,
                rng: &self.rng,
                cfg: &self.problem.transport,
            }
        }
    }

    /// All drivers must produce identical particle states and counters,
    /// and tallies equal up to floating-point summation order.
    #[test]
    fn drivers_agree_with_sequential() {
        for case in TestCase::ALL {
            let fx = Fixture::new(case);
            let cells = fx.problem.mesh.num_cells();

            let mut seq_particles = spawn_particles(&fx.problem);
            let mut seq_tally = SequentialTally::new(cells);
            let seq_counters = run_sequential(&mut seq_particles, &fx.ctx(), &mut seq_tally);

            // Rayon driver.
            let mut ray_particles = spawn_particles(&fx.problem);
            let ray_tally = AtomicTally::new(cells);
            let ray_counters = run_rayon(&mut ray_particles, &fx.ctx(), &ray_tally);
            assert_eq!(seq_particles, ray_particles, "{case:?}: particle states");
            assert_eq!(
                seq_counters.total_events(),
                ray_counters.total_events(),
                "{case:?}: event counts"
            );
            assert_tallies_close(seq_tally.values(), &ray_tally.snapshot(), case);

            // Scheduled driver, dynamic schedule, atomic tally.
            let mut sch_particles = spawn_particles(&fx.problem);
            let sch_tally = AtomicTally::new(cells);
            let sch_counters = run_scheduled(
                &mut sch_particles,
                &fx.ctx(),
                ScheduledTally::Atomic(&sch_tally),
                4,
                Schedule::Dynamic { chunk: 16 },
            );
            assert_eq!(seq_particles, sch_particles, "{case:?}: scheduled states");
            assert_eq!(seq_counters.collisions, sch_counters.collisions);
            assert_tallies_close(seq_tally.values(), &sch_tally.snapshot(), case);

            // Scheduled driver, privatised tally.
            let mut prv_particles = spawn_particles(&fx.problem);
            let mut prv_tally = PrivatizedTally::new(3, cells);
            let prv_counters = run_scheduled(
                &mut prv_particles,
                &fx.ctx(),
                ScheduledTally::Privatized(&mut prv_tally),
                3,
                Schedule::Static { chunk: Some(8) },
            );
            assert_eq!(seq_particles, prv_particles, "{case:?}: privatised states");
            assert_eq!(seq_counters.facets, prv_counters.facets);
            assert_tallies_close(seq_tally.values(), &prv_tally.merge(), case);
        }
    }

    fn assert_tallies_close(a: &[f64], b: &[f64], case: TestCase) {
        assert_eq!(a.len(), b.len());
        let total_a: f64 = a.iter().sum();
        let total_b: f64 = b.iter().sum();
        let scale = total_a.abs().max(1e-30);
        assert!(
            ((total_a - total_b) / scale).abs() < 1e-9,
            "{case:?}: tally totals differ: {total_a} vs {total_b}"
        );
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            let cell_scale = x.abs().max(scale * 1e-12);
            assert!(
                ((x - y) / cell_scale).abs() < 1e-6,
                "{case:?}: cell {i} differs: {x} vs {y}"
            );
        }
    }

    #[test]
    fn privatised_run_is_bitwise_reproducible() {
        let fx = Fixture::new(TestCase::Csp);
        let cells = fx.problem.mesh.num_cells();
        let run = || {
            let mut particles = spawn_particles(&fx.problem);
            let mut tally = PrivatizedTally::new(4, cells);
            run_scheduled(
                &mut particles,
                &fx.ctx(),
                ScheduledTally::Privatized(&mut tally),
                4,
                Schedule::Static { chunk: None },
            );
            tally.merge()
        };
        let a = run();
        let b = run();
        // Static schedule + fixed thread count + deterministic merge order
        // => bitwise identical results.
        assert!(a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn lane_driver_is_worker_count_invariant() {
        use neutral_mesh::TallyStrategy;
        let fx = Fixture::new(TestCase::Csp);
        let cells = fx.problem.mesh.num_cells();
        let run = |strategy: TallyStrategy, threads: usize, schedule: Schedule| {
            let mut particles = spawn_particles(&fx.problem);
            let mut accum = TallyAccum::new(strategy, cells, 16);
            let counters = run_lanes(
                &mut particles,
                &fx.ctx(),
                &mut accum,
                threads,
                schedule,
                None,
            );
            (accum.merge(), counters, particles)
        };
        for strategy in [TallyStrategy::Replicated, TallyStrategy::Privatized] {
            let (base_tally, base_counters, base_particles) =
                run(strategy, 1, Schedule::Static { chunk: None });
            for (threads, schedule) in [
                (2, Schedule::Dynamic { chunk: 64 }),
                (7, Schedule::Guided { min_chunk: 2 }),
                (4, Schedule::Static { chunk: Some(8) }),
            ] {
                let (tally, counters, particles) = run(strategy, threads, schedule);
                assert_eq!(particles, base_particles, "{strategy:?}/{threads}");
                assert_eq!(counters, base_counters, "{strategy:?}/{threads}");
                assert!(
                    tally
                        .iter()
                        .zip(&base_tally)
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "{strategy:?}/{threads}: merged tally bits differ"
                );
            }
        }
        // The atomic backend computes the same physics (same deposit
        // multiset), just without the bitwise guarantee.
        let (atomic, counters, _) = run(TallyStrategy::Atomic, 7, Schedule::Dynamic { chunk: 8 });
        let (replicated, base_counters, _) = run(
            TallyStrategy::Replicated,
            1,
            Schedule::Static { chunk: None },
        );
        assert_eq!(counters.collisions, base_counters.collisions);
        for (a, b) in atomic.iter().zip(&replicated) {
            assert!((a - b).abs() <= 1e-9 * a.abs().max(1e-30));
        }
    }

    #[test]
    fn census_energy_reported() {
        let fx = Fixture::new(TestCase::Stream);
        let mut particles = spawn_particles(&fx.problem);
        let mut tally = SequentialTally::new(fx.problem.mesh.num_cells());
        let counters = run_sequential(&mut particles, &fx.ctx(), &mut tally);
        // Vacuum: all particles survive at full energy.
        let expect = fx.problem.n_particles as f64 * fx.problem.initial_energy_ev;
        assert!((counters.census_energy_ev - expect).abs() / expect < 1e-12);
    }
}
