//! Crash-safe checkpoint/restart of a transport solve, plus the
//! fault-injection harness that proves it (DESIGN.md §15).
//!
//! A checkpoint captures the **complete resumable state** of a solve at a
//! census boundary: every particle record (position, direction, energy,
//! weight, event timers, cell, cached table hints, and — crucially — the
//! per-particle counter-based RNG key/counter pair, which makes each
//! record self-contained: re-opening stream `key` at `rng_counter`
//! reproduces the next draw exactly, even mid-block), the accumulated
//! tally mesh and event counters, the timestep index, and a fingerprint
//! of the full problem/`TransportConfig` so a checkpoint can never be
//! resumed against a different problem silently.
//!
//! # Format (version 1)
//!
//! Little-endian, length-prefixed, checksummed:
//!
//! ```text
//! magic "NEUTCKPT" | version u32 | payload_len u64 | payload | fnv1a64 u64
//! ```
//!
//! The checksum is FNV-1a 64 — the same hasher the golden-tally fixtures
//! use — computed over every preceding byte (magic and version included).
//! FNV-1a's per-byte step is bijective in the running hash, so any
//! single-byte corruption is detected with certainty; `payload_len` lets
//! the reader distinguish a torn (truncated) file from a bit-flipped one
//! and report the actual cause.
//!
//! # Crash safety
//!
//! [`CheckpointStore::save`] never overwrites the last good checkpoint in
//! place: the current primary is first rotated to a `.prev` fallback,
//! then the new bytes are written to a writer-unique temporary file
//! (pid + counter suffix, so concurrent writers cannot clobber each
//! other's temp bytes), fsynced, and atomically renamed over the
//! primary — and after each rename the parent directory is fsynced,
//! because the rename lives in the directory entry and would otherwise
//! not be durable across a power loss. A crash at any point leaves
//! either the new checkpoint, or the fallback, valid on disk;
//! [`CheckpointStore::load`] transparently falls back (reporting why) when
//! the primary is missing, torn or corrupt.
//!
//! # Fault injection
//!
//! [`FaultPlan`] deterministically injects the failure modes the loader
//! must survive — torn writes (`torn@N[:KEEP]`), bit flips
//! (`bitflip@N[:OFFSET]`) and process kills (`kill@N`, which crash the
//! solve *before* the boundary-N checkpoint is written) — by deliberately
//! bypassing the atomic-write protocol. [`run_with_checkpoints`] threads
//! a plan through a solve; the restart test suite asserts every fault is
//! either recovered from the last valid checkpoint or surfaced as a hard
//! error naming the cause, and that every interrupt/resume schedule
//! reproduces the uninterrupted run bit for bit.

use crate::config::Problem;
use crate::counters::EventCounters;
use crate::particle::Particle;
use crate::sim::{RunOptions, RunReport, Simulation, Solve};
use neutral_xs::XsHints;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// File magic of the checkpoint format.
pub const MAGIC: &[u8; 8] = b"NEUTCKPT";

/// Current format version.
pub const VERSION: u32 = 1;

/// Bytes before the payload: magic + version + payload length.
const HEADER_LEN: usize = 8 + 4 + 8;

/// Serialized size of one particle record (shared with the shard-result
/// codec in [`crate::shard`]).
pub(crate) const PARTICLE_RECORD_LEN: usize = 8 * 8 + 4 * 4 + 2 * 8 + 1;

/// Append one particle record in the checkpoint wire layout.
pub(crate) fn put_particle(out: &mut Vec<u8>, p: &Particle) {
    for v in [
        p.x,
        p.y,
        p.omega_x,
        p.omega_y,
        p.energy,
        p.weight,
        p.dt_to_census,
        p.mfp_to_collision,
    ] {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    for v in [p.cellx, p.celly, p.xs_hints.absorb, p.xs_hints.scatter] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out.extend_from_slice(&p.key.to_le_bytes());
    out.extend_from_slice(&p.rng_counter.to_le_bytes());
    out.push(u8::from(p.dead));
}

/// Serialized size of one [`EventCounters`] block (15 integer counters
/// plus the two energy residuals as `f64` bits).
pub(crate) const COUNTERS_RECORD_LEN: usize = 17 * 8;

/// Append one counters block in the checkpoint wire layout.
pub(crate) fn put_counters(out: &mut Vec<u8>, c: &EventCounters) {
    for v in [
        c.collisions,
        c.facets,
        c.census,
        c.absorptions,
        c.scatters,
        c.reflections,
        c.deaths,
        c.stuck,
        c.tally_flushes,
        c.cs_search_steps,
        c.clustered_flushes,
        c.cs_lookups,
        c.batched_lookups,
        c.density_reads,
        c.material_switches,
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out.extend_from_slice(&c.lost_energy_ev.to_bits().to_le_bytes());
    out.extend_from_slice(&c.census_energy_ev.to_bits().to_le_bytes());
}

/// Read one counters block in the checkpoint wire layout.
pub(crate) fn read_counters(r: &mut Reader<'_>) -> Result<EventCounters, CheckpointError> {
    let mut counters = EventCounters {
        collisions: r.u64()?,
        facets: r.u64()?,
        census: r.u64()?,
        absorptions: r.u64()?,
        scatters: r.u64()?,
        reflections: r.u64()?,
        deaths: r.u64()?,
        stuck: r.u64()?,
        tally_flushes: r.u64()?,
        cs_search_steps: r.u64()?,
        clustered_flushes: r.u64()?,
        cs_lookups: r.u64()?,
        batched_lookups: r.u64()?,
        density_reads: r.u64()?,
        material_switches: r.u64()?,
        ..Default::default()
    };
    counters.lost_energy_ev = r.f64()?;
    counters.census_energy_ev = r.f64()?;
    Ok(counters)
}

/// Read one particle record in the checkpoint wire layout.
pub(crate) fn read_particle(r: &mut Reader<'_>) -> Result<Particle, CheckpointError> {
    Ok(Particle {
        x: r.f64()?,
        y: r.f64()?,
        omega_x: r.f64()?,
        omega_y: r.f64()?,
        energy: r.f64()?,
        weight: r.f64()?,
        dt_to_census: r.f64()?,
        mfp_to_collision: r.f64()?,
        cellx: r.u32()?,
        celly: r.u32()?,
        xs_hints: XsHints {
            absorb: r.u32()?,
            scatter: r.u32()?,
        },
        key: r.u64()?,
        rng_counter: r.u64()?,
        dead: r.u8()? != 0,
    })
}

/// FNV-1a 64-bit over a byte stream — the same hash the golden-tally
/// fixtures lock with (`neutral-integration`'s `golden::fnv1a64`).
#[must_use]
pub fn fnv1a64(bytes: impl Iterator<Item = u8>) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Everything that can go wrong loading or resuming a checkpoint. Every
/// variant names its cause — corruption is never silently absorbed.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem error reading or writing checkpoint files.
    Io(std::io::Error),
    /// No checkpoint exists at the store's path (fresh start).
    NotFound,
    /// The file does not start with the checkpoint magic.
    BadMagic,
    /// The file's format version is not supported by this build.
    UnsupportedVersion(u32),
    /// The file is shorter than its own length prefix promises — the
    /// signature of a torn write.
    Truncated,
    /// The FNV-1a checksum does not match the file's bytes — the
    /// signature of in-place corruption (e.g. a bit flip).
    ChecksumMismatch {
        /// Checksum stored in the file.
        expected: u64,
        /// Checksum recomputed over the file's bytes.
        found: u64,
    },
    /// The checkpoint was written by a different problem/transport
    /// configuration and must not be resumed.
    ConfigMismatch {
        /// Fingerprint of the problem being resumed.
        expected: u64,
        /// Fingerprint stored in the checkpoint.
        found: u64,
    },
    /// The file checksums correctly but its contents are inconsistent
    /// (impossible counts, non-permutation keys, trailing bytes, ...).
    Corrupt(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::NotFound => write!(f, "no checkpoint found"),
            CheckpointError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v} (this build reads {VERSION})")
            }
            CheckpointError::Truncated => {
                write!(f, "checkpoint truncated (torn write: file shorter than its length prefix)")
            }
            CheckpointError::ChecksumMismatch { expected, found } => write!(
                f,
                "checkpoint checksum mismatch (stored {expected:#018x}, computed {found:#018x}): file corrupted"
            ),
            CheckpointError::ConfigMismatch { expected, found } => write!(
                f,
                "checkpoint belongs to a different problem (config fingerprint {found:#018x}, this problem is {expected:#018x})"
            ),
            CheckpointError::Corrupt(msg) => write!(f, "checkpoint corrupt: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::NotFound {
            CheckpointError::NotFound
        } else {
            CheckpointError::Io(e)
        }
    }
}

/// Fingerprint of everything a checkpoint must agree with the resuming
/// problem on: mesh shape, particle count, timestep controls, seed, and
/// the full [`crate::config::TransportConfig`]. Two problems that could
/// produce different trajectories get different fingerprints; resuming
/// across a mismatch is a hard [`CheckpointError::ConfigMismatch`].
#[must_use]
pub fn config_fingerprint(problem: &Problem) -> u64 {
    let mut bytes: Vec<u8> = Vec::with_capacity(256);
    bytes.extend_from_slice(&problem.seed.to_le_bytes());
    bytes.extend_from_slice(&(problem.n_particles as u64).to_le_bytes());
    bytes.extend_from_slice(&problem.dt.to_bits().to_le_bytes());
    bytes.extend_from_slice(&(problem.n_timesteps as u64).to_le_bytes());
    bytes.extend_from_slice(&problem.initial_energy_ev.to_bits().to_le_bytes());
    bytes.extend_from_slice(&(problem.mesh.nx() as u64).to_le_bytes());
    bytes.extend_from_slice(&(problem.mesh.ny() as u64).to_le_bytes());
    bytes.extend_from_slice(&problem.mesh.width().to_bits().to_le_bytes());
    bytes.extend_from_slice(&problem.mesh.height().to_bits().to_le_bytes());
    bytes.extend_from_slice(&(problem.materials.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&problem.source.x0.to_bits().to_le_bytes());
    bytes.extend_from_slice(&problem.source.x1.to_bits().to_le_bytes());
    bytes.extend_from_slice(&problem.source.y0.to_bits().to_le_bytes());
    bytes.extend_from_slice(&problem.source.y1.to_bits().to_le_bytes());
    // The transport knobs (enums and floats alike) through their stable
    // Debug rendering — any knob that can change a trajectory is in here.
    bytes.extend_from_slice(format!("{:?}", problem.transport).as_bytes());
    fnv1a64(bytes.into_iter())
}

/// A complete resumable solve snapshot, taken at a census boundary.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// [`config_fingerprint`] of the problem that wrote this checkpoint.
    pub fingerprint: u64,
    /// Next timestep to execute (= timesteps already completed).
    pub next_step: usize,
    /// Total timesteps of the solve (sanity cross-check).
    pub n_timesteps: usize,
    /// Solve wall-clock accumulated so far.
    pub elapsed: Duration,
    /// Last reported tally footprint (bytes).
    pub tally_footprint_bytes: usize,
    /// Event counters accumulated over the completed timesteps.
    pub counters: EventCounters,
    /// Accumulated energy-deposition tally (merged mesh).
    pub tally: Vec<f64>,
    /// The full particle population, in current (possibly regrouped)
    /// storage order; each record carries its own identity and RNG state.
    pub particles: Vec<Particle>,
}

impl Checkpoint {
    /// Serialize to the versioned, length-prefixed, checksummed format.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let payload_len = 5 * 8
            + 17 * 8
            + 8
            + self.tally.len() * 8
            + 8
            + self.particles.len() * PARTICLE_RECORD_LEN;
        let mut out = Vec::with_capacity(HEADER_LEN + payload_len + 8);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(payload_len as u64).to_le_bytes());

        let put_u64 = |out: &mut Vec<u8>, v: u64| out.extend_from_slice(&v.to_le_bytes());
        let put_f64 = |out: &mut Vec<u8>, v: f64| out.extend_from_slice(&v.to_bits().to_le_bytes());

        put_u64(&mut out, self.fingerprint);
        put_u64(&mut out, self.next_step as u64);
        put_u64(&mut out, self.n_timesteps as u64);
        put_u64(&mut out, self.elapsed.as_nanos() as u64);
        put_u64(&mut out, self.tally_footprint_bytes as u64);

        put_counters(&mut out, &self.counters);

        put_u64(&mut out, self.tally.len() as u64);
        for &v in &self.tally {
            put_f64(&mut out, v);
        }

        put_u64(&mut out, self.particles.len() as u64);
        for p in &self.particles {
            put_particle(&mut out, p);
        }

        debug_assert_eq!(out.len(), HEADER_LEN + payload_len);
        let checksum = fnv1a64(out.iter().copied());
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Parse and validate a checkpoint, naming the failure cause: torn
    /// files report [`CheckpointError::Truncated`], in-place corruption
    /// reports [`CheckpointError::ChecksumMismatch`], inconsistent (but
    /// correctly-checksummed) contents report [`CheckpointError::Corrupt`].
    pub fn from_bytes(buf: &[u8]) -> Result<Self, CheckpointError> {
        if buf.len() < 8 {
            return Err(CheckpointError::Truncated);
        }
        if &buf[..8] != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        if buf.len() < HEADER_LEN {
            return Err(CheckpointError::Truncated);
        }
        let version = u32::from_le_bytes(buf[8..12].try_into().unwrap());
        if version != VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        // The length field is corruption-controlled: validate it against
        // the actual buffer length (in wide arithmetic, so a flipped high
        // bit cannot overflow the total) before it is used for anything —
        // an oversized claim reads as Truncated, never as an allocation.
        let payload_len = u64::from_le_bytes(buf[12..20].try_into().unwrap());
        let total_wide = HEADER_LEN as u128 + payload_len as u128 + 8;
        if (buf.len() as u128) < total_wide {
            return Err(CheckpointError::Truncated);
        }
        let total = total_wide as usize; // fits: bounded by buf.len()
        debug_assert!(total <= buf.len());
        if buf.len() > total {
            return Err(CheckpointError::Corrupt(format!(
                "{} trailing bytes after checksum",
                buf.len() - total
            )));
        }
        let expected = u64::from_le_bytes(buf[total - 8..].try_into().unwrap());
        let found = fnv1a64(buf[..total - 8].iter().copied());
        if expected != found {
            return Err(CheckpointError::ChecksumMismatch { expected, found });
        }

        let mut r = Reader {
            buf: &buf[HEADER_LEN..total - 8],
            pos: 0,
        };
        let fingerprint = r.u64()?;
        let next_step = r.u64()? as usize;
        let n_timesteps = r.u64()? as usize;
        let elapsed = Duration::from_nanos(r.u64()?);
        let tally_footprint_bytes = r.u64()? as usize;

        let counters = read_counters(&mut r)?;

        let n_tally = r.u64()? as usize;
        // checked_mul: the count is corruption-controlled, and a wrapping
        // product could sneak a huge count past the size guard and into
        // Vec::with_capacity.
        let tally_bytes = n_tally.checked_mul(8).ok_or_else(|| {
            CheckpointError::Corrupt(format!("tally count {n_tally} exceeds payload"))
        })?;
        if tally_bytes > r.remaining() {
            return Err(CheckpointError::Corrupt(format!(
                "tally count {n_tally} exceeds payload"
            )));
        }
        let mut tally = Vec::with_capacity(n_tally);
        for _ in 0..n_tally {
            tally.push(r.f64()?);
        }

        let n_particles = r.u64()? as usize;
        let particle_bytes = n_particles
            .checked_mul(PARTICLE_RECORD_LEN)
            .ok_or_else(|| {
                CheckpointError::Corrupt(format!(
                    "particle count {n_particles} inconsistent with payload size"
                ))
            })?;
        if particle_bytes != r.remaining() {
            return Err(CheckpointError::Corrupt(format!(
                "particle count {n_particles} inconsistent with payload size"
            )));
        }
        let mut particles = Vec::with_capacity(n_particles);
        for _ in 0..n_particles {
            particles.push(read_particle(&mut r)?);
        }

        if next_step > n_timesteps {
            return Err(CheckpointError::Corrupt(format!(
                "next_step {next_step} exceeds n_timesteps {n_timesteps}"
            )));
        }

        Ok(Self {
            fingerprint,
            next_step,
            n_timesteps,
            elapsed,
            tally_footprint_bytes,
            counters,
            tally,
            particles,
        })
    }
}

/// Bounds-checked little-endian payload reader (shared with the
/// shard-result codec in [`crate::shard`]).
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&[u8], CheckpointError> {
        if self.remaining() < n {
            // The length prefix and checksum agreed, so an overrun here is
            // an internally-inconsistent payload, not a torn file.
            return Err(CheckpointError::Corrupt(
                "payload ends mid-field".to_owned(),
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }
}

/// How [`CheckpointStore::load`] obtained the checkpoint it returned.
#[derive(Debug)]
pub enum Recovery {
    /// The primary checkpoint file was valid.
    Primary,
    /// The primary was missing or invalid; the `.prev` fallback was used.
    Fallback {
        /// Why the primary could not be used.
        primary_error: Box<CheckpointError>,
    },
}

/// A checkpoint location on disk with crash-safe write and
/// fallback-aware read semantics.
#[derive(Clone, Debug)]
pub struct CheckpointStore {
    path: PathBuf,
}

impl CheckpointStore {
    /// A store rooted at `path` (the primary checkpoint file; the
    /// fallback and temporary files live next to it). Opening the store
    /// sweeps stale `<path>.tmp.<pid>.<counter>` files left behind by a
    /// writer killed between temp-write and rename — they are never
    /// valid recovery sources (the rename into place had not happened),
    /// so they only leak disk space.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        let store = Self { path: path.into() };
        store.sweep_stale_temps();
        store
    }

    /// Best-effort removal of writer-unique temp files next to the
    /// primary. Only names with this store's exact `<file>.tmp.` prefix
    /// are touched; unrelated siblings (including other stores' temps
    /// and the `.prev` fallback) are left alone. Errors are swallowed:
    /// a sweep failure must never block opening the store.
    fn sweep_stale_temps(&self) {
        let Some(name) = self.path.file_name().and_then(|n| n.to_str()) else {
            return;
        };
        let prefix = format!("{name}.tmp.");
        let dir = self
            .path
            .parent()
            .map_or_else(|| PathBuf::from("."), Path::to_path_buf);
        let Ok(entries) = std::fs::read_dir(&dir) else {
            return;
        };
        for entry in entries.flatten() {
            let stale = entry
                .file_name()
                .to_str()
                .is_some_and(|n| n.starts_with(&prefix));
            if stale {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }

    /// The primary checkpoint path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The rotated last-good checkpoint (`<path>.prev`).
    #[must_use]
    pub fn fallback_path(&self) -> PathBuf {
        append_ext(&self.path, "prev")
    }

    /// A temp name unique per writer: two concurrent solves pointed at
    /// the same primary path (reachable through the solve server) must
    /// not clobber each other's in-flight temp bytes, so the name
    /// carries the process id and a process-global counter. (The
    /// registry additionally refuses two *live* solves on one
    /// checkpoint file — unique temps keep the bytes safe, not the
    /// file's logical contents.)
    fn temp_path(&self) -> PathBuf {
        static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = TEMP_COUNTER.fetch_add(1, Ordering::Relaxed);
        append_ext(&self.path, &format!("tmp.{}.{n}", std::process::id()))
    }

    /// Rotate the current primary (if any) to the `.prev` fallback, so a
    /// subsequent (possibly failing) write can never destroy the last
    /// good checkpoint. The parent directory is fsynced after the
    /// rename: without it, a power loss can roll the rename back and
    /// leave *neither* name pointing at durable bytes.
    fn rotate(&self) -> Result<(), CheckpointError> {
        match std::fs::rename(&self.path, self.fallback_path()) {
            Ok(()) => fsync_parent_dir(&self.path),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(CheckpointError::Io(e)),
        }
    }

    /// Crash-safe save: rotate the last good checkpoint to `.prev`, write
    /// the new bytes to a writer-unique temporary file, fsync it,
    /// atomically rename it over the primary path, and fsync the parent
    /// directory so the rename itself is durable. A crash at any point
    /// leaves a valid checkpoint (new or fallback) on disk.
    pub fn save(&self, checkpoint: &Checkpoint) -> Result<(), CheckpointError> {
        let bytes = checkpoint.to_bytes();
        self.rotate()?;
        let tmp = self.temp_path();
        {
            let mut f = std::fs::File::create(&tmp).map_err(CheckpointError::Io)?;
            std::io::Write::write_all(&mut f, &bytes).map_err(CheckpointError::Io)?;
            f.sync_all().map_err(CheckpointError::Io)?;
        }
        std::fs::rename(&tmp, &self.path).map_err(CheckpointError::Io)?;
        fsync_parent_dir(&self.path)
    }

    /// Fault injection: write `bytes` **directly** to the primary path,
    /// bypassing the temp/fsync/rename protocol (after rotating the last
    /// good checkpoint, which a real torn write would also leave intact —
    /// the rename into place had not happened yet). This is how the
    /// harness plants torn or bit-flipped files for the loader to detect.
    pub fn save_raw(&self, bytes: &[u8]) -> Result<(), CheckpointError> {
        self.rotate()?;
        std::fs::write(&self.path, bytes).map_err(CheckpointError::Io)?;
        Ok(())
    }

    /// Load the newest valid checkpoint: the primary if it parses, else
    /// the `.prev` fallback (reporting why the primary was rejected).
    /// Returns [`CheckpointError::NotFound`] only when neither exists;
    /// a corrupt primary with no fallback surfaces the corruption as a
    /// hard error.
    pub fn load(&self) -> Result<(Checkpoint, Recovery), CheckpointError> {
        let primary = std::fs::read(&self.path)
            .map_err(CheckpointError::from)
            .and_then(|bytes| Checkpoint::from_bytes(&bytes));
        let primary_error = match primary {
            Ok(ckpt) => return Ok((ckpt, Recovery::Primary)),
            Err(e) => e,
        };
        let fallback = std::fs::read(self.fallback_path())
            .map_err(CheckpointError::from)
            .and_then(|bytes| Checkpoint::from_bytes(&bytes));
        match (primary_error, fallback) {
            (e, Err(CheckpointError::NotFound)) => Err(e),
            (primary_error, Ok(ckpt)) => Ok((
                ckpt,
                Recovery::Fallback {
                    primary_error: Box::new(primary_error),
                },
            )),
            // Both exist, both invalid: report the primary's cause.
            (e, Err(_)) => Err(e),
        }
    }
}

/// Make a completed rename durable: fsync the parent directory so the
/// directory entry itself survives a power loss (fsyncing the file data
/// alone is not enough — the rename lives in the directory).
fn fsync_parent_dir(path: &Path) -> Result<(), CheckpointError> {
    #[cfg(unix)]
    {
        let parent = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        let dir = std::fs::File::open(parent).map_err(CheckpointError::Io)?;
        dir.sync_all().map_err(CheckpointError::Io)?;
    }
    #[cfg(not(unix))]
    {
        // std cannot open a directory handle for fsync off unix;
        // directory-entry durability is best-effort there.
        let _ = path;
    }
    Ok(())
}

fn append_ext(path: &Path, ext: &str) -> PathBuf {
    let mut s = path.as_os_str().to_owned();
    s.push(".");
    s.push(ext);
    PathBuf::from(s)
}

/// One deterministically-injected failure, keyed by the census boundary
/// (1-based count of completed timesteps) it fires at.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// The boundary-`after_step` checkpoint write is torn: only the first
    /// `keep_bytes` bytes reach disk (the atomic protocol is bypassed).
    TornWrite {
        /// Census boundary (completed timesteps) the fault fires at.
        after_step: usize,
        /// Prefix of the checkpoint that survives.
        keep_bytes: usize,
    },
    /// One byte of the boundary-`after_step` checkpoint is bit-flipped
    /// in place on disk.
    BitFlip {
        /// Census boundary (completed timesteps) the fault fires at.
        after_step: usize,
        /// Byte offset to corrupt (clamped into the file).
        offset: usize,
    },
    /// The process "crashes" right after completing timestep
    /// `after_step`, **before** that boundary's checkpoint is written.
    Kill {
        /// Census boundary (completed timesteps) the fault fires at.
        after_step: usize,
    },
}

impl Fault {
    /// The census boundary this fault fires at.
    #[must_use]
    pub fn after_step(self) -> usize {
        match self {
            Fault::TornWrite { after_step, .. }
            | Fault::BitFlip { after_step, .. }
            | Fault::Kill { after_step } => after_step,
        }
    }
}

/// A deterministic schedule of injected faults, parsed from a spec such
/// as `torn@1,kill@2` (see [`std::str::FromStr`] below for the grammar).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The faults, in spec order.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// A plan injecting nothing.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether the plan injects nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Faults scheduled for the census boundary after `completed` steps.
    pub fn for_step(&self, completed: usize) -> impl Iterator<Item = Fault> + '_ {
        self.faults
            .iter()
            .copied()
            .filter(move |f| f.after_step() == completed)
    }
}

/// Grammar: comma-separated specs, each one of
///
/// * `kill@N` — crash after timestep `N`, before its checkpoint write;
/// * `torn@N[:KEEP]` — tear the boundary-`N` checkpoint to its first
///   `KEEP` bytes (default 40, cutting inside the header);
/// * `bitflip@N[:OFFSET]` — flip one bit of byte `OFFSET` (default 96,
///   inside the counters region) of the boundary-`N` checkpoint.
impl std::str::FromStr for FaultPlan {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut faults = Vec::new();
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (kind, rest) = part
                .split_once('@')
                .ok_or_else(|| bad_fault_spec(part, "missing `@`"))?;
            let (step_str, arg) = match rest.split_once(':') {
                Some((a, b)) => (a, Some(b)),
                None => (rest, None),
            };
            let after_step: usize = step_str
                .parse()
                .map_err(|_| bad_fault_spec(part, "timestep is not a number"))?;
            if after_step == 0 {
                return Err(bad_fault_spec(part, "timestep must be >= 1"));
            }
            let parse_arg = |default: usize| -> Result<usize, String> {
                match arg {
                    None => Ok(default),
                    Some(a) => a
                        .parse()
                        .map_err(|_| bad_fault_spec(part, "argument is not a number")),
                }
            };
            let fault = match kind {
                "kill" => {
                    if arg.is_some() {
                        return Err(bad_fault_spec(part, "kill takes no argument"));
                    }
                    Fault::Kill { after_step }
                }
                "torn" => Fault::TornWrite {
                    after_step,
                    keep_bytes: parse_arg(40)?,
                },
                "bitflip" => Fault::BitFlip {
                    after_step,
                    offset: parse_arg(96)?,
                },
                other => return Err(bad_fault_spec(part, &format!("unknown kind `{other}`"))),
            };
            faults.push(fault);
        }
        Ok(Self { faults })
    }
}

fn bad_fault_spec(part: &str, why: &str) -> String {
    format!("bad fault spec `{part}`: {why} (expected kill@N, torn@N[:KEEP] or bitflip@N[:OFFSET])")
}

/// How a checkpointed run ended (see [`run_with_checkpoints`]).
// One value exists per solve, so the size gap between a full report and
// a bare step count costs nothing — boxing would only add indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum SolveOutcome {
    /// The solve ran to completion.
    Complete {
        /// The completed run's report.
        report: RunReport,
        /// Timestep index the solve resumed from (`None` = fresh start).
        resumed_from: Option<usize>,
        /// How the resume checkpoint was obtained, if the solve resumed.
        recovery: Option<Recovery>,
    },
    /// An injected [`Fault::Kill`] crashed the solve after `after_step`
    /// completed timesteps (before that boundary's checkpoint write).
    Killed {
        /// Completed timesteps at the crash.
        after_step: usize,
    },
}

/// Run (or resume) a checkpointed solve end to end, applying `plan`'s
/// injected faults at their census boundaries.
///
/// * If `store` holds a valid (or recoverable) checkpoint for this
///   problem, the solve resumes from it; otherwise it starts fresh.
///   A corrupt store with no valid fallback, or a checkpoint from a
///   different configuration, is a hard error.
/// * After each timestep, the boundary checkpoint is written with the
///   crash-safe protocol — unless a fault replaces it with a torn or
///   bit-flipped file, or a kill crashes the solve first.
pub fn run_with_checkpoints(
    sim: &Simulation,
    options: RunOptions,
    store: &CheckpointStore,
    plan: &FaultPlan,
) -> Result<SolveOutcome, CheckpointError> {
    let (mut solve, resumed) = match store.load() {
        Ok((ckpt, recovery)) => {
            let solve = Solve::resume(sim, options, &ckpt)?;
            (solve, Some((ckpt.next_step, recovery)))
        }
        Err(CheckpointError::NotFound) => (Solve::new(sim, options), None),
        Err(e) => return Err(e),
    };
    let resumed_from = resumed.as_ref().map(|(step, _)| *step);
    let recovery = resumed.map(|(_, r)| r);

    while !solve.is_done() {
        solve.step();
        let boundary = solve.steps_done();
        let mut killed = false;
        let mut planted = false;
        for fault in plan.for_step(boundary) {
            match fault {
                Fault::Kill { .. } => killed = true,
                Fault::TornWrite { keep_bytes, .. } => {
                    let bytes = solve.checkpoint().to_bytes();
                    let keep = keep_bytes.min(bytes.len());
                    store.save_raw(&bytes[..keep])?;
                    planted = true;
                }
                Fault::BitFlip { offset, .. } => {
                    let mut bytes = solve.checkpoint().to_bytes();
                    let off = offset.min(bytes.len() - 1);
                    bytes[off] ^= 0x80;
                    store.save_raw(&bytes)?;
                    planted = true;
                }
            }
        }
        if killed {
            // The crash happens before this boundary's checkpoint write:
            // the store still holds the previous boundary's state.
            return Ok(SolveOutcome::Killed {
                after_step: boundary,
            });
        }
        if !planted {
            store.save(&solve.checkpoint())?;
        }
    }
    Ok(SolveOutcome::Complete {
        report: solve.finish(),
        resumed_from,
        recovery,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ProblemScale, TestCase};
    use crate::particle::spawn_particles;

    fn sample_checkpoint() -> Checkpoint {
        let problem = TestCase::Csp.build(ProblemScale::tiny(), 3);
        let particles = spawn_particles(&problem);
        Checkpoint {
            fingerprint: config_fingerprint(&problem),
            next_step: 1,
            n_timesteps: 3,
            elapsed: Duration::from_millis(7),
            tally_footprint_bytes: 4096,
            counters: EventCounters {
                collisions: 123,
                facets: 456,
                lost_energy_ev: 1.25,
                census_energy_ev: -0.5,
                ..Default::default()
            },
            tally: vec![0.0, 1.5, -2.25, 3.0e10],
            particles,
        }
    }

    #[test]
    fn round_trip_is_exact() {
        let ckpt = sample_checkpoint();
        let bytes = ckpt.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(ckpt, back);
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = sample_checkpoint().to_bytes();
        for keep in 0..bytes.len() {
            let err = Checkpoint::from_bytes(&bytes[..keep]).unwrap_err();
            assert!(
                matches!(
                    err,
                    CheckpointError::Truncated | CheckpointError::ChecksumMismatch { .. }
                ),
                "keep={keep}: {err}"
            );
        }
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = sample_checkpoint().to_bytes();
        // Sample every 97th byte (plus the tail) to keep the test fast;
        // FNV-1a detects any single-byte change with certainty.
        let mut offsets: Vec<usize> = (0..bytes.len()).step_by(97).collect();
        offsets.extend(bytes.len() - 9..bytes.len());
        for off in offsets {
            let mut corrupt = bytes.clone();
            corrupt[off] ^= 0x01;
            assert!(
                Checkpoint::from_bytes(&corrupt).is_err(),
                "flip at {off} was silently absorbed"
            );
        }
    }

    #[test]
    fn length_field_flips_fail_cleanly() {
        let bytes = sample_checkpoint().to_bytes();
        // `payload_len` occupies bytes 12..20. Flip every bit of it:
        // the parser must answer with a clean structural error (an
        // oversized claim is Truncated, an undersized one leaves
        // trailing bytes), never an allocation, overflow or panic.
        for off in 12..HEADER_LEN {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[off] ^= 1 << bit;
                let err = Checkpoint::from_bytes(&corrupt).unwrap_err();
                assert!(
                    matches!(
                        err,
                        CheckpointError::Truncated | CheckpointError::Corrupt(_)
                    ),
                    "flip bit {bit} of byte {off}: {err}"
                );
            }
        }
    }

    #[test]
    fn huge_element_counts_with_valid_checksum_fail_cleanly() {
        // A corrupter can recompute the FNV checksum, so the in-payload
        // element counts cannot be trusted either: plant counts whose
        // byte-size products wrap usize and re-checksum the file. The
        // parser must reject them via checked arithmetic instead of
        // letting a wrapped product sneak past the size guard into
        // Vec::with_capacity.
        let bytes = sample_checkpoint().to_bytes();
        // Payload word layout: 5 header words + 17 counter words, then
        // n_tally; the sample tally holds 4 entries, then n_particles.
        let n_tally_off = HEADER_LEN + 8 * 22;
        let n_particles_off = n_tally_off + 8 + 4 * 8;
        assert_eq!(
            u64::from_le_bytes(bytes[n_tally_off..n_tally_off + 8].try_into().unwrap()),
            4,
            "test out of sync with the payload layout"
        );
        for (off, huge) in [
            // (1<<61)+1 times 8 wraps to 8 — small enough to pass an
            // unchecked `n * 8 > remaining` guard.
            (n_tally_off, (1u64 << 61) + 1),
            (n_particles_off, u64::MAX / 2 + 3),
        ] {
            let mut evil = bytes.clone();
            evil[off..off + 8].copy_from_slice(&huge.to_le_bytes());
            let n = evil.len();
            let sum = fnv1a64(evil[..n - 8].iter().copied());
            evil[n - 8..].copy_from_slice(&sum.to_le_bytes());
            let err = Checkpoint::from_bytes(&evil).unwrap_err();
            assert!(
                matches!(err, CheckpointError::Corrupt(_)),
                "count at {off}: {err}"
            );
        }
    }

    #[test]
    fn concurrent_saves_to_one_path_never_tear() {
        // Writer-unique temp names: two threads hammering the same
        // store must never interleave temp bytes — every load observes
        // one complete, checksummed checkpoint or the rotated fallback.
        let dir =
            std::env::temp_dir().join(format!("neutral_ckpt_concurrent_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let store = CheckpointStore::new(dir.join("shared.ckpt"));
        let ckpt = sample_checkpoint();
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| {
                    for _ in 0..25 {
                        store.save(&ckpt).unwrap();
                    }
                });
            }
        });
        let (loaded, _) = store.load().unwrap();
        assert_eq!(loaded, ckpt);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_and_magic_are_checked() {
        let bytes = sample_checkpoint().to_bytes();
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert!(matches!(
            Checkpoint::from_bytes(&wrong_magic),
            Err(CheckpointError::BadMagic)
        ));

        let mut wrong_version = bytes.clone();
        wrong_version[8..12].copy_from_slice(&99u32.to_le_bytes());
        // Re-checksum so the version check (not the checksum) fires.
        let total = wrong_version.len();
        let sum = fnv1a64(wrong_version[..total - 8].iter().copied());
        wrong_version[total - 8..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            Checkpoint::from_bytes(&wrong_version),
            Err(CheckpointError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = sample_checkpoint().to_bytes();
        bytes.push(0);
        assert!(matches!(
            Checkpoint::from_bytes(&bytes),
            Err(CheckpointError::Corrupt(_))
        ));
    }

    #[test]
    fn fingerprint_separates_configs() {
        let a = TestCase::Csp.build(ProblemScale::tiny(), 3);
        let mut b = a.clone();
        b.seed = 4;
        assert_ne!(config_fingerprint(&a), config_fingerprint(&b));
        let mut c = a.clone();
        c.transport.weight_cutoff *= 2.0;
        assert_ne!(config_fingerprint(&a), config_fingerprint(&c));
        let mut d = a.clone();
        d.n_timesteps += 1;
        assert_ne!(config_fingerprint(&a), config_fingerprint(&d));
        assert_eq!(config_fingerprint(&a), config_fingerprint(&a.clone()));
    }

    #[test]
    fn store_save_load_and_rotation() {
        let dir = std::env::temp_dir().join(format!("neutral_ckpt_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let store = CheckpointStore::new(dir.join("solve.ckpt"));
        let _ = std::fs::remove_file(store.path());
        let _ = std::fs::remove_file(store.fallback_path());

        assert!(matches!(store.load(), Err(CheckpointError::NotFound)));

        let mut ckpt = sample_checkpoint();
        store.save(&ckpt).unwrap();
        let (loaded, recovery) = store.load().unwrap();
        assert_eq!(loaded, ckpt);
        assert!(matches!(recovery, Recovery::Primary));

        // Second save rotates the first to .prev.
        ckpt.next_step = 2;
        store.save(&ckpt).unwrap();
        assert!(store.fallback_path().exists());

        // Tear the primary: load falls back to the rotated boundary-2...
        // no — save_raw rotates again, so .prev now holds next_step=2.
        let good = ckpt.to_bytes();
        store.save_raw(&good[..25]).unwrap();
        let (recovered, recovery) = store.load().unwrap();
        assert_eq!(recovered.next_step, 2);
        match recovery {
            Recovery::Fallback { primary_error } => {
                assert!(matches!(*primary_error, CheckpointError::Truncated));
            }
            Recovery::Primary => panic!("expected fallback"),
        }

        // Corrupt both: hard error naming the primary's cause.
        store.save_raw(&good[..25]).unwrap();
        std::fs::write(store.fallback_path(), &good[..10]).unwrap();
        assert!(matches!(store.load(), Err(CheckpointError::Truncated)));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_sweeps_stale_writer_temps() {
        let dir = std::env::temp_dir().join(format!("neutral_ckpt_sweep_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let primary = dir.join("solve.ckpt");

        // Plant what a writer killed between temp-write and rename leaves
        // behind, plus siblings the sweep must NOT touch.
        let stale_a = dir.join("solve.ckpt.tmp.1234.0");
        let stale_b = dir.join("solve.ckpt.tmp.99.7");
        let keep_prev = dir.join("solve.ckpt.prev");
        let keep_other = dir.join("other.ckpt.tmp.1234.0");
        for p in [&stale_a, &stale_b, &keep_prev, &keep_other] {
            std::fs::write(p, b"stale").unwrap();
        }
        std::fs::write(&primary, b"primary").unwrap();

        let store = CheckpointStore::new(&primary);
        assert!(!stale_a.exists(), "stale temp should be swept on open");
        assert!(!stale_b.exists(), "stale temp should be swept on open");
        assert!(keep_prev.exists(), "fallback must survive the sweep");
        assert!(keep_other.exists(), "other stores' temps must survive");
        assert!(store.path().exists(), "primary must survive the sweep");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fault_plan_grammar() {
        let plan: FaultPlan = "kill@3".parse().unwrap();
        assert_eq!(plan.faults, vec![Fault::Kill { after_step: 3 }]);

        let plan: FaultPlan = "torn@1:10, bitflip@2:5, kill@2".parse().unwrap();
        assert_eq!(
            plan.faults,
            vec![
                Fault::TornWrite {
                    after_step: 1,
                    keep_bytes: 10
                },
                Fault::BitFlip {
                    after_step: 2,
                    offset: 5
                },
                Fault::Kill { after_step: 2 },
            ]
        );
        assert_eq!(plan.for_step(2).count(), 2);
        assert_eq!(plan.for_step(7).count(), 0);

        let plan: FaultPlan = "torn@4".parse().unwrap();
        assert_eq!(
            plan.faults,
            vec![Fault::TornWrite {
                after_step: 4,
                keep_bytes: 40
            }]
        );

        for bad in [
            "torn",
            "kill@x",
            "kill@0",
            "kill@1:2",
            "explode@1",
            "torn@1:x",
        ] {
            let err = bad.parse::<FaultPlan>().unwrap_err();
            assert!(err.contains("bad fault spec"), "{bad}: {err}");
        }
        assert!("".parse::<FaultPlan>().unwrap().is_empty());
    }

    #[test]
    fn error_messages_name_the_cause() {
        assert!(CheckpointError::Truncated.to_string().contains("torn"));
        assert!(CheckpointError::ChecksumMismatch {
            expected: 1,
            found: 2
        }
        .to_string()
        .contains("checksum"));
        assert!(CheckpointError::ConfigMismatch {
            expected: 1,
            found: 2
        }
        .to_string()
        .contains("different problem"));
        assert!(CheckpointError::UnsupportedVersion(9)
            .to_string()
            .contains("version 9"));
    }
}
