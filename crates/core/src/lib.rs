//! # neutral-core
//!
//! A Rust reproduction of **neutral**, the Monte Carlo neutral particle
//! transport mini-app of Martineau & McIntosh-Smith, *Exploring On-Node
//! Parallelism with Neutral, a Monte Carlo Neutral Particle Transport
//! Mini-App* (IEEE CLUSTER 2017).
//!
//! The mini-app tracks particles through a 2D structured mesh under three
//! event types — collisions (absorption / elastic scatter), facet
//! crossings, and census — tallying energy deposition per mesh cell with a
//! track-length estimator. Although Monte Carlo transport is nominally
//! embarrassingly parallel, the mesh dependency (random density reads,
//! atomic tally writes) makes it memory-latency bound, and the paper's
//! central question is how best to parallelise it on a node. Two schemes
//! are implemented:
//!
//! * **Over Particles** ([`over_particles`], §V-A) — a thread follows each
//!   history from birth to census, caching cross sections and densities in
//!   registers;
//! * **Over Events** ([`over_events`], §V-B) — all histories advance one
//!   event at a time through tight per-event kernels.
//!
//! Supporting machinery reproduces the paper's ablations: AoS vs SoA
//! particle storage ([`soa`], §VI-D), OpenMP-style loop schedules
//! ([`scheduler`], §VI-C), shared-atomic vs privatised tallies (§VI-F,
//! via [`neutral_mesh::tally`]), scalar vs vectorisable kernels (§VI-G),
//! and full event instrumentation ([`counters`]) feeding the
//! `neutral-perf` architecture model.
//!
//! # Quickstart
//!
//! ```
//! use neutral_core::prelude::*;
//!
//! // The paper's "center square problem" at test scale.
//! let problem = TestCase::Csp.build(ProblemScale::tiny(), 42);
//! let sim = Simulation::new(problem);
//! let report = sim.run(RunOptions::default());
//! println!("{}", report.summary());
//! assert!(report.counters.collisions > 0);
//! assert!(report.counters.facets > 0);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod arena;
pub mod checkpoint;
pub mod config;
pub mod counters;
pub mod events;
pub mod fuzz;
pub mod history;
pub mod over_events;
pub mod over_particles;
pub mod params;
pub mod particle;
pub mod registry;
pub mod scenario;
pub mod scheduler;
pub mod shard;
pub mod sim;
pub mod soa;
pub mod validate;

/// The things almost every user of the crate needs.
pub mod prelude {
    pub use crate::arena::ScratchArena;
    pub use crate::checkpoint::{
        config_fingerprint, run_with_checkpoints, Checkpoint, CheckpointError, CheckpointStore,
        Fault, FaultPlan, Recovery, SolveOutcome,
    };
    pub use crate::config::Backend;
    pub use crate::config::{
        CollisionModel, LookupStrategy, LowWeightPolicy, Problem, ProblemScale, RegroupPolicy,
        SortPolicy, TallyStrategy, TestCase, TransportConfig, XsSearch,
    };
    pub use crate::counters::EventCounters;
    pub use crate::over_events::{force_simd_fallback, KernelStyle, KernelTimings};
    pub use crate::registry::{
        Admission, Registry, RegistryConfig, RegistryStats, SolveState, SolveStatus, SubmitError,
        SubmitReceipt, SubmitRequest,
    };
    pub use crate::scenario::Scenario;
    pub use crate::scheduler::Schedule;
    pub use crate::shard::{
        ShardConfig, ShardError, ShardFault, ShardFaultKind, ShardFaultPlan, ShardPlan, ShardStats,
        ShardedSolve,
    };
    pub use crate::sim::{
        Execution, Layout, RunOptions, RunReport, Scheme, Simulation, Solve, SolveCore,
    };
    pub use crate::validate::EnergyBalance;
    pub use neutral_xs::{MaterialKind, MaterialSet, MaterialSpec};
}

pub use prelude::*;
