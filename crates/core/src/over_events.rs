//! Drivers for the **Over Events** parallelisation scheme (paper §V-B,
//! Listing 2): progress *all* particle histories one event at a time, with
//! one kernel per event class.
//!
//! Properties the paper attributes to this scheme, all reproduced here:
//!
//! * tight, vectorisable loops — the round kernels are written against
//!   the [`KernelBackend`] seam, with one implementation per way of
//!   writing them: [`Backend::Scalar`] per-particle loops,
//!   [`Backend::Vectorized`] restructured branch-light loops the
//!   auto-vectoriser can digest (§VI-G), and [`Backend::Simd`] explicit
//!   `core::arch` vectors as the third proof point — all three bitwise
//!   identical;
//! * no register caching — the state the Over-Particles loop keeps in
//!   registers (microscopic cross sections, local number density) lives in
//!   per-particle arrays and is streamed from memory every round;
//! * compacted access — the seed reproduced the paper's "every kernel
//!   visits the whole particle list and checks a predicate" gathers; the
//!   kernels now iterate maintained compacted index lists (the stream
//!   compaction cure from the GPU MC literature), with incremental
//!   compaction at census/death so trip counts shrink as the population
//!   dies — bitwise identical physics, measurably less memory traffic;
//! * batched atomics — deposits accumulate in a per-particle pending array
//!   and a *separate* tally loop flushes them, which is the workaround the
//!   paper used to get the other loops to vectorise (§VI-G);
//! * per-kernel wall-clock timings ([`KernelTimings`]) — the data behind
//!   the tally-share and vectorisation figures.

use crate::arena::ScratchArena;
use crate::config::SortPolicy;
use crate::counters::EventCounters;
use crate::events::{
    clamp_nonneg, energy_deposition, handle_collision, handle_facet_parts, move_particle,
    move_particle_parts, next_event_parts, resolve_micro_xs, resolve_micro_xs_many, NextEvent,
    TallySink,
};
use crate::history::TransportCtx;
use crate::soa::{ParticleSoA, SoAChunkMut};
use neutral_mesh::tally::AtomicTally;
use neutral_mesh::{Facet, StructuredMesh2D};
use neutral_rng::{CbRng, CounterStream};
use neutral_xs::constants::speed_m_per_s;
use neutral_xs::{macroscopic_per_m, number_density, MaterialId, MicroXs, XsHints};
use rayon::prelude::*;
use std::time::{Duration, Instant};

pub use crate::config::Backend;

/// Former name of the kernel-backend knob, kept as an alias so existing
/// call sites (and the `kernel_style` params spelling) keep compiling.
pub type KernelStyle = Backend;

/// The kernel-backend seam (DESIGN.md §19): one implementation per way
/// of writing the per-round kernels. The trait carries exactly the two
/// decisions that differ between backends — how the distance/selection
/// kernel is written, and whether the collision/facet kernels hoist
/// their movement + deposit arithmetic into a branch-light pre-pass —
/// so every other kernel (init, tally flush, census) is shared code.
///
/// **Contract:** every implementation must compute the same per-lane
/// expressions in the same order as [`ScalarBackend`] — no FMA
/// contraction, no reassociation, no fast-math — so all backends
/// produce bitwise-identical trajectories, tallies and counters on
/// every fixture. The explicit-SIMD backend must degrade to the scalar
/// expressions (lane for lane) on hosts without the required CPU
/// features.
pub(crate) trait KernelBackend: Sync {
    /// Distance calculation + event selection for one window round.
    fn decide(&self, w: &mut Window<'_>, mesh: &StructuredMesh2D) -> EventCounters;

    /// Whether the collision/facet kernels run their vectorisable
    /// movement + deposit pre-pass (branch-light, over the tagged set)
    /// instead of folding that arithmetic into the branchy per-event
    /// body. Both placements compute identical bits.
    fn prepass(&self) -> bool;
}

/// The seed's per-particle loops with early predicate exits.
pub(crate) struct ScalarBackend;

/// The §VI-G restructuring: whole-window arithmetic passes the
/// auto-vectoriser can digest, plus short scalar fix-up passes.
pub(crate) struct VectorizedBackend;

/// Explicit `core::arch` SIMD (AVX2 on `x86_64`), runtime
/// feature-detected with a bitwise-identical scalar fallback.
pub(crate) struct SimdBackend;

impl KernelBackend for ScalarBackend {
    fn decide(&self, w: &mut Window<'_>, mesh: &StructuredMesh2D) -> EventCounters {
        decide_kernel_scalar(w, mesh)
    }

    fn prepass(&self) -> bool {
        false
    }
}

impl KernelBackend for VectorizedBackend {
    fn decide(&self, w: &mut Window<'_>, mesh: &StructuredMesh2D) -> EventCounters {
        decide_kernel_vectorized(w, mesh)
    }

    fn prepass(&self) -> bool {
        true
    }
}

impl KernelBackend for SimdBackend {
    fn decide(&self, w: &mut Window<'_>, mesh: &StructuredMesh2D) -> EventCounters {
        decide_kernel_simd(w, mesh)
    }

    fn prepass(&self) -> bool {
        true
    }
}

impl Backend {
    /// The backend's kernel implementation.
    pub(crate) fn kernel(self) -> &'static dyn KernelBackend {
        match self {
            Backend::Scalar => &ScalarBackend,
            Backend::Vectorized => &VectorizedBackend,
            Backend::Simd => &SimdBackend,
        }
    }
}

/// Wall-clock time spent in each kernel, summed over rounds.
#[derive(Clone, Copy, Debug, Default)]
pub struct KernelTimings {
    /// Initial population of the per-particle cache arrays.
    pub init: Duration,
    /// Distance calculation + event selection kernel.
    pub decide: Duration,
    /// Collision kernel.
    pub collision: Duration,
    /// Facet kernel.
    pub facet: Duration,
    /// The separated atomic tally-flush kernel.
    pub tally: Duration,
    /// Final census kernel.
    pub census: Duration,
    /// Number of breadth-first rounds executed.
    pub rounds: u64,
}

impl KernelTimings {
    /// Total time across all kernels.
    #[must_use]
    pub fn total(&self) -> Duration {
        self.init + self.decide + self.collision + self.facet + self.tally + self.census
    }

    /// Fraction of kernel time spent flushing tallies — the paper's ~22%
    /// observation for this scheme (§VI-A).
    #[must_use]
    pub fn tally_fraction(&self) -> f64 {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            self.tally.as_secs_f64() / total
        }
    }
}

/// Per-particle event tag for the current round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
enum Tag {
    None = 0,
    Collision = 1,
    FacetXLow = 2,
    FacetXHigh = 3,
    FacetYLow = 4,
    FacetYHigh = 5,
}

impl Tag {
    fn facet(f: Facet) -> Self {
        match f {
            Facet::XLow => Tag::FacetXLow,
            Facet::XHigh => Tag::FacetXHigh,
            Facet::YLow => Tag::FacetYLow,
            Facet::YHigh => Tag::FacetYHigh,
        }
    }

    fn to_facet(self) -> Option<Facet> {
        match self {
            Tag::FacetXLow => Some(Facet::XLow),
            Tag::FacetXHigh => Some(Facet::XHigh),
            Tag::FacetYLow => Some(Facet::YLow),
            Tag::FacetYHigh => Some(Facet::YHigh),
            _ => None,
        }
    }
}

/// Per-particle history status.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
enum Status {
    Active = 0,
    AtCensus = 1,
    Dead = 2,
}

/// Per-window coherence state that persists across kernel invocations:
/// the compacted index lists, the occupancy-dispatch bookkeeping and the
/// scratch arena for batched lookups and restructured passes. One
/// instance per breadth-first window, created once per solve, so the
/// steady-state round loop performs no allocations.
///
/// **Hybrid occupancy dispatch.** The seed's kernels swept the whole
/// particle array and checked an alive/tag predicate per lane; pure
/// list iteration replaces the predictable linear sweep with an
/// index-indirected gather, which *loses* on near-full windows (the
/// index loads and list maintenance cost more than the few skipped
/// lanes save). Each round therefore picks one of two bitwise-identical
/// iteration modes, per window:
///
/// * **sweep** (live fraction ≥ [`SWEEP_NUM`]/[`SWEEP_DEN`]) — the
///   seed's predicate sweeps, untouched;
/// * **list** (below the threshold) — stream compaction: every kernel
///   iterates maintained compacted index lists, so trip counts track
///   the live population instead of the allocation.
///
/// Both modes visit the same particles in the same ascending order, so
/// the physics — including every order-sensitive `f64` accumulation —
/// is bitwise identical; only the memory-access pattern changes.
/// `active` is kept ascending (its compaction is an order-preserving
/// `retain`), which is what the identity argument rests on.
#[derive(Default)]
struct WindowState {
    arena: ScratchArena,
    /// Compacted indices of particles still `Active` at the last
    /// compaction point, ascending. Between compactions it also retains
    /// particles that died or hit census since — in list mode exactly
    /// the set whose pending deposits the round's tally flush must
    /// visit. Stale (and unread) while sweep mode holds; the entry
    /// `retain` on switching to list mode removes every departure at
    /// once.
    active: Vec<u32>,
    /// This round's collision-tagged live subset (ascending; list mode
    /// only — sweep mode re-checks tags like the seed).
    coll: Vec<u32>,
    /// This round's facet-tagged live subset (ascending; list mode only).
    facet: Vec<u32>,
    /// Every index that reached census, accumulated across rounds;
    /// sorted into identity order before the final census kernel so the
    /// census pass runs in the seed's sequence.
    census: Vec<u32>,
    /// This round's cutoff deaths as `(identity rank, lost energy)`;
    /// summed in ascending rank order so `lost_energy_ev` accumulates in
    /// exactly the seed's sequence whatever order the collision kernel
    /// ran in (rank == global index when the storage is unpermuted).
    deaths: Vec<(u32, f64)>,
    /// Identity rank of each window slot: the particle's `key` (its
    /// birth index), refreshed by the init kernel each solve. This is
    /// the sort key that anchors every order-sensitive stream — death
    /// sums, census order, tally-flush order — to identity order, which
    /// under [`crate::config::RegroupPolicy`] is what keeps a regrouped
    /// run bitwise identical to an unregrouped one.
    rank: Vec<u32>,
    /// Global index of this window's first slot (set once at state
    /// construction); `rank[i] == base + i` exactly when the window's
    /// storage order is identity order.
    base: u32,
    /// Whether this window's storage has been physically regrouped
    /// (`rank[i] != base + i` somewhere): gates the identity-order sort
    /// of the tally flush, so the unregrouped hot path stays untouched.
    permuted: bool,
    /// Deposits drained by this window's last Round flush — the numerator
    /// of the [`crate::config::SortPolicy::Auto`] heuristic.
    last_flush_deposits: u32,
    /// Adjacent cell changes in that flush sequence (the heuristic's
    /// denominator): the exact distinct-cell count when the flush was
    /// clustered, a proxy otherwise. An unsorted flush over randomly
    /// ordered cells can't see sharing (runs ≈ deposits), which is why
    /// Auto periodically *probes* with a clustered flush — bitwise free
    /// by the ByCell identity argument — to refresh the exact count.
    last_flush_cell_runs: u32,
    /// Rounds until the next Auto probe flush; reset to
    /// [`AUTO_PROBE_INTERVAL`] by every clustered flush.
    probe_countdown: u32,
    /// Live (`Active`) particles in this window, maintained by the
    /// decide (census departures) and collision (deaths) kernels — the
    /// occupancy the dispatch decides on without scanning anything.
    live: usize,
    /// One past the last initially-active slot: the sweep bound. After a
    /// `by_alive` regroup packs the live particles into a prefix, slots
    /// `scan..` are dead at init (zero pending, never revived — particles
    /// only *leave* the active set during a timestep), so every sweep
    /// loop iterates `0..scan` instead of the whole allocation. Equal to
    /// the window length when the storage is unregrouped or fully live.
    scan: usize,
    /// Whether this round runs the sweep arm (set by `begin_round`).
    sweep: bool,
    /// Whether any particle left the active set since the last
    /// compaction (death or census arrival). When false the retain scan
    /// is skipped entirely — rounds where nobody leaves pay nothing for
    /// compaction.
    needs_compact: bool,
}

/// Occupancy threshold of the hybrid dispatch: sweep while
/// `live * SWEEP_DEN >= scan * SWEEP_NUM` (`scan` being the initially
/// active prefix — the whole window when unregrouped).
const SWEEP_NUM: usize = 7;
/// See [`SWEEP_NUM`].
const SWEEP_DEN: usize = 8;

impl WindowState {
    /// Round prologue shared by both decide kernels: pick the iteration
    /// mode from the live occupancy, and in list mode compact the active
    /// list (order-preserving, so it stays ascending — the property the
    /// bitwise-identity invariant rests on) and reset the round's tagged
    /// lists.
    ///
    /// Note that even list mode iterates in ascending index order: the
    /// particle state lives in index-ordered arrays, so a *permuted*
    /// iteration order would turn every state access into a random
    /// gather (measurably slower on CPUs, where — unlike the GPU codes
    /// that physically regroup particles — identity must stay put). The
    /// [`SortPolicy`] instead reorders the two memory streams where
    /// clustering pays: the separated tally flush and the batched
    /// lookup lane blocks.
    fn begin_round(&mut self, status: &[Status]) {
        self.sweep = self.live * SWEEP_DEN >= self.scan * SWEEP_NUM;
        if !self.sweep && self.needs_compact {
            self.active
                .retain(|&i| status[i as usize] == Status::Active);
            self.needs_compact = false;
        }
        self.coll.clear();
        self.facet.clear();
    }
}

/// The per-particle state arrays of the breadth-first driver — the data
/// that the Over-Particles scheme would have kept in registers ("Any time
/// data is to be cached, it must be stored per particle", §V-B) — plus
/// the per-window coherence state (compacted index lists, occupancy
/// bookkeeping, scratch arenas).
///
/// One instance serves a whole multi-timestep solve: the init kernel
/// re-derives every live field from the particle list at the start of
/// each `run_over_events*` call, so the arrays — and every arena and
/// index list inside them, at their high-water capacities — are reused
/// across timesteps instead of being reallocated per call (the ROADMAP
/// "arena reuse across timesteps" item). Build one with
/// [`EventState::ensure`].
pub struct EventState {
    micro_a: Vec<f64>,
    micro_s: Vec<f64>,
    n_dens: Vec<f64>,
    mat: Vec<MaterialId>,
    dist: Vec<f64>,
    pending: Vec<f64>,
    pending_cell: Vec<u32>,
    tag: Vec<Tag>,
    status: Vec<Status>,
    wins: Vec<WindowState>,
    /// Window size the state was built for; [`windows`] always cuts at
    /// this boundary, so the window count can never drift from `wins`.
    chunk: usize,
    /// Global index of the first particle (non-zero only when this state
    /// serves a shard's slice of a larger population — see
    /// [`EventState::ensure_with_base`]).
    base0: u32,
}

impl EventState {
    /// State for `n` particles cut into `chunk`-sized windows, the first
    /// particle sitting at global index `base0`.
    fn new(n: usize, chunk: usize, base0: u32) -> Self {
        assert!(chunk > 0, "window chunk must be positive");
        let n_windows = if n == 0 { 0 } else { n.div_ceil(chunk) };
        Self {
            micro_a: vec![0.0; n],
            micro_s: vec![0.0; n],
            n_dens: vec![0.0; n],
            mat: vec![0; n],
            dist: vec![0.0; n],
            pending: vec![0.0; n],
            pending_cell: vec![0; n],
            tag: vec![Tag::None; n],
            status: vec![Status::Active; n],
            wins: (0..n_windows)
                .map(|w| WindowState {
                    base: base0 + (w * chunk) as u32,
                    ..WindowState::default()
                })
                .collect(),
            chunk,
            base0,
        }
    }

    /// Reuse `slot`'s state when it already fits `n` particles in
    /// `chunk`-sized windows; (re)build it otherwise. Returns the ready
    /// state. This is the seam the multi-timestep loop calls every step:
    /// after the first step it is a pure borrow.
    pub fn ensure(slot: &mut Option<EventState>, n: usize, chunk: usize) -> &mut EventState {
        Self::ensure_with_base(slot, n, chunk, 0)
    }

    /// As [`EventState::ensure`], but for a population that is a shard's
    /// contiguous slice of a larger one starting at global index `base0`.
    /// Window identity bases must be *global* particle indices: the init
    /// kernel derives each window's `permuted` flag by comparing particle
    /// keys (global birth indices) against `base + i`, and a shard whose
    /// windows claimed local bases would falsely flag identity-ordered
    /// storage as permuted and take a different (rank-sorting) flush arm
    /// than the unsharded run.
    pub fn ensure_with_base(
        slot: &mut Option<EventState>,
        n: usize,
        chunk: usize,
        base0: u32,
    ) -> &mut EventState {
        let fits = slot
            .as_ref()
            .is_some_and(|s| s.status.len() == n && s.chunk == chunk && s.base0 == base0);
        if !fits {
            *slot = Some(EventState::new(n, chunk, base0));
        }
        slot.as_mut().expect("just ensured")
    }

    /// Residual pending deposits (should be drained to zero by the final
    /// census flush of every solve) — exposed for the state-reuse tests.
    #[must_use]
    pub fn pending_total(&self) -> f64 {
        self.pending.iter().map(|v| v.abs()).sum()
    }
}

/// A disjoint mutable window across the particle columns and all state
/// arrays. `p` is the window's slice of every [`ParticleSoA`] field
/// column — the canonical particle storage; no AoS record exists inside
/// the round kernels (branchy handlers gather one particle into a
/// register bundle via [`SoAChunkMut::load`] and scatter it back).
pub(crate) struct Window<'a> {
    p: SoAChunkMut<'a>,
    micro_a: &'a mut [f64],
    micro_s: &'a mut [f64],
    n_dens: &'a mut [f64],
    mat: &'a mut [MaterialId],
    dist: &'a mut [f64],
    pending: &'a mut [f64],
    pending_cell: &'a mut [u32],
    tag: &'a mut [Tag],
    status: &'a mut [Status],
    ws: &'a mut WindowState,
}

fn windows<'a>(soa: &'a mut ParticleSoA, st: &'a mut EventState) -> Vec<Window<'a>> {
    let chunk = st.chunk;
    struct Rest<'a> {
        cols: SoAChunkMut<'a>,
        micro_a: &'a mut [f64],
        micro_s: &'a mut [f64],
        n_dens: &'a mut [f64],
        mat: &'a mut [MaterialId],
        dist: &'a mut [f64],
        pending: &'a mut [f64],
        pending_cell: &'a mut [u32],
        tag: &'a mut [Tag],
        status: &'a mut [Status],
    }
    let mut rest = Rest {
        cols: soa.view_mut(),
        micro_a: &mut st.micro_a,
        micro_s: &mut st.micro_s,
        n_dens: &mut st.n_dens,
        mat: &mut st.mat,
        dist: &mut st.dist,
        pending: &mut st.pending,
        pending_cell: &mut st.pending_cell,
        tag: &mut st.tag,
        status: &mut st.status,
    };
    assert_eq!(
        st.wins.len(),
        if rest.cols.is_empty() {
            0
        } else {
            rest.cols.len().div_ceil(chunk)
        },
        "particle list changed length since EventState::new"
    );
    let mut out = Vec::with_capacity(st.wins.len());
    for ws in &mut st.wins {
        let cut = chunk.min(rest.cols.len());
        let (p0, p1) = rest.cols.split_at_mut(cut);
        let (a0, a1) = rest.micro_a.split_at_mut(cut);
        let (s0, s1) = rest.micro_s.split_at_mut(cut);
        let (n0, n1) = rest.n_dens.split_at_mut(cut);
        let (m0m, m1m) = rest.mat.split_at_mut(cut);
        let (d0, d1) = rest.dist.split_at_mut(cut);
        let (pe0, pe1) = rest.pending.split_at_mut(cut);
        let (pc0, pc1) = rest.pending_cell.split_at_mut(cut);
        let (t0, t1) = rest.tag.split_at_mut(cut);
        let (st0, st1) = rest.status.split_at_mut(cut);
        out.push(Window {
            p: p0,
            micro_a: a0,
            micro_s: s0,
            n_dens: n0,
            mat: m0m,
            dist: d0,
            pending: pe0,
            pending_cell: pc0,
            tag: t0,
            status: st0,
            ws,
        });
        rest = Rest {
            cols: p1,
            micro_a: a1,
            micro_s: s1,
            n_dens: n1,
            mat: m1m,
            dist: d1,
            pending: pe1,
            pending_cell: pc1,
            tag: t1,
            status: st1,
        };
    }
    debug_assert!(rest.cols.is_empty());
    out
}

/// Run the Over-Events scheme to census for the whole population.
///
/// `parallel` selects Rayon-parallel kernels (current thread pool) versus
/// sequential execution of the same kernels. `state` is the reusable
/// per-solve state: pass the same slot every timestep and the arrays are
/// allocated once per solve. Returns the merged event counters and the
/// per-kernel timings.
pub fn run_over_events<R: CbRng>(
    soa: &mut ParticleSoA,
    ctx: &TransportCtx<'_, R>,
    tally: &AtomicTally,
    backend: Backend,
    parallel: bool,
    state: &mut Option<EventState>,
) -> (EventCounters, KernelTimings) {
    let kb = backend.kernel();
    let n = soa.len();
    let chunk = if parallel {
        (n / (rayon::current_num_threads() * 8)).max(256)
    } else {
        n.max(1)
    };
    let st = EventState::ensure(state, n, chunk);
    let mut timings = KernelTimings::default();
    let mut counters = EventCounters::default();

    // --- init kernel: populate the per-particle cache arrays.
    let t0 = Instant::now();
    counters.merge(&for_windows(soa, &mut *st, parallel, |w| {
        init_kernel(w, ctx)
    }));
    timings.init = t0.elapsed();

    // --- breadth-first rounds.
    let max_rounds = ctx.cfg.max_events_per_history;
    loop {
        timings.rounds += 1;
        if timings.rounds > max_rounds {
            // Runaway guard: abandon whatever is still active.
            let mut stuck = 0;
            for (i, s) in st.status.iter_mut().enumerate() {
                if *s == Status::Active {
                    *s = Status::Dead;
                    soa.dead[i] = true;
                    stuck += 1;
                }
            }
            counters.stuck += stuck;
            break;
        }

        // Kernel 1: distances + event selection.
        let t = Instant::now();
        let decide = for_windows(soa, &mut *st, parallel, |w| kb.decide(w, ctx.mesh));
        timings.decide += t.elapsed();
        // `decide` abuses a counter struct: collisions field carries the
        // number of still-active particles this round.
        let active = decide.collisions;
        if active == 0 {
            break;
        }

        // Kernel 2: collisions.
        let t = Instant::now();
        counters.merge(&for_windows(soa, &mut *st, parallel, |w| {
            collision_kernel(w, ctx, kb, ctx.cfg.sort_policy)
        }));
        timings.collision += t.elapsed();

        // Kernel 3: facets.
        let t = Instant::now();
        counters.merge(&for_windows(soa, &mut *st, parallel, |w| {
            facet_kernel(w, ctx, kb)
        }));
        timings.facet += t.elapsed();

        // Kernel 4: the separated atomic tally flush (§VI-G).
        let t = Instant::now();
        counters.merge(&for_windows(soa, &mut *st, parallel, |w| {
            tally_kernel(w, &mut { tally }, FlushList::Round, ctx.cfg.sort_policy)
        }));
        timings.tally += t.elapsed();
    }

    // --- census kernel (Listing 2: handled once, after the event loop).
    let t = Instant::now();
    counters.merge(&for_windows(soa, &mut *st, parallel, |w| {
        census_kernel(w, ctx)
    }));
    // Flush the census deposits.
    counters.merge(&for_windows(soa, &mut *st, parallel, |w| {
        tally_kernel(w, &mut { tally }, FlushList::Census, ctx.cfg.sort_policy)
    }));
    timings.census += t.elapsed();

    counters.census_energy_ev = crate::soa::total_weighted_energy_soa(soa);
    (counters, timings)
}

/// Apply `kernel` to every window, sequentially or in parallel, merging the
/// per-window counters.
fn for_windows<F>(
    soa: &mut ParticleSoA,
    st: &mut EventState,
    parallel: bool,
    kernel: F,
) -> EventCounters
where
    F: Fn(&mut Window<'_>) -> EventCounters + Sync,
{
    let ws = windows(soa, st);
    if parallel {
        ws.into_par_iter()
            .map(|mut w| kernel(&mut w))
            .reduce(EventCounters::default, |mut a, b| {
                a.merge(&b);
                a
            })
    } else {
        let mut acc = EventCounters::default();
        for mut w in ws {
            acc.merge(&kernel(&mut w));
        }
        acc
    }
}

/// Run the Over-Events scheme against the pluggable tally subsystem
/// (`neutral_mesh::accum`): the breadth-first windows are cut at the
/// accumulator's lane boundaries, every kernel schedules whole windows
/// across `n_threads` workers, and the separated tally-flush kernel
/// drains window `i`'s pending deposits through lane sink `i`. With a
/// deterministic backend the merged tally and the counters are bitwise
/// identical for any worker count.
///
/// `state` is the reusable per-solve state (arrays + per-window arenas,
/// allocated once across a multi-timestep run). `order`, when present,
/// is the regrouped population's identity map (`order[k]` = physical
/// position of key `k`): windows keep walking their ranges in plain
/// ascending order — the point of regrouping — while every
/// order-sensitive `f64` stream (death sums, census order, tally-flush
/// order, the census-energy fold) is anchored back to identity order via
/// the per-slot rank, so the merged tally and counters stay bitwise
/// identical to the unregrouped run.
#[allow(clippy::too_many_arguments)] // the solve's full configuration surface
pub fn run_over_events_lanes<R: CbRng>(
    soa: &mut ParticleSoA,
    ctx: &TransportCtx<'_, R>,
    accum: &mut neutral_mesh::TallyAccum,
    backend: Backend,
    n_threads: usize,
    schedule: crate::scheduler::Schedule,
    state: &mut Option<EventState>,
    order: Option<&[u32]>,
) -> (EventCounters, KernelTimings) {
    let part = neutral_mesh::LanePartition::new(soa.len(), accum.n_lanes());
    let (partials, timings) = run_over_events_lanes_partitioned(
        soa, ctx, accum, backend, n_threads, schedule, state, order, part, 0,
    );
    let mut counters = EventCounters::merge_deterministic(&partials);
    counters.census_energy_ev = match order {
        Some(ord) => crate::soa::total_weighted_energy_soa_ordered(soa, ord),
        None => crate::soa::total_weighted_energy_soa(soa),
    };
    (counters, timings)
}

/// The round loop of [`run_over_events_lanes`] over an *explicit*
/// partition, returning the raw per-lane counters instead of the
/// deterministic merge — the Over-Events arm of the sharding seam.
///
/// Each lane's counters accumulate **scalar, per lane, across every
/// pass** (chronological within the lane), and only the caller runs the
/// one pairwise reduction across lanes. That decomposition is what a
/// shard — which sees only its own lanes, and whose round loop may run
/// fewer rounds than the whole population's — can reproduce exactly:
/// combined with the zero-drain flush no-op in `tally_kernel` and the
/// global window bases of [`EventState::ensure_with_base`], a lane's
/// counter partial is a pure function of that lane's particles. `base0`
/// is the global index of `particles[0]` (`0` when unsharded). Census
/// energy is left to the caller.
#[allow(clippy::too_many_arguments)] // the solve's full configuration surface
pub fn run_over_events_lanes_partitioned<R: CbRng>(
    soa: &mut ParticleSoA,
    ctx: &TransportCtx<'_, R>,
    accum: &mut neutral_mesh::TallyAccum,
    backend: Backend,
    n_threads: usize,
    schedule: crate::scheduler::Schedule,
    state: &mut Option<EventState>,
    order: Option<&[u32]>,
    part: neutral_mesh::LanePartition,
    base0: u32,
) -> (Vec<EventCounters>, KernelTimings) {
    use crate::scheduler::parallel_for_owned;
    use neutral_mesh::LaneSink;

    let kb = backend.kernel();
    let n = soa.len();
    assert_eq!(part.n_items, n, "partition must cover the population");
    if let Some(ord) = order {
        assert_eq!(ord.len(), n, "order must be a permutation");
    }
    let chunk = part.lane_size;
    let schedule = schedule.lane_granular();
    let mut views: Vec<LaneSink<'_>> = accum.lane_views();
    views.truncate(part.n_lanes);

    let st = EventState::ensure_with_base(state, n, chunk, base0);
    let mut timings = KernelTimings::default();
    let mut lane_counters = vec![EventCounters::default(); part.n_lanes.max(1)];

    // Apply `kernel` to every window, one worker per window, returning
    // the per-window (= per-lane) counters in window order.
    let run_pass = |soa: &mut ParticleSoA,
                    st: &mut EventState,
                    kernel: &(dyn Fn(&mut Window<'_>) -> EventCounters + Sync)|
     -> Vec<EventCounters> {
        let mut states: Vec<(Window<'_>, EventCounters)> = windows(soa, st)
            .into_iter()
            .map(|w| (w, EventCounters::default()))
            .collect();
        parallel_for_owned(n_threads, schedule, &mut states, |_, (w, c)| {
            *c = kernel(w);
        });
        states.iter().map(|(_, c)| *c).collect()
    };
    // As `run_pass`, but pairing window `i` with lane sink `i` for the
    // tally-flush kernel.
    let run_tally_pass = |soa: &mut ParticleSoA,
                          st: &mut EventState,
                          views: &mut [LaneSink<'_>],
                          list: FlushList|
     -> Vec<EventCounters> {
        let mut states: Vec<(Window<'_>, &mut LaneSink<'_>, EventCounters)> = windows(soa, st)
            .into_iter()
            .zip(views.iter_mut())
            .map(|(w, v)| (w, v, EventCounters::default()))
            .collect();
        parallel_for_owned(n_threads, schedule, &mut states, |_, (w, v, c)| {
            *c = tally_kernel(w, v, list, ctx.cfg.sort_policy);
        });
        states.iter().map(|(_, _, c)| *c).collect()
    };
    let accumulate = |lane_counters: &mut [EventCounters], partials: &[EventCounters]| {
        for (lc, p) in lane_counters.iter_mut().zip(partials) {
            lc.merge(p);
        }
    };

    // --- init kernel.
    let t0 = Instant::now();
    accumulate(
        &mut lane_counters,
        &run_pass(soa, &mut *st, &|w| init_kernel(w, ctx)),
    );
    timings.init = t0.elapsed();

    // --- breadth-first rounds (same loop as `run_over_events`).
    let max_rounds = ctx.cfg.max_events_per_history;
    loop {
        timings.rounds += 1;
        if timings.rounds > max_rounds {
            for (i, s) in st.status.iter_mut().enumerate() {
                if *s == Status::Active {
                    *s = Status::Dead;
                    soa.dead[i] = true;
                    lane_counters[i / chunk].stuck += 1;
                }
            }
            break;
        }

        let t = Instant::now();
        let decide = run_pass(soa, &mut *st, &|w| kb.decide(w, ctx.mesh));
        timings.decide += t.elapsed();
        // The decide kernels abuse the collisions field to carry the
        // still-active count; it is read here, never accumulated.
        if decide.iter().map(|c| c.collisions).sum::<u64>() == 0 {
            break;
        }

        let t = Instant::now();
        accumulate(
            &mut lane_counters,
            &run_pass(soa, &mut *st, &|w| {
                collision_kernel(w, ctx, kb, ctx.cfg.sort_policy)
            }),
        );
        timings.collision += t.elapsed();

        let t = Instant::now();
        accumulate(
            &mut lane_counters,
            &run_pass(soa, &mut *st, &|w| facet_kernel(w, ctx, kb)),
        );
        timings.facet += t.elapsed();

        let t = Instant::now();
        accumulate(
            &mut lane_counters,
            &run_tally_pass(soa, &mut *st, &mut views, FlushList::Round),
        );
        timings.tally += t.elapsed();
    }

    // --- census kernel + final flush.
    let t = Instant::now();
    accumulate(
        &mut lane_counters,
        &run_pass(soa, &mut *st, &|w| census_kernel(w, ctx)),
    );
    accumulate(
        &mut lane_counters,
        &run_tally_pass(soa, &mut *st, &mut views, FlushList::Census),
    );
    timings.census += t.elapsed();

    (lane_counters, timings)
}

/// Populate the per-particle cache arrays and build the initial
/// compacted index list. The cross sections of the whole window resolve
/// through one batched `lookup_many` call — the lane-block shape the
/// unionized/hashed backends are built for. All staging lanes live in
/// the window's [`ScratchArena`], so repeated invocations (one per
/// window per timestep) allocate nothing once the arena has warmed up.
fn init_kernel<R: CbRng>(w: &mut Window<'_>, ctx: &TransportCtx<'_, R>) -> EventCounters {
    let mut c = EventCounters::default();
    let n = w.p.len();
    let WindowState {
        arena: a,
        active,
        coll,
        facet,
        census,
        deaths,
        rank,
        base,
        permuted,
        last_flush_deposits,
        last_flush_cell_runs,
        probe_countdown,
        live,
        scan,
        needs_compact,
        ..
    } = &mut *w.ws;
    a.clear();
    active.clear();
    coll.clear();
    facet.clear();
    census.clear();
    deaths.clear();
    rank.clear();
    *needs_compact = false;
    *permuted = false;
    *last_flush_deposits = 0;
    *last_flush_cell_runs = 0;
    // First flush gathers data, second may probe (see AUTO_PROBE_INTERVAL).
    *probe_countdown = 1;
    for i in 0..n {
        // Identity rank of the slot: the particle's key (= birth index).
        // Equal to `base + i` exactly when the storage is unpermuted.
        let key = w.p.key[i];
        rank.push(key as u32);
        *permuted |= key != u64::from(*base) + i as u64;
        // A previous timestep's runaway guard abandons histories without
        // flushing them; a reused state must not leak those deposits.
        w.pending[i] = 0.0;
        if w.p.dead[i] {
            w.status[i] = Status::Dead;
            continue;
        }
        w.status[i] = Status::Active;
        w.mat[i] = ctx
            .mesh
            .material(w.p.cellx[i] as usize, w.p.celly[i] as usize);
        active.push(i as u32);
        a.energies.push(w.p.energy[i]);
        a.mats.push(w.mat[i]);
        a.hints_absorb.push(w.p.absorb_hint[i]);
        a.hints_scatter.push(w.p.scatter_hint[i]);
    }
    *live = active.len();
    // Sweep bound: one past the last initially-active slot. A `by_alive`
    // regroup packs the live population into a prefix, so this shrinks
    // every sweep loop to the part of the window that can hold work.
    *scan = active.last().map_or(0, |&i| i as usize + 1);

    a.out_absorb.resize(active.len(), 0.0);
    a.out_scatter.resize(active.len(), 0.0);
    resolve_micro_xs_many(
        ctx.materials,
        ctx.cfg.xs_search,
        &a.mats,
        &a.energies,
        &mut a.hints_absorb,
        &mut a.hints_scatter,
        &mut a.out_absorb,
        &mut a.out_scatter,
        &mut c,
        &mut a.xs,
    );

    for (j, &i) in active.iter().enumerate() {
        let i = i as usize;
        w.micro_a[i] = a.out_absorb[j];
        w.micro_s[i] = a.out_scatter[j];
        w.p.absorb_hint[i] = a.hints_absorb[j];
        w.p.scatter_hint[i] = a.hints_scatter[j];
        c.density_reads += 1;
        w.n_dens[i] = number_density(
            ctx.mesh
                .density(w.p.cellx[i] as usize, w.p.celly[i] as usize),
        );
    }
    c
}

/// Scalar event selection under the hybrid dispatch: a predicate sweep
/// on near-full windows (the seed behaviour bit for bit), the compacted
/// index list once the population has thinned. Both arms call the same
/// [`next_event_parts`] physics per live particle in ascending order; the
/// list arm additionally streams the tagged indices into the round's
/// collision/facet lists, which is what shrinks every downstream
/// kernel's trip count.
fn decide_kernel_scalar(w: &mut Window<'_>, mesh: &StructuredMesh2D) -> EventCounters {
    let mut c = EventCounters::default();
    w.ws.begin_round(w.status);
    let WindowState {
        active,
        coll,
        facet,
        census,
        live,
        sweep,
        scan,
        needs_compact,
        ..
    } = &mut *w.ws;
    let (sweep, scan) = (*sweep, *scan);
    let status = &mut *w.status;
    let (cols, micro_a, micro_s, n_dens, tag, dist) = (
        &w.p,
        &*w.micro_a,
        &*w.micro_s,
        &*w.n_dens,
        &mut *w.tag,
        &mut *w.dist,
    );
    // One body, two explicitly unswitched loops (macro-expanded so both
    // arms inline): the seed's predicate sweep and the compacted-list
    // walk generate tight codegen instead of a per-iteration mode branch.
    macro_rules! body {
        ($i:expr, $sweeping:expr) => {{
            let i = $i;
            let sigma_t = macroscopic_per_m(micro_a[i] + micro_s[i], n_dens[i]);
            let bounds = mesh.cell_bounds(cols.cellx[i] as usize, cols.celly[i] as usize);
            match next_event_parts(
                cols.x[i],
                cols.y[i],
                cols.omega_x[i],
                cols.omega_y[i],
                cols.energy[i],
                cols.dt_to_census[i],
                cols.mfp_to_collision[i],
                sigma_t,
                bounds,
            ) {
                NextEvent::Census(_) => {
                    status[i] = Status::AtCensus;
                    tag[i] = Tag::None;
                    census.push(i as u32);
                    *live -= 1;
                    *needs_compact = true;
                }
                NextEvent::Facet(d, f) => {
                    tag[i] = Tag::facet(f);
                    dist[i] = d;
                    if !$sweeping {
                        facet.push(i as u32);
                    }
                    c.collisions += 1; // "active" count (see caller)
                }
                NextEvent::Collision(d) => {
                    tag[i] = Tag::Collision;
                    dist[i] = d;
                    if !$sweeping {
                        coll.push(i as u32);
                    }
                    c.collisions += 1;
                }
            }
        }};
    }
    if sweep {
        for i in 0..scan {
            if status[i] != Status::Active {
                tag[i] = Tag::None;
                continue;
            }
            body!(i, true);
        }
    } else {
        for &iu in active.iter() {
            body!(iu as usize, false);
        }
    }
    c
}

/// Vectorisable event selection under the hybrid dispatch: a
/// branch-light arithmetic pass computes the three candidate distances —
/// over the whole window in sweep mode (the seed's "kernels visit the
/// entire list" gather), over the live lanes only in list mode (dead
/// lanes no longer dilute the vector — the compaction cure for the
/// divergent alive-mask of fig. 8) — then a short scalar pass assigns
/// tags. The physics is identical to the scalar kernel.
fn decide_kernel_vectorized(w: &mut Window<'_>, mesh: &StructuredMesh2D) -> EventCounters {
    decide_kernel_wide(w, mesh, false)
}

/// Shared body of the two wide backends: the same two-pass structure,
/// with the sweep arm of pass 1 optionally dispatched to the explicit
/// AVX2 distance pass (`explicit_simd`). The AVX2 pass and the scalar
/// expressions compute identical bits (see [`avx2`]), so the runtime
/// feature fallback — and the `< 4`-lane remainder — are invisible in
/// every tally and counter.
fn decide_kernel_wide(
    w: &mut Window<'_>,
    mesh: &StructuredMesh2D,
    explicit_simd: bool,
) -> EventCounters {
    w.ws.begin_round(w.status);
    let WindowState {
        arena: a,
        active,
        coll,
        facet,
        census,
        live,
        sweep,
        scan,
        needs_compact,
        ..
    } = &mut *w.ws;
    let sweep = *sweep;
    let status = &mut *w.status;
    let m = if sweep { *scan } else { active.len() };
    a.f64_a.clear();
    a.f64_a.resize(m, 0.0);
    a.f64_b.clear();
    a.f64_b.resize(m, 0.0);
    a.f64_c.clear();
    a.f64_c.resize(m, 0.0);
    a.flags.clear();
    a.flags.resize(m, false);
    let (d_census, d_coll, d_facet, facet_is_x) =
        (&mut a.f64_a, &mut a.f64_b, &mut a.f64_c, &mut a.flags);

    // Pass 1: pure arithmetic, no calls, no data-dependent branches beyond
    // selects — the loop the auto-vectoriser gets to chew on. Explicitly
    // unswitched on the dispatch mode so the sweep arm stays the seed's
    // dense loop.
    {
        let (cols, micro_a, micro_s, n_dens) = (&w.p, &*w.micro_a, &*w.micro_s, &*w.n_dens);
        macro_rules! pass1 {
            ($j:expr, $i:expr) => {{
                let (j, i) = ($j, $i);
                let speed = speed_m_per_s(cols.energy[i]);
                let sigma_t = macroscopic_per_m(micro_a[i] + micro_s[i], n_dens[i]);
                d_census[j] = speed * cols.dt_to_census[i];
                d_coll[j] = if sigma_t > 0.0 {
                    cols.mfp_to_collision[i] / sigma_t
                } else {
                    f64::INFINITY
                };
                let (x0, x1, y0, y1) =
                    mesh.cell_bounds(cols.cellx[i] as usize, cols.celly[i] as usize);
                let (x, ox) = (cols.x[i], cols.omega_x[i]);
                let dx = if ox > 0.0 {
                    (x1 - x) / ox
                } else if ox < 0.0 {
                    (x0 - x) / ox
                } else {
                    f64::INFINITY
                };
                let (y, oy) = (cols.y[i], cols.omega_y[i]);
                let dy = if oy > 0.0 {
                    (y1 - y) / oy
                } else if oy < 0.0 {
                    (y0 - y) / oy
                } else {
                    f64::INFINITY
                };
                facet_is_x[j] = dx <= dy;
                d_facet[j] = if dx <= dy {
                    clamp_nonneg(dx)
                } else {
                    clamp_nonneg(dy)
                };
            }};
        }
        if sweep {
            let mut j0 = 0;
            #[cfg(target_arch = "x86_64")]
            if explicit_simd && avx2_active() {
                // SAFETY: AVX2 support was just confirmed at runtime; the
                // pass touches lanes `[0, return)` of slices all at least
                // `m` long, and every gathered cell index is in range for
                // the mesh's edge arrays (cellx < nx, celly < ny).
                j0 = unsafe {
                    avx2::distance_pass(
                        &cols.energy[..],
                        &cols.dt_to_census[..],
                        &cols.mfp_to_collision[..],
                        &cols.x[..],
                        &cols.y[..],
                        &cols.omega_x[..],
                        &cols.omega_y[..],
                        &cols.cellx[..],
                        &cols.celly[..],
                        mesh.edges_x(),
                        mesh.edges_y(),
                        micro_a,
                        micro_s,
                        n_dens,
                        d_census,
                        d_coll,
                        d_facet,
                        facet_is_x,
                        m,
                    )
                };
            }
            #[cfg(not(target_arch = "x86_64"))]
            let _ = explicit_simd;
            // Scalar remainder (or the whole sweep when AVX2 is absent):
            // lane-for-lane the same expressions as the vector pass.
            for j in j0..m {
                pass1!(j, j);
            }
        } else {
            // List mode visits scattered lanes — a gather-dominated shape
            // explicit vectors do not improve; the scalar expressions
            // keep the bits pinned.
            let _ = explicit_simd;
            for (j, &iu) in active.iter().enumerate() {
                pass1!(j, iu as usize);
            }
        }
    }

    // Pass 2: tag assignment (scalar fix-up), unswitched the same way.
    let mut c = EventCounters::default();
    {
        let (cols, tag, dist) = (&w.p, &mut *w.tag, &mut *w.dist);
        macro_rules! pass2 {
            ($j:expr, $i:expr, $sweeping:expr) => {{
                let (j, i) = ($j, $i);
                if d_census[j] <= d_coll[j] && d_census[j] <= d_facet[j] {
                    status[i] = Status::AtCensus;
                    tag[i] = Tag::None;
                    census.push(i as u32);
                    *live -= 1;
                    *needs_compact = true;
                } else if d_facet[j] <= d_coll[j] {
                    let f = if facet_is_x[j] {
                        if cols.omega_x[i] >= 0.0 {
                            Facet::XHigh
                        } else {
                            Facet::XLow
                        }
                    } else if cols.omega_y[i] >= 0.0 {
                        Facet::YHigh
                    } else {
                        Facet::YLow
                    };
                    tag[i] = Tag::facet(f);
                    dist[i] = d_facet[j];
                    if !$sweeping {
                        facet.push(i as u32);
                    }
                    c.collisions += 1;
                } else {
                    tag[i] = Tag::Collision;
                    dist[i] = d_coll[j];
                    if !$sweeping {
                        coll.push(i as u32);
                    }
                    c.collisions += 1;
                }
            }};
        }
        if sweep {
            for j in 0..m {
                if status[j] != Status::Active {
                    tag[j] = Tag::None;
                    continue;
                }
                pass2!(j, j, true);
            }
        } else {
            for (j, &iu) in active.iter().enumerate() {
                pass2!(j, iu as usize, false);
            }
        }
    }
    c
}

/// Event selection for the explicit-SIMD backend: the AVX2 distance
/// pass when the host supports it, the scalar expressions lane for
/// lane otherwise. Both arms compute identical bits.
fn decide_kernel_simd(w: &mut Window<'_>, mesh: &StructuredMesh2D) -> EventCounters {
    decide_kernel_wide(w, mesh, true)
}

/// Whether the explicit-SIMD backend may actually issue AVX2: runtime
/// CPU detection, minus the test override.
#[cfg(target_arch = "x86_64")]
fn avx2_active() -> bool {
    !SIMD_FALLBACK_FORCED.load(std::sync::atomic::Ordering::Relaxed)
        && std::arch::is_x86_feature_detected!("avx2")
}

/// Test override: pretend the host lacks AVX2, so [`Backend::Simd`]
/// exercises its scalar fallback path.
#[cfg(target_arch = "x86_64")]
static SIMD_FALLBACK_FORCED: std::sync::atomic::AtomicBool =
    std::sync::atomic::AtomicBool::new(false);

/// Force (or stop forcing) the explicit-SIMD backend onto its scalar
/// fallback path, as if the host CPU lacked AVX2. The fallback computes
/// identical bits by contract; this hook exists so tests can prove it on
/// hosts that *do* have AVX2. No-op on non-x86_64 targets (the fallback
/// is the only path there).
pub fn force_simd_fallback(forced: bool) {
    #[cfg(target_arch = "x86_64")]
    SIMD_FALLBACK_FORCED.store(forced, std::sync::atomic::Ordering::Relaxed);
    #[cfg(not(target_arch = "x86_64"))]
    let _ = forced;
}

/// The explicit AVX2 distance pass of [`Backend::Simd`].
///
/// **Bit-identity contract** (DESIGN.md §19): every lane computes the
/// exact expression sequence of the scalar `pass1!` body, mapped
/// op-for-op onto 4-wide IEEE-754 correctly-rounded vector arithmetic:
///
/// * `speed = ((2.0 * e) * EV_TO_J / NEUTRON_MASS_KG).sqrt()` — mul,
///   mul, div, sqrt; all correctly rounded, no FMA contraction;
/// * `sigma_t = ((micro_a + micro_s) * BARN_M2) * n_dens`;
/// * the sign-of-omega facet selects become compare + blend; the lanes
///   not selected may compute `inf`/NaN garbage (e.g. division by a
///   zero direction component), exactly like the untaken scalar branch
///   would have, and the blend discards them;
/// * [`clamp_nonneg`]`(dx)` maps to `_mm256_max_pd(dx, 0.0)`: both
///   return the second operand (`+0.0`) on a NaN or `±0.0` tie — the
///   scalar helper exists precisely to pin that tie, because a plain
///   `f64::max` leaves the zero's sign to codegen;
/// * cell bounds come from `_mm256_i32gather_pd` over the mesh's edge
///   arrays — the same memory `cell_bounds` reads, minus the per-lane
///   tuple construction.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use core::arch::x86_64::*;
    use neutral_xs::constants::{BARN_M2, EV_TO_J, NEUTRON_MASS_KG};

    /// Fill the candidate-distance lanes `[0, floor(m / 4) * 4)` from
    /// contiguous particle columns (sweep mode: lane `j` is particle
    /// `j`), returning the first unprocessed lane for the scalar
    /// remainder loop.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support at runtime, every input
    /// slice must hold at least `m` elements, and every `cellx`/`celly`
    /// value must index a valid mesh cell (so the edge gathers stay in
    /// bounds).
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn distance_pass(
        energy: &[f64],
        dt_to_census: &[f64],
        mfp_to_collision: &[f64],
        x: &[f64],
        y: &[f64],
        omega_x: &[f64],
        omega_y: &[f64],
        cellx: &[u32],
        celly: &[u32],
        edges_x: &[f64],
        edges_y: &[f64],
        micro_a: &[f64],
        micro_s: &[f64],
        n_dens: &[f64],
        d_census: &mut [f64],
        d_coll: &mut [f64],
        d_facet: &mut [f64],
        facet_is_x: &mut [bool],
        m: usize,
    ) -> usize {
        let blocks = m / 4 * 4;
        let two = _mm256_set1_pd(2.0);
        let ev_to_j = _mm256_set1_pd(EV_TO_J);
        let inv_mass = _mm256_set1_pd(NEUTRON_MASS_KG);
        let barn = _mm256_set1_pd(BARN_M2);
        let zero = _mm256_setzero_pd();
        let inf = _mm256_set1_pd(f64::INFINITY);
        let mut j = 0;
        while j < blocks {
            // speed = ((2.0 * e) * EV_TO_J / NEUTRON_MASS_KG).sqrt()
            let e = _mm256_loadu_pd(energy.as_ptr().add(j));
            let speed = _mm256_sqrt_pd(_mm256_div_pd(
                _mm256_mul_pd(_mm256_mul_pd(two, e), ev_to_j),
                inv_mass,
            ));
            // sigma_t = ((micro_a + micro_s) * BARN_M2) * n_dens
            let micro = _mm256_add_pd(
                _mm256_loadu_pd(micro_a.as_ptr().add(j)),
                _mm256_loadu_pd(micro_s.as_ptr().add(j)),
            );
            let sigma_t = _mm256_mul_pd(
                _mm256_mul_pd(micro, barn),
                _mm256_loadu_pd(n_dens.as_ptr().add(j)),
            );
            let dcen = _mm256_mul_pd(speed, _mm256_loadu_pd(dt_to_census.as_ptr().add(j)));
            // d_coll = sigma_t > 0 ? mfp / sigma_t : inf (the untaken
            // division yields inf/NaN and is blended away).
            let sig_pos = _mm256_cmp_pd::<_CMP_GT_OQ>(sigma_t, zero);
            let dcol = _mm256_blendv_pd(
                inf,
                _mm256_div_pd(_mm256_loadu_pd(mfp_to_collision.as_ptr().add(j)), sigma_t),
                sig_pos,
            );
            // Cell bounds: gather (edge[i], edge[i + 1]) pairs per axis.
            let ix = _mm_set_epi32(
                cellx[j + 3] as i32,
                cellx[j + 2] as i32,
                cellx[j + 1] as i32,
                cellx[j] as i32,
            );
            let iy = _mm_set_epi32(
                celly[j + 3] as i32,
                celly[j + 2] as i32,
                celly[j + 1] as i32,
                celly[j] as i32,
            );
            let x0 = _mm256_i32gather_pd::<8>(edges_x.as_ptr(), ix);
            let x1 = _mm256_i32gather_pd::<8>(edges_x.as_ptr().add(1), ix);
            let y0 = _mm256_i32gather_pd::<8>(edges_y.as_ptr(), iy);
            let y1 = _mm256_i32gather_pd::<8>(edges_y.as_ptr().add(1), iy);
            // dx = ox > 0 ? (x1-x)/ox : ox < 0 ? (x0-x)/ox : inf
            let xv = _mm256_loadu_pd(x.as_ptr().add(j));
            let oxv = _mm256_loadu_pd(omega_x.as_ptr().add(j));
            let tx_hi = _mm256_div_pd(_mm256_sub_pd(x1, xv), oxv);
            let tx_lo = _mm256_div_pd(_mm256_sub_pd(x0, xv), oxv);
            let ox_pos = _mm256_cmp_pd::<_CMP_GT_OQ>(oxv, zero);
            let ox_neg = _mm256_cmp_pd::<_CMP_LT_OQ>(oxv, zero);
            let dx = _mm256_blendv_pd(_mm256_blendv_pd(inf, tx_lo, ox_neg), tx_hi, ox_pos);
            let yv = _mm256_loadu_pd(y.as_ptr().add(j));
            let oyv = _mm256_loadu_pd(omega_y.as_ptr().add(j));
            let ty_hi = _mm256_div_pd(_mm256_sub_pd(y1, yv), oyv);
            let ty_lo = _mm256_div_pd(_mm256_sub_pd(y0, yv), oyv);
            let oy_pos = _mm256_cmp_pd::<_CMP_GT_OQ>(oyv, zero);
            let oy_neg = _mm256_cmp_pd::<_CMP_LT_OQ>(oyv, zero);
            let dy = _mm256_blendv_pd(_mm256_blendv_pd(inf, ty_lo, oy_neg), ty_hi, oy_pos);
            // facet_is_x = dx <= dy; d_facet = max(selected, 0.0)
            let is_x = _mm256_cmp_pd::<_CMP_LE_OQ>(dx, dy);
            let dfac = _mm256_blendv_pd(_mm256_max_pd(dy, zero), _mm256_max_pd(dx, zero), is_x);
            _mm256_storeu_pd(d_census.as_mut_ptr().add(j), dcen);
            _mm256_storeu_pd(d_coll.as_mut_ptr().add(j), dcol);
            _mm256_storeu_pd(d_facet.as_mut_ptr().add(j), dfac);
            let bits = _mm256_movemask_pd(is_x);
            facet_is_x[j] = bits & 1 != 0;
            facet_is_x[j + 1] = bits & 2 != 0;
            facet_is_x[j + 2] = bits & 4 != 0;
            facet_is_x[j + 3] = bits & 8 != 0;
            j += 4;
        }
        blocks
    }
}

fn collision_kernel<R: CbRng>(
    w: &mut Window<'_>,
    ctx: &TransportCtx<'_, R>,
    kb: &dyn KernelBackend,
    policy: SortPolicy,
) -> EventCounters {
    let mut c = EventCounters::default();
    let nx = ctx.mesh.nx();
    let WindowState {
        arena: a,
        coll,
        deaths,
        rank,
        live,
        sweep,
        scan,
        needs_compact,
        ..
    } = &mut *w.ws;
    let (sweep, scan) = (*sweep, *scan);
    // The batched re-lookup pays a gather/scatter pass; only the grid
    // backends, whose `lookup_many` has a sorted-block fast path, win it
    // back. The walking backends keep the seed's per-particle calls
    // (same lookups, same counters either way).
    let batch = matches!(
        ctx.cfg.xs_search,
        crate::config::LookupStrategy::Unionized | crate::config::LookupStrategy::Hashed
    );
    // Under `ByEnergyBand` the survivors' lookup lanes are gathered in
    // energy-band order, so the batched `lookup_many` below walks
    // monotone energy-grid runs (the run-detection fast path of the
    // unionized/hashed backends). Per-lane results are independent and
    // scattered back by index, so the physics is order-blind.
    let sort_lanes = batch && policy == SortPolicy::ByEnergyBand;
    // One virtual call per kernel, not per particle (see facet_kernel).
    let prepass = kb.prepass();

    if prepass {
        // Vectorisable pre-pass: movement + deposit arithmetic for all
        // colliding particles, hoisted out of the branchy handler
        // (unswitched on the dispatch mode, like decide).
        macro_rules! prepass {
            ($i:expr) => {{
                let i = $i;
                debug_assert!(w.status[i] == Status::Active && w.tag[i] == Tag::Collision);
                let micro = MicroXs {
                    absorb_barns: w.micro_a[i],
                    scatter_barns: w.micro_s[i],
                };
                let d = w.dist[i];
                w.pending[i] +=
                    energy_deposition(w.p.energy[i], w.p.weight[i], d, w.n_dens[i], micro);
                w.pending_cell[i] = (w.p.celly[i] as usize * nx + w.p.cellx[i] as usize) as u32;
                let sigma_t = macroscopic_per_m(micro.total_barns(), w.n_dens[i]);
                move_particle_parts(
                    &mut w.p.x[i],
                    &mut w.p.y[i],
                    &mut w.p.mfp_to_collision[i],
                    &mut w.p.dt_to_census[i],
                    w.p.omega_x[i],
                    w.p.omega_y[i],
                    w.p.energy[i],
                    d,
                    sigma_t,
                );
            }};
        }
        if sweep {
            for i in 0..scan {
                if w.tag[i] != Tag::Collision || w.status[i] != Status::Active {
                    continue;
                }
                prepass!(i);
            }
        } else {
            for &iu in coll.iter() {
                prepass!(iu as usize);
            }
        }
    }

    a.clear();
    deaths.clear();
    let trips = if sweep { scan } else { coll.len() };
    #[allow(clippy::needless_range_loop)] // dual-mode index source
    for k in 0..trips {
        let i = if sweep { k } else { coll[k] as usize };
        if sweep && (w.tag[i] != Tag::Collision || w.status[i] != Status::Active) {
            continue;
        }
        let micro = MicroXs {
            absorb_barns: w.micro_a[i],
            scatter_barns: w.micro_s[i],
        };
        // Gather the lane into a register bundle once: the branchy RNG
        // handler below mutates most fields, and a single load/store pair
        // per colliding particle beats fifteen strided column touches.
        let mut p = w.p.load(i);
        if !prepass {
            let d = w.dist[i];
            w.pending[i] += energy_deposition(p.energy, p.weight, d, w.n_dens[i], micro);
            w.pending_cell[i] = p.cell_index(nx) as u32;
            let sigma_t = macroscopic_per_m(micro.total_barns(), w.n_dens[i]);
            move_particle(&mut p, d, sigma_t);
        }
        let mut stream = CounterStream::new(ctx.rng, p.key);
        // Capture this particle's cutoff loss separately so the `f64`
        // accumulation below can run in ascending index order whatever
        // order produced it.
        let outer_lost = c.lost_energy_ev;
        c.lost_energy_ev = 0.0;
        let died = handle_collision(&mut p, &mut stream, micro, ctx.cfg, &mut c);
        if died {
            deaths.push((rank[i], c.lost_energy_ev));
            w.status[i] = Status::Dead;
            *live -= 1;
            *needs_compact = true;
        } else if sort_lanes {
            a.idx.push(i as u32);
        } else if batch {
            a.idx.push(i as u32);
            a.energies.push(p.energy);
            a.mats.push(w.mat[i]);
            a.hints_absorb.push(p.xs_hints.absorb);
            a.hints_scatter.push(p.xs_hints.scatter);
        } else {
            let micro = crate::history::lookup_micro(&mut p, ctx, w.mat[i], &mut c);
            w.micro_a[i] = micro.absorb_barns;
            w.micro_s[i] = micro.scatter_barns;
        }
        c.lost_energy_ev = outer_lost;
        w.p.store(i, &p);
    }

    // Deterministic `f64` reduction: lost energy sums in identity (rank)
    // order — the sequence the uncompacted, unregrouped sweep produced.
    deaths.sort_unstable_by_key(|d| d.0);
    for &(_, e) in deaths.iter() {
        c.lost_energy_ev += e;
    }

    if sort_lanes {
        // Stable sort by energy band (exponent + top 8 mantissa bits,
        // monotone for the positive energies in play; ~0.4% bands), then
        // gather the survivor lanes in that order. Equal bands keep
        // ascending index order — irrelevant for the physics (per-lane
        // lookups are independent) but it keeps the lane block
        // deterministic, so `cs_search_steps` is reproducible.
        a.sort_keys.clear();
        for &iu in &a.idx {
            let band = crate::particle::energy_band(w.p.energy[iu as usize]);
            a.sort_keys.push((band, iu));
        }
        crate::arena::radix_sort_pairs(&mut a.sort_keys, &mut a.sort_tmp);
        a.idx.clear();
        for k in 0..a.sort_keys.len() {
            let iu = a.sort_keys[k].1;
            let i = iu as usize;
            a.idx.push(iu);
            a.energies.push(w.p.energy[i]);
            a.mats.push(w.mat[i]);
            a.hints_absorb.push(w.p.absorb_hint[i]);
            a.hints_scatter.push(w.p.scatter_hint[i]);
        }
    }

    // The collisions changed the survivors' energies: re-resolve their
    // cross sections through one batched lane-block lookup (bitwise
    // identical to the per-particle calls, but a single tight sweep the
    // sorted-block fast paths of the grid backends can exploit).
    if batch {
        a.out_absorb.resize(a.idx.len(), 0.0);
        a.out_scatter.resize(a.idx.len(), 0.0);
        resolve_micro_xs_many(
            ctx.materials,
            ctx.cfg.xs_search,
            &a.mats,
            &a.energies,
            &mut a.hints_absorb,
            &mut a.hints_scatter,
            &mut a.out_absorb,
            &mut a.out_scatter,
            &mut c,
            &mut a.xs,
        );
        for (j, &iu) in a.idx.iter().enumerate() {
            let i = iu as usize;
            w.micro_a[i] = a.out_absorb[j];
            w.micro_s[i] = a.out_scatter[j];
            w.p.absorb_hint[i] = a.hints_absorb[j];
            w.p.scatter_hint[i] = a.hints_scatter[j];
        }
    }
    c
}

fn facet_kernel<R: CbRng>(
    w: &mut Window<'_>,
    ctx: &TransportCtx<'_, R>,
    kb: &dyn KernelBackend,
) -> EventCounters {
    let mut c = EventCounters::default();
    let nx = ctx.mesh.nx();
    let sweep = w.ws.sweep;
    let scan = w.ws.scan;
    let facet_list = &w.ws.facet;
    // One virtual call per kernel, not per particle: the flag is
    // loop-invariant, and an indirect call inside the per-event loops
    // would defeat their unswitching.
    let prepass = kb.prepass();

    if prepass {
        // Vectorisable pre-pass: movement + deposit for all facet-bound
        // particles (unswitched on the dispatch mode, like decide).
        macro_rules! prepass {
            ($i:expr) => {{
                let i = $i;
                debug_assert!(w.status[i] == Status::Active && w.tag[i].to_facet().is_some());
                let micro = MicroXs {
                    absorb_barns: w.micro_a[i],
                    scatter_barns: w.micro_s[i],
                };
                let d = w.dist[i];
                w.pending[i] +=
                    energy_deposition(w.p.energy[i], w.p.weight[i], d, w.n_dens[i], micro);
                w.pending_cell[i] = (w.p.celly[i] as usize * nx + w.p.cellx[i] as usize) as u32;
                let sigma_t = macroscopic_per_m(micro.total_barns(), w.n_dens[i]);
                move_particle_parts(
                    &mut w.p.x[i],
                    &mut w.p.y[i],
                    &mut w.p.mfp_to_collision[i],
                    &mut w.p.dt_to_census[i],
                    w.p.omega_x[i],
                    w.p.omega_y[i],
                    w.p.energy[i],
                    d,
                    sigma_t,
                );
            }};
        }
        if sweep {
            for i in 0..scan {
                if w.status[i] != Status::Active || w.tag[i].to_facet().is_none() {
                    continue;
                }
                prepass!(i);
            }
        } else {
            for &iu in facet_list.iter() {
                prepass!(iu as usize);
            }
        }
    }

    macro_rules! body {
        ($i:expr, $facet:expr) => {{
            let i = $i;
            let facet = $facet;
            if !prepass {
                let micro = MicroXs {
                    absorb_barns: w.micro_a[i],
                    scatter_barns: w.micro_s[i],
                };
                let d = w.dist[i];
                w.pending[i] +=
                    energy_deposition(w.p.energy[i], w.p.weight[i], d, w.n_dens[i], micro);
                w.pending_cell[i] = (w.p.celly[i] as usize * nx + w.p.cellx[i] as usize) as u32;
                let sigma_t = macroscopic_per_m(micro.total_barns(), w.n_dens[i]);
                move_particle_parts(
                    &mut w.p.x[i],
                    &mut w.p.y[i],
                    &mut w.p.mfp_to_collision[i],
                    &mut w.p.dt_to_census[i],
                    w.p.omega_x[i],
                    w.p.omega_y[i],
                    w.p.energy[i],
                    d,
                    sigma_t,
                );
            }
            // A facet event touches only the cell index (crossing) or one
            // direction cosine (reflection): resolve it on the columns
            // directly. Gathering the whole fifteen-field particle here —
            // the collision kernel's strategy — would touch every column
            // for a two-field update, and facets outnumber collisions on
            // the streaming-heavy shapes.
            handle_facet_parts(
                &mut w.p.omega_x[i],
                &mut w.p.omega_y[i],
                &mut w.p.cellx[i],
                &mut w.p.celly[i],
                facet,
                ctx.mesh,
                &mut c,
            );
            c.density_reads += 1;
            let (cx, cy) = (w.p.cellx[i] as usize, w.p.celly[i] as usize);
            w.n_dens[i] = number_density(ctx.mesh.density(cx, cy));
            // Crossing into a different material invalidates the cached
            // microscopic cross sections (same order of operations as the
            // history loop, so the counters and hints stay identical).
            let mat = ctx.mesh.material(cx, cy);
            if mat != w.mat[i] {
                w.mat[i] = mat;
                c.material_switches += 1;
                let mut hints = XsHints {
                    absorb: w.p.absorb_hint[i],
                    scatter: w.p.scatter_hint[i],
                };
                let micro = resolve_micro_xs(
                    ctx.materials.library(mat),
                    ctx.cfg.xs_search,
                    w.p.energy[i],
                    &mut hints,
                    &mut c,
                );
                w.p.absorb_hint[i] = hints.absorb;
                w.p.scatter_hint[i] = hints.scatter;
                w.micro_a[i] = micro.absorb_barns;
                w.micro_s[i] = micro.scatter_barns;
            }
        }};
    }
    if sweep {
        for i in 0..scan {
            if w.status[i] != Status::Active {
                continue;
            }
            let Some(facet) = w.tag[i].to_facet() else {
                continue;
            };
            body!(i, facet);
        }
    } else {
        for &iu in facet_list.iter() {
            let i = iu as usize;
            let Some(facet) = w.tag[i].to_facet() else {
                debug_assert!(false, "facet list member without a facet tag");
                continue;
            };
            body!(i, facet);
        }
    }
    c
}

/// Which set a tally flush drains.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FlushList {
    /// The round flush: every particle that was active at the start of
    /// the round (including this round's deaths and census arrivals,
    /// whose last deposits are still pending), in ascending index order
    /// — the seed's flush sequence. In sweep mode this is the seed's
    /// whole-window sweep.
    Round,
    /// The final flush after the census kernel: only census arrivals can
    /// hold pending deposits at that point.
    Census,
}

/// Minimum deposits in the previous Round flush before the
/// [`SortPolicy::Auto`] heuristic will even consider clustering — below
/// this the sort cannot pay for itself.
const AUTO_MIN_DEPOSITS: u32 = 16;

/// Rounds between [`SortPolicy::Auto`] probe flushes: a clustered flush
/// measures the exact deposits-per-distinct-cell ratio (the unsorted
/// flush can only see adjacent runs), so Auto re-probes at this cadence
/// while the unsorted arm holds. Probes are bitwise free — a clustered
/// flush computes identical bits — so the cadence tunes only overhead.
const AUTO_PROBE_INTERVAL: u32 = 32;

fn tally_kernel<T: TallySink>(
    w: &mut Window<'_>,
    sink: &mut T,
    list: FlushList,
    policy: SortPolicy,
) -> EventCounters {
    let mut c = EventCounters::default();
    let WindowState {
        arena: a,
        active,
        census,
        rank,
        permuted,
        last_flush_deposits,
        last_flush_cell_runs,
        probe_countdown,
        sweep,
        scan,
        ..
    } = &mut *w.ws;
    let permuted = *permuted;
    let scan = *scan;
    let (sweep, indices): (bool, &[u32]) = match list {
        FlushList::Round => (*sweep, active),
        FlushList::Census => (false, census),
    };
    // Clustered (cell-sorted) flush: unconditional under ByCell; under
    // Auto only when the previous round's flush showed deposits genuinely
    // sharing cells (mean ≥ 2 deposits per adjacent-cell run and enough
    // volume for the sort to pay). The decision uses only per-window
    // state, so it is identical for any worker count.
    let cluster = list == FlushList::Round
        && match policy {
            SortPolicy::ByCell => true,
            SortPolicy::Auto => {
                *last_flush_deposits >= AUTO_MIN_DEPOSITS
                    && (*last_flush_deposits >= 2 * (*last_flush_cell_runs).max(1)
                        || *probe_countdown == 0)
            }
            SortPolicy::Off | SortPolicy::ByEnergyBand => false,
        };

    // The heuristic's observation window: deposits drained and adjacent
    // cell changes in this flush's final order (exact distinct-cell count
    // when clustered, an upper-bound proxy otherwise). Only Auto reads
    // these, so only Auto pays for tracking them — the other policies
    // keep the seed's bare flush loop.
    let want_stats = policy == SortPolicy::Auto && list == FlushList::Round;
    let mut deposits = 0u32;
    let mut cell_runs = 0u32;
    let mut last_cell = u32::MAX;
    macro_rules! drain {
        ($cell:expr, $i:expr) => {{
            let (cell, i) = ($cell, $i);
            sink.deposit(cell as usize, w.pending[i]);
            w.pending[i] = 0.0;
            c.tally_flushes += 1;
            if want_stats {
                deposits += 1;
                if cell != last_cell {
                    cell_runs += 1;
                    last_cell = cell;
                }
            }
        }};
    }

    if permuted || cluster {
        // Collect the flush candidates, then order them. The identity
        // anchor: candidates are keyed by rank first, so the unclustered
        // permuted flush drains in exactly the unregrouped sequence, and
        // the clustered flush's stable cell sort keeps every cell's
        // deposits in that same rank order — the same `f64` add sequence,
        // and therefore the same bits, as the seed's unsorted flush.
        a.sort_keys.clear();
        if sweep {
            #[allow(clippy::needless_range_loop)] // indexes three arrays
            for i in 0..scan {
                if w.pending[i] != 0.0 {
                    a.sort_keys.push((rank[i], i as u32));
                }
            }
        } else {
            for &iu in indices.iter() {
                let i = iu as usize;
                if w.pending[i] != 0.0 {
                    a.sort_keys.push((rank[i], i as u32));
                }
            }
        }
        if permuted {
            crate::arena::radix_sort_pairs(&mut a.sort_keys, &mut a.sort_tmp);
        }
        // Unpermuted candidates were pushed in index order == rank order
        // already, so the rank sort is skipped (bitwise a no-op).
        if cluster {
            a.sort_keys2.clear();
            a.sort_keys2.extend(
                a.sort_keys
                    .iter()
                    .map(|&(_, iu)| (w.pending_cell[iu as usize], iu)),
            );
            crate::arena::radix_sort_pairs(&mut a.sort_keys2, &mut a.sort_tmp);
            for k in 0..a.sort_keys2.len() {
                let (cell, iu) = a.sort_keys2[k];
                drain!(cell, iu as usize);
            }
        } else {
            for k in 0..a.sort_keys.len() {
                let (_, iu) = a.sort_keys[k];
                let i = iu as usize;
                drain!(w.pending_cell[i], i);
            }
        }
    } else if sweep {
        for i in 0..scan {
            if w.pending[i] != 0.0 {
                drain!(w.pending_cell[i], i);
            }
        }
    } else {
        for &iu in indices.iter() {
            let i = iu as usize;
            if w.pending[i] != 0.0 {
                drain!(w.pending_cell[i], i);
            }
        }
    }

    // A flush that drained nothing is a complete no-op: no clustered-pass
    // count, no heuristic-stats update, no probe-countdown movement. This
    // keeps every per-window flush state a pure function of the window's
    // *own* deposit history — never of how many rounds *other* windows
    // kept the global loop alive — which is what lets a shard, whose
    // local round loop may exit earlier than the whole population's,
    // reproduce each lane's counters bitwise (see `crate::shard`). Empty
    // rounds only happen to windows with no active particles, so the
    // retained "last flush" stats still describe the last flush that
    // moved any energy.
    if c.tally_flushes > 0 {
        if cluster {
            c.clustered_flushes += 1;
        }
        if list == FlushList::Round {
            *last_flush_deposits = deposits;
            *last_flush_cell_runs = cell_runs;
            if cluster {
                *probe_countdown = AUTO_PROBE_INTERVAL;
            } else if *probe_countdown > 0 {
                *probe_countdown -= 1;
            }
        }
    }
    c
}

/// Handle every census arrival, accumulated across rounds in the
/// window's census list. The list is sorted into identity (rank) order
/// first so the pass (and the final flush that follows it) runs in the
/// seed's sequence — census entries arrive round by round, not index by
/// index, and under regrouping physical order is not identity order.
fn census_kernel<R: CbRng>(w: &mut Window<'_>, ctx: &TransportCtx<'_, R>) -> EventCounters {
    let mut c = EventCounters::default();
    let nx = ctx.mesh.nx();
    let WindowState {
        census,
        rank,
        permuted,
        ..
    } = &mut *w.ws;
    if *permuted {
        census.sort_unstable_by_key(|&iu| rank[iu as usize]);
    } else {
        // rank == base + index: plain index order is identity order.
        census.sort_unstable();
    }
    for &iu in census.iter() {
        let i = iu as usize;
        debug_assert_eq!(w.status[i], Status::AtCensus);
        let micro = MicroXs {
            absorb_barns: w.micro_a[i],
            scatter_barns: w.micro_s[i],
        };
        let speed = speed_m_per_s(w.p.energy[i]);
        let d = speed * w.p.dt_to_census[i];
        w.pending[i] += energy_deposition(w.p.energy[i], w.p.weight[i], d, w.n_dens[i], micro);
        w.pending_cell[i] = (w.p.celly[i] as usize * nx + w.p.cellx[i] as usize) as u32;
        let sigma_t = macroscopic_per_m(micro.total_barns(), w.n_dens[i]);
        move_particle_parts(
            &mut w.p.x[i],
            &mut w.p.y[i],
            &mut w.p.mfp_to_collision[i],
            &mut w.p.dt_to_census[i],
            w.p.omega_x[i],
            w.p.omega_y[i],
            w.p.energy[i],
            d,
            sigma_t,
        );
        w.p.dt_to_census[i] = 0.0;
        c.census += 1;
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ProblemScale, TestCase};
    use crate::over_particles::run_sequential;
    use crate::particle::{spawn_particles, Particle};
    use neutral_mesh::tally::SequentialTally;
    use neutral_rng::Threefry2x64;

    fn fixture(case: TestCase) -> (crate::config::Problem, Threefry2x64) {
        let problem = case.build(ProblemScale::tiny(), 17);
        let rng = Threefry2x64::new([problem.seed, 1]);
        (problem, rng)
    }

    fn ctx<'a>(
        problem: &'a crate::config::Problem,
        rng: &'a Threefry2x64,
    ) -> TransportCtx<'a, Threefry2x64> {
        TransportCtx {
            mesh: &problem.mesh,
            materials: &problem.materials,
            rng,
            cfg: &problem.transport,
        }
    }

    /// The compaction invariant under the hybrid dispatch: the live
    /// counter always equals the alive-predicate count; in list mode the
    /// maintained index list is exactly the set the alive-predicate
    /// would select, in ascending order, and the round's collision/facet
    /// lists are exactly the tagged subsets. Both dispatch arms must be
    /// exercised (scatter's population decays through the threshold).
    #[test]
    fn compacted_list_matches_alive_predicate() {
        for case in [TestCase::Scatter, TestCase::Csp] {
            let (problem, rng) = fixture(case);
            let c = ctx(&problem, &rng);
            let mut particles = ParticleSoA::from_aos(&spawn_particles(&problem));
            let n = particles.len();
            let tally = AtomicTally::new(problem.mesh.num_cells());
            let mut st = EventState::new(n, n.max(1), 0);
            let mut ws = windows(&mut particles, &mut st);
            let w = &mut ws[0];
            init_kernel(w, &c);
            let alive: Vec<u32> = (0..n as u32)
                .filter(|&i| w.status[i as usize] == Status::Active)
                .collect();
            assert_eq!(w.ws.active, alive, "{case:?}: init list");
            assert_eq!(w.ws.live, alive.len(), "{case:?}: init live count");

            let (mut sweep_rounds, mut list_rounds) = (0u32, 0u32);
            for round in 0..1000 {
                // The set the predicate selects at the compaction point.
                let expected: Vec<u32> = (0..n as u32)
                    .filter(|&i| w.status[i as usize] == Status::Active)
                    .collect();
                let decide = decide_kernel_scalar(w, c.mesh);
                if w.ws.sweep {
                    sweep_rounds += 1;
                } else {
                    list_rounds += 1;
                    assert_eq!(
                        w.ws.active, expected,
                        "{case:?} round {round}: compacted list != alive predicate set"
                    );
                    let tagged: Vec<u32> = expected
                        .iter()
                        .copied()
                        .filter(|&i| w.status[i as usize] == Status::Active)
                        .collect();
                    let colls: Vec<u32> = tagged
                        .iter()
                        .copied()
                        .filter(|&i| w.tag[i as usize] == Tag::Collision)
                        .collect();
                    let facets: Vec<u32> = tagged
                        .iter()
                        .copied()
                        .filter(|&i| w.tag[i as usize].to_facet().is_some())
                        .collect();
                    assert_eq!(w.ws.coll, colls, "{case:?} round {round}: collision list");
                    assert_eq!(w.ws.facet, facets, "{case:?} round {round}: facet list");
                }
                if decide.collisions == 0 {
                    break;
                }
                collision_kernel(w, &c, &ScalarBackend, SortPolicy::Off);
                facet_kernel(w, &c, &ScalarBackend);
                tally_kernel(w, &mut { &tally }, FlushList::Round, SortPolicy::Off);
                let live_now = (0..n).filter(|&i| w.status[i] == Status::Active).count();
                assert_eq!(w.ws.live, live_now, "{case:?} round {round}: live count");
            }
            assert!(
                sweep_rounds > 0 && list_rounds > 0,
                "{case:?}: both dispatch arms must be exercised \
                 (sweep={sweep_rounds}, list={list_rounds})"
            );
            // The census list holds exactly the AtCensus set once sorted.
            let mut census = w.ws.census.clone();
            census.sort_unstable();
            let expected: Vec<u32> = (0..n as u32)
                .filter(|&i| w.status[i as usize] == Status::AtCensus)
                .collect();
            assert_eq!(census, expected, "{case:?}: census list");
        }
    }

    /// The live-prefix sweep bound: after a `by_alive` regroup packs the
    /// live population into a prefix, `scan` shrinks to the live count
    /// (sweep loops skip the dead tail entirely), and the solve still
    /// computes bitwise-identical tallies and counters — the regroup
    /// identity invariant extended to the shortened sweep.
    #[test]
    fn scan_bound_tracks_live_prefix_after_regroup() {
        let (problem, rng) = fixture(TestCase::Scatter);
        let c = ctx(&problem, &rng);
        let base = spawn_particles(&problem);
        let n = base.len();

        // Kill a scattered subset so the population is fragmented, then
        // advance both copies one timestep: unregrouped vs by_alive.
        let mut plain = base.clone();
        for (i, p) in plain.iter_mut().enumerate() {
            if i % 3 == 1 {
                p.dead = true;
            }
        }
        let mut packed = plain.clone();
        let mut scratch = ScratchArena::default();
        let moved = crate::particle::regroup_particles(
            &mut packed,
            crate::config::RegroupPolicy::ByAlive,
            c.mesh.nx(),
            n,
            &mut scratch,
        );
        assert!(moved, "fragmented population must actually regroup");
        let alive = plain.iter().filter(|p| !p.dead).count();
        let plain_bound = plain.iter().rposition(|p| !p.dead).unwrap() + 1;

        // Init alone exposes the bound: one past the last alive slot for
        // the fragmented window, the live prefix for the packed one.
        let mut st = EventState::new(n, n.max(1), 0);
        let mut probe = ParticleSoA::from_aos(&plain);
        let mut ws = windows(&mut probe, &mut st);
        init_kernel(&mut ws[0], &c);
        assert_eq!(ws[0].ws.scan, plain_bound, "fragmented scan bound");
        assert!(alive < plain_bound, "fragmentation leaves holes in scan");
        drop(ws);
        let mut probe = ParticleSoA::from_aos(&packed);
        let mut ws = windows(&mut probe, &mut st);
        init_kernel(&mut ws[0], &c);
        assert_eq!(ws[0].ws.scan, alive, "packed scan == live prefix");
        drop(ws);

        // And the shortened sweep is bitwise clean: identical tallies
        // (per cell) and counters, with trajectories matching by key.
        let run = |particles: &mut Vec<Particle>| {
            let tally = AtomicTally::new(problem.mesh.num_cells());
            let mut soa = ParticleSoA::from_aos(particles);
            let (counters, _t) =
                run_over_events(&mut soa, &c, &tally, KernelStyle::Scalar, false, &mut None);
            soa.write_aos(particles);
            let bits: Vec<u64> = tally.snapshot().iter().map(|v| v.to_bits()).collect();
            (counters, bits)
        };
        let (c_plain, t_plain) = run(&mut plain);
        let (c_packed, t_packed) = run(&mut packed);
        assert_eq!(t_plain, t_packed, "tally bits");
        assert_eq!(c_plain, c_packed, "counters");
        let mut by_key = packed.clone();
        by_key.sort_unstable_by_key(|p| p.key);
        assert_eq!(plain, by_key, "trajectories (identity order)");
    }

    /// The headline validation property: Over Events computes the exact
    /// same particle trajectories as Over Particles, for every test case
    /// and both kernel styles.
    #[test]
    fn over_events_matches_over_particles() {
        for case in TestCase::ALL {
            let (problem, rng) = fixture(case);
            let c = ctx(&problem, &rng);

            let mut op_particles = spawn_particles(&problem);
            let mut op_tally = SequentialTally::new(problem.mesh.num_cells());
            let op_counters = run_sequential(&mut op_particles, &c, &mut op_tally);

            for style in Backend::ALL {
                for parallel in [false, true] {
                    let mut oe_soa = ParticleSoA::from_aos(&spawn_particles(&problem));
                    let oe_tally = AtomicTally::new(problem.mesh.num_cells());
                    let (oe_counters, _t) =
                        run_over_events(&mut oe_soa, &c, &oe_tally, style, parallel, &mut None);
                    assert_eq!(
                        op_particles,
                        oe_soa.to_aos(),
                        "{case:?}/{style:?}/parallel={parallel}: trajectories"
                    );
                    assert_eq!(op_counters.collisions, oe_counters.collisions);
                    assert_eq!(op_counters.facets, oe_counters.facets);
                    assert_eq!(op_counters.census, oe_counters.census);
                    assert_eq!(op_counters.deaths, oe_counters.deaths);
                    assert_eq!(op_counters.cs_lookups, oe_counters.cs_lookups);
                    assert_eq!(op_counters.density_reads, oe_counters.density_reads);
                    let a = op_tally.total();
                    let b = oe_tally.total();
                    assert!(
                        ((a - b) / a.abs().max(1e-30)).abs() < 1e-9,
                        "{case:?}/{style:?}: tally {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn per_cell_tallies_match_schemes() {
        let (problem, rng) = fixture(TestCase::Csp);
        let c = ctx(&problem, &rng);

        let mut op_particles = spawn_particles(&problem);
        let mut op_tally = SequentialTally::new(problem.mesh.num_cells());
        run_sequential(&mut op_particles, &c, &mut op_tally);

        let mut oe_soa = ParticleSoA::from_aos(&spawn_particles(&problem));
        let oe_tally = AtomicTally::new(problem.mesh.num_cells());
        run_over_events(
            &mut oe_soa,
            &c,
            &oe_tally,
            KernelStyle::Scalar,
            false,
            &mut None,
        );

        let total = op_tally.total();
        for (i, (a, b)) in op_tally
            .values()
            .iter()
            .zip(oe_tally.snapshot())
            .enumerate()
        {
            let scale = a.abs().max(total * 1e-12).max(1e-30);
            assert!(((a - b) / scale).abs() < 1e-6, "cell {i}: {a} vs {b}");
        }
    }

    #[test]
    fn timings_are_populated() {
        let (problem, rng) = fixture(TestCase::Csp);
        let c = ctx(&problem, &rng);
        let mut particles = ParticleSoA::from_aos(&spawn_particles(&problem));
        let tally = AtomicTally::new(problem.mesh.num_cells());
        let (_counters, t) = run_over_events(
            &mut particles,
            &c,
            &tally,
            KernelStyle::Scalar,
            false,
            &mut None,
        );
        assert!(t.rounds > 1);
        assert!(t.total() > Duration::ZERO);
        let f = t.tally_fraction();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn runaway_guard_fires() {
        let (mut problem, rng) = fixture(TestCase::Stream);
        problem.transport.max_events_per_history = 3;
        let c = ctx(&problem, &rng);
        let mut particles = ParticleSoA::from_aos(&spawn_particles(&problem));
        let tally = AtomicTally::new(problem.mesh.num_cells());
        let (counters, _) = run_over_events(
            &mut particles,
            &c,
            &tally,
            KernelStyle::Scalar,
            false,
            &mut None,
        );
        assert!(counters.stuck > 0);
        assert!(particles
            .to_aos()
            .iter()
            .all(|p| p.dead || p.dt_to_census == 0.0));
    }

    /// A reused `EventState` must behave exactly like a fresh one on
    /// every subsequent timestep: same trajectories, counters and tally
    /// bits — no stale per-window data (lists, arenas, pending deposits)
    /// may survive the init kernel.
    #[test]
    fn state_reuse_across_timesteps_matches_fresh_state() {
        for case in [TestCase::Scatter, TestCase::Csp] {
            let (problem, rng) = fixture(case);
            let c = ctx(&problem, &rng);
            let run2 = |reuse: bool| {
                let mut particles = ParticleSoA::from_aos(&spawn_particles(&problem));
                let tally = AtomicTally::new(problem.mesh.num_cells());
                let mut slot: Option<EventState> = None;
                let mut counters = EventCounters::default();
                for step in 0..2 {
                    if step > 0 {
                        for i in 0..particles.len() {
                            if !particles.dead[i] {
                                particles.dt_to_census[i] = problem.dt;
                            }
                        }
                    }
                    let mut fresh: Option<EventState> = None;
                    let st = if reuse { &mut slot } else { &mut fresh };
                    let (c0, _) =
                        run_over_events(&mut particles, &c, &tally, KernelStyle::Scalar, false, st);
                    counters.merge(&c0);
                }
                (particles, counters, tally.snapshot(), slot)
            };
            let (pa, ca, ta, slot) = run2(true);
            let (pb, cb, tb, _) = run2(false);
            assert_eq!(pa, pb, "{case:?}: trajectories");
            assert_eq!(ca, cb, "{case:?}: counters");
            assert!(
                ta.iter().zip(&tb).all(|(a, b)| a.to_bits() == b.to_bits()),
                "{case:?}: tally bits"
            );
            // A clean solve drains every pending deposit.
            assert_eq!(
                slot.expect("state was reused").pending_total(),
                0.0,
                "{case:?}: residual pending deposits after a clean solve"
            );
        }
    }

    /// Lane-for-lane bit identity of the AVX2 distance pass against the
    /// scalar `pass1!` expressions, on a battery of adversarial lanes:
    /// zero direction components (the untaken-branch garbage blends),
    /// a particle exactly on its cell edge travelling inward (`-0.0`
    /// through the `max(d, 0.0)` tie), zero total cross section (the
    /// infinity select), and a zero-energy lane (zero speed).
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_distance_pass_matches_scalar_expressions() {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return;
        }
        use neutral_xs::constants::speed_m_per_s;
        let (problem, _rng) = fixture(TestCase::Csp);
        let mesh = &problem.mesh;
        let m = 11; // two full blocks + a 3-lane remainder (untouched)
        let (x0e, _, y0e, _) = mesh.cell_bounds(1, 1);
        let energy: Vec<f64> = (0..m)
            .map(|i| [1.0, 0.0, 1e6, 2.35e3, 0.025, 14.1e6, 7.5, 1e-5][i % 8])
            .collect();
        let omega_x: Vec<f64> = (0..m)
            .map(|i| [0.7, -0.7, 0.0, 1.0, -1.0, 0.3, 0.0, -0.5][i % 8])
            .collect();
        let omega_y: Vec<f64> = (0..m)
            .map(|i| [0.3, 0.0, 1.0, 0.0, -0.2, -0.9, -1.0, 0.5][i % 8])
            .collect();
        // Lane 4 sits exactly on its low-x edge with omega_x < 0:
        // (x0 - x) / ox = +0.0 / -1.0 = -0.0 into the max(d, 0.0) tie.
        let x: Vec<f64> = (0..m)
            .map(|i| if i == 4 { x0e } else { x0e + 0.01 })
            .collect();
        let y: Vec<f64> = (0..m)
            .map(|i| if i == 6 { y0e } else { y0e + 0.02 })
            .collect();
        let cellx = vec![1u32; m];
        let celly = vec![1u32; m];
        let dt: Vec<f64> = (0..m).map(|i| 1e-7 * (i as f64 + 1.0)).collect();
        let mfp: Vec<f64> = (0..m).map(|i| 0.5 + 0.1 * i as f64).collect();
        let micro_a: Vec<f64> = (0..m).map(|i| if i % 5 == 2 { 0.0 } else { 3.2 }).collect();
        let micro_s: Vec<f64> = (0..m).map(|i| if i % 5 == 2 { 0.0 } else { 9.8 }).collect();
        let n_dens: Vec<f64> = (0..m)
            .map(|i| if i % 5 == 2 { 0.0 } else { 4.1e28 })
            .collect();

        let mut d_census = vec![0.0f64; m];
        let mut d_coll = vec![0.0f64; m];
        let mut d_facet = vec![0.0f64; m];
        let mut facet_is_x = vec![false; m];
        // SAFETY: AVX2 confirmed above; all slices are m long; cell
        // indices are interior mesh cells.
        let processed = unsafe {
            avx2::distance_pass(
                &energy,
                &dt,
                &mfp,
                &x,
                &y,
                &omega_x,
                &omega_y,
                &cellx,
                &celly,
                mesh.edges_x(),
                mesh.edges_y(),
                &micro_a,
                &micro_s,
                &n_dens,
                &mut d_census,
                &mut d_coll,
                &mut d_facet,
                &mut facet_is_x,
                m,
            )
        };
        assert_eq!(processed, 8, "two full 4-lane blocks");

        for i in 0..processed {
            let speed = speed_m_per_s(energy[i]);
            let sigma_t = macroscopic_per_m(micro_a[i] + micro_s[i], n_dens[i]);
            let r_census = speed * dt[i];
            let r_coll = if sigma_t > 0.0 {
                mfp[i] / sigma_t
            } else {
                f64::INFINITY
            };
            let (bx0, bx1, by0, by1) = mesh.cell_bounds(cellx[i] as usize, celly[i] as usize);
            let dx = if omega_x[i] > 0.0 {
                (bx1 - x[i]) / omega_x[i]
            } else if omega_x[i] < 0.0 {
                (bx0 - x[i]) / omega_x[i]
            } else {
                f64::INFINITY
            };
            let dy = if omega_y[i] > 0.0 {
                (by1 - y[i]) / omega_y[i]
            } else if omega_y[i] < 0.0 {
                (by0 - y[i]) / omega_y[i]
            } else {
                f64::INFINITY
            };
            let r_is_x = dx <= dy;
            let r_facet = if dx <= dy {
                clamp_nonneg(dx)
            } else {
                clamp_nonneg(dy)
            };
            assert_eq!(
                d_census[i].to_bits(),
                r_census.to_bits(),
                "lane {i}: d_census"
            );
            assert_eq!(d_coll[i].to_bits(), r_coll.to_bits(), "lane {i}: d_coll");
            assert_eq!(d_facet[i].to_bits(), r_facet.to_bits(), "lane {i}: d_facet");
            assert_eq!(facet_is_x[i], r_is_x, "lane {i}: facet_is_x");
        }
    }

    /// Even a runaway-guard abort leaves no pending deposits behind (the
    /// guard fires at the top of a round, after the previous round's
    /// flush), and a reused state after such an abort still matches a
    /// fresh one bitwise. The init kernel additionally re-zeroes pending
    /// defensively, so this invariant survives future changes to where
    /// the guard fires.
    #[test]
    fn state_reuse_is_clean_after_runaway_abort() {
        let (mut problem, rng) = fixture(TestCase::Scatter);
        problem.transport.max_events_per_history = 6;
        let c = ctx(&problem, &rng);
        let run2 = |reuse: bool| {
            let mut particles = ParticleSoA::from_aos(&spawn_particles(&problem));
            let tally = AtomicTally::new(problem.mesh.num_cells());
            let mut slot: Option<EventState> = None;
            for step in 0..2 {
                if step > 0 {
                    assert_eq!(
                        slot.as_ref().map_or(0.0, EventState::pending_total),
                        0.0,
                        "an aborted solve must not leave pending deposits"
                    );
                    for i in 0..particles.len() {
                        if !particles.dead[i] {
                            particles.dt_to_census[i] = problem.dt;
                        }
                    }
                }
                let mut fresh: Option<EventState> = None;
                let st = if reuse { &mut slot } else { &mut fresh };
                let _ = run_over_events(&mut particles, &c, &tally, KernelStyle::Scalar, false, st);
            }
            tally.total()
        };
        assert_eq!(
            run2(true).to_bits(),
            run2(false).to_bits(),
            "reused state after an abort diverges from fresh state"
        );
    }
}
