//! An OpenMP-style loop scheduler over explicit threads.
//!
//! The paper studies `schedule(static)`, `schedule(dynamic, n)` and
//! `schedule(guided)` for the Over-Particles loop (§VI-C, Figure 4), and
//! sweeps thread counts beyond the physical core count to measure
//! hyperthreading and oversubscription effects (§VI-E, Figure 6). Rayon's
//! work-stealing pool has no equivalent of these policies, so this module
//! implements them directly: `n_threads` OS threads (via crossbeam's
//! scoped spawn) pulling index ranges from a policy-specific dispenser.
//!
//! The dispatch semantics mirror OpenMP:
//!
//! * [`Schedule::Static`] — iterations are divided up-front; with a chunk
//!   size, chunks are dealt round-robin; without, each thread gets one
//!   contiguous block.
//! * [`Schedule::Dynamic`] — threads grab fixed-size chunks from a shared
//!   counter as they go.
//! * [`Schedule::Guided`] — like dynamic but with chunk sizes proportional
//!   to the remaining work, decaying to a minimum.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Loop scheduling policy (OpenMP `schedule(...)` equivalent).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Schedule {
    /// Divide iterations up-front. `chunk = None` gives each thread one
    /// contiguous block (OpenMP's default static); `chunk = Some(c)`
    /// deals `c`-sized chunks round-robin.
    Static {
        /// Optional round-robin chunk size.
        chunk: Option<usize>,
    },
    /// Threads take `chunk`-sized ranges from a shared counter.
    Dynamic {
        /// Chunk size per grab.
        chunk: usize,
    },
    /// Chunk sizes start at `remaining / (2 * n_threads)` and decay to
    /// `min_chunk`.
    Guided {
        /// Smallest chunk a thread may grab.
        min_chunk: usize,
    },
}

impl Schedule {
    /// This policy re-expressed at lane granularity: the lane-decomposed
    /// tally drivers schedule whole lanes (dozens of items), so chunk
    /// sizes expressed in particles collapse to single-lane grabs while
    /// the policy kind (static / dynamic / guided dispatch) is preserved.
    #[must_use]
    pub fn lane_granular(self) -> Schedule {
        match self {
            Schedule::Static { chunk: None } => self,
            Schedule::Static { chunk: Some(_) } => Schedule::Static { chunk: Some(1) },
            Schedule::Dynamic { .. } => Schedule::Dynamic { chunk: 1 },
            Schedule::Guided { .. } => Schedule::Guided { min_chunk: 1 },
        }
    }

    /// A human-readable label for figure output (`static`, `dynamic,64`, ...).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            Schedule::Static { chunk: None } => "static".to_owned(),
            Schedule::Static { chunk: Some(c) } => format!("static,{c}"),
            Schedule::Dynamic { chunk } => format!("dynamic,{chunk}"),
            Schedule::Guided { min_chunk } => format!("guided,{min_chunk}"),
        }
    }
}

/// Run `body` over `0..n_items` on `states.len()` threads, each thread
/// owning one element of `states` (its private accumulator: counters,
/// tally slot, ...). `body(state, range)` is called repeatedly with
/// disjoint ranges whose union is exactly `0..n_items`.
pub fn parallel_for_stateful<S, F>(n_items: usize, schedule: Schedule, states: &mut [S], body: F)
where
    S: Send,
    F: Fn(&mut S, Range<usize>) + Sync,
{
    let n_threads = states.len();
    assert!(n_threads > 0, "need at least one thread state");
    if n_threads == 1 {
        // Run inline: no spawn overhead for the sequential case.
        serve_thread(
            0,
            n_threads,
            n_items,
            schedule,
            &Dispenser::new(),
            &mut states[0],
            &body,
        );
        return;
    }
    let dispenser = Dispenser::new();
    crossbeam::scope(|scope| {
        for (t, state) in states.iter_mut().enumerate() {
            let body = &body;
            let dispenser = &dispenser;
            scope.spawn(move |_| {
                serve_thread(t, n_threads, n_items, schedule, dispenser, state, body);
            });
        }
    })
    .expect("worker thread panicked");
}

/// Run `body` once for each of `states.len()` work items ("lanes"),
/// scheduling whole items across `n_threads` workers under `schedule`.
///
/// Unlike [`parallel_for_stateful`], where state is bound to the *thread*,
/// here state is bound to the *item*: `body(item, &mut states[item])` is
/// invoked exactly once per item, by exactly one worker, so per-item
/// accumulators (tally lanes, per-lane counters) are filled identically
/// for any worker count and any schedule — this is what makes the
/// deterministic tally backends (`neutral_mesh::accum`) worker-count
/// invariant. Workers are real OS threads (crossbeam scoped spawn), so
/// chunked multi-worker runs execute genuinely concurrently against the
/// chosen tally backend.
pub fn parallel_for_owned<S, F>(n_threads: usize, schedule: Schedule, states: &mut [S], body: F)
where
    S: Send,
    F: Fn(usize, &mut S) + Sync,
{
    assert!(n_threads > 0, "need at least one worker");
    let n_items = states.len();
    if n_threads == 1 {
        for (i, state) in states.iter_mut().enumerate() {
            body(i, state);
        }
        return;
    }
    let shared = SharedSliceMut::new(states);
    parallel_for(n_threads, n_items, schedule, |_t, range| {
        // SAFETY: scheduler ranges are disjoint (see SharedSliceMut), and
        // each range is expanded to per-item calls by this worker only.
        let items = unsafe { shared.range_mut(range.clone()) };
        for (off, state) in items.iter_mut().enumerate() {
            body(range.start + off, state);
        }
    });
}

/// As [`parallel_for_owned`], but each *worker* additionally owns one
/// element of `scratch` (its reusable [`crate::arena::ScratchArena`] or
/// any other per-worker workspace): `body(item, &mut states[item],
/// &mut scratch[worker])`. The worker count is `scratch.len()`.
///
/// Item state keeps the worker-count-independent ownership that makes
/// the deterministic tally backends bitwise reproducible, while the
/// scratch buffers — whose contents carry no cross-item meaning — are
/// reused across every item a worker claims, so the per-item lane
/// allocations disappear without multiplying arenas by the lane count.
pub fn parallel_for_owned_scratch<S, W, F>(
    schedule: Schedule,
    states: &mut [S],
    scratch: &mut [W],
    body: F,
) where
    S: Send,
    W: Send,
    F: Fn(usize, &mut S, &mut W) + Sync,
{
    let n_threads = scratch.len();
    assert!(n_threads > 0, "need at least one worker scratch");
    let n_items = states.len();
    if n_threads == 1 {
        for (i, state) in states.iter_mut().enumerate() {
            body(i, state, &mut scratch[0]);
        }
        return;
    }
    let shared = SharedSliceMut::new(states);
    parallel_for_stateful(n_items, schedule, scratch, |w, range| {
        // SAFETY: scheduler ranges are disjoint (see SharedSliceMut), and
        // each range is expanded to per-item calls by this worker only.
        let items = unsafe { shared.range_mut(range.clone()) };
        for (off, state) in items.iter_mut().enumerate() {
            body(range.start + off, state, w);
        }
    });
}

/// Convenience wrapper when the only per-thread state needed is the thread
/// index: `body(thread_id, range)`.
pub fn parallel_for<F>(n_threads: usize, n_items: usize, schedule: Schedule, body: F)
where
    F: Fn(usize, Range<usize>) + Sync,
{
    let mut ids: Vec<usize> = (0..n_threads).collect();
    parallel_for_stateful(n_items, schedule, &mut ids, |id, range| body(*id, range));
}

/// Shared chunk dispenser for the dynamic/guided policies.
struct Dispenser {
    next: AtomicUsize,
}

impl Dispenser {
    fn new() -> Self {
        Self {
            next: AtomicUsize::new(0),
        }
    }

    /// Claim a dynamic chunk; returns `None` when the index space is
    /// exhausted.
    fn claim_dynamic(&self, n_items: usize, chunk: usize) -> Option<Range<usize>> {
        let start = self.next.fetch_add(chunk, Ordering::Relaxed);
        if start >= n_items {
            return None;
        }
        Some(start..(start + chunk).min(n_items))
    }

    /// Claim a guided chunk sized from the remaining work.
    fn claim_guided(
        &self,
        n_items: usize,
        n_threads: usize,
        min_chunk: usize,
    ) -> Option<Range<usize>> {
        loop {
            let start = self.next.load(Ordering::Relaxed);
            if start >= n_items {
                return None;
            }
            let remaining = n_items - start;
            let size = (remaining / (2 * n_threads)).max(min_chunk).min(remaining);
            match self.next.compare_exchange_weak(
                start,
                start + size,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(start..start + size),
                Err(_) => continue,
            }
        }
    }
}

fn serve_thread<S, F>(
    thread_id: usize,
    n_threads: usize,
    n_items: usize,
    schedule: Schedule,
    dispenser: &Dispenser,
    state: &mut S,
    body: &F,
) where
    F: Fn(&mut S, Range<usize>) + Sync,
{
    match schedule {
        Schedule::Static { chunk: None } => {
            // One contiguous block per thread, sized as evenly as possible.
            let base = n_items / n_threads;
            let extra = n_items % n_threads;
            let start = thread_id * base + thread_id.min(extra);
            let len = base + usize::from(thread_id < extra);
            if len > 0 {
                body(state, start..start + len);
            }
        }
        Schedule::Static { chunk: Some(c) } => {
            assert!(c > 0, "static chunk must be positive");
            let mut start = thread_id * c;
            while start < n_items {
                body(state, start..(start + c).min(n_items));
                start += n_threads * c;
            }
        }
        Schedule::Dynamic { chunk } => {
            assert!(chunk > 0, "dynamic chunk must be positive");
            while let Some(range) = dispenser.claim_dynamic(n_items, chunk) {
                body(state, range);
            }
        }
        Schedule::Guided { min_chunk } => {
            assert!(min_chunk > 0, "guided min chunk must be positive");
            while let Some(range) = dispenser.claim_guided(n_items, n_threads, min_chunk) {
                body(state, range);
            }
        }
    }
}

/// A mutable slice shareable across the scheduler's worker threads.
///
/// The schedulers above guarantee that each index in `0..len` is handed to
/// exactly one `body` invocation, so disjoint ranges may be mutated
/// concurrently. This wrapper makes that contract expressible: the *only*
/// unsafe code in the crate lives here.
pub struct SharedSliceMut<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: access is partitioned by the scheduler contract — each index is
// claimed by exactly one range, and ranges are disjoint. `T: Send` suffices
// because each element is only ever touched by one thread at a time.
unsafe impl<T: Send> Sync for SharedSliceMut<'_, T> {}
unsafe impl<T: Send> Send for SharedSliceMut<'_, T> {}

impl<'a, T> SharedSliceMut<'a, T> {
    /// Wrap a slice for scheduler-partitioned mutation.
    pub fn new(slice: &'a mut [T]) -> Self {
        Self {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Length of the underlying slice.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the underlying slice is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reborrow `range` as a mutable subslice.
    ///
    /// # Safety
    /// The caller must guarantee `range` is within bounds and does not
    /// overlap any other concurrently-outstanding range — which is exactly
    /// the guarantee [`parallel_for_stateful`] provides for the ranges it
    /// passes to `body`.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn range_mut(&self, range: Range<usize>) -> &mut [T] {
        debug_assert!(range.start <= range.end && range.end <= self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(range.start), range.end - range.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn check_exact_coverage(n_threads: usize, n_items: usize, schedule: Schedule) {
        let hits: Vec<AtomicU32> = (0..n_items).map(|_| AtomicU32::new(0)).collect();
        parallel_for(n_threads, n_items, schedule, |_t, range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(
                h.load(Ordering::Relaxed),
                1,
                "index {i} visited wrong number of times under {schedule:?} ({n_threads} threads)"
            );
        }
    }

    #[test]
    fn all_schedules_cover_every_index_exactly_once() {
        let schedules = [
            Schedule::Static { chunk: None },
            Schedule::Static { chunk: Some(1) },
            Schedule::Static { chunk: Some(7) },
            Schedule::Dynamic { chunk: 1 },
            Schedule::Dynamic { chunk: 13 },
            Schedule::Guided { min_chunk: 1 },
            Schedule::Guided { min_chunk: 8 },
        ];
        for &s in &schedules {
            for &t in &[1usize, 2, 3, 8] {
                for &n in &[0usize, 1, 7, 100, 1001] {
                    check_exact_coverage(t, n, s);
                }
            }
        }
    }

    #[test]
    fn static_blocks_are_contiguous_and_ordered() {
        let ranges: Vec<std::sync::Mutex<Vec<Range<usize>>>> =
            (0..4).map(|_| std::sync::Mutex::new(Vec::new())).collect();
        parallel_for(4, 103, Schedule::Static { chunk: None }, |t, r| {
            ranges[t].lock().unwrap().push(r);
        });
        let mut next = 0;
        for per_thread in &ranges {
            let rs = per_thread.lock().unwrap();
            assert_eq!(rs.len(), 1);
            assert_eq!(rs[0].start, next);
            next = rs[0].end;
        }
        assert_eq!(next, 103);
    }

    #[test]
    fn guided_chunks_decay() {
        let sizes = std::sync::Mutex::new(Vec::new());
        parallel_for(1, 1000, Schedule::Guided { min_chunk: 4 }, |_t, r| {
            sizes.lock().unwrap().push(r.len());
        });
        let sizes = sizes.into_inner().unwrap();
        assert!(sizes.len() > 2);
        assert!(sizes[0] > *sizes.last().unwrap());
        assert_eq!(sizes.iter().sum::<usize>(), 1000);
    }

    #[test]
    fn stateful_accumulators_are_private() {
        let mut states = vec![0u64; 6];
        parallel_for_stateful(
            10_000,
            Schedule::Dynamic { chunk: 32 },
            &mut states,
            |s, r| {
                *s += r.len() as u64;
            },
        );
        assert_eq!(states.iter().sum::<u64>(), 10_000);
    }

    #[test]
    fn owned_items_visited_exactly_once_by_one_worker() {
        for &threads in &[1usize, 2, 3, 8] {
            for &n in &[0usize, 1, 7, 32] {
                for schedule in [
                    Schedule::Static { chunk: None },
                    Schedule::Static { chunk: Some(1) },
                    Schedule::Dynamic { chunk: 1 },
                    Schedule::Guided { min_chunk: 1 },
                ] {
                    let mut states = vec![0u32; n];
                    parallel_for_owned(threads, schedule, &mut states, |i, s| {
                        *s += 1 + i as u32;
                    });
                    for (i, s) in states.iter().enumerate() {
                        assert_eq!(*s, 1 + i as u32, "item {i}, {threads} threads");
                    }
                }
            }
        }
    }

    #[test]
    fn shared_slice_disjoint_writes() {
        let mut data = vec![0usize; 5000];
        let shared = SharedSliceMut::new(&mut data);
        parallel_for(4, 5000, Schedule::Dynamic { chunk: 64 }, |_t, range| {
            // SAFETY: ranges from the dispenser are disjoint.
            let part = unsafe { shared.range_mut(range.clone()) };
            for (off, v) in part.iter_mut().enumerate() {
                *v = range.start + off; // write the index
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i);
        }
    }

    #[test]
    fn labels() {
        assert_eq!(Schedule::Static { chunk: None }.label(), "static");
        assert_eq!(Schedule::Static { chunk: Some(8) }.label(), "static,8");
        assert_eq!(Schedule::Dynamic { chunk: 64 }.label(), "dynamic,64");
        assert_eq!(Schedule::Guided { min_chunk: 2 }.label(), "guided,2");
    }
}
