//! Structure-of-Arrays particle storage (paper §VI-D).
//!
//! The paper compares AoS and SoA particle layouts for the Over-Particles
//! scheme on CPUs and finds AoS faster everywhere: with one thread per
//! history, "each thread loads a cache line for each particle field, and
//! only uses a single item" under SoA, while AoS loads the whole particle
//! with one or two adjacent lines. This module provides the SoA layout and
//! a chunked parallel driver so that Figure 5 can be reproduced with real
//! measurements: histories `load` the particle (the per-field gather that
//! costs SoA its performance), track it entirely in registers, and `store`
//! it back.

use crate::arena::{apply_permutation_in_place, radix_sort_pairs, ScratchArena};
use crate::config::{RegroupPolicy, SortPolicy};
use crate::counters::EventCounters;
use crate::events::{resolve_micro_xs_many, TallySink};
use crate::history::{step_particle_uncached, track_to_census_primed, StepOutcome, TransportCtx};
use crate::particle::{energy_band, Particle};
use crate::scheduler::{parallel_for_owned_scratch, Schedule};
use neutral_mesh::tally::AtomicTally;
use neutral_mesh::{LanePartition, LaneSink, TallyAccum};
use neutral_rng::CbRng;
use neutral_xs::{MicroXs, XsHints};
use rayon::prelude::*;

/// Particle population stored as one array per field.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ParticleSoA {
    /// x positions (m).
    pub x: Vec<f64>,
    /// y positions (m).
    pub y: Vec<f64>,
    /// x direction cosines.
    pub omega_x: Vec<f64>,
    /// y direction cosines.
    pub omega_y: Vec<f64>,
    /// Kinetic energies (eV).
    pub energy: Vec<f64>,
    /// Statistical weights.
    pub weight: Vec<f64>,
    /// Remaining times to census (s).
    pub dt_to_census: Vec<f64>,
    /// Remaining mean-free-paths to collision.
    pub mfp_to_collision: Vec<f64>,
    /// Containing cell x indices.
    pub cellx: Vec<u32>,
    /// Containing cell y indices.
    pub celly: Vec<u32>,
    /// Cached capture-table hints.
    pub absorb_hint: Vec<u32>,
    /// Cached scatter-table hints.
    pub scatter_hint: Vec<u32>,
    /// RNG stream ids.
    pub key: Vec<u64>,
    /// RNG draw counters.
    pub rng_counter: Vec<u64>,
    /// Termination flags.
    pub dead: Vec<bool>,
}

impl ParticleSoA {
    /// Convert from the AoS layout.
    #[must_use]
    pub fn from_aos(particles: &[Particle]) -> Self {
        let mut soa = Self::default();
        soa.copy_from_aos(particles);
        soa
    }

    /// Convert back to the AoS layout.
    #[must_use]
    pub fn to_aos(&self) -> Vec<Particle> {
        (0..self.len()).map(|i| self.load(i)).collect()
    }

    /// Refill every column from an AoS population, reusing the existing
    /// column capacity: the multi-timestep loop re-gathers the (possibly
    /// regrouped) AoS master into the same SoA buffers each step instead
    /// of allocating fifteen fresh `Vec`s per call. One pass over the
    /// AoS array (like [`ParticleSoA::from_aos`]) — per-column passes
    /// would re-read the 100-byte records fifteen times.
    pub fn copy_from_aos(&mut self, particles: &[Particle]) {
        macro_rules! clear_all {
            ($($field:ident),+ $(,)?) => {$( self.$field.clear(); )+};
        }
        clear_all!(
            x,
            y,
            omega_x,
            omega_y,
            energy,
            weight,
            dt_to_census,
            mfp_to_collision,
            cellx,
            celly,
            absorb_hint,
            scatter_hint,
            key,
            rng_counter,
            dead,
        );
        for p in particles {
            self.x.push(p.x);
            self.y.push(p.y);
            self.omega_x.push(p.omega_x);
            self.omega_y.push(p.omega_y);
            self.energy.push(p.energy);
            self.weight.push(p.weight);
            self.dt_to_census.push(p.dt_to_census);
            self.mfp_to_collision.push(p.mfp_to_collision);
            self.cellx.push(p.cellx);
            self.celly.push(p.celly);
            self.absorb_hint.push(p.xs_hints.absorb);
            self.scatter_hint.push(p.xs_hints.scatter);
            self.key.push(p.key);
            self.rng_counter.push(p.rng_counter);
            self.dead.push(p.dead);
        }
    }

    /// Scatter every particle back into an existing AoS slice (the
    /// allocation-free counterpart of [`ParticleSoA::to_aos`]).
    pub fn write_aos(&self, out: &mut [Particle]) {
        assert_eq!(out.len(), self.len(), "population size mismatch");
        for (i, p) in out.iter_mut().enumerate() {
            *p = self.load(i);
        }
    }

    /// Gather every particle into `out`, replacing its contents — the
    /// reusable-buffer counterpart of [`ParticleSoA::to_aos`] for the
    /// serialization edges that convert every step.
    pub fn to_aos_into(&self, out: &mut Vec<Particle>) {
        out.clear();
        out.reserve(self.len());
        for i in 0..self.len() {
            out.push(self.load(i));
        }
    }

    /// Number of particles.
    #[must_use]
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Whether the population is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Gather particle `i` from the field arrays — under SoA this is the
    /// fifteen-array gather whose cache behaviour the paper discusses.
    #[inline]
    #[must_use]
    pub fn load(&self, i: usize) -> Particle {
        Particle {
            x: self.x[i],
            y: self.y[i],
            omega_x: self.omega_x[i],
            omega_y: self.omega_y[i],
            energy: self.energy[i],
            weight: self.weight[i],
            dt_to_census: self.dt_to_census[i],
            mfp_to_collision: self.mfp_to_collision[i],
            cellx: self.cellx[i],
            celly: self.celly[i],
            xs_hints: XsHints {
                absorb: self.absorb_hint[i],
                scatter: self.scatter_hint[i],
            },
            key: self.key[i],
            rng_counter: self.rng_counter[i],
            dead: self.dead[i],
        }
    }

    /// Scatter particle `i` back into the field arrays.
    #[inline]
    pub fn store(&mut self, i: usize, p: &Particle) {
        self.x[i] = p.x;
        self.y[i] = p.y;
        self.omega_x[i] = p.omega_x;
        self.omega_y[i] = p.omega_y;
        self.energy[i] = p.energy;
        self.weight[i] = p.weight;
        self.dt_to_census[i] = p.dt_to_census;
        self.mfp_to_collision[i] = p.mfp_to_collision;
        self.cellx[i] = p.cellx;
        self.celly[i] = p.celly;
        self.absorb_hint[i] = p.xs_hints.absorb;
        self.scatter_hint[i] = p.xs_hints.scatter;
        self.key[i] = p.key;
        self.rng_counter[i] = p.rng_counter;
        self.dead[i] = p.dead;
    }

    /// A mutable column view of the whole population (the root the
    /// chunked and windowed views split from).
    pub(crate) fn view_mut(&mut self) -> SoAChunkMut<'_> {
        SoAChunkMut {
            x: &mut self.x,
            y: &mut self.y,
            omega_x: &mut self.omega_x,
            omega_y: &mut self.omega_y,
            energy: &mut self.energy,
            weight: &mut self.weight,
            dt_to_census: &mut self.dt_to_census,
            mfp_to_collision: &mut self.mfp_to_collision,
            cellx: &mut self.cellx,
            celly: &mut self.celly,
            absorb_hint: &mut self.absorb_hint,
            scatter_hint: &mut self.scatter_hint,
            key: &mut self.key,
            rng_counter: &mut self.rng_counter,
            dead: &mut self.dead,
        }
    }

    /// Split the population into disjoint mutable chunk views of at most
    /// `chunk` particles each.
    pub fn chunks_mut(&mut self, chunk: usize) -> Vec<SoAChunkMut<'_>> {
        assert!(chunk > 0);
        let mut out = Vec::new();
        let mut view = self.view_mut();
        while view.len() > chunk {
            let (head, tail) = view.split_at_mut(chunk);
            out.push(head);
            view = tail;
        }
        if !view.is_empty() {
            out.push(view);
        }
        out
    }
}

/// A disjoint mutable window over every field array of a [`ParticleSoA`].
pub struct SoAChunkMut<'a> {
    pub(crate) x: &'a mut [f64],
    pub(crate) y: &'a mut [f64],
    pub(crate) omega_x: &'a mut [f64],
    pub(crate) omega_y: &'a mut [f64],
    pub(crate) energy: &'a mut [f64],
    pub(crate) weight: &'a mut [f64],
    pub(crate) dt_to_census: &'a mut [f64],
    pub(crate) mfp_to_collision: &'a mut [f64],
    pub(crate) cellx: &'a mut [u32],
    pub(crate) celly: &'a mut [u32],
    pub(crate) absorb_hint: &'a mut [u32],
    pub(crate) scatter_hint: &'a mut [u32],
    pub(crate) key: &'a mut [u64],
    pub(crate) rng_counter: &'a mut [u64],
    pub(crate) dead: &'a mut [bool],
}

impl<'a> SoAChunkMut<'a> {
    /// Particles in this chunk.
    #[must_use]
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Whether this chunk is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    pub(crate) fn split_at_mut(self, mid: usize) -> (SoAChunkMut<'a>, SoAChunkMut<'a>) {
        macro_rules! split {
            ($field:ident) => {{
                self.$field.split_at_mut(mid)
            }};
        }
        let (x0, x1) = split!(x);
        let (y0, y1) = split!(y);
        let (ox0, ox1) = split!(omega_x);
        let (oy0, oy1) = split!(omega_y);
        let (e0, e1) = split!(energy);
        let (w0, w1) = split!(weight);
        let (dt0, dt1) = split!(dt_to_census);
        let (m0, m1) = split!(mfp_to_collision);
        let (cx0, cx1) = split!(cellx);
        let (cy0, cy1) = split!(celly);
        let (ah0, ah1) = split!(absorb_hint);
        let (sh0, sh1) = split!(scatter_hint);
        let (k0, k1) = split!(key);
        let (rc0, rc1) = split!(rng_counter);
        let (d0, d1) = split!(dead);
        (
            SoAChunkMut {
                x: x0,
                y: y0,
                omega_x: ox0,
                omega_y: oy0,
                energy: e0,
                weight: w0,
                dt_to_census: dt0,
                mfp_to_collision: m0,
                cellx: cx0,
                celly: cy0,
                absorb_hint: ah0,
                scatter_hint: sh0,
                key: k0,
                rng_counter: rc0,
                dead: d0,
            },
            SoAChunkMut {
                x: x1,
                y: y1,
                omega_x: ox1,
                omega_y: oy1,
                energy: e1,
                weight: w1,
                dt_to_census: dt1,
                mfp_to_collision: m1,
                cellx: cx1,
                celly: cy1,
                absorb_hint: ah1,
                scatter_hint: sh1,
                key: k1,
                rng_counter: rc1,
                dead: d1,
            },
        )
    }

    /// Gather local particle `i` from the chunk's field slices.
    #[inline]
    #[must_use]
    pub fn load(&self, i: usize) -> Particle {
        Particle {
            x: self.x[i],
            y: self.y[i],
            omega_x: self.omega_x[i],
            omega_y: self.omega_y[i],
            energy: self.energy[i],
            weight: self.weight[i],
            dt_to_census: self.dt_to_census[i],
            mfp_to_collision: self.mfp_to_collision[i],
            cellx: self.cellx[i],
            celly: self.celly[i],
            xs_hints: XsHints {
                absorb: self.absorb_hint[i],
                scatter: self.scatter_hint[i],
            },
            key: self.key[i],
            rng_counter: self.rng_counter[i],
            dead: self.dead[i],
        }
    }

    /// Scatter local particle `i` back.
    #[inline]
    pub fn store(&mut self, i: usize, p: &Particle) {
        self.x[i] = p.x;
        self.y[i] = p.y;
        self.omega_x[i] = p.omega_x;
        self.omega_y[i] = p.omega_y;
        self.energy[i] = p.energy;
        self.weight[i] = p.weight;
        self.dt_to_census[i] = p.dt_to_census;
        self.mfp_to_collision[i] = p.mfp_to_collision;
        self.cellx[i] = p.cellx;
        self.celly[i] = p.celly;
        self.absorb_hint[i] = p.xs_hints.absorb;
        self.scatter_hint[i] = p.xs_hints.scatter;
        self.key[i] = p.key;
        self.rng_counter[i] = p.rng_counter;
        self.dead[i] = p.dead;
    }
}

/// Total weighted energy of a column population (eV) — the column
/// counterpart of [`crate::particle::total_weighted_energy`]. Same fold
/// order over the same lanes, so the result is bitwise identical to the
/// AoS fold over the equivalent records.
#[must_use]
pub fn total_weighted_energy_soa(soa: &ParticleSoA) -> f64 {
    (0..soa.len())
        .filter(|&i| !soa.dead[i])
        .map(|i| soa.weight[i] * soa.energy[i])
        .sum()
}

/// [`total_weighted_energy_soa`] accumulated in identity (`key`) order
/// via the regroup identity map (`order[k]` = physical position of key
/// `k`) — the column counterpart of
/// [`crate::particle::total_weighted_energy_ordered`].
#[must_use]
pub fn total_weighted_energy_soa_ordered(soa: &ParticleSoA, order: &[u32]) -> f64 {
    order
        .iter()
        .map(|&pos| pos as usize)
        .filter(|&i| !soa.dead[i])
        .map(|i| soa.weight[i] * soa.energy[i])
        .sum()
}

/// Column counterpart of [`crate::particle::regroup_particles_parallel`]
/// (DESIGN.md §14): within each tally-lane block of `lane_size`
/// particles, stably permute every field column into the grouping
/// `policy` asks for, dead particles always last. The group keys, the
/// stable radix sort and the did-anything-move check are the exact
/// expressions of the AoS regroup, and one shared lane permutation is
/// applied to all fifteen columns — so a column population regroups into
/// bitwise the same arrangement the AoS path produces for the same
/// records. Returns `true` if any particle actually moved.
pub fn regroup_soa_parallel(
    soa: &mut ParticleSoA,
    policy: RegroupPolicy,
    nx: usize,
    lane_size: usize,
    workers: usize,
    schedule: Schedule,
    scratches: &mut Vec<ScratchArena>,
) -> bool {
    if policy == RegroupPolicy::Off || soa.is_empty() {
        return false;
    }
    let lane_size = lane_size.max(1);
    let workers = if workers <= 1 || soa.len() <= lane_size {
        1
    } else {
        workers
    };
    if scratches.len() < workers {
        scratches.resize_with(workers, ScratchArena::new);
    }
    let mut lanes: Vec<(SoAChunkMut<'_>, bool)> = soa
        .chunks_mut(lane_size)
        .into_iter()
        .map(|lane| (lane, false))
        .collect();
    parallel_for_owned_scratch(
        schedule.lane_granular(),
        &mut lanes,
        &mut scratches[..workers],
        |_, (lane, moved), scratch| {
            *moved = regroup_soa_block(lane, policy, nx, scratch);
        },
    );
    lanes.iter().any(|&(_, moved)| moved)
}

/// Regroup one lane block of columns in place (the per-lane body of
/// [`regroup_soa_parallel`]); returns `true` if any particle moved.
fn regroup_soa_block(
    lane: &mut SoAChunkMut<'_>,
    policy: RegroupPolicy,
    nx: usize,
    scratch: &mut ScratchArena,
) -> bool {
    scratch.sort_keys.clear();
    for i in 0..lane.len() {
        let group = match policy {
            RegroupPolicy::Off => unreachable!("rejected by the entry points"),
            RegroupPolicy::ByAlive => u32::from(lane.dead[i]),
            RegroupPolicy::ByCell => {
                if lane.dead[i] {
                    u32::MAX
                } else {
                    (lane.celly[i] as usize * nx + lane.cellx[i] as usize) as u32
                }
            }
            RegroupPolicy::ByEnergyBand => {
                if lane.dead[i] {
                    u32::MAX
                } else {
                    energy_band(lane.energy[i])
                }
            }
        };
        scratch.sort_keys.push((group, i as u32));
    }
    // Stable by construction (payloads are insertion indices), so
    // equal-group particles keep ascending key order within the lane.
    radix_sort_pairs(&mut scratch.sort_keys, &mut scratch.sort_tmp);
    if scratch
        .sort_keys
        .iter()
        .enumerate()
        .all(|(k, &(_, src))| src as usize == k)
    {
        return false;
    }
    // The cycle walk consumes the permutation buffer, so it is refilled
    // per column from the sorted keys — fifteen cheap `u32` refills
    // instead of fifteen whole-column staging buffers.
    macro_rules! permute {
        ($($field:ident),* $(,)?) => {$({
            scratch.perm.clear();
            scratch
                .perm
                .extend(scratch.sort_keys.iter().map(|&(_, src)| src));
            apply_permutation_in_place(&mut lane.$field[..], &mut scratch.perm);
        })*};
    }
    permute!(
        x,
        y,
        omega_x,
        omega_y,
        energy,
        weight,
        dt_to_census,
        mfp_to_collision,
        cellx,
        celly,
        absorb_hint,
        scatter_hint,
        key,
        rng_counter,
        dead,
    );
    true
}

/// Track one SoA chunk to census: one batched lane-block lookup over the
/// chunk's live lanes, then gather → track → scatter per history. Shared
/// by the Rayon and lane-decomposed drivers so both produce bitwise
/// identical trajectories.
///
/// All staging lanes live in the caller's [`ScratchArena`] (per worker
/// or per Rayon task), so the steady-state loop performs no per-lane
/// allocations. Under [`SortPolicy::ByEnergyBand`] the lookup lanes are
/// gathered in energy-band order — the batched lookup walks monotone
/// energy-grid runs — while histories are still *tracked* in ascending
/// lane order, so trajectories and deposit sequences stay bitwise
/// identical to every other policy.
///
/// `order`, when present, is the chunk's identity walk over a regrouped
/// population: the *global* physical positions of this lane's particles
/// in ascending key order, plus the chunk's global base offset.
/// Tracking (the order-sensitive deposit stream) then follows key order
/// exactly as the unregrouped run would, while the columns themselves
/// stay physically grouped.
fn track_soa_chunk<R: CbRng, T: TallySink>(
    chunk: &mut SoAChunkMut<'_>,
    ctx: &TransportCtx<'_, R>,
    sink: &mut T,
    local: &mut EventCounters,
    arena: &mut ScratchArena,
    order: Option<(&[u32], u32)>,
) {
    let n = chunk.len();
    let a = arena;
    a.clear();
    // Live lanes in identity (tracking) order — ascending lane order
    // unregrouped, ascending key order regrouped — then (optionally)
    // permuted into energy-band order for the lookup gather only.
    match order {
        None => {
            for i in 0..n {
                if !chunk.dead[i] {
                    a.idx.push(i as u32);
                }
            }
        }
        Some((ord, base)) => {
            debug_assert_eq!(ord.len(), n, "order must cover the chunk");
            for &g in ord {
                let i = (g - base) as usize;
                if !chunk.dead[i] {
                    a.idx.push(i as u32);
                }
            }
        }
    }
    // Band-sorting the lanes only pays on the grid backends, whose
    // batched lookup carries the run-detection memo; the walking
    // backends would pay the sort and permuted gather for nothing.
    let sort_lanes = ctx.cfg.sort_policy == SortPolicy::ByEnergyBand
        && matches!(
            ctx.cfg.xs_search,
            crate::config::LookupStrategy::Unionized | crate::config::LookupStrategy::Hashed
        );
    if sort_lanes {
        a.sort_keys.clear();
        for &iu in &a.idx {
            let band = crate::particle::energy_band(chunk.energy[iu as usize]);
            a.sort_keys.push((band, iu));
        }
        radix_sort_pairs(&mut a.sort_keys, &mut a.sort_tmp);
        a.idx.clear();
        a.idx.extend(a.sort_keys.iter().map(|&(_, iu)| iu));
    }
    for &iu in &a.idx {
        let i = iu as usize;
        a.energies.push(chunk.energy[i]);
        a.mats.push(
            ctx.mesh
                .material(chunk.cellx[i] as usize, chunk.celly[i] as usize),
        );
        a.hints_absorb.push(chunk.absorb_hint[i]);
        a.hints_scatter.push(chunk.scatter_hint[i]);
    }
    a.out_absorb.resize(a.idx.len(), 0.0);
    a.out_scatter.resize(a.idx.len(), 0.0);
    resolve_micro_xs_many(
        ctx.materials,
        ctx.cfg.xs_search,
        &a.mats,
        &a.energies,
        &mut a.hints_absorb,
        &mut a.hints_scatter,
        &mut a.out_absorb,
        &mut a.out_scatter,
        local,
        &mut a.xs,
    );
    // Scatter the per-lane results back to lane-indexed storage, then
    // track in identity order — the bitwise anchor.
    a.f64_a.resize(n, 0.0);
    a.f64_b.resize(n, 0.0);
    for (j, &iu) in a.idx.iter().enumerate() {
        let i = iu as usize;
        chunk.absorb_hint[i] = a.hints_absorb[j];
        chunk.scatter_hint[i] = a.hints_scatter[j];
        a.f64_a[i] = a.out_absorb[j];
        a.f64_b[i] = a.out_scatter[j];
    }
    let mut track = |i: usize, chunk: &mut SoAChunkMut<'_>| {
        if chunk.dead[i] {
            return;
        }
        let micro = MicroXs {
            absorb_barns: a.f64_a[i],
            scatter_barns: a.f64_b[i],
        };
        let mut p = chunk.load(i);
        track_to_census_primed(&mut p, ctx, sink, local, micro);
        chunk.store(i, &p);
    };
    match order {
        None => {
            for i in 0..n {
                track(i, chunk);
            }
        }
        Some((ord, base)) => {
            for &g in ord {
                track((g - base) as usize, chunk);
            }
        }
    }
}

/// Track one SoA chunk with event-granular gather/scatter (the Figure 5
/// SoA-penalty memory behaviour); shared by the Rayon and lane drivers.
/// `order` carries the identity walk of a regrouped chunk, exactly as in
/// [`track_soa_chunk`].
fn track_soa_chunk_stepped<R: CbRng, T: TallySink>(
    chunk: &mut SoAChunkMut<'_>,
    ctx: &TransportCtx<'_, R>,
    sink: &mut T,
    local: &mut EventCounters,
    order: Option<(&[u32], u32)>,
) {
    let max_events = ctx.cfg.max_events_per_history;
    let mut track = |i: usize, chunk: &mut SoAChunkMut<'_>| {
        let mut events = 0u64;
        loop {
            // Gather -> one event -> scatter: the per-event array
            // traffic is the point of this driver.
            let mut p = chunk.load(i);
            let outcome = step_particle_uncached(&mut p, ctx, sink, local);
            chunk.store(i, &p);
            if outcome != StepOutcome::Continue {
                break;
            }
            events += 1;
            if events > max_events {
                local.stuck += 1;
                chunk.store(
                    i,
                    &Particle {
                        dead: true,
                        ..chunk.load(i)
                    },
                );
                break;
            }
        }
    };
    match order {
        None => {
            for i in 0..chunk.len() {
                track(i, chunk);
            }
        }
        Some((ord, base)) => {
            for &g in ord {
                track((g - base) as usize, chunk);
            }
        }
    }
}

/// Over-Particles driver for the SoA layout: Rayon-parallel over chunks,
/// gather → track → scatter per history (§VI-D).
///
/// Each chunk's initial cross sections are resolved with **one** batched
/// `lookup_many` call straight over the SoA energy/hint lanes (the
/// lane-block API of `neutral_xs::XsLookup`), then every history is
/// tracked from that primed state — bitwise identical to the per-history
/// lookup, but the lookup loop is a tight, vectorisable sweep.
pub fn run_rayon_soa<R: CbRng>(
    soa: &mut ParticleSoA,
    ctx: &TransportCtx<'_, R>,
    tally: &AtomicTally,
    chunk: usize,
) -> EventCounters {
    let chunks = soa.chunks_mut(chunk);
    let mut counters = chunks
        .into_par_iter()
        .fold(
            || (EventCounters::default(), ScratchArena::new()),
            |(mut local, mut arena), mut chunk| {
                let mut sink = tally;
                track_soa_chunk(&mut chunk, ctx, &mut sink, &mut local, &mut arena, None);
                (local, arena)
            },
        )
        .reduce(
            || (EventCounters::default(), ScratchArena::new()),
            |(mut a, arena), (b, _)| {
                a.merge(&b);
                (a, arena)
            },
        )
        .0;
    counters.census_energy_ev = (0..soa.len())
        .filter(|&i| !soa.dead[i])
        .map(|i| soa.weight[i] * soa.energy[i])
        .sum();
    counters
}

/// Over-Particles driver for the SoA layout with **event-granular**
/// loads and stores: every event gathers the particle from the field
/// arrays, steps it once without cached state, and scatters it back.
///
/// This reproduces the memory behaviour behind the paper's Figure 5 SoA
/// penalty: in the original C code, aliasing between the SoA field arrays
/// prevents the compiler from keeping history state in registers, so
/// every event pays array traffic. (Rust's `&mut` slices are `noalias`,
/// so the *cached* SoA driver above does not exhibit the penalty — a
/// reproduction finding documented in EXPERIMENTS.md.)
pub fn run_rayon_soa_stepped<R: CbRng>(
    soa: &mut ParticleSoA,
    ctx: &TransportCtx<'_, R>,
    tally: &AtomicTally,
    chunk: usize,
) -> EventCounters {
    let chunks = soa.chunks_mut(chunk);
    let mut counters = chunks
        .into_par_iter()
        .fold(EventCounters::default, |mut local, mut chunk| {
            let mut sink = tally;
            track_soa_chunk_stepped(&mut chunk, ctx, &mut sink, &mut local, None);
            local
        })
        .reduce(EventCounters::default, |mut a, b| {
            a.merge(&b);
            a
        });
    counters.census_energy_ev = (0..soa.len())
        .filter(|&i| !soa.dead[i])
        .map(|i| soa.weight[i] * soa.energy[i])
        .sum();
    counters
}

/// SoA driver against the pluggable tally subsystem: the population is
/// cut at the accumulator's lane boundaries, whole lanes are scheduled
/// across `n_threads` workers, and each lane deposits through its own
/// [`LaneSink`]. `stepped` selects the event-granular gather/scatter
/// variant. For the deterministic backends the merged tally and counters
/// are bitwise identical for any worker count.
///
/// `arenas` holds the per-worker scratch (grown to `n_threads` on
/// demand) — callers that run many timesteps pass the same vector every
/// step so the staging lanes are allocated once per solve, not once per
/// call. `order`, when present, is the regrouped population's identity
/// map (`order[k]` = physical position of key `k`, lane-local): each
/// chunk then tracks in ascending key order, keeping every `f64` stream
/// bitwise identical to the unregrouped run.
#[allow(clippy::too_many_arguments)] // the solve's full configuration surface
pub fn run_lanes_soa<R: CbRng>(
    soa: &mut ParticleSoA,
    ctx: &TransportCtx<'_, R>,
    accum: &mut TallyAccum,
    n_threads: usize,
    schedule: Schedule,
    stepped: bool,
    arenas: &mut Vec<ScratchArena>,
    order: Option<&[u32]>,
) -> EventCounters {
    let part = LanePartition::new(soa.len(), accum.n_lanes());
    let partials = run_lanes_soa_partitioned(
        soa, ctx, accum, n_threads, schedule, stepped, arenas, order, part,
    );
    let mut counters = EventCounters::merge_deterministic(&partials);
    counters.census_energy_ev = match order {
        Some(ord) => ord
            .iter()
            .map(|&pos| pos as usize)
            .filter(|&i| !soa.dead[i])
            .map(|i| soa.weight[i] * soa.energy[i])
            .sum(),
        None => (0..soa.len())
            .filter(|&i| !soa.dead[i])
            .map(|i| soa.weight[i] * soa.energy[i])
            .sum(),
    };
    counters
}

/// The lane loop of [`run_lanes_soa`] over an *explicit* partition,
/// returning the raw per-lane counters instead of the deterministic
/// merge — the SoA arm of the sharding seam (see
/// `over_particles::run_lanes_partitioned` for why a shard cannot
/// recompute the partition locally). Census energy is left to the caller.
#[allow(clippy::too_many_arguments)] // the solve's full configuration surface
pub fn run_lanes_soa_partitioned<R: CbRng>(
    soa: &mut ParticleSoA,
    ctx: &TransportCtx<'_, R>,
    accum: &mut TallyAccum,
    n_threads: usize,
    schedule: Schedule,
    stepped: bool,
    arenas: &mut Vec<ScratchArena>,
    order: Option<&[u32]>,
    part: LanePartition,
) -> Vec<EventCounters> {
    assert_eq!(
        part.n_items,
        soa.len(),
        "partition must cover the population"
    );
    if let Some(ord) = order {
        assert_eq!(ord.len(), soa.len(), "order must be a permutation");
    }
    let chunks = soa.chunks_mut(part.lane_size);
    let mut states: Vec<(usize, SoAChunkMut<'_>, LaneSink<'_>, EventCounters)> = chunks
        .into_iter()
        .zip(accum.lane_views())
        .enumerate()
        .map(|(lane, (chunk, view))| (lane, chunk, view, EventCounters::default()))
        .collect();
    // One reusable arena per *worker*, not per lane: workers claim
    // many lanes, and the staging lanes carry no cross-lane meaning.
    if arenas.len() < n_threads {
        arenas.resize_with(n_threads, ScratchArena::new);
    }
    parallel_for_owned_scratch(
        schedule.lane_granular(),
        &mut states,
        &mut arenas[..n_threads],
        |_, (lane, chunk, sink, local), arena| {
            let chunk_order = order.map(|ord| {
                let range = part.range(*lane);
                let base = range.start as u32;
                (&ord[range], base)
            });
            if stepped {
                track_soa_chunk_stepped(chunk, ctx, sink, local, chunk_order);
            } else {
                track_soa_chunk(chunk, ctx, sink, local, arena, chunk_order);
            }
        },
    );
    states.iter().map(|(_, _, _, c)| *c).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ProblemScale, TestCase};
    use crate::over_particles::run_sequential;
    use crate::particle::spawn_particles;
    use neutral_mesh::tally::SequentialTally;
    use neutral_rng::Threefry2x64;

    #[test]
    fn aos_soa_roundtrip() {
        let problem = TestCase::Csp.build(ProblemScale::tiny(), 5);
        let particles = spawn_particles(&problem);
        let soa = ParticleSoA::from_aos(&particles);
        assert_eq!(soa.len(), particles.len());
        assert_eq!(soa.to_aos(), particles);
    }

    #[test]
    fn chunks_cover_population() {
        let problem = TestCase::Csp.build(ProblemScale::tiny(), 5);
        let particles = spawn_particles(&problem);
        let mut soa = ParticleSoA::from_aos(&particles);
        let n = soa.len();
        let chunks = soa.chunks_mut(7);
        let total: usize = chunks.iter().map(SoAChunkMut::len).sum();
        assert_eq!(total, n);
        assert!(chunks.iter().all(|c| c.len() <= 7));
    }

    #[test]
    fn stepped_soa_driver_matches_trajectories() {
        let problem = TestCase::Csp.build(ProblemScale::tiny(), 31);
        let rng = Threefry2x64::new([problem.seed, 1]);
        let ctx = TransportCtx {
            mesh: &problem.mesh,
            materials: &problem.materials,
            rng: &rng,
            cfg: &problem.transport,
        };

        let mut aos = spawn_particles(&problem);
        let mut seq_tally = SequentialTally::new(problem.mesh.num_cells());
        run_sequential(&mut aos, &ctx, &mut seq_tally);

        let mut soa = ParticleSoA::from_aos(&spawn_particles(&problem));
        let tally = AtomicTally::new(problem.mesh.num_cells());
        let counters = run_rayon_soa_stepped(&mut soa, &ctx, &tally, 16);

        // Same trajectories, same physics...
        let stepped = soa.to_aos();
        for (a, b) in aos.iter().zip(&stepped) {
            assert_eq!(a.x.to_bits(), b.x.to_bits());
            assert_eq!(a.y.to_bits(), b.y.to_bits());
            assert_eq!(a.energy.to_bits(), b.energy.to_bits());
            assert_eq!(a.weight.to_bits(), b.weight.to_bits());
            assert_eq!(a.rng_counter, b.rng_counter);
            assert_eq!(a.dead, b.dead);
        }
        let (a, b) = (seq_tally.total(), tally.total());
        assert!(((a - b) / a.abs().max(1e-30)).abs() < 1e-9);
        // ...but strictly more memory traffic: a lookup + density read
        // per event instead of per collision/facet.
        assert!(counters.cs_lookups > counters.collisions);
        assert!(counters.tally_flushes >= counters.facets);
        assert_eq!(counters.stuck, 0);
    }

    #[test]
    fn soa_driver_matches_aos_physics() {
        let problem = TestCase::Csp.build(ProblemScale::tiny(), 31);
        let rng = Threefry2x64::new([problem.seed, 1]);
        let ctx = TransportCtx {
            mesh: &problem.mesh,
            materials: &problem.materials,
            rng: &rng,
            cfg: &problem.transport,
        };

        let mut aos = spawn_particles(&problem);
        let mut seq_tally = SequentialTally::new(problem.mesh.num_cells());
        let seq_counters = run_sequential(&mut aos, &ctx, &mut seq_tally);

        let mut soa = ParticleSoA::from_aos(&spawn_particles(&problem));
        let tally = AtomicTally::new(problem.mesh.num_cells());
        let soa_counters = run_rayon_soa(&mut soa, &ctx, &tally, 16);

        assert_eq!(soa.to_aos(), aos, "SoA trajectories must match AoS");
        assert_eq!(seq_counters.collisions, soa_counters.collisions);
        assert_eq!(seq_counters.facets, soa_counters.facets);

        let a = seq_tally.total();
        let b = tally.total();
        assert!(((a - b) / a.abs().max(1e-30)).abs() < 1e-9);
    }
}
