//! Problem-parameter files.
//!
//! The original mini-app (like the rest of the `arch` project) is driven
//! by small `key value` parameter files (`neutral.params`). This module
//! provides the same workflow: a forgiving line-oriented parser and a
//! builder that turns the parsed keys into a [`Problem`].
//!
//! # Format
//!
//! One `key value` pair per line; `#` starts a comment; unknown keys are
//! an error (typos should not silently change the physics). Keys:
//!
//! ```text
//! # scenario preset (optional; must be the FIRST key when present)
//! scenario shielded_slab       # start from a catalogue scenario, then
//!                              # override any key below
//!
//! # geometry / discretisation
//! nx 1000              # cells along x
//! ny 1000              # cells along y
//! width 1.0            # domain width (m)
//! height 1.0           # domain height (m)
//!
//! # material field
//! density 0.05                 # background density (kg/m^3)
//! material 1 absorber          # id kind [points] [seed] (repeatable);
//!                              # material 0 defaults to `reference`
//! region 0.375 0.625 0.375 0.625 1000.0     # x0 x1 y0 y1 rho (repeatable)
//! region 0.0 0.1 0.0 1.0 50.0 1             # ... with a material id
//!
//! # source + run controls
//! source 0.0 0.1 0.0 0.1       # x0 x1 y0 y1
//! particles 100000
//! dt 1.0e-7
//! timesteps 1
//! seed 20170905
//! initial_energy 1.0e6         # eV
//!
//! # transport controls
//! xs_points 30000
//! min_energy 1.0               # eV cutoff
//! weight_cutoff 1.0e-6
//! collision_model analogue     # or implicit_capture
//! lookup_strategy hinted       # or binary | unionized | hashed
//! tally_strategy atomic        # or replicated | privatized
//! sort_policy off              # or by_cell | by_energy_band | auto
//! regroup_policy off           # or by_cell | by_energy_band | by_alive
//! backend scalar               # or vectorized | simd (DESIGN.md §19;
//!                              # `kernel_style` is accepted as an alias)
//!
//! # checkpoint/restart (optional)
//! checkpoint_file run.ckpt     # enable checkpointed solves at this path
//! fault kill@2                 # inject faults (testing; see FaultPlan)
//!
//! # sharded execution (optional; DESIGN.md §18)
//! shards 4                     # split each solve into 4 fault-isolated shards
//! shard_fault kill@1           # inject shard faults (testing; see ShardFaultPlan)
//! ```
//!
//! Any key may be omitted; defaults reproduce the paper's `csp` problem at
//! `ProblemScale::small()`.

use crate::checkpoint::FaultPlan;
use crate::config::{
    Backend, CollisionModel, LookupStrategy, Problem, RegroupPolicy, SortPolicy, TallyStrategy,
    TransportConfig,
};
use crate::shard::ShardFaultPlan;
use neutral_mesh::{MaterialId, Rect, StructuredMesh2D};
use neutral_xs::{constants, MaterialKind, MaterialSet, MaterialSpec};
use std::fmt;

/// A parse or validation failure, with the offending line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamsError {
    /// 1-based line of the failure (0 = file-level).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "params: {}", self.message)
        } else {
            write!(f, "params line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ParamsError {}

fn err(line: usize, message: impl Into<String>) -> ParamsError {
    ParamsError {
        line,
        message: message.into(),
    }
}

/// Default table-generation seed of material `id` when a `material` line
/// omits it: decorrelated per id, and exactly the pre-subsystem
/// `seed ^ 0xc5_0dd` for material 0 (so single-material problems keep
/// their historical tables bit for bit).
#[must_use]
pub fn default_material_seed(seed: u64, id: MaterialId) -> u64 {
    seed ^ 0xc5_0dd ^ u64::from(id).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Parsed parameter set; [`ProblemParams::build`] turns it into a
/// [`Problem`].
#[derive(Debug, Clone)]
pub struct ProblemParams {
    /// Cells along x.
    pub nx: usize,
    /// Cells along y.
    pub ny: usize,
    /// Domain width (m).
    pub width: f64,
    /// Domain height (m).
    pub height: f64,
    /// Background density (kg/m^3).
    pub density: f64,
    /// Density/material override regions `(rect, rho, material_id)` —
    /// painted in order over the background (material 0).
    pub regions: Vec<(Rect, f64, MaterialId)>,
    /// Declared materials `(id, spec)`. Material 0 defaults to the
    /// reference kind at `xs_points`/`seed`-derived settings when not
    /// declared; every other referenced id must be declared.
    pub materials: Vec<(MaterialId, MaterialSpec)>,
    /// Source region.
    pub source: Rect,
    /// Histories per timestep.
    pub particles: usize,
    /// Timestep (s).
    pub dt: f64,
    /// Number of timesteps.
    pub timesteps: usize,
    /// Master seed.
    pub seed: u64,
    /// Birth energy (eV).
    pub initial_energy: f64,
    /// Cross-section table points.
    pub xs_points: usize,
    /// Energy cutoff (eV).
    pub min_energy: f64,
    /// Weight cutoff fraction.
    pub weight_cutoff: f64,
    /// Collision resolution model.
    pub collision_model: CollisionModel,
    /// Cross-section lookup strategy.
    pub lookup_strategy: LookupStrategy,
    /// Tally-accumulation backend.
    pub tally_strategy: TallyStrategy,
    /// Coherence sort of the batched drivers (DESIGN.md §13).
    pub sort_policy: SortPolicy,
    /// Between-timestep physical regrouping (DESIGN.md §14).
    pub regroup_policy: RegroupPolicy,
    /// Over-Events kernel backend (DESIGN.md §19). Purely an execution
    /// concern — all backends compute bitwise-identical results — but a
    /// params file records it so a benchmark run is replayable from its
    /// file alone.
    pub backend: Backend,
    /// Checkpoint file path; `Some` enables checkpointed solves
    /// (crash-safe writes at every census boundary, resume on restart).
    pub checkpoint_file: Option<String>,
    /// Deterministic fault-injection schedule for the checkpoint layer
    /// (testing/verification; empty = no faults).
    pub fault: FaultPlan,
    /// Shard count for fault-isolated sharded solves (DESIGN.md §18);
    /// 1 = ordinary unsharded execution. Purely an execution concern:
    /// results are bitwise identical for any value.
    pub shards: usize,
    /// Deterministic shard-level fault-injection schedule
    /// (testing/verification; empty = no faults).
    pub shard_fault: ShardFaultPlan,
}

impl Default for ProblemParams {
    fn default() -> Self {
        Self {
            nx: 1000,
            ny: 1000,
            width: 1.0,
            height: 1.0,
            density: 0.05,
            regions: vec![(Rect::new(0.375, 0.625, 0.375, 0.625), 1.0e3, 0)],
            materials: Vec::new(),
            source: Rect::new(0.0, 0.1, 0.0, 0.1),
            particles: 10_000,
            dt: 1.0e-7,
            timesteps: 1,
            seed: 20_170_905,
            initial_energy: constants::INITIAL_ENERGY_EV,
            xs_points: 30_000,
            min_energy: constants::MIN_ENERGY_OF_INTEREST_EV,
            weight_cutoff: 1.0e-6,
            collision_model: CollisionModel::Analogue,
            lookup_strategy: LookupStrategy::default(),
            tally_strategy: TallyStrategy::default(),
            sort_policy: SortPolicy::default(),
            regroup_policy: RegroupPolicy::default(),
            backend: Backend::default(),
            checkpoint_file: None,
            fault: FaultPlan::none(),
            shards: 1,
            shard_fault: ShardFaultPlan::default(),
        }
    }
}

impl ProblemParams {
    /// Parse a parameter file's contents.
    pub fn parse(text: &str) -> Result<Self, ParamsError> {
        let mut p = Self {
            regions: Vec::new(), // an explicit file defines its own regions
            ..Self::default()
        };
        let mut explicit_regions = false;
        let mut first_key = true;
        let mut scenario_seen = false;
        // `material` lines with omitted points/seed resolve against the
        // file's final `xs_points`/`seed` values, whatever the key order.
        struct RawMaterial {
            id: MaterialId,
            kind: MaterialKind,
            n_points: Option<usize>,
            seed: Option<u64>,
        }
        let mut raw_materials: Vec<RawMaterial> = Vec::new();
        // The `scenario` key derives its material-table seeds from the
        // file's seed, but `scenario` must be the first key while `seed`
        // may appear anywhere below it — so pre-scan for the file's final
        // seed value. (A malformed seed line still errors in the main
        // loop below.)
        let file_seed = text
            .lines()
            .filter_map(|raw| {
                let line = raw.split('#').next().unwrap_or("").trim();
                let mut it = line.split_whitespace();
                match (it.next(), it.next(), it.next()) {
                    (Some("seed"), Some(v), None) => v.parse::<u64>().ok(),
                    _ => None,
                }
            })
            .next_back()
            .unwrap_or(p.seed);

        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut it = line.split_whitespace();
            let key = it.next().expect("non-empty line has a token");
            let rest: Vec<&str> = it.collect();

            let one = |rest: &[&str]| -> Result<String, ParamsError> {
                if rest.len() != 1 {
                    return Err(err(lineno, format!("`{key}` takes exactly one value")));
                }
                Ok(rest[0].to_owned())
            };
            let parse_f64 = |s: &str| -> Result<f64, ParamsError> {
                s.parse()
                    .map_err(|_| err(lineno, format!("`{s}` is not a number")))
            };
            let parse_usize = |s: &str| -> Result<usize, ParamsError> {
                s.parse()
                    .map_err(|_| err(lineno, format!("`{s}` is not a positive integer")))
            };

            match key {
                "nx" => p.nx = parse_usize(&one(&rest)?)?,
                "ny" => p.ny = parse_usize(&one(&rest)?)?,
                "width" => p.width = parse_f64(&one(&rest)?)?,
                "height" => p.height = parse_f64(&one(&rest)?)?,
                "density" => p.density = parse_f64(&one(&rest)?)?,
                "particles" => p.particles = parse_usize(&one(&rest)?)?,
                "dt" => p.dt = parse_f64(&one(&rest)?)?,
                "timesteps" => p.timesteps = parse_usize(&one(&rest)?)?,
                "seed" => {
                    p.seed = one(&rest)?
                        .parse()
                        .map_err(|_| err(lineno, "seed must be a u64"))?;
                }
                "initial_energy" => p.initial_energy = parse_f64(&one(&rest)?)?,
                "xs_points" => p.xs_points = parse_usize(&one(&rest)?)?,
                "min_energy" => p.min_energy = parse_f64(&one(&rest)?)?,
                "weight_cutoff" => p.weight_cutoff = parse_f64(&one(&rest)?)?,
                "lookup_strategy" => {
                    p.lookup_strategy = one(&rest)?.parse().map_err(|e: String| err(lineno, e))?;
                }
                "tally_strategy" => {
                    p.tally_strategy = one(&rest)?.parse().map_err(|e: String| err(lineno, e))?;
                }
                "sort_policy" => {
                    p.sort_policy = one(&rest)?.parse().map_err(|e: String| err(lineno, e))?;
                }
                "regroup_policy" => {
                    p.regroup_policy = one(&rest)?.parse().map_err(|e: String| err(lineno, e))?;
                }
                // `kernel_style` is the historical name of the knob (it
                // predates the backend seam); both spell the same key.
                "backend" | "kernel_style" => {
                    p.backend = one(&rest)?.parse().map_err(|e: String| err(lineno, e))?;
                }
                "checkpoint_file" => p.checkpoint_file = Some(one(&rest)?),
                "fault" => {
                    p.fault = one(&rest)?.parse().map_err(|e: String| err(lineno, e))?;
                }
                "shards" => p.shards = parse_usize(&one(&rest)?)?,
                "shard_fault" => {
                    p.shard_fault = one(&rest)?.parse().map_err(|e: String| err(lineno, e))?;
                }
                "collision_model" => {
                    p.collision_model = match one(&rest)?.as_str() {
                        "analogue" => CollisionModel::Analogue,
                        "implicit_capture" => CollisionModel::ImplicitCapture,
                        other => {
                            return Err(err(lineno, format!("unknown collision model `{other}`")))
                        }
                    };
                }
                "source" => {
                    if rest.len() != 4 {
                        return Err(err(lineno, "`source` takes 4 values"));
                    }
                    let v: Result<Vec<f64>, _> = rest.iter().map(|s| parse_f64(s)).collect();
                    let v = v?;
                    if v[0] >= v[1] || v[2] >= v[3] {
                        return Err(err(lineno, "rectangle bounds inverted"));
                    }
                    p.source = Rect::new(v[0], v[1], v[2], v[3]);
                }
                "region" => {
                    if rest.len() != 5 && rest.len() != 6 {
                        return Err(err(
                            lineno,
                            "`region` takes `x0 x1 y0 y1 rho [material_id]`",
                        ));
                    }
                    let v: Result<Vec<f64>, _> = rest[..5].iter().map(|s| parse_f64(s)).collect();
                    let v = v?;
                    if v[0] >= v[1] || v[2] >= v[3] {
                        return Err(err(lineno, "rectangle bounds inverted"));
                    }
                    let mat: MaterialId = match rest.get(5) {
                        None => 0,
                        Some(m) => m
                            .parse()
                            .map_err(|_| err(lineno, format!("`{m}` is not a material id")))?,
                    };
                    explicit_regions = true;
                    p.regions
                        .push((Rect::new(v[0], v[1], v[2], v[3]), v[4], mat));
                }
                "material" => {
                    // material <id> <kind> [points] [seed]
                    if rest.is_empty() || rest.len() > 4 {
                        return Err(err(lineno, "`material` takes `id kind [points] [seed]`"));
                    }
                    let id: MaterialId = rest[0]
                        .parse()
                        .map_err(|_| err(lineno, format!("`{}` is not a material id", rest[0])))?;
                    let kind: MaterialKind = match rest.get(1) {
                        None => MaterialKind::Reference,
                        Some(k) => k.parse().map_err(|e: String| err(lineno, e))?,
                    };
                    let n_points = rest.get(2).map(|v| parse_usize(v)).transpose()?;
                    let seed = rest
                        .get(3)
                        .map(|v| {
                            v.parse()
                                .map_err(|_| err(lineno, "material seed must be a u64"))
                        })
                        .transpose()?;
                    if raw_materials.iter().any(|m| m.id == id) {
                        return Err(err(lineno, format!("material `{id}` declared twice")));
                    }
                    raw_materials.push(RawMaterial {
                        id,
                        kind,
                        n_points,
                        seed,
                    });
                }
                "scenario" => {
                    // Start from a catalogue scenario; later keys override.
                    // Must come first, or it would silently clobber keys
                    // parsed before it.
                    if scenario_seen {
                        return Err(err(
                            lineno,
                            "duplicate `scenario` key (a params file starts from one scenario)",
                        ));
                    }
                    if !first_key {
                        return Err(err(
                            lineno,
                            "`scenario` must be the first key in a params file",
                        ));
                    }
                    let name = one(&rest)?;
                    let scenario =
                        crate::scenario::Scenario::from_name(&name).map_err(|e| err(lineno, e))?;
                    p = scenario.params(crate::config::ProblemScale::small(), file_seed);
                    explicit_regions = true;
                    scenario_seen = true;
                }
                other => return Err(err(lineno, format!("unknown key `{other}`"))),
            }
            first_key = false;
        }

        for m in raw_materials {
            let spec = MaterialSpec {
                kind: m.kind,
                n_points: m.n_points.unwrap_or(p.xs_points),
                seed: m
                    .seed
                    .unwrap_or_else(|| default_material_seed(p.seed, m.id)),
            };
            // A `material` line after a `scenario` key *overrides* the
            // scenario's declaration of the same id ("later keys
            // override"); ids within the file itself are still unique
            // (checked above).
            match p.materials.iter_mut().find(|(id, _)| *id == m.id) {
                Some(entry) => entry.1 = spec,
                None => p.materials.push((m.id, spec)),
            }
        }

        if !explicit_regions && p.regions.is_empty() {
            // No region lines: keep a homogeneous field (background only).
        }
        p.validate()?;
        Ok(p)
    }

    /// Check the parameter set for the inconsistencies [`parse`]
    /// rejects (inverted/out-of-domain rectangles, gapped material ids,
    /// birth energy below cutoff, ...). Programmatic constructors — the
    /// scenario catalogue and the fuzz generator — call this to
    /// guarantee every set they hand out would also survive a
    /// file round-trip.
    ///
    /// [`parse`]: ProblemParams::parse
    pub fn validate(&self) -> Result<(), ParamsError> {
        let check = |ok: bool, msg: &str| if ok { Ok(()) } else { Err(err(0, msg)) };
        check(self.nx > 0 && self.ny > 0, "mesh must have cells")?;
        check(
            self.width > 0.0 && self.height > 0.0,
            "domain must have extent",
        )?;
        check(self.density >= 0.0, "density must be non-negative")?;
        check(self.particles > 0, "need at least one particle")?;
        check(self.dt > 0.0, "dt must be positive")?;
        check(self.timesteps > 0, "need at least one timestep")?;
        check(
            self.initial_energy > self.min_energy,
            "birth energy below cutoff",
        )?;
        check(
            (0.0..1.0).contains(&self.weight_cutoff),
            "weight cutoff must be in [0, 1)",
        )?;
        check(self.xs_points >= 2, "cross-section table needs >= 2 points")?;
        check(self.shards >= 1, "need at least one shard")?;
        let inside =
            |r: &Rect| r.x0 >= 0.0 && r.x1 <= self.width && r.y0 >= 0.0 && r.y1 <= self.height;
        check(inside(&self.source), "source region outside the domain")?;
        let n_materials = self.material_count();
        for (r, rho, mat) in &self.regions {
            check(inside(r), "density region outside the domain")?;
            check(*rho >= 0.0, "region density must be non-negative")?;
            if usize::from(*mat) >= n_materials {
                return Err(err(
                    0,
                    format!(
                        "region references material `{mat}` but only {n_materials} \
                         material(s) are defined (add a `material {mat} ...` line)"
                    ),
                ));
            }
        }
        for (_, spec) in &self.materials {
            check(spec.n_points >= 2, "material table needs >= 2 points")?;
        }
        // Material 0 may default to the reference kind, but every other
        // id up to the highest declared one must be declared explicitly —
        // a gap is almost certainly a typo'd id.
        for id in 1..n_materials {
            if !self.materials.iter().any(|(i, _)| usize::from(*i) == id) {
                return Err(err(
                    0,
                    format!(
                        "material ids must be contiguous from 0: `{id}` is missing \
                         (highest declared id is {})",
                        n_materials - 1
                    ),
                ));
            }
        }
        Ok(())
    }

    /// Serialize as a params file that [`ProblemParams::parse`] reads
    /// back to an identical parameter set: every key explicit, every
    /// material carrying its resolved points/seed (so nothing re-derives
    /// against file-level defaults), floats in `{:e}` form (Rust float
    /// formatting round-trips exactly — the text is a lossless encoding,
    /// and `text → parse → to_params_text` is a fixpoint). The fuzzer's
    /// corpus files and shrunk repro cases are written with this.
    ///
    /// The test-only `fault` and `shard_fault` plans are not serialized
    /// (fault injection belongs to a harness, not a replayable
    /// scenario); `shards` is emitted only when it differs from the
    /// default of 1.
    #[must_use]
    pub fn to_params_text(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "nx {}", self.nx);
        let _ = writeln!(s, "ny {}", self.ny);
        let _ = writeln!(s, "width {:e}", self.width);
        let _ = writeln!(s, "height {:e}", self.height);
        let _ = writeln!(s, "density {:e}", self.density);
        for (id, spec) in &self.materials {
            let _ = writeln!(
                s,
                "material {id} {} {} {}",
                spec.kind.name(),
                spec.n_points,
                spec.seed
            );
        }
        for (r, rho, mat) in &self.regions {
            let _ = writeln!(
                s,
                "region {:e} {:e} {:e} {:e} {rho:e} {mat}",
                r.x0, r.x1, r.y0, r.y1
            );
        }
        let _ = writeln!(
            s,
            "source {:e} {:e} {:e} {:e}",
            self.source.x0, self.source.x1, self.source.y0, self.source.y1
        );
        let _ = writeln!(s, "particles {}", self.particles);
        let _ = writeln!(s, "dt {:e}", self.dt);
        let _ = writeln!(s, "timesteps {}", self.timesteps);
        let _ = writeln!(s, "seed {}", self.seed);
        let _ = writeln!(s, "initial_energy {:e}", self.initial_energy);
        let _ = writeln!(s, "xs_points {}", self.xs_points);
        let _ = writeln!(s, "min_energy {:e}", self.min_energy);
        let _ = writeln!(s, "weight_cutoff {:e}", self.weight_cutoff);
        let model = match self.collision_model {
            CollisionModel::Analogue => "analogue",
            CollisionModel::ImplicitCapture => "implicit_capture",
        };
        let _ = writeln!(s, "collision_model {model}");
        let _ = writeln!(s, "lookup_strategy {}", self.lookup_strategy.name());
        let _ = writeln!(s, "tally_strategy {}", self.tally_strategy.name());
        let _ = writeln!(s, "sort_policy {}", self.sort_policy.name());
        let _ = writeln!(s, "regroup_policy {}", self.regroup_policy.name());
        let _ = writeln!(s, "backend {}", self.backend.name());
        if let Some(path) = &self.checkpoint_file {
            let _ = writeln!(s, "checkpoint_file {path}");
        }
        if self.shards != 1 {
            let _ = writeln!(s, "shards {}", self.shards);
        }
        s
    }

    /// Change the master seed, re-deriving the table-generation seed of
    /// every material that was using the seed-derived default (explicit
    /// `material ... seed` values are preserved). This is the override
    /// the CLI's `--seed` flag applies: the result is identical to the
    /// original file with its `seed` line replaced.
    pub fn reseed(&mut self, seed: u64) {
        let old = self.seed;
        for (id, spec) in &mut self.materials {
            if spec.seed == default_material_seed(old, *id) {
                spec.seed = default_material_seed(seed, *id);
            }
        }
        self.seed = seed;
    }

    /// Number of materials the built problem will carry: the highest
    /// declared id + 1 (at least one — material 0 always exists).
    #[must_use]
    pub fn material_count(&self) -> usize {
        self.materials
            .iter()
            .map(|(id, _)| usize::from(*id) + 1)
            .max()
            .unwrap_or(0)
            .max(1)
    }

    /// Build the material set: declared specs by id, with material 0 (and
    /// nothing else) defaulting to the reference kind at the file-level
    /// `xs_points`/`seed` — exactly the paper's single-material tables.
    #[must_use]
    pub fn material_set(&self) -> MaterialSet {
        let n = self.material_count();
        let specs: Vec<MaterialSpec> = (0..n)
            .map(|id| {
                self.materials
                    .iter()
                    .find(|(i, _)| usize::from(*i) == id)
                    .map(|(_, spec)| *spec)
                    .unwrap_or(MaterialSpec {
                        kind: MaterialKind::Reference,
                        n_points: self.xs_points,
                        seed: default_material_seed(self.seed, id as MaterialId),
                    })
            })
            .collect();
        MaterialSet::from_specs(&specs)
    }

    /// Materialise the problem: build the mesh, paint the density and
    /// material zones, generate the per-material cross-section tables.
    #[must_use]
    pub fn build(&self) -> Problem {
        let mut mesh =
            StructuredMesh2D::uniform(self.nx, self.ny, self.width, self.height, self.density);
        for (rect, rho, mat) in &self.regions {
            let _ = mesh.set_zone(*rect, *rho, *mat);
        }
        Problem {
            mesh,
            materials: self.material_set(),
            source: self.source,
            n_particles: self.particles,
            dt: self.dt,
            n_timesteps: self.timesteps,
            seed: self.seed,
            initial_energy_ev: self.initial_energy,
            transport: TransportConfig {
                min_energy_ev: self.min_energy,
                weight_cutoff: self.weight_cutoff,
                collision_model: self.collision_model,
                xs_search: self.lookup_strategy,
                tally_strategy: self.tally_strategy,
                sort_policy: self.sort_policy,
                regroup_policy: self.regroup_policy,
                ..Default::default()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_build_a_csp_like_problem() {
        let p = ProblemParams::default().build();
        assert_eq!(p.mesh.nx(), 1000);
        let (cx, cy) = p.mesh.locate(0.5, 0.5);
        assert_eq!(p.mesh.density(cx, cy), 1.0e3);
    }

    #[test]
    fn parses_a_full_file() {
        let text = "\
# a scatter-like problem
nx 64          # small mesh
ny 32
width 2.0
height 1.0
density 1000.0
source 0.9 1.1 0.4 0.6
particles 500
dt 2.0e-7
timesteps 3
seed 7
initial_energy 5.0e5
xs_points 512
min_energy 2.0
weight_cutoff 1e-5
collision_model implicit_capture
";
        let p = ProblemParams::parse(text).unwrap();
        assert_eq!((p.nx, p.ny), (64, 32));
        assert_eq!(p.timesteps, 3);
        assert_eq!(p.collision_model, CollisionModel::ImplicitCapture);
        let problem = p.build();
        assert_eq!(problem.n_particles, 500);
        assert_eq!(problem.mesh.density(0, 0), 1000.0);
        assert_eq!(problem.transport.min_energy_ev, 2.0);
    }

    #[test]
    fn regions_override_background() {
        let text = "\
nx 10
ny 10
density 1.0
region 0.0 0.5 0.0 1.0 42.0
region 0.5 1.0 0.0 0.5 7.0
";
        let problem = ProblemParams::parse(text).unwrap().build();
        assert_eq!(problem.mesh.density(1, 5), 42.0);
        assert_eq!(problem.mesh.density(8, 1), 7.0);
        assert_eq!(problem.mesh.density(8, 8), 1.0);
    }

    #[test]
    fn rejects_unknown_keys_with_line_numbers() {
        let e = ProblemParams::parse("nx 10\nbogus 3\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));
    }

    #[test]
    fn rejects_malformed_values() {
        assert!(ProblemParams::parse("nx ten\n").is_err());
        assert!(ProblemParams::parse("source 0 1 0\n").is_err());
        assert!(ProblemParams::parse("region 1 0 0 1 5\n").is_err());
        assert!(ProblemParams::parse("collision_model magic\n").is_err());
    }

    #[test]
    fn rejects_inconsistent_setups() {
        // Source outside the domain.
        let e = ProblemParams::parse("width 1.0\nsource 0.5 1.5 0.0 0.5\n").unwrap_err();
        assert!(e.message.contains("source"));
        // Birth energy below cutoff.
        assert!(ProblemParams::parse("initial_energy 0.5\nmin_energy 1.0\n").is_err());
    }

    #[test]
    fn parses_lookup_strategy() {
        for (name, expect) in [
            ("binary", LookupStrategy::Binary),
            ("hinted", LookupStrategy::Hinted),
            ("unionized", LookupStrategy::Unionized),
            ("hashed", LookupStrategy::Hashed),
        ] {
            let p = ProblemParams::parse(&format!("lookup_strategy {name}\n")).unwrap();
            assert_eq!(p.lookup_strategy, expect);
            assert_eq!(p.build().transport.xs_search, expect);
        }
        let e = ProblemParams::parse("nx 4\nlookup_strategy magic\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("magic"));
    }

    #[test]
    fn parses_sort_policy() {
        for (name, expect) in [
            ("off", SortPolicy::Off),
            ("by_cell", SortPolicy::ByCell),
            ("by_energy_band", SortPolicy::ByEnergyBand),
            ("auto", SortPolicy::Auto),
        ] {
            let p = ProblemParams::parse(&format!("sort_policy {name}\n")).unwrap();
            assert_eq!(p.sort_policy, expect);
            assert_eq!(p.build().transport.sort_policy, expect);
        }
        let e = ProblemParams::parse("nx 4\nsort_policy fastest\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("fastest"));
    }

    #[test]
    fn parses_regroup_policy() {
        for (name, expect) in [
            ("off", RegroupPolicy::Off),
            ("by_cell", RegroupPolicy::ByCell),
            ("by_energy_band", RegroupPolicy::ByEnergyBand),
            ("by_alive", RegroupPolicy::ByAlive),
        ] {
            let p = ProblemParams::parse(&format!("regroup_policy {name}\n")).unwrap();
            assert_eq!(p.regroup_policy, expect);
            assert_eq!(p.build().transport.regroup_policy, expect);
        }
        let e = ProblemParams::parse("nx 4\nregroup_policy shuffle\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("shuffle"));
    }

    #[test]
    fn parses_backend() {
        for (name, expect) in [
            ("scalar", Backend::Scalar),
            ("vectorized", Backend::Vectorized),
            ("simd", Backend::Simd),
        ] {
            let p = ProblemParams::parse(&format!("backend {name}\n")).unwrap();
            assert_eq!(p.backend, expect);
            // `kernel_style` spells the same key.
            let alias = ProblemParams::parse(&format!("kernel_style {name}\n")).unwrap();
            assert_eq!(alias.backend, expect);
        }
        // Round-trips through the serializer (the alias normalizes).
        let p = ProblemParams::parse("kernel_style simd\n").unwrap();
        let text = p.to_params_text();
        assert!(text.contains("backend simd"));
        assert_eq!(ProblemParams::parse(&text).unwrap().backend, Backend::Simd);
        // Unknown value: line-numbered, names the offender.
        let e = ProblemParams::parse("nx 4\nbackend turbo\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("turbo"));
    }

    #[test]
    fn parses_tally_strategy() {
        for (name, expect) in [
            ("atomic", TallyStrategy::Atomic),
            ("replicated", TallyStrategy::Replicated),
            ("privatized", TallyStrategy::Privatized),
        ] {
            let p = ProblemParams::parse(&format!("tally_strategy {name}\n")).unwrap();
            assert_eq!(p.tally_strategy, expect);
            assert_eq!(p.build().transport.tally_strategy, expect);
        }
        let e = ProblemParams::parse("nx 4\ntally_strategy magic\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("magic"));
    }

    #[test]
    fn material_key_declares_materials() {
        let text = "\
nx 16
xs_points 256
seed 11
material 1 absorber
material 2 moderator 128 99
region 0.0 0.5 0.0 1.0 50.0 1
region 0.5 1.0 0.0 1.0 5.0 2
";
        let p = ProblemParams::parse(text).unwrap();
        assert_eq!(p.material_count(), 3);
        let problem = p.build();
        assert_eq!(problem.materials.len(), 3);
        let (ix, iy) = problem.mesh.locate(0.25, 0.5);
        assert_eq!(problem.mesh.material(ix, iy), 1);
        let (ix, iy) = problem.mesh.locate(0.75, 0.5);
        assert_eq!(problem.mesh.material(ix, iy), 2);
        // Declared points/seed are honoured; defaults derive from the file.
        assert_eq!(problem.materials.library(2).absorb.len(), 128);
        assert_eq!(problem.materials.library(1).absorb.len(), 256);
        // Material 0 keeps the pre-subsystem tables bit for bit.
        let legacy = neutral_xs::CrossSectionLibrary::synthetic(256, 11 ^ 0xc5_0dd);
        assert_eq!(problem.materials.library(0).absorb, legacy.absorb);
    }

    #[test]
    fn material_defaults_resolve_after_whole_file() {
        // `material` before `seed`/`xs_points`: defaults must still use
        // the final values, not the parse-time ones.
        let a = ProblemParams::parse("material 1 fuel\nseed 42\nxs_points 64\n").unwrap();
        let b = ProblemParams::parse("seed 42\nxs_points 64\nmaterial 1 fuel\n").unwrap();
        assert_eq!(a.materials, b.materials);
        assert_eq!(a.materials[0].1.n_points, 64);
        assert_eq!(a.materials[0].1.seed, default_material_seed(42, 1));
    }

    #[test]
    fn rejects_bad_material_declarations() {
        // Unknown kind, named in the error.
        let e = ProblemParams::parse("material 1 unobtainium\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("unobtainium"));
        // Duplicate id.
        let e = ProblemParams::parse("material 1 fuel\nmaterial 1 absorber\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("declared twice"));
        // Non-contiguous ids.
        let e = ProblemParams::parse("material 3 fuel\nmaterial 1 absorber\n").unwrap_err();
        assert!(e.message.contains("contiguous"), "{}", e.message);
        // Bad id token.
        assert!(ProblemParams::parse("material one fuel\n").is_err());
    }

    #[test]
    fn rejects_region_with_undefined_material() {
        let e = ProblemParams::parse("region 0.0 0.5 0.0 1.0 5.0 2\n").unwrap_err();
        assert!(
            e.message.contains("material `2`"),
            "error must name the offending material id: {}",
            e.message
        );
        // ...and the fix works.
        assert!(ProblemParams::parse(
            "material 1 fuel\nmaterial 2 absorber\nregion 0.0 0.5 0.0 1.0 5.0 2\n"
        )
        .is_ok());
    }

    #[test]
    fn scenario_key_loads_catalogue_entry() {
        let p = ProblemParams::parse("scenario fuel_lattice\nparticles 123\n").unwrap();
        assert_eq!(p.particles, 123, "later keys override the scenario");
        assert_eq!(p.material_count(), 2);
        let problem = p.build();
        assert!(!problem.mesh.material_map().is_homogeneous());
    }

    #[test]
    fn material_key_overrides_scenario_declaration() {
        // "later keys override the scenario" must hold for materials too.
        let p = ProblemParams::parse("scenario fuel_lattice\nmaterial 1 absorber\n").unwrap();
        let spec = p
            .materials
            .iter()
            .find(|(id, _)| *id == 1)
            .map(|(_, s)| *s)
            .unwrap();
        assert_eq!(spec.kind, MaterialKind::Absorber);
        assert_eq!(p.material_count(), 2);
        // The built set resolves to the override, not the scenario's fuel.
        let direct = crate::scenario::Scenario::FuelLattice
            .params(crate::config::ProblemScale::small(), p.seed)
            .build();
        let overridden = p.build();
        assert_ne!(
            overridden.materials.library(1).absorb,
            direct.materials.library(1).absorb
        );
    }

    #[test]
    fn reseed_rederives_defaulted_material_seeds() {
        let mut p =
            ProblemParams::parse("seed 7\nmaterial 1 absorber\nmaterial 2 fuel 512 123\n").unwrap();
        p.reseed(99);
        assert_eq!(p.seed, 99);
        // Defaulted seed follows the new master seed...
        assert_eq!(p.materials[0].1.seed, default_material_seed(99, 1));
        // ...explicit seeds are preserved.
        assert_eq!(p.materials[1].1.seed, 123);
        // Equivalent to writing the new seed in the file directly.
        let direct =
            ProblemParams::parse("seed 99\nmaterial 1 absorber\nmaterial 2 fuel 512 123\n")
                .unwrap();
        assert_eq!(p.materials, direct.materials);
    }

    #[test]
    fn scenario_key_uses_the_file_seed() {
        // `scenario` must come first but the file's `seed` still applies
        // to the scenario's material tables — same problem as passing the
        // seed to the scenario directly (the CLI `--scenario --seed` path).
        let via_file = ProblemParams::parse("scenario shielded_slab\nseed 13\n").unwrap();
        let direct = crate::scenario::Scenario::ShieldedSlab
            .params(crate::config::ProblemScale::small(), 13);
        assert_eq!(via_file.seed, 13);
        assert_eq!(via_file.materials, direct.materials);
    }

    #[test]
    fn rejects_unknown_or_misplaced_scenario() {
        // Unknown scenario name, named in the error with the catalogue.
        let e = ProblemParams::parse("scenario warp_core\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("warp_core"));
        assert!(e.message.contains("shielded_slab"));
        // `scenario` after other keys would silently clobber them: error.
        let e = ProblemParams::parse("nx 10\nscenario csp\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("first key"));
    }

    #[test]
    fn parses_shard_keys() {
        let p = ProblemParams::parse("shards 4\nshard_fault kill@1,hang@2:3\n").unwrap();
        assert_eq!(p.shards, 4);
        assert_eq!(p.shard_fault.to_string(), "kill@1,hang@2:3");
        // `shards` round-trips through the serializer; the harness-only
        // fault plan does not (like `fault`).
        let text = p.to_params_text();
        assert!(text.contains("shards 4"));
        assert!(!text.contains("shard_fault"));
        let back = ProblemParams::parse(&text).unwrap();
        assert_eq!(back.shards, 4);
        // The default of 1 stays implicit.
        assert!(!ProblemParams::default().to_params_text().contains("shards"));
        // Zero shards is inconsistent, bad grammar is a parse error.
        assert!(ProblemParams::parse("shards 0\n").is_err());
        let e = ProblemParams::parse("shard_fault explode@1\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("explode"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = ProblemParams::parse("\n# just a comment\n\nnx 5\n").unwrap();
        assert_eq!(p.nx, 5);
    }

    #[test]
    fn parsed_problem_runs() {
        let text =
            "nx 32\nny 32\ndensity 1e3\nparticles 50\nsource 0.4 0.6 0.4 0.6\nxs_points 256\n";
        let problem = ProblemParams::parse(text).unwrap().build();
        let report = crate::sim::Simulation::new(problem).run(crate::sim::RunOptions {
            execution: crate::sim::Execution::Sequential,
            ..Default::default()
        });
        assert!(report.counters.total_events() > 0);
    }
}
