//! Problem-parameter files.
//!
//! The original mini-app (like the rest of the `arch` project) is driven
//! by small `key value` parameter files (`neutral.params`). This module
//! provides the same workflow: a forgiving line-oriented parser and a
//! builder that turns the parsed keys into a [`Problem`].
//!
//! # Format
//!
//! One `key value` pair per line; `#` starts a comment; unknown keys are
//! an error (typos should not silently change the physics). Keys:
//!
//! ```text
//! # geometry / discretisation
//! nx 1000              # cells along x
//! ny 1000              # cells along y
//! width 1.0            # domain width (m)
//! height 1.0           # domain height (m)
//!
//! # material field
//! density 0.05                 # background density (kg/m^3)
//! region 0.375 0.625 0.375 0.625 1000.0   # x0 x1 y0 y1 rho (repeatable)
//!
//! # source + run controls
//! source 0.0 0.1 0.0 0.1       # x0 x1 y0 y1
//! particles 100000
//! dt 1.0e-7
//! timesteps 1
//! seed 20170905
//! initial_energy 1.0e6         # eV
//!
//! # transport controls
//! xs_points 30000
//! min_energy 1.0               # eV cutoff
//! weight_cutoff 1.0e-6
//! collision_model analogue     # or implicit_capture
//! lookup_strategy hinted       # or binary | unionized | hashed
//! tally_strategy atomic        # or replicated | privatized
//! ```
//!
//! Any key may be omitted; defaults reproduce the paper's `csp` problem at
//! `ProblemScale::small()`.

use crate::config::{CollisionModel, LookupStrategy, Problem, TallyStrategy, TransportConfig};
use neutral_mesh::{Rect, StructuredMesh2D};
use neutral_xs::{constants, CrossSectionLibrary};
use std::fmt;

/// A parse or validation failure, with the offending line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamsError {
    /// 1-based line of the failure (0 = file-level).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "params: {}", self.message)
        } else {
            write!(f, "params line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ParamsError {}

fn err(line: usize, message: impl Into<String>) -> ParamsError {
    ParamsError {
        line,
        message: message.into(),
    }
}

/// Parsed parameter set; [`ProblemParams::build`] turns it into a
/// [`Problem`].
#[derive(Debug, Clone)]
pub struct ProblemParams {
    /// Cells along x.
    pub nx: usize,
    /// Cells along y.
    pub ny: usize,
    /// Domain width (m).
    pub width: f64,
    /// Domain height (m).
    pub height: f64,
    /// Background density (kg/m^3).
    pub density: f64,
    /// Density override regions `(rect, rho)`.
    pub regions: Vec<(Rect, f64)>,
    /// Source region.
    pub source: Rect,
    /// Histories per timestep.
    pub particles: usize,
    /// Timestep (s).
    pub dt: f64,
    /// Number of timesteps.
    pub timesteps: usize,
    /// Master seed.
    pub seed: u64,
    /// Birth energy (eV).
    pub initial_energy: f64,
    /// Cross-section table points.
    pub xs_points: usize,
    /// Energy cutoff (eV).
    pub min_energy: f64,
    /// Weight cutoff fraction.
    pub weight_cutoff: f64,
    /// Collision resolution model.
    pub collision_model: CollisionModel,
    /// Cross-section lookup strategy.
    pub lookup_strategy: LookupStrategy,
    /// Tally-accumulation backend.
    pub tally_strategy: TallyStrategy,
}

impl Default for ProblemParams {
    fn default() -> Self {
        Self {
            nx: 1000,
            ny: 1000,
            width: 1.0,
            height: 1.0,
            density: 0.05,
            regions: vec![(Rect::new(0.375, 0.625, 0.375, 0.625), 1.0e3)],
            source: Rect::new(0.0, 0.1, 0.0, 0.1),
            particles: 10_000,
            dt: 1.0e-7,
            timesteps: 1,
            seed: 20_170_905,
            initial_energy: constants::INITIAL_ENERGY_EV,
            xs_points: 30_000,
            min_energy: constants::MIN_ENERGY_OF_INTEREST_EV,
            weight_cutoff: 1.0e-6,
            collision_model: CollisionModel::Analogue,
            lookup_strategy: LookupStrategy::default(),
            tally_strategy: TallyStrategy::default(),
        }
    }
}

impl ProblemParams {
    /// Parse a parameter file's contents.
    pub fn parse(text: &str) -> Result<Self, ParamsError> {
        let mut p = Self {
            regions: Vec::new(), // an explicit file defines its own regions
            ..Self::default()
        };
        let mut explicit_regions = false;

        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut it = line.split_whitespace();
            let key = it.next().expect("non-empty line has a token");
            let rest: Vec<&str> = it.collect();

            let one = |rest: &[&str]| -> Result<String, ParamsError> {
                if rest.len() != 1 {
                    return Err(err(lineno, format!("`{key}` takes exactly one value")));
                }
                Ok(rest[0].to_owned())
            };
            let parse_f64 = |s: &str| -> Result<f64, ParamsError> {
                s.parse()
                    .map_err(|_| err(lineno, format!("`{s}` is not a number")))
            };
            let parse_usize = |s: &str| -> Result<usize, ParamsError> {
                s.parse()
                    .map_err(|_| err(lineno, format!("`{s}` is not a positive integer")))
            };

            match key {
                "nx" => p.nx = parse_usize(&one(&rest)?)?,
                "ny" => p.ny = parse_usize(&one(&rest)?)?,
                "width" => p.width = parse_f64(&one(&rest)?)?,
                "height" => p.height = parse_f64(&one(&rest)?)?,
                "density" => p.density = parse_f64(&one(&rest)?)?,
                "particles" => p.particles = parse_usize(&one(&rest)?)?,
                "dt" => p.dt = parse_f64(&one(&rest)?)?,
                "timesteps" => p.timesteps = parse_usize(&one(&rest)?)?,
                "seed" => {
                    p.seed = one(&rest)?
                        .parse()
                        .map_err(|_| err(lineno, "seed must be a u64"))?;
                }
                "initial_energy" => p.initial_energy = parse_f64(&one(&rest)?)?,
                "xs_points" => p.xs_points = parse_usize(&one(&rest)?)?,
                "min_energy" => p.min_energy = parse_f64(&one(&rest)?)?,
                "weight_cutoff" => p.weight_cutoff = parse_f64(&one(&rest)?)?,
                "lookup_strategy" => {
                    p.lookup_strategy = one(&rest)?.parse().map_err(|e: String| err(lineno, e))?;
                }
                "tally_strategy" => {
                    p.tally_strategy = one(&rest)?.parse().map_err(|e: String| err(lineno, e))?;
                }
                "collision_model" => {
                    p.collision_model = match one(&rest)?.as_str() {
                        "analogue" => CollisionModel::Analogue,
                        "implicit_capture" => CollisionModel::ImplicitCapture,
                        other => {
                            return Err(err(lineno, format!("unknown collision model `{other}`")))
                        }
                    };
                }
                "source" | "region" => {
                    let need = if key == "source" { 4 } else { 5 };
                    if rest.len() != need {
                        return Err(err(lineno, format!("`{key}` takes {need} values")));
                    }
                    let v: Result<Vec<f64>, _> = rest.iter().map(|s| parse_f64(s)).collect();
                    let v = v?;
                    if v[0] >= v[1] || v[2] >= v[3] {
                        return Err(err(lineno, "rectangle bounds inverted"));
                    }
                    let rect = Rect::new(v[0], v[1], v[2], v[3]);
                    if key == "source" {
                        p.source = rect;
                    } else {
                        explicit_regions = true;
                        p.regions.push((rect, v[4]));
                    }
                }
                other => return Err(err(lineno, format!("unknown key `{other}`"))),
            }
        }

        if !explicit_regions && p.regions.is_empty() {
            // No region lines: keep a homogeneous field (background only).
        }
        p.validate()?;
        Ok(p)
    }

    fn validate(&self) -> Result<(), ParamsError> {
        let check = |ok: bool, msg: &str| if ok { Ok(()) } else { Err(err(0, msg)) };
        check(self.nx > 0 && self.ny > 0, "mesh must have cells")?;
        check(
            self.width > 0.0 && self.height > 0.0,
            "domain must have extent",
        )?;
        check(self.density >= 0.0, "density must be non-negative")?;
        check(self.particles > 0, "need at least one particle")?;
        check(self.dt > 0.0, "dt must be positive")?;
        check(self.timesteps > 0, "need at least one timestep")?;
        check(
            self.initial_energy > self.min_energy,
            "birth energy below cutoff",
        )?;
        check(
            (0.0..1.0).contains(&self.weight_cutoff),
            "weight cutoff must be in [0, 1)",
        )?;
        check(self.xs_points >= 2, "cross-section table needs >= 2 points")?;
        let inside =
            |r: &Rect| r.x0 >= 0.0 && r.x1 <= self.width && r.y0 >= 0.0 && r.y1 <= self.height;
        check(inside(&self.source), "source region outside the domain")?;
        for (r, rho) in &self.regions {
            check(inside(r), "density region outside the domain")?;
            check(*rho >= 0.0, "region density must be non-negative")?;
        }
        Ok(())
    }

    /// Materialise the problem: build the mesh, apply regions, generate
    /// the cross-section tables.
    #[must_use]
    pub fn build(&self) -> Problem {
        let mut mesh =
            StructuredMesh2D::uniform(self.nx, self.ny, self.width, self.height, self.density);
        for (rect, rho) in &self.regions {
            let _ = mesh.set_region(*rect, *rho);
        }
        Problem {
            mesh,
            xs: CrossSectionLibrary::synthetic(self.xs_points, self.seed ^ 0xc5_0dd),
            source: self.source,
            n_particles: self.particles,
            dt: self.dt,
            n_timesteps: self.timesteps,
            seed: self.seed,
            initial_energy_ev: self.initial_energy,
            transport: TransportConfig {
                min_energy_ev: self.min_energy,
                weight_cutoff: self.weight_cutoff,
                collision_model: self.collision_model,
                xs_search: self.lookup_strategy,
                tally_strategy: self.tally_strategy,
                ..Default::default()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_build_a_csp_like_problem() {
        let p = ProblemParams::default().build();
        assert_eq!(p.mesh.nx(), 1000);
        let (cx, cy) = p.mesh.locate(0.5, 0.5);
        assert_eq!(p.mesh.density(cx, cy), 1.0e3);
    }

    #[test]
    fn parses_a_full_file() {
        let text = "\
# a scatter-like problem
nx 64          # small mesh
ny 32
width 2.0
height 1.0
density 1000.0
source 0.9 1.1 0.4 0.6
particles 500
dt 2.0e-7
timesteps 3
seed 7
initial_energy 5.0e5
xs_points 512
min_energy 2.0
weight_cutoff 1e-5
collision_model implicit_capture
";
        let p = ProblemParams::parse(text).unwrap();
        assert_eq!((p.nx, p.ny), (64, 32));
        assert_eq!(p.timesteps, 3);
        assert_eq!(p.collision_model, CollisionModel::ImplicitCapture);
        let problem = p.build();
        assert_eq!(problem.n_particles, 500);
        assert_eq!(problem.mesh.density(0, 0), 1000.0);
        assert_eq!(problem.transport.min_energy_ev, 2.0);
    }

    #[test]
    fn regions_override_background() {
        let text = "\
nx 10
ny 10
density 1.0
region 0.0 0.5 0.0 1.0 42.0
region 0.5 1.0 0.0 0.5 7.0
";
        let problem = ProblemParams::parse(text).unwrap().build();
        assert_eq!(problem.mesh.density(1, 5), 42.0);
        assert_eq!(problem.mesh.density(8, 1), 7.0);
        assert_eq!(problem.mesh.density(8, 8), 1.0);
    }

    #[test]
    fn rejects_unknown_keys_with_line_numbers() {
        let e = ProblemParams::parse("nx 10\nbogus 3\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));
    }

    #[test]
    fn rejects_malformed_values() {
        assert!(ProblemParams::parse("nx ten\n").is_err());
        assert!(ProblemParams::parse("source 0 1 0\n").is_err());
        assert!(ProblemParams::parse("region 1 0 0 1 5\n").is_err());
        assert!(ProblemParams::parse("collision_model magic\n").is_err());
    }

    #[test]
    fn rejects_inconsistent_setups() {
        // Source outside the domain.
        let e = ProblemParams::parse("width 1.0\nsource 0.5 1.5 0.0 0.5\n").unwrap_err();
        assert!(e.message.contains("source"));
        // Birth energy below cutoff.
        assert!(ProblemParams::parse("initial_energy 0.5\nmin_energy 1.0\n").is_err());
    }

    #[test]
    fn parses_lookup_strategy() {
        for (name, expect) in [
            ("binary", LookupStrategy::Binary),
            ("hinted", LookupStrategy::Hinted),
            ("unionized", LookupStrategy::Unionized),
            ("hashed", LookupStrategy::Hashed),
        ] {
            let p = ProblemParams::parse(&format!("lookup_strategy {name}\n")).unwrap();
            assert_eq!(p.lookup_strategy, expect);
            assert_eq!(p.build().transport.xs_search, expect);
        }
        let e = ProblemParams::parse("nx 4\nlookup_strategy magic\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("magic"));
    }

    #[test]
    fn parses_tally_strategy() {
        for (name, expect) in [
            ("atomic", TallyStrategy::Atomic),
            ("replicated", TallyStrategy::Replicated),
            ("privatized", TallyStrategy::Privatized),
        ] {
            let p = ProblemParams::parse(&format!("tally_strategy {name}\n")).unwrap();
            assert_eq!(p.tally_strategy, expect);
            assert_eq!(p.build().transport.tally_strategy, expect);
        }
        let e = ProblemParams::parse("nx 4\ntally_strategy magic\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("magic"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = ProblemParams::parse("\n# just a comment\n\nnx 5\n").unwrap();
        assert_eq!(p.nx, 5);
    }

    #[test]
    fn parsed_problem_runs() {
        let text =
            "nx 32\nny 32\ndensity 1e3\nparticles 50\nsource 0.4 0.6 0.4 0.6\nxs_points 256\n";
        let problem = ProblemParams::parse(text).unwrap().build();
        let report = crate::sim::Simulation::new(problem).run(crate::sim::RunOptions {
            execution: crate::sim::Execution::Sequential,
            ..Default::default()
        });
        assert!(report.counters.total_events() > 0);
    }
}
