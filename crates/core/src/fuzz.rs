//! Generative differential testing: random scenarios, physics oracles,
//! and a shrinker (DESIGN.md §17).
//!
//! The golden suite locks a handful of hand-picked configurations; this
//! module multiplies them into *families*. A deterministic, seed-driven
//! generator ([`generate`]) samples random zone layouts, material
//! assignments over all four archetypes, mesh scales, particle counts,
//! timesteps and strategy knobs; [`run_case`] then checks every sampled
//! workload against the reproduction's load-bearing invariants, used as
//! **oracles** (no golden answer is needed — the physics itself says
//! what must hold):
//!
//! * **Conservation** — population accounting (`deaths + stuck + alive
//!   == histories`), non-negative finite tallies, and the energy balance
//!   with its cutoff residual ([`crate::validate::EnergyBalance`]).
//! * **Cross-driver agreement** — all four driver families compute the
//!   same physics: identical event counters, with bitwise tally and
//!   energy-sum agreement among the history-order drivers (History,
//!   Over Particles, SoA — the committed golden fixtures share one
//!   tally hash across these) and reassociation-bounded agreement for
//!   the breadth-first Over Events driver, whose different accumulation
//!   order moves the `f64` sums by ulps.
//! * **Worker invariance** — with a deterministic tally strategy,
//!   merged tally bits and physics counters are identical for worker
//!   counts {1, 2, 7} (DESIGN.md §11).
//! * **Checkpoint round-trip** — a solve cut at a census boundary,
//!   serialized through the real byte format and resumed, finishes
//!   bitwise identical to the uninterrupted run (DESIGN.md §15).
//! * **Serve == direct** — a solve submitted through the [`Registry`]
//!   returns a report whose tally dump is byte-identical to the direct
//!   in-process run (DESIGN.md §16).
//! * **Shard invariance** — the solve split into {1, 2, 5} fault-isolated
//!   shards merges bitwise identically to the unsharded run, and a shard
//!   killed mid-flight and retried still reproduces it (DESIGN.md §18).
//! * **Cross-backend agreement** — the Over-Events driver computes
//!   bitwise-identical reports under every kernel backend (scalar,
//!   auto-vectorized, explicit SIMD; DESIGN.md §19).
//!
//! A failing case is minimized axis by axis with [`shrink`] and emitted
//! as a replayable params file ([`FuzzCase::to_params_text`]); the
//! regression corpus under `tests/corpus/` is replayed by CI forever.
//!
//! The random harness itself ([`Gen`], [`for_cases`]) is the
//! property-test generator the integration suite has used since the
//! seed commit, now hosted here so the generator, oracles and shrinker
//! live in one layer (the environment has no crates.io access, so
//! `proptest` is replaced by this counter-based harness — classic
//! integrated shrinking is traded for perfectly reproducible cases).

use crate::checkpoint::Checkpoint;
use crate::config::{
    Backend, CollisionModel, LookupStrategy, Problem, RegroupPolicy, SortPolicy, TallyStrategy,
};
use crate::counters::EventCounters;
use crate::params::ProblemParams;
use crate::registry::{write_tally_dump, Registry, RegistryConfig, SolveState, SubmitRequest};
use crate::scheduler::Schedule;
use crate::sim::{Execution, Layout, RunOptions, RunReport, Scheme, Simulation, SolveCore};
use neutral_mesh::{MaterialId, Rect};
use neutral_rng::{CounterStream, Threefry2x64};
use neutral_xs::{MaterialKind, MaterialSpec};

/// Relative difference `|a-b| / max(|a|, floor)`.
#[must_use]
pub fn rel_diff(a: f64, b: f64) -> f64 {
    (a - b).abs() / a.abs().max(1e-30)
}

/// Counters with the work/decision meters masked out: reducing search
/// work (`cs_search_steps`) and choosing when to cluster the flush
/// (`clustered_flushes`) are exactly what the sort/regroup stages are
/// for — they move between policies without any physics change, so the
/// policy-equality contracts exclude them.
#[must_use]
pub fn physics_counters(mut c: EventCounters) -> EventCounters {
    c.cs_search_steps = 0;
    c.clustered_flushes = 0;
    c
}

/// Deterministic random-input generator for property tests and the
/// scenario fuzzer, backed by the workspace's own counter-based RNG. A
/// failing case is reproduced by its case index alone.
pub struct Gen {
    rng: Threefry2x64,
    counter: u64,
}

impl Gen {
    /// One generator per property case; `seed` is the case index.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            rng: Threefry2x64::new([seed, 0x9e37_79b9_7f4a_7c15]),
            counter: 0,
        }
    }

    /// A generator decorrelated by a second `stream` index — the fuzzer
    /// keys one stream per (run seed, case index) pair, so every case
    /// draws from an independent deterministic sequence.
    #[must_use]
    pub fn with_stream(seed: u64, stream: u64) -> Self {
        Self {
            rng: Threefry2x64::new([
                seed,
                0x9e37_79b9_7f4a_7c15 ^ stream.wrapping_mul(0x2545_f491_4f6c_dd1d),
            ]),
            counter: 0,
        }
    }

    /// Uniform in `[0, 1)`.
    pub fn f64_unit(&mut self) -> f64 {
        let mut stream = CounterStream::new(&self.rng, 0);
        stream.next_f64(&mut self.counter)
    }

    /// Uniform in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64_unit()
    }

    /// Log-uniform in `[lo, hi)` (both positive).
    pub fn log_uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo * (hi / lo).powf(self.f64_unit())
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi);
        lo + (self.f64_unit() * (hi - lo) as f64) as usize
    }

    /// Uniform `u64` over the full range.
    pub fn u64_any(&mut self) -> u64 {
        (self.f64_unit() * 2.0f64.powi(32)) as u64
            ^ ((self.f64_unit() * 2.0f64.powi(32)) as u64) << 32
    }

    /// A uniformly chosen element of `items`.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.usize_in(0, items.len())]
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64_unit() < p
    }
}

/// Run `body` over `cases` deterministic generator instances, labelling
/// panics with the failing case index.
pub fn for_cases(cases: u64, mut body: impl FnMut(&mut Gen)) {
    for case in 0..cases {
        let mut g = Gen::new(case);
        // Any panic inside `body` reports `case` via the unwind message of
        // the assert that fired; print the index for quick reproduction.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut g)));
        if let Err(e) = result {
            panic!("property failed at case {case}: {}", panic_message(&e));
        }
    }
}

fn panic_message(e: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

/// The four driver families of the golden/equivalence suites, with run
/// options parameterised by worker count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DriverKind {
    /// Sequential history loop (Over Particles, AoS, one worker).
    History,
    /// Parallel Over Particles (AoS, explicit scheduler).
    OverParticles,
    /// Breadth-first Over Events.
    OverEvents,
    /// Over Particles on the SoA layout.
    Soa,
}

impl DriverKind {
    /// All four, in golden-fixture order.
    pub const ALL: [DriverKind; 4] = [
        DriverKind::History,
        DriverKind::OverParticles,
        DriverKind::OverEvents,
        DriverKind::Soa,
    ];

    /// Stable name used in fixture files.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DriverKind::History => "history",
            DriverKind::OverParticles => "over_particles",
            DriverKind::OverEvents => "over_events",
            DriverKind::Soa => "soa",
        }
    }

    /// Inverse of [`DriverKind::name`] (corpus-file `# driver` lines).
    pub fn from_name(name: &str) -> Result<Self, String> {
        match name {
            "history" => Ok(DriverKind::History),
            "over_particles" => Ok(DriverKind::OverParticles),
            "over_events" => Ok(DriverKind::OverEvents),
            "soa" => Ok(DriverKind::Soa),
            other => Err(format!(
                "unknown driver `{other}` (history|over_particles|over_events|soa)"
            )),
        }
    }

    /// Run options driving this family on `workers` workers. `History`
    /// ignores the worker count (it is the one-worker baseline).
    ///
    /// The kernel backend defaults to scalar, overridable through the
    /// `NEUTRAL_TEST_BACKEND` environment variable
    /// (`scalar|vectorized|simd`) — every backend computes bitwise
    /// identical results, so the golden/regroup/restart/shard suites
    /// re-run unchanged under any value; the CI matrix leg that locks
    /// the explicit-SIMD backend against the committed fixtures is just
    /// `NEUTRAL_TEST_BACKEND=simd cargo test`. An unparsable value
    /// panics: a typo'd CI variable silently running scalar would
    /// green-wash the whole leg.
    #[must_use]
    pub fn options(self, workers: usize) -> RunOptions {
        let backend = match std::env::var("NEUTRAL_TEST_BACKEND") {
            Ok(v) if !v.is_empty() => v
                .parse::<Backend>()
                .unwrap_or_else(|e| panic!("NEUTRAL_TEST_BACKEND: {e}")),
            _ => Backend::Scalar,
        };
        let scheduled = Execution::Scheduled {
            threads: workers,
            schedule: Schedule::Dynamic { chunk: 16 },
        };
        match self {
            DriverKind::History => RunOptions {
                execution: Execution::Sequential,
                backend,
                ..Default::default()
            },
            DriverKind::OverParticles => RunOptions {
                execution: scheduled,
                backend,
                ..Default::default()
            },
            DriverKind::OverEvents => RunOptions {
                scheme: Scheme::OverEvents,
                execution: scheduled,
                backend,
                ..Default::default()
            },
            DriverKind::Soa => RunOptions {
                layout: Layout::Soa,
                execution: scheduled,
                backend,
                ..Default::default()
            },
        }
    }
}

/// Size envelope of generated cases. The default keeps a case's full
/// oracle battery (~9 tiny runs) in the tens-of-milliseconds range; the
/// quick profile is for CI smoke loops over many cases.
#[derive(Debug, Clone, Copy)]
pub struct FuzzProfile {
    /// Upper bound (inclusive) on cells per mesh axis.
    pub max_mesh: usize,
    /// Upper bound (inclusive) on histories per timestep.
    pub max_particles: usize,
}

impl Default for FuzzProfile {
    fn default() -> Self {
        Self {
            max_mesh: 64,
            max_particles: 400,
        }
    }
}

impl FuzzProfile {
    /// The smaller envelope behind `neutral_fuzz --quick`.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            max_mesh: 32,
            max_particles: 140,
        }
    }
}

/// One generated (or replayed) fuzz workload: a fully-validated
/// parameter set plus the driver family to run it under.
#[derive(Debug, Clone)]
pub struct FuzzCase {
    /// Human-readable provenance (`seed<seed>/case<index>` for generated
    /// cases, the file stem for corpus replays).
    pub label: String,
    /// Driver family the case samples (the oracles additionally sweep
    /// the other three for the cross-driver check).
    pub driver: DriverKind,
    /// The sampled problem parameters.
    pub params: ProblemParams,
}

/// Deterministically sample case `index` of fuzz run `seed` at the
/// default [`FuzzProfile`]. Same `(seed, index)` → same case, forever.
#[must_use]
pub fn generate(seed: u64, index: u64) -> FuzzCase {
    generate_with(seed, index, FuzzProfile::default())
}

/// [`generate`] with an explicit size envelope.
#[must_use]
pub fn generate_with(seed: u64, index: u64, profile: FuzzProfile) -> FuzzCase {
    let g = &mut Gen::with_stream(seed, index);
    let mut p = ProblemParams {
        regions: Vec::new(),
        ..ProblemParams::default()
    };

    p.nx = g.usize_in(8, profile.max_mesh + 1);
    p.ny = g.usize_in(8, profile.max_mesh + 1);
    p.width = g.f64_in(0.5, 2.0);
    p.height = g.f64_in(0.5, 2.0);
    p.particles = g.usize_in(16, profile.max_particles + 1);
    p.timesteps = *g.pick(&[1, 2, 2, 3, 3]);
    p.seed = g.u64_any();
    p.dt = g.log_uniform(5.0e-9, 5.0e-7);
    p.initial_energy = g.log_uniform(1.0e5, 5.0e6);
    p.xs_points = g.usize_in(64, 513);
    // Span the paper's regimes: near-streaming to heavily collisional.
    p.density = g.log_uniform(1.0e-4, 2.0e3);

    // Materials: 1–4 archetypes, ids contiguous from 0, every spec
    // explicit (points + table seed) so the emitted params file rebuilds
    // the exact same cross-section tables.
    let n_materials = g.usize_in(1, 5);
    p.materials = (0..n_materials)
        .map(|id| {
            (
                id as MaterialId,
                MaterialSpec {
                    kind: *g.pick(&MaterialKind::ALL),
                    n_points: g.usize_in(64, 513),
                    seed: g.u64_any(),
                },
            )
        })
        .collect();

    // Zone layout: up to 4 density/material rectangles over background.
    let n_regions = g.usize_in(0, 4);
    for _ in 0..n_regions {
        let rect = rect_in(g, p.width, p.height);
        let rho = g.log_uniform(1.0e-2, 2.0e3);
        let mat = g.usize_in(0, n_materials) as MaterialId;
        p.regions.push((rect, rho, mat));
    }
    p.source = rect_in(g, p.width, p.height);

    // Strategy knobs. Atomic tallies are deliberately excluded: they are
    // the non-deterministic contended baseline, outside the bitwise
    // invariant every differential oracle rides on (DESIGN.md §11).
    p.collision_model = if g.chance(0.5) {
        CollisionModel::ImplicitCapture
    } else {
        CollisionModel::Analogue
    };
    // An aggressive cutoff exercises the cutoff-residual accounting.
    p.weight_cutoff = if g.chance(0.3) { 1.0e-3 } else { 1.0e-6 };
    p.lookup_strategy = *g.pick(&[
        LookupStrategy::Binary,
        LookupStrategy::Hinted,
        LookupStrategy::Unionized,
        LookupStrategy::Hashed,
    ]);
    p.tally_strategy = *g.pick(&[TallyStrategy::Replicated, TallyStrategy::Privatized]);
    p.sort_policy = *g.pick(&SortPolicy::ALL);
    p.regroup_policy = *g.pick(&RegroupPolicy::ALL);
    // Kernel-backend axis (DESIGN.md §19): only the Over-Events driver
    // dispatches on it, but every sampled value rides through the
    // cross-backend oracle regardless of the case's own driver.
    p.backend = *g.pick(&Backend::ALL);
    let driver = *g.pick(&DriverKind::ALL);

    p.validate()
        .expect("generator produced an invalid parameter set");
    FuzzCase {
        label: format!("seed{seed}/case{index}"),
        driver,
        params: p,
    }
}

/// A random axis-aligned sub-rectangle with ≥ 5% extent per axis.
fn rect_in(g: &mut Gen, width: f64, height: f64) -> Rect {
    let span = |g: &mut Gen, extent: f64| {
        let a = g.f64_in(0.0, 0.9) * extent;
        let len = g.f64_in(0.05, 0.5) * extent;
        (a, (a + len).min(extent))
    };
    let (x0, x1) = span(g, width);
    let (y0, y1) = span(g, height);
    Rect::new(x0, x1, y0, y1)
}

impl FuzzCase {
    /// Run options for this case: the driver family's options with the
    /// params file's kernel backend applied.
    #[must_use]
    pub fn options(&self, workers: usize) -> RunOptions {
        RunOptions {
            backend: self.params.backend,
            ..self.driver.options(workers)
        }
    }

    /// Serialize as a replayable params file: a standard
    /// [`ProblemParams`] file (round-trips through
    /// [`ProblemParams::parse`], so `neutral_cli --params` runs it too)
    /// plus a `# driver <name>` comment directive the fuzzer reads back.
    #[must_use]
    pub fn to_params_text(&self) -> String {
        format!(
            "# neutral_fuzz case {label}\n# driver {driver}\n{params}",
            label = self.label,
            driver = self.driver.name(),
            params = self.params.to_params_text()
        )
    }

    /// Parse a case emitted by [`FuzzCase::to_params_text`]. A missing
    /// `# driver` directive defaults to `history`; the params body is
    /// validated exactly as a CLI params file would be.
    pub fn from_params_text(label: &str, text: &str) -> Result<Self, String> {
        let mut driver = DriverKind::History;
        for line in text.lines() {
            if let Some(name) = line.trim().strip_prefix("# driver ") {
                driver = DriverKind::from_name(name.trim())?;
            }
        }
        let params = ProblemParams::parse(text).map_err(|e| e.to_string())?;
        Ok(Self {
            label: label.to_owned(),
            driver,
            params,
        })
    }
}

/// The seven differential oracles of [`run_case`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Oracle {
    /// Population/energy conservation with cutoff residual.
    Conservation,
    /// All driver families agree (bitwise where the fixtures do).
    CrossDriver,
    /// Worker counts {1, 2, 7} are bitwise indistinguishable.
    WorkerInvariance,
    /// Checkpoint → bytes → resume reproduces the uninterrupted run.
    CheckpointRoundTrip,
    /// The registry serves byte-identical results to a direct run.
    ServeDirect,
    /// Shard counts {1, 2, 5} merge bitwise identically, and a killed
    /// shard recovers identically through retry.
    ShardInvariance,
    /// Every kernel backend (scalar / vectorized / simd) computes a
    /// bitwise-identical Over-Events report (DESIGN.md §19).
    CrossBackend,
}

impl Oracle {
    /// All seven, in reporting order.
    pub const ALL: [Oracle; 7] = [
        Oracle::Conservation,
        Oracle::CrossDriver,
        Oracle::WorkerInvariance,
        Oracle::CheckpointRoundTrip,
        Oracle::ServeDirect,
        Oracle::ShardInvariance,
        Oracle::CrossBackend,
    ];

    /// Stable lowercase name for reports and corpus tooling.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Oracle::Conservation => "conservation",
            Oracle::CrossDriver => "cross_driver",
            Oracle::WorkerInvariance => "worker_invariance",
            Oracle::CheckpointRoundTrip => "checkpoint_roundtrip",
            Oracle::ServeDirect => "serve_direct",
            Oracle::ShardInvariance => "shard_invariance",
            Oracle::CrossBackend => "cross_backend",
        }
    }
}

/// One oracle violation on one case.
#[derive(Debug, Clone)]
pub struct OracleFailure {
    /// Which invariant broke.
    pub oracle: Oracle,
    /// What diverged, with enough context to debug from the params file.
    pub detail: String,
}

/// The verdict of the full oracle battery on one case.
#[derive(Debug, Clone, Default)]
pub struct CaseOutcome {
    /// Every oracle violation observed (empty = case passed).
    pub failures: Vec<OracleFailure>,
    /// Oracles skipped as inapplicable (e.g. checkpoint round-trip on a
    /// single-timestep case, which has no interior census boundary).
    pub skipped: Vec<Oracle>,
    /// Transport events of the baseline run (soak budget metering).
    pub events: u64,
    /// Collisions of the baseline run (corpus coverage gating).
    pub collisions: u64,
    /// Facet crossings of the baseline run (corpus coverage gating).
    pub facets: u64,
}

impl CaseOutcome {
    /// Whether every applicable oracle held.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Worker count used for the parallel baseline runs (matches the golden
/// suite's choice: real concurrency, small enough for {1,2,7} sweeps).
const BASE_WORKERS: usize = 2;

/// Maximum |relative energy-balance defect| accepted under implicit
/// capture, as a function of sample size. The hand-picked conservation
/// suite holds 0.05 at its 10k-history scales; generated cases run as
/// few as 16 histories, where the track-length estimator's per-history
/// relative variance (order 1) leaves a sampling defect of a few times
/// `1/sqrt(n)` — calibration over hundreds of generated cases observed
/// up to ±0.15 at a few hundred histories, identically on every driver.
/// `0.05 + 5/sqrt(n)` gives the systematic floor plus a ~5σ statistical
/// allowance: never flaky in the fuzz envelope, while a genuine
/// accounting bug (defect O(1)) still trips it at every sample size.
#[must_use]
pub fn defect_tolerance(n_particles: usize) -> f64 {
    0.05 + 5.0 / (n_particles as f64).sqrt()
}

/// Run the full oracle battery on one case.
#[must_use]
pub fn run_case(case: &FuzzCase) -> CaseOutcome {
    let problem = case.params.build();
    let sim = Simulation::new(problem);
    let mut out = CaseOutcome::default();

    // One run per driver family (History is the one-worker baseline).
    // Every family runs under the case's sampled kernel backend — only
    // Over Events dispatches on it, so the cross-driver oracle doubles
    // as a backend-vs-history-order differential check.
    let opts = |d: DriverKind, workers: usize| RunOptions {
        backend: case.params.backend,
        ..d.options(workers)
    };
    let runs: Vec<(DriverKind, RunReport)> = DriverKind::ALL
        .iter()
        .map(|d| (*d, sim.run(opts(*d, BASE_WORKERS))))
        .collect();
    let base = &runs
        .iter()
        .find(|(d, _)| *d == case.driver)
        .expect("sampled driver is in ALL")
        .1;
    out.events = base.counters.total_events();
    out.collisions = base.counters.collisions;
    out.facets = base.counters.facets;

    // Oracle 1: conservation, on every family's run.
    for (d, r) in &runs {
        if let Err(e) = check_conservation(sim.problem(), r) {
            out.failures.push(OracleFailure {
                oracle: Oracle::Conservation,
                detail: format!("{}: {e}", d.name()),
            });
        }
    }

    // Oracle 2: cross-driver agreement against the History baseline.
    let hist = &runs[0].1;
    for (d, r) in &runs[1..] {
        let label = format!("history vs {}", d.name());
        let verdict = check_same_physics(&label, hist, r).and_then(|()| {
            if *d == DriverKind::OverEvents {
                // Breadth-first accumulation reassociates the energy and
                // tally sums — same terms, different order.
                check_energy_close(&label, hist, r)
                    .and_then(|()| check_tally_reassoc(&label, hist, r))
            } else {
                check_energy_bits(&label, hist, r)
                    .and_then(|()| check_tally_bitwise(&label, hist, r))
            }
        });
        if let Err(e) = verdict {
            out.failures.push(OracleFailure {
                oracle: Oracle::CrossDriver,
                detail: e,
            });
        }
    }

    // Oracle 3: worker invariance on the sampled driver (History is the
    // sequential baseline — sweep Over Particles in its place).
    let sweep = if case.driver == DriverKind::History {
        DriverKind::OverParticles
    } else {
        case.driver
    };
    let sweep_base = &runs
        .iter()
        .find(|(d, _)| *d == sweep)
        .expect("sweep driver is in ALL")
        .1;
    for workers in [1usize, 7] {
        let r = sim.run(opts(sweep, workers));
        let label = format!("{} @{BASE_WORKERS}w vs @{workers}w", sweep.name());
        let verdict = check_same_physics(&label, sweep_base, &r)
            .and_then(|()| check_energy_bits(&label, sweep_base, &r))
            .and_then(|()| check_tally_bitwise(&label, sweep_base, &r));
        if let Err(e) = verdict {
            out.failures.push(OracleFailure {
                oracle: Oracle::WorkerInvariance,
                detail: e,
            });
        }
    }

    // Oracle 4: checkpoint round-trip through the real byte format.
    if sim.problem().n_timesteps < 2 {
        out.skipped.push(Oracle::CheckpointRoundTrip);
    } else if let Err(e) = checkpoint_roundtrip(&sim, opts(case.driver, BASE_WORKERS), base) {
        out.failures.push(OracleFailure {
            oracle: Oracle::CheckpointRoundTrip,
            detail: e,
        });
    }

    // Oracle 5: served result == direct run, to the dumped byte.
    if let Err(e) = serve_matches_direct(case, base) {
        out.failures.push(OracleFailure {
            oracle: Oracle::ServeDirect,
            detail: e,
        });
    }

    // Oracle 6: sharded execution is invisible in the results. Atomic
    // tallies sit outside the deterministic-merge contract sharding is
    // built on (the generator never samples them; a hand-written corpus
    // case could).
    if sim.problem().transport.tally_strategy == TallyStrategy::Atomic {
        out.skipped.push(Oracle::ShardInvariance);
    } else if let Err(e) = shard_invariance(case, base) {
        out.failures.push(OracleFailure {
            oracle: Oracle::ShardInvariance,
            detail: e,
        });
    }

    // Oracle 7: the kernel backends are bitwise interchangeable. Rides
    // on the same deterministic-merge contract as sharding, so Atomic
    // corpus cases skip it the same way.
    if sim.problem().transport.tally_strategy == TallyStrategy::Atomic {
        out.skipped.push(Oracle::CrossBackend);
    } else {
        let oe = &runs
            .iter()
            .find(|(d, _)| *d == DriverKind::OverEvents)
            .expect("OverEvents is in ALL")
            .1;
        if let Err(e) = check_cross_backend(case, oe) {
            out.failures.push(OracleFailure {
                oracle: Oracle::CrossBackend,
                detail: e,
            });
        }
    }

    out
}

/// Run the case's Over-Events solve under every kernel backend *other*
/// than the sampled one and demand each report reproduce `oe_report`
/// (the sampled backend's run) bitwise — counters, tally bits,
/// survivors. On hardware without AVX2 the `simd` backend takes its
/// scalar fallback, which must also be bitwise identical, so the oracle
/// holds (and keeps checking) everywhere.
pub fn check_cross_backend(case: &FuzzCase, oe_report: &RunReport) -> Result<(), String> {
    let sim = Simulation::new(case.params.build());
    for backend in Backend::ALL {
        if backend == case.params.backend {
            continue;
        }
        let r = sim.run(RunOptions {
            backend,
            ..DriverKind::OverEvents.options(BASE_WORKERS)
        });
        check_reports_bitwise(
            &format!(
                "over_events backend {} vs {}",
                case.params.backend.name(),
                backend.name()
            ),
            oe_report,
            &r,
        )?;
    }
    Ok(())
}

/// Run the case's driver sharded {1, 2, 5} ways and demand each merge be
/// bitwise identical to the unsharded `direct` run; then kill shard 1's
/// first attempt and demand the retried solve still reproduce it (with
/// the retry actually visible in the stats — a fault that silently never
/// fired would vacuously pass).
fn shard_invariance(case: &FuzzCase, direct: &RunReport) -> Result<(), String> {
    use crate::shard::{ShardConfig, ShardedSolve};

    let options = case.options(BASE_WORKERS);
    let sim = std::sync::Arc::new(Simulation::new(case.params.build()));
    let run = |config: ShardConfig| -> Result<(RunReport, crate::shard::ShardStats), String> {
        let mut solve = ShardedSolve::new(&sim, options, config);
        loop {
            match solve.step(&sim) {
                Ok(true) => {}
                Ok(false) => break,
                Err(e) => return Err(format!("sharded step: {e}")),
            }
        }
        let stats = solve.stats();
        Ok((solve.finish(), stats))
    };

    // The acceptance counts {1, 2, 5}, plus whatever the case's own
    // `shards` key asks for (corpus cases pin specific splits).
    let mut counts = vec![1usize, 2, 5];
    if !counts.contains(&case.params.shards) {
        counts.push(case.params.shards);
    }
    for n_shards in counts {
        let mut config = ShardConfig::new(n_shards);
        config.backoff = std::time::Duration::ZERO;
        let (report, _) = run(config)?;
        check_reports_bitwise(&format!("unsharded vs {n_shards} shards"), direct, &report)?;
    }

    let mut config = ShardConfig::new(2);
    config.backoff = std::time::Duration::ZERO;
    config.fault_plan = "kill@1".parse().expect("static fault grammar");
    let (report, stats) = run(config)?;
    check_reports_bitwise("unsharded vs killed-then-retried shard", direct, &report)?;
    if stats.retries != 1 || stats.requeues != 1 {
        return Err(format!(
            "injected shard kill not exercised: {} retries, {} requeues (expected 1 each)",
            stats.retries, stats.requeues
        ));
    }
    Ok(())
}

/// Cut the solve at its middle census boundary, serialize the
/// checkpoint, resume from the parsed bytes, and demand the finished
/// report be bitwise identical to the uninterrupted `direct` run.
fn checkpoint_roundtrip(
    sim: &Simulation,
    options: RunOptions,
    direct: &RunReport,
) -> Result<(), String> {
    let cut = (sim.problem().n_timesteps / 2).max(1);
    let mut first = SolveCore::new(sim, options);
    for _ in 0..cut {
        first.step(sim);
    }
    let bytes = first.checkpoint().to_bytes();
    let parsed = Checkpoint::from_bytes(&bytes).map_err(|e| format!("checkpoint bytes: {e}"))?;
    let mut resumed = SolveCore::resume(sim, options, &parsed)
        .map_err(|e| format!("resume rejected own checkpoint: {e}"))?;
    while resumed.step(sim) {}
    let report = resumed.finish();
    let label = format!("cut@{cut} resume vs direct");
    check_reports_bitwise(&label, direct, &report)
}

/// Submit the case to an in-process [`Registry`] and demand the served
/// report match the direct run to the dumped byte.
fn serve_matches_direct(case: &FuzzCase, direct: &RunReport) -> Result<(), String> {
    let registry = Registry::new(RegistryConfig {
        runners: 2,
        ..Default::default()
    });
    let receipt = registry
        .submit(SubmitRequest::new(
            case.params.build(),
            case.options(BASE_WORKERS),
        ))
        .map_err(|e| format!("submit: {e}"))?;
    let status = registry.wait(receipt.id).ok_or("entry vanished")?;
    if status.state != SolveState::Done {
        return Err(format!("solve ended {}", status.state.name()));
    }
    let served = registry.result(receipt.id).ok_or("done without result")?;
    check_served_matches(case.params.nx, direct, &served)
}

// ---------------------------------------------------------------------
// Pure comparison layer. `run_case` feeds these with real runs; the
// broken-oracle unit tests feed them seeded mutations each must catch.
// ---------------------------------------------------------------------

/// Conservation oracle on one finished run.
///
/// Checks, in order: every tally cell finite and non-negative; the
/// population identity `deaths + stuck + alive == histories` (each
/// history ends exactly one way); single-timestep census accounting
/// ([`crate::validate::population_balance`]); the weak energy
/// invariants; and, under implicit capture, the closed energy balance
/// `initial == deposited + census residual + cutoff residual` within
/// [`defect_tolerance`] (analogue absorption deposits at collision
/// sites, so only the weak invariants apply there).
pub fn check_conservation(problem: &Problem, r: &RunReport) -> Result<(), String> {
    if let Some((i, v)) = r
        .tally
        .iter()
        .enumerate()
        .find(|(_, v)| !v.is_finite() || **v < 0.0)
    {
        return Err(format!("tally cell {i} is {v} (not finite/non-negative)"));
    }
    let n = problem.n_particles as u64;
    let c = &r.counters;
    let ends = c.deaths + c.stuck + r.alive as u64;
    if ends != n {
        return Err(format!(
            "population leak: deaths {} + stuck {} + alive {} = {ends} != {n} histories",
            c.deaths, c.stuck, r.alive
        ));
    }
    if problem.n_timesteps == 1 && !crate::validate::population_balance(n, c) {
        return Err(format!(
            "census accounting: census {} + deaths {} + stuck {} != {n}",
            c.census, c.deaths, c.stuck
        ));
    }
    let balance = r.energy_balance();
    if !balance.weak_invariants_hold() {
        return Err(format!("weak energy invariants violated: {balance:?}"));
    }
    if problem.transport.collision_model == CollisionModel::ImplicitCapture {
        let defect = balance.relative_defect();
        let tol = defect_tolerance(problem.n_particles);
        if defect.abs() > tol {
            return Err(format!(
                "energy-balance defect {defect:+.4} exceeds {tol:.4} \
                 at {} histories ({balance:?})",
                problem.n_particles
            ));
        }
    }
    Ok(())
}

/// Driver-portable physics equality: the event counters every family
/// must reproduce exactly (collisions, facets, census, absorptions,
/// scatters, reflections, deaths, stuck, lookups, material switches)
/// and the surviving-population count. Work meters that legitimately
/// differ between families (flush/batch/read counts) are excluded, and
/// the `f64` energy sums are checked separately — bitwise within the
/// history-order family ([`check_energy_bits`]), reassociation-bounded
/// against the breadth-first driver ([`check_energy_close`]).
pub fn check_same_physics(label: &str, a: &RunReport, b: &RunReport) -> Result<(), String> {
    let (ca, cb) = (&a.counters, &b.counters);
    let ints = [
        ("collisions", ca.collisions, cb.collisions),
        ("facets", ca.facets, cb.facets),
        ("census", ca.census, cb.census),
        ("absorptions", ca.absorptions, cb.absorptions),
        ("scatters", ca.scatters, cb.scatters),
        ("reflections", ca.reflections, cb.reflections),
        ("deaths", ca.deaths, cb.deaths),
        ("stuck", ca.stuck, cb.stuck),
        ("cs_lookups", ca.cs_lookups, cb.cs_lookups),
        (
            "material_switches",
            ca.material_switches,
            cb.material_switches,
        ),
        ("alive", a.alive as u64, b.alive as u64),
        ("timesteps", a.timesteps as u64, b.timesteps as u64),
    ];
    for (name, x, y) in ints {
        if x != y {
            return Err(format!("{label}: {name} {x} vs {y}"));
        }
    }
    Ok(())
}

/// Bitwise equality of the deterministically-merged energy sums
/// (lost/census energy). Holds within the history-order driver family
/// and across worker counts of any one driver.
pub fn check_energy_bits(label: &str, a: &RunReport, b: &RunReport) -> Result<(), String> {
    let (ca, cb) = (&a.counters, &b.counters);
    let bits = [
        ("lost_energy_ev", ca.lost_energy_ev, cb.lost_energy_ev),
        ("census_energy_ev", ca.census_energy_ev, cb.census_energy_ev),
    ];
    for (name, x, y) in bits {
        if x.to_bits() != y.to_bits() {
            return Err(format!("{label}: {name} bits {x:e} vs {y:e}"));
        }
    }
    Ok(())
}

/// Reassociation-bounded equality of the energy sums, for comparisons
/// against the breadth-first driver: Over Events accumulates the same
/// per-history terms in a different order, so the sums agree only to
/// floating-point reassociation error (calibration observed last-ulp
/// differences; 1e-12 relative is ~4 orders of magnitude of headroom
/// while still catching any dropped or double-counted term).
pub fn check_energy_close(label: &str, a: &RunReport, b: &RunReport) -> Result<(), String> {
    let (ca, cb) = (&a.counters, &b.counters);
    let sums = [
        ("lost_energy_ev", ca.lost_energy_ev, cb.lost_energy_ev),
        ("census_energy_ev", ca.census_energy_ev, cb.census_energy_ev),
    ];
    for (name, x, y) in sums {
        if rel_diff(x, y) >= 1e-12 {
            return Err(format!("{label}: {name} {x:e} vs {y:e}"));
        }
    }
    Ok(())
}

/// Bitwise tally equality (the deterministic-merge invariant).
pub fn check_tally_bitwise(label: &str, a: &RunReport, b: &RunReport) -> Result<(), String> {
    if a.tally.len() != b.tally.len() {
        return Err(format!(
            "{label}: tally sizes {} vs {}",
            a.tally.len(),
            b.tally.len()
        ));
    }
    for (i, (x, y)) in a.tally.iter().zip(&b.tally).enumerate() {
        if x.to_bits() != y.to_bits() {
            return Err(format!(
                "{label}: tally cell {i} bits differ ({x:e} vs {y:e})"
            ));
        }
    }
    Ok(())
}

/// Reassociation-bounded tally equality for the breadth-first driver:
/// per-cell agreement within floating-point summation error and totals
/// within 1e-9 (the scheme-equivalence suite's bounds).
pub fn check_tally_reassoc(label: &str, a: &RunReport, b: &RunReport) -> Result<(), String> {
    if a.tally.len() != b.tally.len() {
        return Err(format!(
            "{label}: tally sizes {} vs {}",
            a.tally.len(),
            b.tally.len()
        ));
    }
    let (ta, tb) = (a.tally_total(), b.tally_total());
    if rel_diff(ta, tb) >= 1e-9 {
        return Err(format!("{label}: tally totals {ta:e} vs {tb:e}"));
    }
    for (i, (x, y)) in a.tally.iter().zip(&b.tally).enumerate() {
        let scale = x.abs().max(ta.abs() * 1e-12).max(1e-300);
        if ((x - y) / scale).abs() >= 1e-6 {
            return Err(format!("{label}: tally cell {i}: {x:e} vs {y:e}"));
        }
    }
    Ok(())
}

/// Full bitwise report identity: counters, tally bits, survivors and
/// timestep count (the checkpoint/restart acceptance comparison).
pub fn check_reports_bitwise(label: &str, a: &RunReport, b: &RunReport) -> Result<(), String> {
    if a.counters != b.counters {
        return Err(format!(
            "{label}: counters diverge\n  a: {:?}\n  b: {:?}",
            a.counters, b.counters
        ));
    }
    if a.alive != b.alive {
        return Err(format!("{label}: alive {} vs {}", a.alive, b.alive));
    }
    if a.timesteps != b.timesteps {
        return Err(format!(
            "{label}: timesteps {} vs {}",
            a.timesteps, b.timesteps
        ));
    }
    check_tally_bitwise(label, a, b)
}

/// Serve oracle comparison: the served report must carry the direct
/// run's counters and a byte-identical tally dump (the shared `ix iy
/// value` format of `neutral_cli --dump-tally` and `GET
/// /solves/:id/tallies`, whose `{:e}` values round-trip exactly — so
/// byte equality *is* bit equality).
pub fn check_served_matches(
    nx: usize,
    direct: &RunReport,
    served: &RunReport,
) -> Result<(), String> {
    check_reports_bitwise("served vs direct", direct, served)?;
    let mut a = Vec::new();
    let mut b = Vec::new();
    write_tally_dump(&direct.tally, nx, &mut a).map_err(|e| e.to_string())?;
    write_tally_dump(&served.tally, nx, &mut b).map_err(|e| e.to_string())?;
    if a != b {
        return Err("served tally dump bytes differ from direct dump".to_owned());
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Shrinker.
// ---------------------------------------------------------------------

/// One generator axis the shrinker can minimize along.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShrinkAxis {
    /// Halve the particle count (floor 16).
    Particles,
    /// Remove timesteps one at a time (floor 1).
    Timesteps,
    /// Halve both mesh axes (floor 8 cells each).
    Mesh,
    /// Drop zone rectangles from the end.
    Regions,
    /// Drop materials no region references (keeping ids contiguous).
    Materials,
    /// Halve cross-section table sizes (floor 32 points).
    XsPoints,
    /// Reset strategy knobs to their simplest settings, one at a time.
    Knobs,
    /// Fall back to the sequential History driver.
    Driver,
}

impl ShrinkAxis {
    /// Every axis, in the order [`shrink`] visits them.
    pub const ALL: [ShrinkAxis; 8] = [
        ShrinkAxis::Particles,
        ShrinkAxis::Timesteps,
        ShrinkAxis::Mesh,
        ShrinkAxis::Regions,
        ShrinkAxis::Materials,
        ShrinkAxis::XsPoints,
        ShrinkAxis::Knobs,
        ShrinkAxis::Driver,
    ];

    /// The size-only subset (keeps knob/driver diversity — used when
    /// minimizing corpus entries that must stay representative).
    pub const SIZE: [ShrinkAxis; 4] = [
        ShrinkAxis::Particles,
        ShrinkAxis::Mesh,
        ShrinkAxis::Regions,
        ShrinkAxis::XsPoints,
    ];
}

/// Minimize `case` along every axis while `predicate` keeps holding
/// (for a failure hunt: "still fails"; for corpus minimization: "still
/// passes and still covers"). Deterministic greedy fixpoint, capped at
/// 400 predicate evaluations.
pub fn shrink(case: &FuzzCase, predicate: impl FnMut(&FuzzCase) -> bool) -> FuzzCase {
    shrink_with_axes(case, &ShrinkAxis::ALL, predicate, 400)
}

/// [`shrink`] restricted to `axes` with an explicit evaluation budget.
pub fn shrink_with_axes(
    case: &FuzzCase,
    axes: &[ShrinkAxis],
    mut predicate: impl FnMut(&FuzzCase) -> bool,
    max_evals: usize,
) -> FuzzCase {
    let mut best = case.clone();
    let mut evals = 0;
    loop {
        let mut improved = false;
        for axis in axes {
            loop {
                let mut progressed = false;
                for cand in candidates_for(&best, *axis) {
                    evals += 1;
                    if evals > max_evals {
                        return best;
                    }
                    if predicate(&cand) {
                        best = cand;
                        progressed = true;
                        improved = true;
                        break;
                    }
                }
                if !progressed {
                    break;
                }
            }
        }
        if !improved {
            return best;
        }
    }
}

/// Strictly-smaller candidates along one axis (empty at the floor).
fn candidates_for(case: &FuzzCase, axis: ShrinkAxis) -> Vec<FuzzCase> {
    let mut out = Vec::new();
    let mut push = |f: &dyn Fn(&mut FuzzCase)| {
        let mut cand = case.clone();
        f(&mut cand);
        out.push(cand);
    };
    match axis {
        ShrinkAxis::Particles => {
            if case.params.particles > 16 {
                push(&|c| c.params.particles = (c.params.particles / 2).max(16));
            }
        }
        ShrinkAxis::Timesteps => {
            if case.params.timesteps > 1 {
                push(&|c| c.params.timesteps -= 1);
            }
        }
        ShrinkAxis::Mesh => {
            if case.params.nx > 8 || case.params.ny > 8 {
                push(&|c| {
                    c.params.nx = (c.params.nx / 2).max(8);
                    c.params.ny = (c.params.ny / 2).max(8);
                });
            }
        }
        ShrinkAxis::Regions => {
            if !case.params.regions.is_empty() {
                push(&|c| {
                    c.params.regions.pop();
                });
            }
        }
        ShrinkAxis::Materials => {
            let needed = case
                .params
                .regions
                .iter()
                .map(|(_, _, m)| usize::from(*m) + 1)
                .max()
                .unwrap_or(0)
                .max(1);
            if case.params.material_count() > needed {
                push(&|c| {
                    c.params
                        .materials
                        .retain(|(id, _)| usize::from(*id) < needed);
                });
            }
        }
        ShrinkAxis::XsPoints => {
            let can = case.params.xs_points > 32
                || case.params.materials.iter().any(|(_, s)| s.n_points > 32);
            if can {
                push(&|c| {
                    c.params.xs_points = (c.params.xs_points / 2).max(32);
                    for (_, spec) in &mut c.params.materials {
                        spec.n_points = (spec.n_points / 2).max(32);
                    }
                });
            }
        }
        ShrinkAxis::Knobs => {
            if case.params.sort_policy != SortPolicy::Off {
                push(&|c| c.params.sort_policy = SortPolicy::Off);
            }
            if case.params.regroup_policy != RegroupPolicy::Off {
                push(&|c| c.params.regroup_policy = RegroupPolicy::Off);
            }
            if case.params.lookup_strategy != LookupStrategy::Hinted {
                push(&|c| c.params.lookup_strategy = LookupStrategy::Hinted);
            }
            if case.params.tally_strategy != TallyStrategy::Replicated {
                push(&|c| c.params.tally_strategy = TallyStrategy::Replicated);
            }
            if case.params.collision_model != CollisionModel::Analogue {
                push(&|c| c.params.collision_model = CollisionModel::Analogue);
            }
            if case.params.weight_cutoff != 1.0e-6 {
                push(&|c| c.params.weight_cutoff = 1.0e-6);
            }
            if case.params.backend != Backend::Scalar {
                push(&|c| c.params.backend = Backend::Scalar);
            }
        }
        ShrinkAxis::Driver => {
            if case.driver != DriverKind::History {
                push(&|c| c.driver = DriverKind::History);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic_and_valid() {
        for index in 0..8 {
            let a = generate(20_170_905, index);
            let b = generate(20_170_905, index);
            assert_eq!(a.to_params_text(), b.to_params_text(), "case {index}");
            assert_eq!(a.driver, b.driver);
            // Building twice yields the same fingerprint.
            assert_eq!(
                crate::checkpoint::config_fingerprint(&a.params.build()),
                crate::checkpoint::config_fingerprint(&b.params.build()),
            );
        }
    }

    #[test]
    fn distinct_indices_sample_distinct_cases() {
        let texts: Vec<String> = (0..10).map(|i| generate(1, i).to_params_text()).collect();
        let unique: std::collections::HashSet<&String> = texts.iter().collect();
        assert_eq!(unique.len(), texts.len(), "index collision in generator");
    }

    #[test]
    fn params_text_round_trips() {
        for index in 0..8 {
            let case = generate(7, index);
            let text = case.to_params_text();
            let back = FuzzCase::from_params_text(&case.label, &text)
                .unwrap_or_else(|e| panic!("case {index} failed to re-parse: {e}\n{text}"));
            assert_eq!(back.driver, case.driver, "case {index}");
            assert_eq!(back.to_params_text(), text, "case {index} text unstable");
            assert_eq!(
                crate::checkpoint::config_fingerprint(&back.params.build()),
                crate::checkpoint::config_fingerprint(&case.params.build()),
                "case {index} fingerprint drifted through serialization"
            );
        }
    }

    #[test]
    fn shrink_reaches_axis_floors() {
        let case = generate(3, 0);
        // Tautological predicate: everything shrinks to the floor.
        let shrunk = shrink(&case, |_| true);
        assert_eq!(shrunk.params.particles, 16);
        assert_eq!(shrunk.params.timesteps, 1);
        assert_eq!((shrunk.params.nx, shrunk.params.ny), (8, 8));
        assert!(shrunk.params.regions.is_empty());
        assert_eq!(shrunk.params.material_count(), 1);
        assert_eq!(shrunk.driver, DriverKind::History);
        assert_eq!(shrunk.params.sort_policy, SortPolicy::Off);
        assert_eq!(shrunk.params.backend, Backend::Scalar);
        // And the result is still a valid, replayable case.
        let text = shrunk.to_params_text();
        FuzzCase::from_params_text("shrunk", &text).expect("shrunk case must re-parse");
    }

    #[test]
    fn shrink_respects_predicate() {
        // Start from a case that satisfies the predicate, then shrink
        // while preserving it — the fuzzer's "still fails" workflow.
        let mut case = generate(3, 1);
        case.params.particles = 100;
        case.params.timesteps = 3;
        let shrunk = shrink(&case, |c| {
            c.params.particles >= 40 && c.params.timesteps >= 2
        });
        // 100 → 50 (25 would violate the predicate); 3 → 2 (1 would).
        assert_eq!(shrunk.params.particles, 50);
        assert_eq!(shrunk.params.timesteps, 2);
        // Unconstrained axes still reach their floors.
        assert!(shrunk.params.regions.is_empty());
        assert_eq!((shrunk.params.nx, shrunk.params.ny), (8, 8));
    }
}
