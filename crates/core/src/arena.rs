//! Reusable scratch buffers for the batched (lane-block) hot paths.
//!
//! The event-based and SoA drivers stage per-particle lanes — energies,
//! material ids, table hints, lookup results, candidate distances — in
//! temporary arrays before every batched cross-section lookup and every
//! restructured kernel pass. Allocating those arrays per window/chunk
//! (`Vec::with_capacity` five-plus times per kernel invocation) puts the
//! allocator on the hot path of exactly the loops the paper restructured
//! for vector efficiency (§VI-G).
//!
//! A [`ScratchArena`] owns one copy of every such lane buffer. Each
//! worker (or each breadth-first window, which is pinned to one worker
//! per pass) holds one arena and reuses it across kernel invocations:
//! after the first round every buffer has reached its high-water capacity
//! and the steady-state loop performs no *per-particle lane* allocations
//! (the remaining allocation per kernel pass is one `Vec` of window
//! descriptors, O(windows) pointers, not O(particles) lanes).
//!
//! The arena is plain data — clearing it between uses is the caller's
//! responsibility (see [`ScratchArena::clear`]), and the buffers carry no
//! cross-call meaning. Nothing here affects physics: arenas hold staging
//! lanes only, never particle state.

use neutral_xs::MaterialId;

/// Reusable lane buffers for batched lookups, restructured kernel passes
/// and coherence sorting. One arena per worker or per window; cleared
/// (not shrunk) between uses so capacity is retained.
#[derive(Debug, Default)]
pub struct ScratchArena {
    /// Compacted lane indices (window- or chunk-local).
    pub idx: Vec<u32>,
    /// Lane energies fed to the batched lookup (eV).
    pub energies: Vec<f64>,
    /// Lane material ids fed to the batched lookup.
    pub mats: Vec<MaterialId>,
    /// Lane capture-table hints (updated in place by the lookup).
    pub hints_absorb: Vec<u32>,
    /// Lane scatter-table hints (updated in place by the lookup).
    pub hints_scatter: Vec<u32>,
    /// Lane capture cross-section results (barns).
    pub out_absorb: Vec<f64>,
    /// Lane scatter cross-section results (barns).
    pub out_scatter: Vec<f64>,
    /// General-purpose `f64` lane (candidate distances, gathered micro
    /// cross sections, ...).
    pub f64_a: Vec<f64>,
    /// Second general-purpose `f64` lane.
    pub f64_b: Vec<f64>,
    /// Third general-purpose `f64` lane.
    pub f64_c: Vec<f64>,
    /// General-purpose flag lane (e.g. "nearest facet is an x facet").
    pub flags: Vec<bool>,
    /// `(sort key, lane index)` pairs for the coherence sort stage
    /// ([`crate::config::SortPolicy`]), sorted stably by
    /// [`radix_sort_pairs`] so equal-key lanes keep ascending index
    /// order (the bitwise-identity anchor).
    pub sort_keys: Vec<(u32, u32)>,
    /// Ping-pong buffer of [`radix_sort_pairs`].
    pub sort_tmp: Vec<(u32, u32)>,
    /// Second key/payload buffer for two-stage sorts (the identity-order
    /// flush under regrouping sorts by rank first, then re-sorts the
    /// rank-ordered pairs by tally cell for the clustered flush).
    pub sort_keys2: Vec<(u32, u32)>,
    /// Permutation scratch of the between-timestep regroup stage
    /// ([`crate::particle::regroup_particles`]); also a general `u32`
    /// lane. Consumed by [`apply_permutation_in_place`].
    pub perm: Vec<u32>,
    /// Staging lanes for mixed-material batched lookups
    /// ([`neutral_xs::MaterialSet::lookup_many_with_scratch`]), so
    /// multi-material lane blocks stop allocating per call.
    pub xs: neutral_xs::LaneScratch,
}

impl ScratchArena {
    /// A fresh, empty arena.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Clear every lane, keeping the allocated capacity.
    pub fn clear(&mut self) {
        self.idx.clear();
        self.energies.clear();
        self.mats.clear();
        self.hints_absorb.clear();
        self.hints_scatter.clear();
        self.out_absorb.clear();
        self.out_scatter.clear();
        self.f64_a.clear();
        self.f64_b.clear();
        self.f64_c.clear();
        self.flags.clear();
        self.sort_keys.clear();
        self.sort_tmp.clear();
        self.sort_keys2.clear();
        self.perm.clear();
        self.xs.clear();
    }

    /// Total bytes currently reserved across all lanes — visibility into
    /// the steady-state footprint (capacity, not length).
    #[must_use]
    pub fn footprint_bytes(&self) -> usize {
        self.idx.capacity() * 4
            + self.energies.capacity() * 8
            + self.mats.capacity() * std::mem::size_of::<MaterialId>()
            + self.hints_absorb.capacity() * 4
            + self.hints_scatter.capacity() * 4
            + self.out_absorb.capacity() * 8
            + self.out_scatter.capacity() * 8
            + self.f64_a.capacity() * 8
            + self.f64_b.capacity() * 8
            + self.f64_c.capacity() * 8
            + self.flags.capacity()
            + (self.sort_keys.capacity() + self.sort_tmp.capacity() + self.sort_keys2.capacity())
                * 8
            + self.perm.capacity() * 4
            + self.xs.footprint_bytes()
    }
}

/// Bit marking a `perm` entry as visited during the in-place cycle walk
/// of [`apply_permutation_in_place`]; permutations are therefore limited
/// to `2^31` elements (far beyond any population this repo runs).
const PERM_VISITED: u32 = 1 << 31;

/// Apply a permutation to `data` **in place** by walking its cycles:
/// after the call, `data[k] == old_data[perm[k]]` for every `k`. `perm`
/// must be a permutation of `0..data.len()` with entries below `2^31`;
/// its contents are consumed (used as the visited bitmap of the cycle
/// walk), so the caller reuses the buffer by refilling it. Each element
/// is read once and written once — no `O(n)` element buffer, which is
/// what lets the regroup stage permute the particle arrays with only a
/// reusable `u32` scratch.
pub fn apply_permutation_in_place<T: Copy>(data: &mut [T], perm: &mut [u32]) {
    let n = data.len();
    assert_eq!(n, perm.len(), "permutation length must match data");
    assert!(n < PERM_VISITED as usize, "permutation too large");
    for k in 0..n {
        if perm[k] & PERM_VISITED != 0 {
            continue;
        }
        // Walk the cycle starting at k: each slot takes the element its
        // perm entry names, and the element displaced from k is held in
        // `first` until the cycle closes.
        let first = data[k];
        let mut dst = k;
        loop {
            let src = (perm[dst] & !PERM_VISITED) as usize;
            debug_assert!(src < n, "perm entry out of range");
            perm[dst] |= PERM_VISITED;
            if src == k {
                data[dst] = first;
                break;
            }
            data[dst] = data[src];
            dst = src;
        }
    }
}

/// Stable LSD radix sort of `(key, payload)` pairs by key, using `tmp`
/// as the ping-pong buffer (no allocation once both have capacity).
///
/// Three 8-bit passes cover keys below `2^24` — every mesh the repo
/// ships (the paper's 4000² mesh is 16M cells) and every energy-band
/// key. Larger keys fall back to a comparison sort ordered by
/// `(key, payload)`, which is equally deterministic. Equal keys keep
/// their input order in both paths (payloads are unique insertion
/// indices in the fallback), which is the stability property the
/// bitwise-identity arguments of DESIGN.md §13 rest on.
pub fn radix_sort_pairs(pairs: &mut Vec<(u32, u32)>, tmp: &mut Vec<(u32, u32)>) {
    let n = pairs.len();
    if n < 2 {
        return;
    }
    let max_key = pairs.iter().map(|&(k, _)| k).max().unwrap_or(0);
    if max_key >= 1 << 24 {
        // Payloads are unique, so ordering by (key, payload) is exactly
        // a stable sort by key when payloads are insertion indices.
        pairs.sort_unstable();
        return;
    }
    tmp.clear();
    tmp.resize(n, (0, 0));
    let mut src_is_pairs = true;
    for pass in 0..3u32 {
        let shift = pass * 8;
        if (max_key >> shift) == 0 && pass > 0 {
            break; // remaining bytes are all zero: already sorted by them
        }
        let (src, dst) = if src_is_pairs {
            (&mut *pairs, &mut *tmp)
        } else {
            (&mut *tmp, &mut *pairs)
        };
        let mut counts = [0u32; 256];
        for &(k, _) in src.iter() {
            counts[((k >> shift) & 0xff) as usize] += 1;
        }
        let mut offsets = [0u32; 256];
        let mut acc = 0u32;
        for (o, &c) in offsets.iter_mut().zip(counts.iter()) {
            *o = acc;
            acc += c;
        }
        for &(k, p) in src.iter() {
            let b = ((k >> shift) & 0xff) as usize;
            dst[offsets[b] as usize] = (k, p);
            offsets[b] += 1;
        }
        src_is_pairs = !src_is_pairs;
    }
    if !src_is_pairs {
        std::mem::swap(pairs, tmp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radix_sort_is_stable_and_ordered() {
        // Pseudo-random keys with many duplicates; payload = insertion
        // index, so stability is checkable.
        let mut x = 0x2545_f491u32;
        let mut pairs: Vec<(u32, u32)> = (0..10_000u32)
            .map(|j| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x % 977, j)
            })
            .collect();
        let mut expect = pairs.clone();
        expect.sort_by_key(|&(k, _)| k); // std stable sort
        let mut tmp = Vec::new();
        radix_sort_pairs(&mut pairs, &mut tmp);
        assert_eq!(pairs, expect);
    }

    #[test]
    fn radix_sort_large_keys_fall_back() {
        let mut pairs = vec![(1 << 25, 0u32), (3, 1), (1 << 24, 2), (3, 3)];
        let mut tmp = Vec::new();
        radix_sort_pairs(&mut pairs, &mut tmp);
        assert_eq!(pairs, vec![(3, 1), (3, 3), (1 << 24, 2), (1 << 25, 0)]);
    }

    #[test]
    fn radix_sort_handles_edges() {
        let mut tmp = Vec::new();
        let mut empty: Vec<(u32, u32)> = vec![];
        radix_sort_pairs(&mut empty, &mut tmp);
        assert!(empty.is_empty());
        let mut one = vec![(9, 7)];
        radix_sort_pairs(&mut one, &mut tmp);
        assert_eq!(one, vec![(9, 7)]);
    }

    #[test]
    fn permutation_applies_in_place() {
        // Random permutations of random sizes, checked against the
        // gather definition new[k] = old[perm[k]].
        let mut x = 0x1234_5678u64;
        let mut rand = move |m: usize| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((x >> 33) as usize) % m
        };
        for n in [0usize, 1, 2, 3, 17, 256, 1000] {
            let mut perm: Vec<u32> = (0..n as u32).collect();
            for j in (1..n).rev() {
                perm.swap(j, rand(j + 1));
            }
            let data: Vec<u64> = (0..n as u64).map(|v| v * 31 + 7).collect();
            let expect: Vec<u64> = perm.iter().map(|&p| data[p as usize]).collect();
            let mut got = data.clone();
            let mut perm_scratch = perm.clone();
            apply_permutation_in_place(&mut got, &mut perm_scratch);
            assert_eq!(got, expect, "n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "length must match")]
    fn permutation_rejects_length_mismatch() {
        let mut data = [1, 2, 3];
        let mut perm = vec![0u32, 1];
        apply_permutation_in_place(&mut data, &mut perm);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut a = ScratchArena::new();
        a.energies.extend((0..1000).map(|i| i as f64));
        a.idx.extend(0..1000u32);
        let cap_e = a.energies.capacity();
        let cap_i = a.idx.capacity();
        a.clear();
        assert!(a.energies.is_empty() && a.idx.is_empty());
        assert_eq!(a.energies.capacity(), cap_e);
        assert_eq!(a.idx.capacity(), cap_i);
    }

    #[test]
    fn footprint_tracks_capacity() {
        let mut a = ScratchArena::new();
        assert_eq!(a.footprint_bytes(), 0);
        a.out_absorb.reserve(128);
        assert!(a.footprint_bytes() >= 128 * 8);
    }
}
