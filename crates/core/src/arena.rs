//! Reusable scratch buffers for the batched (lane-block) hot paths.
//!
//! The event-based and SoA drivers stage per-particle lanes — energies,
//! material ids, table hints, lookup results, candidate distances — in
//! temporary arrays before every batched cross-section lookup and every
//! restructured kernel pass. Allocating those arrays per window/chunk
//! (`Vec::with_capacity` five-plus times per kernel invocation) puts the
//! allocator on the hot path of exactly the loops the paper restructured
//! for vector efficiency (§VI-G).
//!
//! A [`ScratchArena`] owns one copy of every such lane buffer. Each
//! worker (or each breadth-first window, which is pinned to one worker
//! per pass) holds one arena and reuses it across kernel invocations:
//! after the first round every buffer has reached its high-water capacity
//! and the steady-state loop performs no *per-particle lane* allocations
//! (the remaining allocation per kernel pass is one `Vec` of window
//! descriptors, O(windows) pointers, not O(particles) lanes).
//!
//! The arena is plain data — clearing it between uses is the caller's
//! responsibility (see [`ScratchArena::clear`]), and the buffers carry no
//! cross-call meaning. Nothing here affects physics: arenas hold staging
//! lanes only, never particle state.

use neutral_xs::MaterialId;

/// Reusable lane buffers for batched lookups, restructured kernel passes
/// and coherence sorting. One arena per worker or per window; cleared
/// (not shrunk) between uses so capacity is retained.
#[derive(Debug, Default)]
pub struct ScratchArena {
    /// Compacted lane indices (window- or chunk-local).
    pub idx: Vec<u32>,
    /// Lane energies fed to the batched lookup (eV).
    pub energies: Vec<f64>,
    /// Lane material ids fed to the batched lookup.
    pub mats: Vec<MaterialId>,
    /// Lane capture-table hints (updated in place by the lookup).
    pub hints_absorb: Vec<u32>,
    /// Lane scatter-table hints (updated in place by the lookup).
    pub hints_scatter: Vec<u32>,
    /// Lane capture cross-section results (barns).
    pub out_absorb: Vec<f64>,
    /// Lane scatter cross-section results (barns).
    pub out_scatter: Vec<f64>,
    /// General-purpose `f64` lane (candidate distances, gathered micro
    /// cross sections, ...).
    pub f64_a: Vec<f64>,
    /// Second general-purpose `f64` lane.
    pub f64_b: Vec<f64>,
    /// Third general-purpose `f64` lane.
    pub f64_c: Vec<f64>,
    /// General-purpose flag lane (e.g. "nearest facet is an x facet").
    pub flags: Vec<bool>,
}

impl ScratchArena {
    /// A fresh, empty arena.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Clear every lane, keeping the allocated capacity.
    pub fn clear(&mut self) {
        self.idx.clear();
        self.energies.clear();
        self.mats.clear();
        self.hints_absorb.clear();
        self.hints_scatter.clear();
        self.out_absorb.clear();
        self.out_scatter.clear();
        self.f64_a.clear();
        self.f64_b.clear();
        self.f64_c.clear();
        self.flags.clear();
    }

    /// Total bytes currently reserved across all lanes — visibility into
    /// the steady-state footprint (capacity, not length).
    #[must_use]
    pub fn footprint_bytes(&self) -> usize {
        self.idx.capacity() * 4
            + self.energies.capacity() * 8
            + self.mats.capacity() * std::mem::size_of::<MaterialId>()
            + self.hints_absorb.capacity() * 4
            + self.hints_scatter.capacity() * 4
            + self.out_absorb.capacity() * 8
            + self.out_scatter.capacity() * 8
            + self.f64_a.capacity() * 8
            + self.f64_b.capacity() * 8
            + self.f64_c.capacity() * 8
            + self.flags.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clear_keeps_capacity() {
        let mut a = ScratchArena::new();
        a.energies.extend((0..1000).map(|i| i as f64));
        a.idx.extend(0..1000u32);
        let cap_e = a.energies.capacity();
        let cap_i = a.idx.capacity();
        a.clear();
        assert!(a.energies.is_empty() && a.idx.is_empty());
        assert_eq!(a.energies.capacity(), cap_e);
        assert_eq!(a.idx.capacity(), cap_i);
    }

    #[test]
    fn footprint_tracks_capacity() {
        let mut a = ScratchArena::new();
        assert_eq!(a.footprint_bytes(), 0);
        a.out_absorb.reserve(128);
        assert!(a.footprint_bytes() >= 128 * 8);
    }
}
