//! Solve registry: multiplexed, cancellable solves with a
//! content-addressed result cache and request coalescing.
//!
//! This is the serving core behind `neutral_serve` (DESIGN.md §16), kept
//! free of any HTTP surface so it is testable in-process. A fixed pool
//! of **runner threads** drains a queue of solve entries, advancing each
//! leased solve by exactly one timestep chunk (a [`SolveCore::step`])
//! before handing it back — so many concurrent solves interleave over
//! one shared worker pool, and cancellation/checkpointing happen at
//! census-boundary chunk edges, never mid-kernel.
//!
//! The cache story rides on the bitwise-determinism invariant: merged
//! tallies and counters depend only on the problem configuration (never
//! on worker count or driver schedule), so [`config_fingerprint`] is a
//! sound content address for finished results. Identical concurrent
//! submissions **coalesce** onto one in-flight entry; an identical
//! submission after completion is a **cache hit** answered without
//! re-running transport. Both are observable through [`Admission`] and
//! [`RegistryStats`], which the end-to-end tests use as solve-count
//! instrumentation.
//!
//! Checkpoint spill is optional per solve ([`SubmitRequest::checkpoint`])
//! and the registry enforces that no two *live* solves share one
//! checkpoint file — the write-temp/rename protocol keeps concurrent
//! writers from corrupting each other's bytes, but interleaved saves
//! from two different solves would still leave the file's *contents*
//! flapping between two configurations.

use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::checkpoint::{config_fingerprint, Checkpoint, CheckpointError, CheckpointStore};
use crate::config::{Problem, TallyStrategy};
use crate::shard::{ShardConfig, ShardError, ShardFaultPlan, ShardStats, ShardedSolve};
use crate::sim::{Execution, RunOptions, RunReport, Simulation, SolveCore};

/// Configuration for a [`Registry`].
#[derive(Debug, Clone)]
pub struct RegistryConfig {
    /// Number of runner threads draining the solve queue (= how many
    /// solves advance concurrently).
    pub runners: usize,
    /// Artificial pause after each timestep chunk. Test/demo throttle:
    /// it widens the window in which progress polling and mid-solve
    /// cancellation are observable on tiny problems.
    pub chunk_delay: Option<Duration>,
    /// Deterministic fault injection (testing, mirroring the checkpoint
    /// layer's [`crate::checkpoint::FaultPlan`] idiom): panic inside the
    /// leased chunk whose solve has completed exactly this many
    /// timesteps. Exercises the runner's unwind protection — the solve
    /// must end `Failed`, its fingerprint must be released, and the
    /// runner thread must survive to serve the next entry.
    pub fault_panic_on_step: Option<usize>,
    /// Deterministic fault injection, the hang variant of
    /// [`fault_panic_on_step`](Self::fault_panic_on_step): the leased
    /// chunk whose solve has completed exactly this many timesteps
    /// stalls instead of advancing. Only meaningful together with
    /// [`step_deadline`](Self::step_deadline) — without a deadline the
    /// injected hang blocks its runner forever, which is exactly the
    /// failure mode the deadline exists to contain.
    pub fault_hang_on_step: Option<usize>,
    /// Wall-clock budget for one timestep chunk. When set, each chunk
    /// runs on a supervised thread; a chunk that exceeds the budget
    /// fails its solve with a named deadline cause (the stuck thread is
    /// cancelled and abandoned) while the runner moves on to the next
    /// queued entry. `None` (the default) trusts chunks to finish.
    pub step_deadline: Option<Duration>,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        Self {
            runners: 2,
            chunk_delay: None,
            fault_panic_on_step: None,
            fault_hang_on_step: None,
            step_deadline: None,
        }
    }
}

/// A solve submission: the fully-validated problem plus run options.
///
/// Thread counts and driver schedule belong to `options` and are chosen
/// by the service, not the client; with a deterministic tally strategy
/// they do not affect results, which is what makes the fingerprint cache
/// sound.
#[derive(Debug)]
pub struct SubmitRequest {
    /// The problem to solve (already validated by the params layer).
    pub problem: Problem,
    /// Execution options for every chunk of this solve.
    pub options: RunOptions,
    /// Optional checkpoint spill target.
    pub checkpoint_file: Option<PathBuf>,
    /// Save a checkpoint every this many completed timesteps (only
    /// meaningful with `checkpoint_file`; clamped to ≥ 1).
    pub checkpoint_every: usize,
    /// Shard count for fault-isolated sharded execution (DESIGN.md
    /// §18); 1 = ordinary unsharded chunks. Purely an execution
    /// concern — results are bitwise identical for any value, so the
    /// fingerprint cache stays sound across shard counts.
    pub shards: usize,
    /// Deterministic shard-fault schedule (testing; empty = no faults).
    pub shard_fault: ShardFaultPlan,
}

impl SubmitRequest {
    /// A submission with no checkpoint spill.
    #[must_use]
    pub fn new(problem: Problem, options: RunOptions) -> Self {
        Self {
            problem,
            options,
            checkpoint_file: None,
            checkpoint_every: 1,
            shards: 1,
            shard_fault: ShardFaultPlan::default(),
        }
    }

    /// Enable checkpoint spill to `path` every `every` timesteps.
    #[must_use]
    pub fn checkpoint(mut self, path: impl Into<PathBuf>, every: usize) -> Self {
        self.checkpoint_file = Some(path.into());
        self.checkpoint_every = every.max(1);
        self
    }

    /// Split each timestep chunk into `shards` fault-isolated shards,
    /// optionally with an injected fault schedule.
    #[must_use]
    pub fn sharded(mut self, shards: usize, fault: ShardFaultPlan) -> Self {
        self.shards = shards.max(1);
        self.shard_fault = fault;
        self
    }
}

/// How a submission was admitted (the solve-count instrumentation the
/// coalescing/caching tests assert on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// A new underlying solve was created and queued.
    Fresh,
    /// Attached to an identical solve already queued or running.
    Coalesced,
    /// Answered by an identical solve that already completed.
    CacheHit,
}

impl Admission {
    /// Stable lowercase name (wire format for the HTTP layer).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Admission::Fresh => "fresh",
            Admission::Coalesced => "coalesced",
            Admission::CacheHit => "cache_hit",
        }
    }
}

/// Successful submission: the entry id to poll plus how it was admitted.
///
/// Coalesced and cache-hit submissions return the *existing* entry's id,
/// so every client polling the same configuration shares one entry (and
/// a cancel on that id cancels it for all of them — documented service
/// semantics, not an accident).
#[derive(Debug, Clone, Copy)]
pub struct SubmitReceipt {
    /// Entry id for status polling and result fetch.
    pub id: u64,
    /// Whether this created, joined, or short-circuited a solve.
    pub admission: Admission,
}

/// Why a submission was rejected.
#[derive(Debug)]
pub enum SubmitError {
    /// Another live (queued/running) solve already spills to this
    /// checkpoint file.
    CheckpointFileBusy {
        /// The contested path.
        path: PathBuf,
        /// Entry id of the solve holding it.
        holder: u64,
    },
    /// The registry is shutting down and accepts no new work.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::CheckpointFileBusy { path, holder } => write!(
                f,
                "checkpoint file {} is in use by live solve {holder}",
                path.display()
            ),
            SubmitError::ShuttingDown => write!(f, "registry is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Lifecycle state of a solve entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveState {
    /// Waiting for a runner (or between chunks, or still being built).
    Queued,
    /// A runner is executing a timestep chunk right now.
    Running,
    /// All timesteps ran; the result is cached.
    Done,
    /// Cancelled before completion; no result.
    Cancelled,
    /// The solve aborted (e.g. checkpoint spill I/O error).
    Failed(String),
}

impl SolveState {
    /// Stable lowercase name (wire format for the HTTP layer).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            SolveState::Queued => "queued",
            SolveState::Running => "running",
            SolveState::Done => "done",
            SolveState::Cancelled => "cancelled",
            SolveState::Failed(_) => "failed",
        }
    }

    /// Whether the entry will never change state again.
    #[must_use]
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            SolveState::Done | SolveState::Cancelled | SolveState::Failed(_)
        )
    }
}

/// A point-in-time snapshot of one solve entry.
#[derive(Debug, Clone)]
pub struct SolveStatus {
    /// Entry id.
    pub id: u64,
    /// Content address of the configuration ([`config_fingerprint`]).
    pub fingerprint: u64,
    /// Lifecycle state.
    pub state: SolveState,
    /// Timesteps completed so far.
    pub steps_done: usize,
    /// Total timesteps of the solve.
    pub n_timesteps: usize,
    /// Mesh cells along x — lets result consumers render the flat tally
    /// as `(ix, iy)` without re-deriving the problem.
    pub mesh_nx: usize,
}

/// Monotonic registry counters (solve-count instrumentation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Total submissions received.
    pub submitted: u64,
    /// Submissions that attached to an in-flight identical solve.
    pub coalesced: u64,
    /// Submissions answered from the finished-result cache.
    pub cache_hits: u64,
    /// Underlying solves actually created (= fresh admissions).
    pub solves_started: u64,
    /// Timestep chunks executed across all solves.
    pub chunks_run: u64,
    /// Solves that ran to completion.
    pub completed: u64,
    /// Solves cancelled before completion.
    pub cancelled: u64,
    /// Solves that aborted with an error.
    pub failed: u64,
    /// Failed shard attempts that were retried (sharded solves).
    pub shard_retries: u64,
    /// `(step, shard)` units that succeeded only after requeueing
    /// (sharded solves).
    pub shard_requeues: u64,
}

/// The per-solve stepping engine: an ordinary whole-population
/// [`SolveCore`], or a [`ShardedSolve`] when the submission asked for
/// fault-isolated shards. Both advance one census-boundary chunk per
/// lease and expose the same checkpoint/finish surface; the sharded
/// variant's step can also *fail* (a quarantined shard), which the
/// runner turns into a named `Failed` state.
enum TaskCore {
    Single(Box<SolveCore>),
    Sharded(Box<ShardedSolve>),
}

impl TaskCore {
    fn step(&mut self, sim: &Arc<Simulation>) -> Result<(), ShardError> {
        match self {
            TaskCore::Single(core) => {
                core.step(sim);
                Ok(())
            }
            TaskCore::Sharded(solve) => solve.step(sim).map(|_| ()),
        }
    }

    fn steps_done(&self) -> usize {
        match self {
            TaskCore::Single(core) => core.steps_done(),
            TaskCore::Sharded(solve) => solve.steps_done(),
        }
    }

    fn is_done(&self) -> bool {
        match self {
            TaskCore::Single(core) => core.is_done(),
            TaskCore::Sharded(solve) => solve.is_done(),
        }
    }

    fn checkpoint(&self) -> Checkpoint {
        match self {
            TaskCore::Single(core) => core.checkpoint(),
            TaskCore::Sharded(solve) => solve.checkpoint(),
        }
    }

    fn finish(self) -> RunReport {
        match self {
            TaskCore::Single(core) => core.finish(),
            TaskCore::Sharded(solve) => solve.finish(),
        }
    }

    fn shard_stats(&self) -> Option<ShardStats> {
        match self {
            TaskCore::Single(_) => None,
            TaskCore::Sharded(solve) => Some(solve.stats()),
        }
    }
}

struct SolveTask {
    sim: Arc<Simulation>,
    core: TaskCore,
    store: Option<CheckpointStore>,
    checkpoint_every: usize,
    /// Shard-stat snapshot after the previous chunk, so each chunk
    /// contributes only its delta to the registry-wide counters.
    shard_stats_seen: ShardStats,
}

struct Entry {
    fingerprint: u64,
    state: SolveState,
    /// Present while paused between chunks (and before first enqueue);
    /// leased out (`None`) while a runner executes a chunk.
    task: Option<Box<SolveTask>>,
    steps_done: usize,
    n_timesteps: usize,
    mesh_nx: usize,
    cancel_requested: bool,
    result: Option<Arc<RunReport>>,
    checkpoint_file: Option<PathBuf>,
}

struct State {
    next_id: u64,
    entries: HashMap<u64, Entry>,
    /// Content address → entry id, for live entries (coalescing) and
    /// done entries (result cache). Removed on cancel/failure.
    by_fingerprint: HashMap<u64, u64>,
    /// Checkpoint files held by live entries (exclusivity guard).
    live_checkpoint_files: HashMap<PathBuf, u64>,
    queue: VecDeque<u64>,
    stats: RegistryStats,
    shutdown: bool,
}

struct Inner {
    state: Mutex<State>,
    cvar: Condvar,
    cfg: RegistryConfig,
}

impl Inner {
    /// Move `entry` to a terminal state, releasing its fingerprint
    /// mapping (unless Done — finished results stay cached) and its
    /// checkpoint-file reservation.
    fn finalize(st: &mut State, id: u64, state: SolveState) {
        let entry = st.entries.get_mut(&id).expect("finalize of unknown entry");
        entry.task = None;
        match &state {
            SolveState::Done => st.stats.completed += 1,
            SolveState::Cancelled => st.stats.cancelled += 1,
            SolveState::Failed(_) => st.stats.failed += 1,
            _ => unreachable!("finalize with non-terminal state"),
        }
        if !matches!(state, SolveState::Done)
            && st.by_fingerprint.get(&entry.fingerprint) == Some(&id)
        {
            st.by_fingerprint.remove(&entry.fingerprint);
        }
        if let Some(path) = &entry.checkpoint_file {
            if st.live_checkpoint_files.get(path) == Some(&id) {
                let path = path.clone();
                st.live_checkpoint_files.remove(&path);
            }
        }
        entry.state = state;
    }
}

/// The multiplexing solve service core. See the module docs.
pub struct Registry {
    inner: Arc<Inner>,
    runners: Vec<JoinHandle<()>>,
}

impl Registry {
    /// Start a registry with `cfg.runners` runner threads.
    #[must_use]
    pub fn new(cfg: RegistryConfig) -> Self {
        let runners = cfg.runners.max(1);
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                next_id: 1,
                entries: HashMap::new(),
                by_fingerprint: HashMap::new(),
                live_checkpoint_files: HashMap::new(),
                queue: VecDeque::new(),
                stats: RegistryStats::default(),
                shutdown: false,
            }),
            cvar: Condvar::new(),
            cfg,
        });
        let handles = (0..runners)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || runner_loop(&inner))
            })
            .collect();
        Self {
            inner,
            runners: handles,
        }
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.inner.state.lock().expect("registry state poisoned")
    }

    /// Submit a solve. Identical configurations coalesce or hit the
    /// cache (see [`Admission`]); otherwise the simulation and initial
    /// population are built *outside* the registry lock and the new
    /// entry is queued.
    pub fn submit(&self, req: SubmitRequest) -> Result<SubmitReceipt, SubmitError> {
        let mut req = req;
        if req.shards > 1 {
            // Sharded execution needs the deterministic merge; silently
            // upgrade the atomic default like `neutral_serve` does for
            // multi-threaded chunks. Applied *before* fingerprinting so
            // the cache address matches what actually runs.
            if req.problem.transport.tally_strategy == TallyStrategy::Atomic {
                req.problem.transport.tally_strategy = TallyStrategy::Replicated;
            }
            if let Execution::ScheduledPrivatized { threads, schedule } = req.options.execution {
                req.options.execution = Execution::Scheduled { threads, schedule };
            }
        }
        let fingerprint = config_fingerprint(&req.problem);
        let n_timesteps = req.problem.n_timesteps;
        let mesh_nx = req.problem.mesh.nx();
        let id = {
            let mut st = self.lock();
            if st.shutdown {
                return Err(SubmitError::ShuttingDown);
            }
            st.stats.submitted += 1;
            if let Some(&existing) = st.by_fingerprint.get(&fingerprint) {
                let admission = match st.entries[&existing].state {
                    SolveState::Done => {
                        st.stats.cache_hits += 1;
                        Admission::CacheHit
                    }
                    _ => {
                        st.stats.coalesced += 1;
                        Admission::Coalesced
                    }
                };
                return Ok(SubmitReceipt {
                    id: existing,
                    admission,
                });
            }
            if let Some(path) = &req.checkpoint_file {
                if let Some(&holder) = st.live_checkpoint_files.get(path) {
                    return Err(SubmitError::CheckpointFileBusy {
                        path: path.clone(),
                        holder,
                    });
                }
            }
            // Reserve the id, fingerprint and checkpoint file while the
            // (possibly expensive) population spawn happens unlocked:
            // concurrent identical submissions must coalesce onto this
            // entry, so the placeholder goes in first. It is Queued but
            // *not* in the run queue until the task is installed.
            let id = st.next_id;
            st.next_id += 1;
            st.stats.solves_started += 1;
            st.by_fingerprint.insert(fingerprint, id);
            if let Some(path) = &req.checkpoint_file {
                st.live_checkpoint_files.insert(path.clone(), id);
            }
            st.entries.insert(
                id,
                Entry {
                    fingerprint,
                    state: SolveState::Queued,
                    task: None,
                    steps_done: 0,
                    n_timesteps,
                    mesh_nx,
                    cancel_requested: false,
                    result: None,
                    checkpoint_file: req.checkpoint_file.clone(),
                },
            );
            id
        };

        // Build outside the lock: particle spawn + lookup-structure prep.
        let sim = Arc::new(Simulation::new(req.problem));
        let core = if req.shards > 1 {
            let mut config = ShardConfig::new(req.shards);
            config.fault_plan = req.shard_fault.clone();
            // Shard retries reload from `<checkpoint_file>.shard<k>`
            // stores when the solve spills at all — no collision with
            // the solve-level file itself.
            config.checkpoint_base = req.checkpoint_file.clone();
            TaskCore::Sharded(Box::new(ShardedSolve::new(&sim, req.options, config)))
        } else {
            TaskCore::Single(Box::new(SolveCore::new(&sim, req.options)))
        };
        let task = Box::new(SolveTask {
            sim,
            core,
            store: req.checkpoint_file.as_ref().map(CheckpointStore::new),
            checkpoint_every: req.checkpoint_every.max(1),
            shard_stats_seen: ShardStats::default(),
        });

        let mut st = self.lock();
        let entry = st.entries.get_mut(&id).expect("placeholder entry vanished");
        if entry.cancel_requested {
            Inner::finalize(&mut st, id, SolveState::Cancelled);
        } else {
            entry.task = Some(task);
            st.queue.push_back(id);
        }
        self.inner.cvar.notify_all();
        Ok(SubmitReceipt {
            id,
            admission: Admission::Fresh,
        })
    }

    /// Snapshot the status of entry `id`.
    #[must_use]
    pub fn status(&self, id: u64) -> Option<SolveStatus> {
        let st = self.lock();
        st.entries.get(&id).map(|e| SolveStatus {
            id,
            fingerprint: e.fingerprint,
            state: e.state.clone(),
            steps_done: e.steps_done,
            n_timesteps: e.n_timesteps,
            mesh_nx: e.mesh_nx,
        })
    }

    /// The finished report of entry `id` (None unless `Done`).
    #[must_use]
    pub fn result(&self, id: u64) -> Option<Arc<RunReport>> {
        let st = self.lock();
        st.entries.get(&id).and_then(|e| e.result.clone())
    }

    /// Request cancellation of entry `id`. Queued entries cancel
    /// immediately; running entries cancel at their next chunk boundary.
    /// Returns `false` for unknown or already-terminal entries.
    pub fn cancel(&self, id: u64) -> bool {
        let mut st = self.lock();
        let Some(entry) = st.entries.get_mut(&id) else {
            return false;
        };
        if entry.state.is_terminal() {
            return false;
        }
        entry.cancel_requested = true;
        if entry.state == SolveState::Queued && entry.task.is_some() {
            Inner::finalize(&mut st, id, SolveState::Cancelled);
        }
        self.inner.cvar.notify_all();
        true
    }

    /// Block until entry `id` reaches a terminal state; returns its
    /// final status (None for an unknown id).
    #[must_use]
    pub fn wait(&self, id: u64) -> Option<SolveStatus> {
        let mut st = self.lock();
        loop {
            let state = st.entries.get(&id)?.state.clone();
            if state.is_terminal() {
                let e = &st.entries[&id];
                return Some(SolveStatus {
                    id,
                    fingerprint: e.fingerprint,
                    state,
                    steps_done: e.steps_done,
                    n_timesteps: e.n_timesteps,
                    mesh_nx: e.mesh_nx,
                });
            }
            st = self.inner.cvar.wait(st).expect("registry state poisoned");
        }
    }

    /// Current counter snapshot.
    #[must_use]
    pub fn stats(&self) -> RegistryStats {
        self.lock().stats
    }

    /// Stop accepting work, let in-flight chunks finish, and join the
    /// runner threads. Idempotent; also called on drop.
    pub fn shutdown(&mut self) {
        {
            let mut st = self.lock();
            st.shutdown = true;
        }
        self.inner.cvar.notify_all();
        for handle in self.runners.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Registry {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// What one leased timestep chunk did to its solve.
enum ChunkVerdict {
    /// The chunk ran; the solve advanced one timestep (and possibly
    /// failed to spill its checkpoint).
    Advanced {
        done: bool,
        spill: Option<CheckpointError>,
    },
    /// A sharded chunk exhausted a shard's retry budget (or its shard
    /// checkpoints went bad); the solve cannot make progress.
    ShardFailed(ShardError),
    /// The chunk panicked mid-transport.
    Panicked(String),
    /// The chunk blew through the configured step deadline and was
    /// abandoned mid-flight.
    DeadlineExceeded(Duration),
}

/// Execute one timestep chunk of `task`, unwind-protected. `cancel` is
/// observed by the injected hang fault so a deadline supervisor can
/// release the stuck thread.
fn run_chunk(cfg: &RegistryConfig, task: &mut SolveTask, cancel: &AtomicBool) -> ChunkVerdict {
    let chunk = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let step = task.core.steps_done();
        if cfg.fault_panic_on_step == Some(step) {
            panic!("injected runner fault at timestep {step}");
        }
        if cfg.fault_hang_on_step == Some(step) {
            while !cancel.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(2));
            }
            // Cancelled by the deadline supervisor: the verdict is
            // never observed, the thread just needs to exit.
            return ChunkVerdict::Panicked("injected hang cancelled".to_owned());
        }
        if let Err(e) = task.core.step(&task.sim) {
            return ChunkVerdict::ShardFailed(e);
        }
        let done = task.core.is_done();
        let spill = match &task.store {
            Some(store) if done || task.core.steps_done().is_multiple_of(task.checkpoint_every) => {
                store.save(&task.core.checkpoint()).err()
            }
            _ => None,
        };
        ChunkVerdict::Advanced { done, spill }
    }));
    match chunk {
        Ok(verdict) => verdict,
        Err(payload) => ChunkVerdict::Panicked(panic_text(payload.as_ref())),
    }
}

fn runner_loop(inner: &Inner) {
    loop {
        // Lease the next runnable entry's task.
        let (id, task) = {
            let mut st = inner.state.lock().expect("registry state poisoned");
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(id) = st.queue.pop_front() {
                    let entry = st.entries.get_mut(&id).expect("queued entry vanished");
                    if entry.state.is_terminal() {
                        continue; // cancelled while queued
                    }
                    entry.state = SolveState::Running;
                    let task = entry.task.take().expect("queued entry has no task");
                    break (id, task);
                }
                st = inner.cvar.wait(st).expect("registry state poisoned");
            }
        };

        // One timestep chunk, outside the lock: other runners keep
        // draining the queue while this solve advances. The chunk is
        // unwind-protected — a panic in transport (or injected via
        // `fault_panic_on_step`) must not take the runner thread, and
        // every solve queued behind it, down with the one bad solve.
        // With a `step_deadline`, the chunk additionally runs on a
        // supervised thread so a wedged chunk can be timed out; on
        // timeout the task is lost with its thread (`None` below) and
        // the solve fails with a named deadline cause.
        let (verdict, mut task) = match inner.cfg.step_deadline {
            None => {
                let mut task = task;
                let verdict = run_chunk(&inner.cfg, &mut task, &AtomicBool::new(false));
                (verdict, Some(task))
            }
            Some(deadline) => {
                let cancel = Arc::new(AtomicBool::new(false));
                let (tx, rx) = mpsc::channel();
                let worker = {
                    let cfg = inner.cfg.clone();
                    let cancel = Arc::clone(&cancel);
                    let mut task = task;
                    std::thread::spawn(move || {
                        let verdict = run_chunk(&cfg, &mut task, &cancel);
                        let _ = tx.send((verdict, task));
                    })
                };
                match rx.recv_timeout(deadline) {
                    Ok((verdict, task)) => {
                        let _ = worker.join();
                        (verdict, Some(task))
                    }
                    Err(_) => {
                        // Cancel and abandon the stuck thread; it holds
                        // the (now unreachable) task, so the solve can
                        // only fail.
                        cancel.store(true, Ordering::Relaxed);
                        (ChunkVerdict::DeadlineExceeded(deadline), None)
                    }
                }
            }
        };
        if let Some(delay) = inner.cfg.chunk_delay {
            std::thread::sleep(delay);
        }

        // Account shard retry/requeue work done by this chunk (delta
        // against the previous chunk's snapshot), even when the chunk
        // ultimately failed.
        let shard_delta = task.as_mut().and_then(|task| {
            task.core.shard_stats().map(|now| {
                let seen = task.shard_stats_seen;
                task.shard_stats_seen = now;
                (now.retries - seen.retries, now.requeues - seen.requeues)
            })
        });

        // Hand the lease back and decide what happens next.
        let mut st = inner.state.lock().expect("registry state poisoned");
        st.stats.chunks_run += 1;
        if let Some((retries, requeues)) = shard_delta {
            st.stats.shard_retries += retries;
            st.stats.shard_requeues += requeues;
        }
        let entry = st.entries.get_mut(&id).expect("running entry vanished");
        if let Some(task) = &task {
            entry.steps_done = task.core.steps_done();
        }
        match verdict {
            ChunkVerdict::Panicked(detail) => {
                // The task is dropped (or marooned on its abandoned
                // thread) in an unknown mid-chunk state; the fingerprint
                // is released so an identical resubmission re-runs fresh
                // instead of cache-hitting a corpse.
                Inner::finalize(
                    &mut st,
                    id,
                    SolveState::Failed(format!("runner panicked mid-chunk: {detail}")),
                );
            }
            ChunkVerdict::ShardFailed(err) => {
                Inner::finalize(
                    &mut st,
                    id,
                    SolveState::Failed(format!("sharded solve failed: {err}")),
                );
            }
            ChunkVerdict::DeadlineExceeded(deadline) => {
                Inner::finalize(
                    &mut st,
                    id,
                    SolveState::Failed(format!(
                        "step deadline exceeded: chunk still running after {} ms",
                        deadline.as_millis()
                    )),
                );
            }
            ChunkVerdict::Advanced {
                spill: Some(err), ..
            } => {
                Inner::finalize(
                    &mut st,
                    id,
                    SolveState::Failed(format!("checkpoint spill: {err}")),
                );
            }
            ChunkVerdict::Advanced { done, spill: None } => {
                let task = task.take().expect("advanced chunk returned its task");
                if entry.cancel_requested {
                    Inner::finalize(&mut st, id, SolveState::Cancelled);
                } else if done {
                    let report = Arc::new(task.core.finish());
                    let entry = st.entries.get_mut(&id).expect("running entry vanished");
                    entry.result = Some(report);
                    Inner::finalize(&mut st, id, SolveState::Done);
                } else {
                    entry.task = Some(task);
                    entry.state = SolveState::Queued;
                    st.queue.push_back(id);
                }
            }
        }
        inner.cvar.notify_all();
    }
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_owned()
    }
}

/// The shared tally dump format: one `ix iy value` line per non-zero
/// cell, values in `{:e}` form (Rust's float formatting round-trips
/// exactly, so textual equality is bitwise equality — `neutral_cli
/// --dump-tally` and `GET /solves/:id/tallies` produce byte-identical
/// dumps for identical solves, which CI checks with `cmp` and the fuzz
/// suite's serve oracle checks in-process).
pub fn write_tally_dump(
    tally: &[f64],
    nx: usize,
    out: &mut impl std::io::Write,
) -> std::io::Result<()> {
    for (i, &v) in tally.iter().enumerate() {
        if v != 0.0 {
            writeln!(out, "{} {} {v:e}", i % nx, i / nx)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ProblemScale, TestCase};

    fn tiny_problem(seed: u64, steps: usize) -> Problem {
        let mut p = TestCase::Csp.build(ProblemScale::tiny(), seed);
        p.n_timesteps = steps;
        p
    }

    fn throttled(runners: usize) -> Registry {
        Registry::new(RegistryConfig {
            runners,
            chunk_delay: Some(Duration::from_millis(30)),
            ..Default::default()
        })
    }

    #[test]
    fn served_result_matches_direct_run() {
        let registry = Registry::new(RegistryConfig::default());
        let receipt = registry
            .submit(SubmitRequest::new(
                tiny_problem(7, 3),
                RunOptions::default(),
            ))
            .unwrap();
        assert_eq!(receipt.admission, Admission::Fresh);
        let status = registry.wait(receipt.id).unwrap();
        assert_eq!(status.state, SolveState::Done);
        assert_eq!(status.steps_done, 3);
        let served = registry.result(receipt.id).unwrap();
        let direct = Simulation::new(tiny_problem(7, 3)).run(RunOptions::default());
        assert_eq!(served.tally, direct.tally);
        assert_eq!(served.counters, direct.counters);
        assert_eq!(served.timesteps, direct.timesteps);
    }

    #[test]
    fn identical_resubmit_is_cache_hit() {
        let registry = Registry::new(RegistryConfig::default());
        let first = registry
            .submit(SubmitRequest::new(
                tiny_problem(11, 2),
                RunOptions::default(),
            ))
            .unwrap();
        registry.wait(first.id).unwrap();
        let second = registry
            .submit(SubmitRequest::new(
                tiny_problem(11, 2),
                RunOptions::default(),
            ))
            .unwrap();
        assert_eq!(second.admission, Admission::CacheHit);
        assert_eq!(second.id, first.id);
        let stats = registry.stats();
        assert_eq!(stats.solves_started, 1);
        assert_eq!(stats.cache_hits, 1);
    }

    #[test]
    fn concurrent_identical_submissions_coalesce() {
        let registry = throttled(1);
        let first = registry
            .submit(SubmitRequest::new(
                tiny_problem(13, 8),
                RunOptions::default(),
            ))
            .unwrap();
        let second = registry
            .submit(SubmitRequest::new(
                tiny_problem(13, 8),
                RunOptions::default(),
            ))
            .unwrap();
        let distinct = registry
            .submit(SubmitRequest::new(
                tiny_problem(14, 8),
                RunOptions::default(),
            ))
            .unwrap();
        assert_eq!(second.admission, Admission::Coalesced);
        assert_eq!(second.id, first.id);
        assert_eq!(distinct.admission, Admission::Fresh);
        assert_ne!(distinct.id, first.id);
        registry.wait(first.id).unwrap();
        registry.wait(distinct.id).unwrap();
        assert_eq!(registry.stats().solves_started, 2);
    }

    #[test]
    fn cancel_mid_solve_is_clean() {
        let registry = throttled(1);
        let receipt = registry
            .submit(SubmitRequest::new(
                tiny_problem(17, 50),
                RunOptions::default(),
            ))
            .unwrap();
        assert!(registry.cancel(receipt.id));
        let status = registry.wait(receipt.id).unwrap();
        assert_eq!(status.state, SolveState::Cancelled);
        assert!(status.steps_done < 50);
        assert!(registry.result(receipt.id).is_none());
        // A terminal entry cannot be cancelled again...
        assert!(!registry.cancel(receipt.id));
        // ...and the fingerprint is free again: a resubmit runs fresh.
        let again = registry
            .submit(SubmitRequest::new(
                tiny_problem(17, 50),
                RunOptions::default(),
            ))
            .unwrap();
        assert_eq!(again.admission, Admission::Fresh);
        assert!(registry.cancel(again.id));
    }

    #[test]
    fn live_solves_cannot_share_a_checkpoint_file() {
        let dir =
            std::env::temp_dir().join(format!("neutral_registry_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("shared.ckpt");
        let registry = throttled(2);
        let first = registry
            .submit(
                SubmitRequest::new(tiny_problem(19, 30), RunOptions::default())
                    .checkpoint(&ckpt, 1),
            )
            .unwrap();
        let err = registry
            .submit(
                SubmitRequest::new(tiny_problem(20, 30), RunOptions::default())
                    .checkpoint(&ckpt, 1),
            )
            .unwrap_err();
        match err {
            SubmitError::CheckpointFileBusy { holder, .. } => assert_eq!(holder, first.id),
            other => panic!("expected CheckpointFileBusy, got {other}"),
        }
        registry.cancel(first.id);
        registry.wait(first.id).unwrap();
        // Reservation released on terminal state.
        let third = registry
            .submit(
                SubmitRequest::new(tiny_problem(21, 2), RunOptions::default()).checkpoint(&ckpt, 1),
            )
            .unwrap();
        let status = registry.wait(third.id).unwrap();
        assert_eq!(status.state, SolveState::Done);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn runner_panic_fails_solve_and_releases_fingerprint() {
        // One runner, injected panic when a leased chunk would start
        // its second timestep.
        let registry = Registry::new(RegistryConfig {
            runners: 1,
            fault_panic_on_step: Some(1),
            ..Default::default()
        });
        let receipt = registry
            .submit(SubmitRequest::new(
                tiny_problem(7, 3),
                RunOptions::default(),
            ))
            .unwrap();
        assert_eq!(receipt.admission, Admission::Fresh);
        let status = registry.wait(receipt.id).unwrap();
        match &status.state {
            SolveState::Failed(msg) => {
                assert!(msg.contains("panicked mid-chunk"), "{msg}");
                assert!(msg.contains("injected runner fault"), "{msg}");
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        assert_eq!(
            status.steps_done, 1,
            "first chunk completed, second panicked"
        );
        assert!(registry.result(receipt.id).is_none());
        assert_eq!(registry.stats().failed, 1);

        // The fingerprint was released with the failure: an identical
        // resubmission re-runs Fresh instead of cache-hitting (or
        // coalescing onto) the corpse.
        let again = registry
            .submit(SubmitRequest::new(
                tiny_problem(7, 3),
                RunOptions::default(),
            ))
            .unwrap();
        assert_eq!(again.admission, Admission::Fresh);
        assert_ne!(again.id, receipt.id);
        let status = registry.wait(again.id).unwrap();
        assert!(
            matches!(status.state, SolveState::Failed(_)),
            "deterministic fault injection fails the re-run at the same step"
        );
        assert_eq!(registry.stats().cache_hits, 0);
        assert_eq!(registry.stats().coalesced, 0);
    }

    #[test]
    fn sharded_submission_matches_unsharded_bitwise() {
        // A sharded solve through the registry — including one injected
        // kill that must be retried — serves the exact bytes of the
        // ordinary unsharded path, with the retry visible in /stats.
        let registry = Registry::new(RegistryConfig::default());
        // The bitwise reference is the *upgraded* configuration the
        // registry actually runs (atomic → replicated; the atomic merge
        // order is not part of the deterministic contract).
        let mut reference = tiny_problem(31, 3);
        reference.transport.tally_strategy = TallyStrategy::Replicated;
        let direct = Simulation::new(reference).run(RunOptions::default());
        let receipt = registry
            .submit(
                SubmitRequest::new(tiny_problem(31, 3), RunOptions::default())
                    .sharded(3, "kill@1".parse().unwrap()),
            )
            .unwrap();
        let status = registry.wait(receipt.id).unwrap();
        assert_eq!(status.state, SolveState::Done);
        let served = registry.result(receipt.id).unwrap();
        assert_eq!(served.tally, direct.tally);
        assert_eq!(served.counters, direct.counters);
        let stats = registry.stats();
        assert_eq!(stats.shard_retries, 1);
        assert_eq!(stats.shard_requeues, 1);
        // The atomic default was upgraded to a deterministic strategy
        // *before* fingerprinting: an unsharded resubmission of the
        // upgraded problem cache-hits the sharded result.
        let mut upgraded = tiny_problem(31, 3);
        upgraded.transport.tally_strategy = TallyStrategy::Replicated;
        let again = registry
            .submit(SubmitRequest::new(upgraded, RunOptions::default()))
            .unwrap();
        assert_eq!(again.admission, Admission::CacheHit);
        assert_eq!(again.id, receipt.id);
    }

    #[test]
    fn quarantined_shard_fails_solve_without_stalling_others() {
        // A persistently-faulting shard exhausts its retries and fails
        // its own solve with a named cause; a healthy solve queued
        // behind it on the single runner is still served.
        let registry = Registry::new(RegistryConfig {
            runners: 1,
            ..Default::default()
        });
        let doomed = registry
            .submit(
                SubmitRequest::new(tiny_problem(33, 4), RunOptions::default())
                    .sharded(2, "panic@0:99".parse().unwrap()),
            )
            .unwrap();
        let fine = registry
            .submit(SubmitRequest::new(
                tiny_problem(34, 2),
                RunOptions::default(),
            ))
            .unwrap();
        let status = registry.wait(doomed.id).unwrap();
        match &status.state {
            SolveState::Failed(msg) => {
                assert!(msg.contains("sharded solve failed"), "{msg}");
                assert!(msg.contains("quarantined"), "{msg}");
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        assert!(registry.result(doomed.id).is_none());
        let status = registry.wait(fine.id).unwrap();
        assert_eq!(status.state, SolveState::Done);
        let stats = registry.stats();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.completed, 1);
        assert!(stats.shard_retries >= 1, "{stats:?}");
        assert_eq!(stats.shard_requeues, 0);
    }

    #[test]
    fn hung_chunk_fails_on_step_deadline_and_runner_moves_on() {
        // An injected hang at the second chunk trips the step deadline:
        // the solve fails with a named timeout cause and the (single)
        // runner survives to serve the next entry.
        let registry = Registry::new(RegistryConfig {
            runners: 1,
            step_deadline: Some(Duration::from_millis(200)),
            fault_hang_on_step: Some(1),
            ..Default::default()
        });
        let doomed = registry
            .submit(SubmitRequest::new(
                tiny_problem(35, 3),
                RunOptions::default(),
            ))
            .unwrap();
        // A single-timestep solve never reaches the faulted step.
        let fine = registry
            .submit(SubmitRequest::new(
                tiny_problem(36, 1),
                RunOptions::default(),
            ))
            .unwrap();
        let status = registry.wait(doomed.id).unwrap();
        match &status.state {
            SolveState::Failed(msg) => {
                assert!(msg.contains("step deadline exceeded"), "{msg}");
                assert!(msg.contains("200 ms"), "{msg}");
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        assert_eq!(status.steps_done, 1, "first chunk finished, second hung");
        let status = registry.wait(fine.id).unwrap();
        assert_eq!(status.state, SolveState::Done);
        assert_eq!(registry.stats().failed, 1);
        assert_eq!(registry.stats().completed, 1);
    }

    #[test]
    fn fast_chunks_pass_under_a_step_deadline() {
        // The supervised path is transparent when chunks behave: same
        // results as the direct run, solve Done.
        let registry = Registry::new(RegistryConfig {
            runners: 2,
            step_deadline: Some(Duration::from_secs(60)),
            ..Default::default()
        });
        let receipt = registry
            .submit(SubmitRequest::new(
                tiny_problem(37, 3),
                RunOptions::default(),
            ))
            .unwrap();
        let status = registry.wait(receipt.id).unwrap();
        assert_eq!(status.state, SolveState::Done);
        let served = registry.result(receipt.id).unwrap();
        let direct = Simulation::new(tiny_problem(37, 3)).run(RunOptions::default());
        assert_eq!(served.tally, direct.tally);
        assert_eq!(served.counters, direct.counters);
    }

    #[test]
    fn runner_thread_survives_a_panicking_solve() {
        // The panic is caught inside the (only) runner thread; queued
        // work behind the poisoned solve must still be served.
        let registry = Registry::new(RegistryConfig {
            runners: 1,
            fault_panic_on_step: Some(1),
            ..Default::default()
        });
        let doomed = registry
            .submit(SubmitRequest::new(
                tiny_problem(23, 4),
                RunOptions::default(),
            ))
            .unwrap();
        // A single-timestep solve finishes at steps_done == 1 and is
        // never leased at the faulted step.
        let fine = registry
            .submit(SubmitRequest::new(
                tiny_problem(24, 1),
                RunOptions::default(),
            ))
            .unwrap();
        assert!(matches!(
            registry.wait(doomed.id).unwrap().state,
            SolveState::Failed(_)
        ));
        let status = registry.wait(fine.id).unwrap();
        assert_eq!(status.state, SolveState::Done);
        let report = registry.result(fine.id).expect("done solve has a result");
        assert!(report.counters.total_events() > 0);
        assert_eq!(registry.stats().completed, 1);
        assert_eq!(registry.stats().failed, 1);
    }
}
