//! The top-level simulation facade: configure a problem, pick a
//! parallelisation scheme / tally / threading combination, run timesteps,
//! and collect a [`RunReport`].
//!
//! This is the API the examples and the figure-regeneration harness drive;
//! it wires together the drivers in [`crate::over_particles`],
//! [`crate::over_events`] and [`crate::soa`].

use crate::arena::ScratchArena;
use crate::checkpoint::{config_fingerprint, Checkpoint, CheckpointError};
use crate::config::{Problem, RegroupPolicy};
use crate::counters::EventCounters;
use crate::history::TransportCtx;
use crate::over_events::{
    run_over_events, run_over_events_lanes, Backend, EventState, KernelTimings,
};
use crate::over_particles::{run_lanes, run_rayon, run_scheduled, run_sequential, ScheduledTally};
use crate::particle::{spawn_particles, Particle};
use crate::scheduler::Schedule;
use crate::soa::{
    regroup_soa_parallel, run_lanes_soa, run_rayon_soa, run_rayon_soa_stepped, ParticleSoA,
};
use crate::validate::{population_balance, EnergyBalance};
use neutral_mesh::accum::DEFAULT_LANES;
use neutral_mesh::tally::{AtomicTally, PrivatizedTally, SequentialTally};
use neutral_mesh::{LanePartition, TallyAccum};
use neutral_rng::Threefry2x64;
use std::time::{Duration, Instant};

/// Which parallelisation scheme to run (paper §V).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Scheme {
    /// Depth-first: a thread follows a particle from birth to census.
    #[default]
    OverParticles,
    /// Breadth-first: all histories advance one event class at a time.
    OverEvents,
}

/// Particle storage layout (paper §VI-D). Only meaningful for
/// [`Scheme::OverParticles`]; Over Events manages its own state arrays.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Layout {
    /// Array of Structures — the paper's fastest CPU layout.
    #[default]
    Aos,
    /// Structure of Arrays, gathered once per history (register-cached
    /// tracking; Rust's `noalias` slices permit this, unlike the C code).
    Soa,
    /// Structure of Arrays with event-granular gather/scatter and no
    /// register caching — the memory behaviour that produced the paper's
    /// SoA penalty (see `soa::run_rayon_soa_stepped`).
    SoaEventStepped,
}

impl Layout {
    /// Stable lower-case name (benchmark reports, figure output).
    pub fn name(self) -> &'static str {
        match self {
            Layout::Aos => "aos",
            Layout::Soa => "soa",
            Layout::SoaEventStepped => "soa_stepped",
        }
    }
}

/// Threading and tally configuration of a run.
#[derive(Clone, Copy, Debug)]
pub enum Execution {
    /// Single-threaded, plain `Vec<f64>` tally.
    Sequential,
    /// Rayon work-stealing pool (global pool, or a pool the caller
    /// installed), shared atomic tally.
    Rayon,
    /// Explicit threads with an OpenMP-style schedule and the shared
    /// atomic tally (paper §VI-C/E).
    Scheduled {
        /// Number of worker threads.
        threads: usize,
        /// Loop schedule.
        schedule: Schedule,
    },
    /// Explicit threads with one private tally mesh per thread (§VI-F).
    ScheduledPrivatized {
        /// Number of worker threads.
        threads: usize,
        /// Loop schedule.
        schedule: Schedule,
    },
}

/// Full options of a run.
#[derive(Clone, Copy, Debug)]
pub struct RunOptions {
    /// Parallelisation scheme.
    pub scheme: Scheme,
    /// Particle storage layout (Over Particles only).
    pub layout: Layout,
    /// Threading + tally configuration.
    pub execution: Execution,
    /// Kernel backend for Over Events (§VI-G; DESIGN.md §19).
    pub backend: Backend,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            scheme: Scheme::OverParticles,
            layout: Layout::Aos,
            execution: Execution::Rayon,
            backend: Backend::Scalar,
        }
    }
}

/// Everything a completed run reports.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Wall-clock time of the transport solve (excludes problem setup).
    pub elapsed: Duration,
    /// Merged event counters.
    pub counters: EventCounters,
    /// The energy-deposition tally, merged ("compressed") to one mesh.
    pub tally: Vec<f64>,
    /// Per-kernel timings (Over Events only).
    pub kernel_timings: Option<KernelTimings>,
    /// Number of histories that survived to the final census.
    pub alive: usize,
    /// Total source energy (weighted eV).
    pub initial_energy_ev: f64,
    /// Tally memory footprint in bytes (includes all private copies for
    /// the privatised configuration — the §VI-F blow-up).
    pub tally_footprint_bytes: usize,
    /// Timesteps executed.
    pub timesteps: usize,
}

impl RunReport {
    /// Total deposited energy.
    #[must_use]
    pub fn tally_total(&self) -> f64 {
        self.tally.iter().sum()
    }

    /// Energy balance of the run.
    #[must_use]
    pub fn energy_balance(&self) -> EnergyBalance {
        EnergyBalance::new(self.initial_energy_ev, self.tally_total(), &self.counters)
    }

    /// Events processed per second of solve time.
    #[must_use]
    pub fn events_per_second(&self) -> f64 {
        self.counters.total_events() as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }

    /// One-line human summary.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{:.3}s | {} events ({} collisions, {} facets, {} census) | {:.2e} events/s | deposit {:.3e} eV | {} alive",
            self.elapsed.as_secs_f64(),
            self.counters.total_events(),
            self.counters.collisions,
            self.counters.facets,
            self.counters.census,
            self.events_per_second(),
            self.tally_total(),
            self.alive,
        )
    }
}

/// Per-solve transport state that persists **across timesteps** (ROADMAP
/// "arena reuse across timesteps"): the event-driver state arrays and
/// per-window arenas, the per-worker arenas of the SoA chunk driver, the
/// regroup scratch, and the identity map of a regrouped population. One
/// instance is created per [`Simulation::run`] call and threaded through
/// every step, so multi-timestep solves stop rebuilding `EventState`,
/// `WindowState` arenas and SoA chunk trackers per call.
///
/// The particle columns themselves are NOT here: [`SolveCore`] owns the
/// canonical [`ParticleSoA`] directly and every driver reads it in
/// place. The only AoS buffer left is `aos` below — a scratch for the
/// legacy record-at-a-time drivers, materialised per step at their
/// entry seam and scattered back after (the inverse of the old design,
/// where the columns were the per-step copy).
#[derive(Default)]
struct TransportState {
    /// Reusable state of the lane-decomposed event driver (windows cut
    /// at lane boundaries).
    oe_lanes: Option<EventState>,
    /// Reusable state of the legacy shared-atomic event driver (windows
    /// cut by thread count — a different chunk, hence a separate slot).
    oe_plain: Option<EventState>,
    /// Reusable AoS record buffer for the record-at-a-time
    /// (`Layout::Aos`) history drivers, re-materialised from the
    /// canonical columns each step.
    aos: Vec<Particle>,
    /// Per-worker arenas of the lane-decomposed SoA driver.
    soa_arenas: Vec<ScratchArena>,
    /// Per-worker staging of the between-timestep regroup permutation
    /// (the regroup stage runs per lane block through the lane
    /// scheduler; one arena per worker).
    regroup_scratches: Vec<ScratchArena>,
    /// Identity map of a regrouped population: `order[key]` = physical
    /// position. Empty (and unused) until the first regroup actually
    /// moves a particle.
    order: Vec<u32>,
    /// Whether any regroup has moved a particle this solve — gates the
    /// identity-map indirection so an `Off` run (or a regroup that found
    /// everything already grouped) keeps the exact unpermuted code paths.
    permuted: bool,
}

impl TransportState {
    /// Regroup the population for the next timestep and refresh the
    /// identity map. Lane blocks match the tally-lane partition the lane
    /// drivers use, so lane membership (and with it the bitwise-merge
    /// invariant) is preserved. The per-lane permutations are scheduled
    /// across `workers` through the lane scheduler — each lane is
    /// independent and deterministic, so the regrouped array is
    /// identical for any worker count.
    fn regroup(
        &mut self,
        soa: &mut ParticleSoA,
        policy: RegroupPolicy,
        nx: usize,
        workers: usize,
        schedule: Schedule,
    ) {
        let part = LanePartition::new(soa.len(), DEFAULT_LANES);
        if regroup_soa_parallel(
            soa,
            policy,
            nx,
            part.lane_size,
            workers,
            schedule,
            &mut self.regroup_scratches,
        ) {
            self.permuted = true;
        }
        if self.permuted {
            self.order.resize(soa.len(), 0);
            for (pos, &key) in soa.key.iter().enumerate() {
                self.order[key as usize] = pos as u32;
            }
        }
    }

    /// Rebuild the permutation bookkeeping from a (possibly regrouped)
    /// checkpointed population: `permuted` is re-derived from the actual
    /// storage order, and the identity map rebuilt when needed. A
    /// population that happens to sit in identity order resumes through
    /// the direct (unpermuted) code paths, which compute the same bits
    /// as an identity map would.
    fn restore_order(&mut self, particles: &[Particle]) {
        self.permuted = particles
            .iter()
            .enumerate()
            .any(|(pos, p)| p.key as usize != pos);
        if self.permuted {
            self.order.resize(particles.len(), 0);
            for (pos, p) in particles.iter().enumerate() {
                self.order[p.key as usize] = pos as u32;
            }
        }
    }
}

/// Worker count and schedule implied by an [`Execution`] — used for the
/// stages (like the census-boundary regroup) that run through the lane
/// scheduler outside the main drivers.
pub(crate) fn execution_workers(execution: Execution) -> (usize, Schedule) {
    match execution {
        Execution::Sequential => (1, Schedule::Static { chunk: None }),
        Execution::Rayon => (rayon::current_num_threads(), Schedule::Dynamic { chunk: 1 }),
        Execution::Scheduled { threads, schedule }
        | Execution::ScheduledPrivatized { threads, schedule } => (threads, schedule),
    }
}

/// A configured simulation: problem + spawned particle population.
pub struct Simulation {
    problem: Problem,
    rng: Threefry2x64,
}

impl Simulation {
    /// Set up a simulation for `problem`.
    ///
    /// Panics if the mesh's material map references a material id the
    /// problem's [`neutral_xs::MaterialSet`] does not define — catching
    /// the mismatch here keeps the hot path's material resolution a plain
    /// slice index.
    #[must_use]
    pub fn new(problem: Problem) -> Self {
        assert!(
            usize::from(problem.mesh.material_map().max_id()) < problem.materials.len(),
            "mesh references material {} but the set defines only {}",
            problem.mesh.material_map().max_id(),
            problem.materials.len(),
        );
        let rng = Threefry2x64::new([problem.seed, 1]);
        Self { problem, rng }
    }

    /// The underlying problem.
    #[must_use]
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    /// The per-problem RNG (keyed by the problem seed). Shard attempts
    /// clone this so every shard draws from the same counter-based
    /// streams an unsharded run would.
    pub(crate) fn rng(&self) -> &Threefry2x64 {
        &self.rng
    }

    /// Run the configured number of timesteps with `options`, returning
    /// the report. Each call spawns a fresh particle population, so
    /// repeated calls with the same options are reproducible.
    ///
    /// A `TransportState` is created once per call and reused across
    /// every timestep: the event-driver arenas, SoA buffers and regroup
    /// scratch reach their high-water capacities in step one and are
    /// never reallocated. At each census boundary the population is
    /// physically regrouped per
    /// [`crate::config::TransportConfig::regroup_policy`] — identity
    /// travels with each record, so every policy reports bitwise the
    /// same tallies and counters as `Off` under the deterministic tally
    /// backends.
    #[must_use]
    pub fn run(&self, options: RunOptions) -> RunReport {
        let mut solve = Solve::new(self, options);
        while solve.step() {}
        solve.finish()
    }

    #[allow(clippy::too_many_arguments)] // internal step dispatcher
    fn run_step(
        &self,
        soa: &mut ParticleSoA,
        ctx: &TransportCtx<'_, Threefry2x64>,
        options: RunOptions,
        tally_vec: &mut [f64],
        kernel_timings: &mut Option<KernelTimings>,
        tally_footprint: &mut usize,
        state: &mut TransportState,
    ) -> EventCounters {
        let cells = tally_vec.len();
        // The deterministic backends run every scheme and layout through
        // the lane-decomposed drivers. The Atomic strategy keeps the
        // pre-subsystem shared-mesh paths below (bit-for-bit the paper's
        // baseline behaviour), except for SoA under the explicit
        // scheduler — a combination the old drivers rejected, which the
        // lane subsystem now supports. The legacy `ScheduledPrivatized`
        // execution keeps its per-*thread* §VI-F replication.
        let soa_scheduled = options.scheme == Scheme::OverParticles
            && matches!(options.layout, Layout::Soa | Layout::SoaEventStepped)
            && matches!(options.execution, Execution::Scheduled { .. });
        if (ctx.cfg.tally_strategy.is_deterministic() || soa_scheduled)
            && !matches!(options.execution, Execution::ScheduledPrivatized { .. })
        {
            return self.run_step_lanes(
                soa,
                ctx,
                options,
                tally_vec,
                kernel_timings,
                tally_footprint,
                state,
            );
        }
        match options.scheme {
            Scheme::OverEvents => {
                let tally = AtomicTally::new(cells);
                *tally_footprint = tally.footprint_bytes();
                let parallel = !matches!(options.execution, Execution::Sequential);
                let (counters, timings) = run_over_events(
                    soa,
                    ctx,
                    &tally,
                    options.backend,
                    parallel,
                    &mut state.oe_plain,
                );
                accumulate(tally_vec, &tally.snapshot());
                merge_timings(kernel_timings, timings);
                counters
            }
            Scheme::OverParticles => match (options.layout, options.execution) {
                // The record-at-a-time history drivers are the one
                // remaining AoS consumer: materialise records from the
                // canonical columns at this seam, run, scatter back.
                (Layout::Aos, Execution::Sequential) => {
                    let mut tally = SequentialTally::new(cells);
                    *tally_footprint = cells * 8;
                    let aos = &mut state.aos;
                    soa.to_aos_into(aos);
                    let counters = run_sequential(aos, ctx, &mut tally);
                    soa.copy_from_aos(aos);
                    accumulate(tally_vec, tally.values());
                    counters
                }
                (Layout::Aos, Execution::Rayon) => {
                    let tally = AtomicTally::new(cells);
                    *tally_footprint = tally.footprint_bytes();
                    let aos = &mut state.aos;
                    soa.to_aos_into(aos);
                    let counters = run_rayon(aos, ctx, &tally);
                    soa.copy_from_aos(aos);
                    accumulate(tally_vec, &tally.snapshot());
                    counters
                }
                (Layout::Aos, Execution::Scheduled { threads, schedule }) => {
                    let tally = AtomicTally::new(cells);
                    *tally_footprint = tally.footprint_bytes();
                    let aos = &mut state.aos;
                    soa.to_aos_into(aos);
                    let counters =
                        run_scheduled(aos, ctx, ScheduledTally::Atomic(&tally), threads, schedule);
                    soa.copy_from_aos(aos);
                    accumulate(tally_vec, &tally.snapshot());
                    counters
                }
                (Layout::Aos, Execution::ScheduledPrivatized { threads, schedule }) => {
                    let mut tally = PrivatizedTally::new(threads, cells);
                    *tally_footprint = tally.footprint_bytes();
                    let aos = &mut state.aos;
                    soa.to_aos_into(aos);
                    let counters = run_scheduled(
                        aos,
                        ctx,
                        ScheduledTally::Privatized(&mut tally),
                        threads,
                        schedule,
                    );
                    soa.copy_from_aos(aos);
                    accumulate(tally_vec, &tally.merge());
                    counters
                }
                (layout @ (Layout::Soa | Layout::SoaEventStepped), execution) => {
                    // SoA is driven through the Rayon chunked drivers; the
                    // explicit-scheduler combinations are an AoS study in
                    // the paper. The chunk driver reads the canonical
                    // columns in place — no gather/scatter step remains.
                    assert!(
                        matches!(execution, Execution::Rayon | Execution::Sequential),
                        "SoA layouts support Sequential/Rayon execution"
                    );
                    let tally = AtomicTally::new(cells);
                    *tally_footprint = tally.footprint_bytes();
                    let chunk = crate::over_particles::rayon_chunk_size(soa.len());
                    let counters = if layout == Layout::Soa {
                        run_rayon_soa(soa, ctx, &tally, chunk)
                    } else {
                        run_rayon_soa_stepped(soa, ctx, &tally, chunk)
                    };
                    accumulate(tally_vec, &tally.snapshot());
                    counters
                }
            },
        }
    }

    /// One timestep through the pluggable tally subsystem: build the
    /// configured backend with a worker-count-independent lane partition,
    /// run the scheme's lane driver, and fold the deterministically
    /// merged mesh into the running tally. The drivers receive the
    /// persistent per-solve state (event arrays, SoA buffers, arenas)
    /// and, when the population has been regrouped, its identity map.
    #[allow(clippy::too_many_arguments)] // internal step dispatcher
    fn run_step_lanes(
        &self,
        soa: &mut ParticleSoA,
        ctx: &TransportCtx<'_, Threefry2x64>,
        options: RunOptions,
        tally_vec: &mut [f64],
        kernel_timings: &mut Option<KernelTimings>,
        tally_footprint: &mut usize,
        state: &mut TransportState,
    ) -> EventCounters {
        let cells = tally_vec.len();
        let strategy = ctx.cfg.tally_strategy;
        let (workers, schedule) = match options.execution {
            Execution::Sequential => (1, Schedule::Static { chunk: None }),
            Execution::Rayon => (rayon::current_num_threads(), Schedule::Dynamic { chunk: 1 }),
            Execution::Scheduled { threads, schedule } => (threads, schedule),
            Execution::ScheduledPrivatized { .. } => {
                // Routed to the legacy per-thread §VI-F path by `run_step`;
                // silently aliasing it to the lane subsystem would change
                // a user's requested tally semantics.
                unreachable!("ScheduledPrivatized keeps the per-thread seed path")
            }
        };
        // The lane count is fixed (never derived from the worker count),
        // so the merge order — and therefore the merged bits — are the
        // same for ANY number of workers; workers beyond the lane count
        // simply find no lane to claim (see neutral_mesh::accum).
        let part = LanePartition::new(soa.len(), DEFAULT_LANES);
        let mut accum = TallyAccum::new(strategy, cells, part.n_lanes);

        let counters = match options.scheme {
            Scheme::OverEvents => {
                let TransportState {
                    oe_lanes,
                    order,
                    permuted,
                    ..
                } = state;
                let (counters, timings) = run_over_events_lanes(
                    soa,
                    ctx,
                    &mut accum,
                    options.backend,
                    workers,
                    schedule,
                    oe_lanes,
                    permuted.then_some(order.as_slice()),
                );
                merge_timings(kernel_timings, timings);
                counters
            }
            Scheme::OverParticles => match options.layout {
                Layout::Aos => {
                    // Record-at-a-time seam: materialise, run, scatter back.
                    let TransportState {
                        aos,
                        order,
                        permuted,
                        ..
                    } = &mut *state;
                    soa.to_aos_into(aos);
                    let counters = run_lanes(
                        aos,
                        ctx,
                        &mut accum,
                        workers,
                        schedule,
                        permuted.then_some(order.as_slice()),
                    );
                    soa.copy_from_aos(aos);
                    counters
                }
                layout @ (Layout::Soa | Layout::SoaEventStepped) => {
                    let TransportState {
                        soa_arenas,
                        order,
                        permuted,
                        ..
                    } = state;
                    run_lanes_soa(
                        soa,
                        ctx,
                        &mut accum,
                        workers,
                        schedule,
                        layout == Layout::SoaEventStepped,
                        soa_arenas,
                        permuted.then_some(order.as_slice()),
                    )
                }
            },
        };
        *tally_footprint = accum.footprint_bytes();
        accumulate(tally_vec, &accum.merge());
        counters
    }
}

/// The owning, movable state of a resumable solve — everything a
/// [`Solve`] carries *except* the borrow of its [`Simulation`].
///
/// This is the chunking seam the solve server builds on: a registry can
/// hold `(Arc<Simulation>, SolveCore)` pairs, lease a core to whichever
/// runner thread picks up its next timestep chunk, and hand it back
/// between chunks — none of which a borrowing handle allows. Every
/// method that advances or snapshots the solve takes the simulation by
/// reference; it must be the same simulation the core was created with
/// (checked against the cached config fingerprint in debug builds, and
/// structurally impossible to get wrong through the [`Solve`] wrapper).
pub struct SolveCore {
    options: RunOptions,
    /// [`config_fingerprint`] of the owning problem, cached at
    /// construction (it also stamps every checkpoint).
    fingerprint: u64,
    n_timesteps: usize,
    /// The canonical particle storage: one column per field, shared in
    /// place by every driver. AoS [`Particle`] records exist only at the
    /// serialization edges (checkpoints, shard census transfer, the
    /// legacy record-at-a-time drivers' scratch).
    soa: ParticleSoA,
    state: TransportState,
    counters: EventCounters,
    kernel_timings: Option<KernelTimings>,
    tally: Vec<f64>,
    tally_footprint: usize,
    initial_energy_ev: f64,
    step: usize,
    elapsed: Duration,
}

impl SolveCore {
    /// Start a fresh solve of `sim`'s problem: spawn the particle
    /// population and prepare the lookup acceleration structures
    /// (outside the timed region — the solve should measure transport,
    /// not one-off setup).
    #[must_use]
    pub fn new(sim: &Simulation, options: RunOptions) -> Self {
        let problem = &sim.problem;
        let soa = ParticleSoA::from_aos(&spawn_particles(problem));
        let initial_energy_ev = soa.len() as f64 * problem.initial_energy_ev;
        problem.materials.prepare(problem.transport.xs_search);
        Self {
            options,
            fingerprint: config_fingerprint(problem),
            n_timesteps: problem.n_timesteps,
            soa,
            state: TransportState::default(),
            counters: EventCounters::default(),
            kernel_timings: None,
            tally: vec![0.0; problem.mesh.num_cells()],
            tally_footprint: 0,
            initial_energy_ev,
            step: 0,
            elapsed: Duration::ZERO,
        }
    }

    /// Resume a solve from a census-boundary checkpoint.
    ///
    /// Rejects, as hard errors: a checkpoint written by a different
    /// problem/transport configuration
    /// ([`CheckpointError::ConfigMismatch`]) and internally-inconsistent
    /// contents — wrong particle or tally counts, keys that are not a
    /// permutation ([`CheckpointError::Corrupt`]).
    pub fn resume(
        sim: &Simulation,
        options: RunOptions,
        checkpoint: &Checkpoint,
    ) -> Result<Self, CheckpointError> {
        let problem = &sim.problem;
        let expected = config_fingerprint(problem);
        if checkpoint.fingerprint != expected {
            return Err(CheckpointError::ConfigMismatch {
                expected,
                found: checkpoint.fingerprint,
            });
        }
        if checkpoint.n_timesteps != problem.n_timesteps {
            return Err(CheckpointError::Corrupt(format!(
                "checkpoint ran {} timesteps, problem wants {}",
                checkpoint.n_timesteps, problem.n_timesteps
            )));
        }
        if checkpoint.particles.len() != problem.n_particles {
            return Err(CheckpointError::Corrupt(format!(
                "checkpoint holds {} particles, problem spawns {}",
                checkpoint.particles.len(),
                problem.n_particles
            )));
        }
        if checkpoint.tally.len() != problem.mesh.num_cells() {
            return Err(CheckpointError::Corrupt(format!(
                "checkpoint tally has {} cells, mesh has {}",
                checkpoint.tally.len(),
                problem.mesh.num_cells()
            )));
        }
        let n = checkpoint.particles.len();
        let mut seen = vec![false; n];
        for p in &checkpoint.particles {
            let k = p.key as usize;
            if k >= n || seen[k] {
                return Err(CheckpointError::Corrupt(format!(
                    "particle keys are not a permutation (key {} duplicated or out of range)",
                    p.key
                )));
            }
            seen[k] = true;
        }
        problem.materials.prepare(problem.transport.xs_search);
        let mut state = TransportState::default();
        state.restore_order(&checkpoint.particles);
        Ok(Self {
            options,
            fingerprint: expected,
            n_timesteps: problem.n_timesteps,
            soa: ParticleSoA::from_aos(&checkpoint.particles),
            state,
            counters: checkpoint.counters,
            kernel_timings: None,
            tally: checkpoint.tally.clone(),
            tally_footprint: checkpoint.tally_footprint_bytes,
            initial_energy_ev: n as f64 * problem.initial_energy_ev,
            step: checkpoint.next_step,
            elapsed: checkpoint.elapsed,
        })
    }

    /// Whether every timestep has been executed.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.step >= self.n_timesteps
    }

    /// Timesteps completed so far (= the next timestep index to run).
    #[must_use]
    pub fn steps_done(&self) -> usize {
        self.step
    }

    /// Total timesteps of the solve.
    #[must_use]
    pub fn n_timesteps(&self) -> usize {
        self.n_timesteps
    }

    /// The current particle records (current storage order) — the state a
    /// checkpoint would capture. Materialised from the canonical columns
    /// on each call (a serialization edge, not a hot path).
    #[must_use]
    pub fn particles(&self) -> Vec<Particle> {
        self.soa.to_aos()
    }

    /// Execute the next timestep against `sim` — which must be the
    /// simulation this core was created from. Returns `false` (doing
    /// nothing) once all timesteps have run.
    pub fn step(&mut self, sim: &Simulation) -> bool {
        debug_assert_eq!(
            config_fingerprint(&sim.problem),
            self.fingerprint,
            "SolveCore stepped against a different simulation"
        );
        if self.is_done() {
            return false;
        }
        let problem = &sim.problem;
        let ctx = TransportCtx {
            mesh: &problem.mesh,
            materials: &problem.materials,
            rng: &sim.rng,
            cfg: &problem.transport,
        };
        let start = Instant::now();
        if self.step > 0 {
            for i in 0..self.soa.len() {
                if !self.soa.dead[i] {
                    self.soa.dt_to_census[i] = problem.dt;
                }
            }
            // The census boundary: physically regroup the survivors
            // (regroup time is charged to the solve — it is part of the
            // cost the policy must win back). The per-lane permutations
            // run through the lane scheduler.
            let (workers, schedule) = execution_workers(self.options.execution);
            self.state.regroup(
                &mut self.soa,
                problem.transport.regroup_policy,
                problem.mesh.nx(),
                workers,
                schedule,
            );
        }
        let step_counters = sim.run_step(
            &mut self.soa,
            &ctx,
            self.options,
            &mut self.tally,
            &mut self.kernel_timings,
            &mut self.tally_footprint,
            &mut self.state,
        );
        self.counters.merge(&step_counters);
        // The residual is a snapshot, not a sum across steps.
        self.counters.census_energy_ev = step_counters.census_energy_ev;
        self.elapsed += start.elapsed();
        self.step += 1;
        true
    }

    /// Snapshot the complete resumable state at the current census
    /// boundary (call between steps; the particle records are pre-regroup
    /// for the next step, which [`SolveCore::resume`] replays exactly as
    /// an uninterrupted run would).
    #[must_use]
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            fingerprint: self.fingerprint,
            next_step: self.step,
            n_timesteps: self.n_timesteps,
            elapsed: self.elapsed,
            tally_footprint_bytes: self.tally_footprint,
            counters: self.counters,
            tally: self.tally.clone(),
            particles: self.soa.to_aos(),
        }
    }

    /// Finish the solve and build the report. Call after the last
    /// timestep (stepping a finished solve is a no-op, so this is safe
    /// to call whenever [`SolveCore::is_done`]).
    #[must_use]
    pub fn finish(self) -> RunReport {
        let alive = self.soa.dead.iter().filter(|&&d| !d).count();
        // Per-step population balance: step k processes the histories that
        // were alive at its start, so census + deaths + stuck across the
        // whole run equals n_particles plus one extra census per survivor
        // per additional timestep.
        debug_assert!(
            !self.is_done()
                || self.n_timesteps > 1
                || population_balance(self.soa.len() as u64, &self.counters)
        );
        RunReport {
            elapsed: self.elapsed,
            counters: self.counters,
            tally: self.tally,
            kernel_timings: self.kernel_timings,
            alive,
            initial_energy_ev: self.initial_energy_ev,
            tally_footprint_bytes: self.tally_footprint,
            timesteps: self.step,
        }
    }
}

/// A resumable solve handle: [`Simulation::run`] sliced into
/// per-timestep chunks (the enabling refactor of the checkpoint/restart
/// subsystem — see [`crate::checkpoint`] and DESIGN.md §15).
///
/// ```
/// use neutral_core::prelude::*;
///
/// let mut problem = TestCase::Csp.build(ProblemScale::tiny(), 42);
/// problem.n_timesteps = 2;
/// let sim = Simulation::new(problem);
/// let mut solve = Solve::new(&sim, RunOptions::default());
/// solve.step();                      // timestep 0
/// let ckpt = solve.checkpoint();     // census-boundary snapshot
/// let mut resumed = Solve::resume(&sim, RunOptions::default(), &ckpt).unwrap();
/// while resumed.step() {}
/// let report = resumed.finish();     // bitwise identical to sim.run(..)
/// assert_eq!(report.timesteps, 2);
/// ```
///
/// Stepping, checkpointing at any census boundary and resuming produces
/// tallies, counters and final particle records **byte-identical** to an
/// uninterrupted [`Simulation::run`]: each particle record carries its
/// own RNG key/counter (resuming the counter-based stream exactly, even
/// mid-block), regrouped storage order is reconstructed from the records
/// themselves, and every per-step driver state is rebuilt from scratch
/// each timestep by design.
///
/// `Solve` borrows its simulation for convenience; services that need an
/// owning, thread-movable handle (the solve registry) use the underlying
/// [`SolveCore`] directly.
pub struct Solve<'a> {
    sim: &'a Simulation,
    core: SolveCore,
}

impl<'a> Solve<'a> {
    /// Start a fresh solve (see [`SolveCore::new`]).
    #[must_use]
    pub fn new(sim: &'a Simulation, options: RunOptions) -> Self {
        Self {
            sim,
            core: SolveCore::new(sim, options),
        }
    }

    /// Resume a solve from a census-boundary checkpoint (see
    /// [`SolveCore::resume`] for the rejection rules).
    pub fn resume(
        sim: &'a Simulation,
        options: RunOptions,
        checkpoint: &Checkpoint,
    ) -> Result<Self, CheckpointError> {
        Ok(Self {
            sim,
            core: SolveCore::resume(sim, options, checkpoint)?,
        })
    }

    /// Whether every timestep has been executed.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.core.is_done()
    }

    /// Timesteps completed so far (= the next timestep index to run).
    #[must_use]
    pub fn steps_done(&self) -> usize {
        self.core.steps_done()
    }

    /// The current particle records (current storage order) — the state a
    /// checkpoint would capture (see [`SolveCore::particles`]).
    #[must_use]
    pub fn particles(&self) -> Vec<Particle> {
        self.core.particles()
    }

    /// Execute the next timestep. Returns `false` (doing nothing) once
    /// all timesteps have run.
    pub fn step(&mut self) -> bool {
        self.core.step(self.sim)
    }

    /// Snapshot the complete resumable state at the current census
    /// boundary (see [`SolveCore::checkpoint`]).
    #[must_use]
    pub fn checkpoint(&self) -> Checkpoint {
        self.core.checkpoint()
    }

    /// Finish the solve and build the report (see [`SolveCore::finish`]).
    #[must_use]
    pub fn finish(self) -> RunReport {
        self.core.finish()
    }
}

fn accumulate(acc: &mut [f64], step: &[f64]) {
    for (a, s) in acc.iter_mut().zip(step) {
        *a += s;
    }
}

fn merge_timings(acc: &mut Option<KernelTimings>, timings: KernelTimings) {
    *acc = Some(match acc.take() {
        None => timings,
        Some(prev) => KernelTimings {
            init: prev.init + timings.init,
            decide: prev.decide + timings.decide,
            collision: prev.collision + timings.collision,
            facet: prev.facet + timings.facet,
            tally: prev.tally + timings.tally,
            census: prev.census + timings.census,
            rounds: prev.rounds + timings.rounds,
        },
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ProblemScale, TallyStrategy, TestCase};

    fn sim(case: TestCase) -> Simulation {
        Simulation::new(case.build(ProblemScale::tiny(), 3))
    }

    #[test]
    fn sequential_run_reports() {
        let s = sim(TestCase::Csp);
        let r = s.run(RunOptions {
            execution: Execution::Sequential,
            ..Default::default()
        });
        assert!(r.elapsed > Duration::ZERO);
        assert!(r.counters.total_events() > 0);
        assert_eq!(r.tally.len(), s.problem().mesh.num_cells());
        assert!(r.tally_total() > 0.0);
        assert!(!r.summary().is_empty());
        assert!(population_balance(
            s.problem().n_particles as u64,
            &r.counters
        ));
    }

    #[test]
    fn all_executions_agree_on_physics() {
        let s = sim(TestCase::Csp);
        let base = s.run(RunOptions {
            execution: Execution::Sequential,
            ..Default::default()
        });
        let combos = [
            RunOptions {
                execution: Execution::Rayon,
                ..Default::default()
            },
            RunOptions {
                execution: Execution::Scheduled {
                    threads: 3,
                    schedule: Schedule::Dynamic { chunk: 8 },
                },
                ..Default::default()
            },
            RunOptions {
                execution: Execution::ScheduledPrivatized {
                    threads: 2,
                    schedule: Schedule::Static { chunk: None },
                },
                ..Default::default()
            },
            RunOptions {
                scheme: Scheme::OverEvents,
                execution: Execution::Rayon,
                ..Default::default()
            },
            RunOptions {
                layout: Layout::Soa,
                execution: Execution::Rayon,
                ..Default::default()
            },
        ];
        for opts in combos {
            let r = s.run(opts);
            assert_eq!(r.counters.collisions, base.counters.collisions, "{opts:?}");
            assert_eq!(r.counters.facets, base.counters.facets, "{opts:?}");
            let (a, b) = (base.tally_total(), r.tally_total());
            assert!(
                ((a - b) / a.abs().max(1e-30)).abs() < 1e-9,
                "{opts:?}: tally {a} vs {b}"
            );
        }
    }

    #[test]
    fn over_events_reports_kernel_timings() {
        let s = sim(TestCase::Scatter);
        let r = s.run(RunOptions {
            scheme: Scheme::OverEvents,
            execution: Execution::Sequential,
            ..Default::default()
        });
        let t = r.kernel_timings.expect("OE must report kernel timings");
        assert!(t.rounds > 0);
    }

    #[test]
    fn privatized_footprint_scales() {
        let s = sim(TestCase::Csp);
        let r2 = s.run(RunOptions {
            execution: Execution::ScheduledPrivatized {
                threads: 2,
                schedule: Schedule::Static { chunk: None },
            },
            ..Default::default()
        });
        let r4 = s.run(RunOptions {
            execution: Execution::ScheduledPrivatized {
                threads: 4,
                schedule: Schedule::Static { chunk: None },
            },
            ..Default::default()
        });
        assert_eq!(r4.tally_footprint_bytes, 2 * r2.tally_footprint_bytes);
    }

    #[test]
    fn tally_strategies_agree_on_physics() {
        let s = sim(TestCase::Csp);
        let base = s.run(RunOptions {
            execution: Execution::Sequential,
            ..Default::default()
        });
        for strategy in TallyStrategy::ALL {
            let mut problem = s.problem().clone();
            problem.transport.tally_strategy = strategy;
            let s2 = Simulation::new(problem);
            for opts in [
                RunOptions {
                    execution: Execution::Sequential,
                    ..Default::default()
                },
                RunOptions {
                    execution: Execution::Scheduled {
                        threads: 3,
                        schedule: Schedule::Dynamic { chunk: 8 },
                    },
                    ..Default::default()
                },
                RunOptions {
                    scheme: Scheme::OverEvents,
                    execution: Execution::Rayon,
                    ..Default::default()
                },
                RunOptions {
                    layout: Layout::Soa,
                    execution: Execution::Rayon,
                    ..Default::default()
                },
            ] {
                let r = s2.run(opts);
                assert_eq!(
                    r.counters.collisions, base.counters.collisions,
                    "{strategy:?}/{opts:?}"
                );
                assert_eq!(
                    r.counters.facets, base.counters.facets,
                    "{strategy:?}/{opts:?}"
                );
                let (a, b) = (base.tally_total(), r.tally_total());
                assert!(
                    ((a - b) / a.abs().max(1e-30)).abs() < 1e-9,
                    "{strategy:?}/{opts:?}: tally {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn deterministic_strategies_are_worker_count_invariant_at_sim_level() {
        for strategy in [TallyStrategy::Replicated, TallyStrategy::Privatized] {
            let mut problem = TestCase::Csp.build(ProblemScale::tiny(), 3);
            problem.transport.tally_strategy = strategy;
            let s = Simulation::new(problem);
            let run_with = |threads: usize| {
                s.run(RunOptions {
                    execution: Execution::Scheduled {
                        threads,
                        schedule: Schedule::Dynamic { chunk: 16 },
                    },
                    ..Default::default()
                })
            };
            let seq = s.run(RunOptions {
                execution: Execution::Sequential,
                ..Default::default()
            });
            for threads in [1, 2, 7] {
                let r = run_with(threads);
                assert_eq!(r.counters, seq.counters, "{strategy:?}/{threads}");
                assert!(
                    r.tally
                        .iter()
                        .zip(&seq.tally)
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "{strategy:?}/{threads}: merged tally bits differ from sequential"
                );
            }
        }
    }

    #[test]
    fn multi_timestep_runs() {
        let mut problem = TestCase::Stream.build(ProblemScale::tiny(), 3);
        problem.n_timesteps = 3;
        let s = Simulation::new(problem);
        let r = s.run(RunOptions {
            execution: Execution::Sequential,
            ..Default::default()
        });
        assert_eq!(r.timesteps, 3);
        // Stream particles all survive, so census fires every step.
        assert_eq!(r.counters.census as usize, 3 * s.problem().n_particles);
    }
}
