//! Particle state and source sampling.
//!
//! The Array-of-Structures layout here is the paper's preferred CPU layout
//! (§VI-D): one cache-resident struct per particle, loaded once and worked
//! on for the whole history. The Structure-of-Arrays alternative lives in
//! [`crate::soa`].

use crate::config::Problem;
use neutral_rng::{dist, CounterStream, Threefry2x64};
use neutral_xs::XsHints;

/// One Monte Carlo particle (AoS layout).
///
/// Mirrors the original mini-app's particle record: position, direction,
/// energy, weight, the two event timers (`dt_to_census`,
/// `mfp_to_collision`), the containing cell, and the cached cross-section
/// table indices. The RNG key/counter pair implements the per-particle
/// counter-based stream (paper §IV-F).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Particle {
    /// x position (m).
    pub x: f64,
    /// y position (m).
    pub y: f64,
    /// x direction cosine (unit vector with `omega_y`).
    pub omega_x: f64,
    /// y direction cosine.
    pub omega_y: f64,
    /// Kinetic energy (eV).
    pub energy: f64,
    /// Statistical weight (paper §IV-E).
    pub weight: f64,
    /// Remaining time to census in this timestep (s).
    pub dt_to_census: f64,
    /// Remaining mean-free-paths until the next collision.
    pub mfp_to_collision: f64,
    /// Containing cell, x index.
    pub cellx: u32,
    /// Containing cell, y index.
    pub celly: u32,
    /// Cached cross-section lookup hints.
    pub xs_hints: XsHints,
    /// Per-particle RNG stream id.
    pub key: u64,
    /// Per-particle RNG draw counter.
    pub rng_counter: u64,
    /// Whether the history has been terminated.
    pub dead: bool,
}

impl Particle {
    /// Linear (row-major) cell index in a mesh with `nx` columns.
    #[inline]
    #[must_use]
    pub fn cell_index(&self, nx: usize) -> usize {
        self.celly as usize * nx + self.cellx as usize
    }

    /// Weighted energy carried by this particle (eV).
    #[inline]
    #[must_use]
    pub fn weighted_energy(&self) -> f64 {
        self.weight * self.energy
    }
}

/// Sample the initial particle population for `problem`.
///
/// Birth draws, in stream order: x, y, direction angle, initial
/// mean-free-paths — four draws per particle, after which the particle's
/// counter is left positioned for its first collision draw.
#[must_use]
pub fn spawn_particles(problem: &Problem) -> Vec<Particle> {
    let rng = Threefry2x64::new([problem.seed, 0]);
    let src = problem.source;
    (0..problem.n_particles)
        .map(|id| {
            let key = id as u64;
            let mut counter = 0u64;
            let mut stream = CounterStream::new(&rng, key);
            let x = dist::uniform_range(&mut stream, &mut counter, src.x0, src.x1);
            let y = dist::uniform_range(&mut stream, &mut counter, src.y0, src.y1);
            let (omega_x, omega_y) = dist::isotropic_direction(&mut stream, &mut counter);
            let mfp = dist::exponential_mfp(&mut stream, &mut counter);
            let (cellx, celly) = problem.mesh.locate(x, y);
            // Seed the cross-section hints with a binary search into the
            // *birth cell's* material tables: there is no previous lookup
            // to walk from at birth, and walking from index 0 would be a
            // pathological cold start.
            let lib = problem
                .materials
                .library(problem.mesh.material(cellx, celly));
            let xs_hints = XsHints {
                absorb: lib.absorb.bin_index_binary(problem.initial_energy_ev) as u32,
                scatter: lib.scatter.bin_index_binary(problem.initial_energy_ev) as u32,
            };
            Particle {
                x,
                y,
                omega_x,
                omega_y,
                energy: problem.initial_energy_ev,
                weight: 1.0,
                dt_to_census: problem.dt,
                mfp_to_collision: mfp,
                cellx: cellx as u32,
                celly: celly as u32,
                xs_hints,
                key,
                rng_counter: counter,
                dead: false,
            }
        })
        .collect()
}

/// Total weighted energy of a population (eV) — the conservation budget.
#[must_use]
pub fn total_weighted_energy(particles: &[Particle]) -> f64 {
    particles
        .iter()
        .filter(|p| !p.dead)
        .map(Particle::weighted_energy)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ProblemScale, TestCase};

    fn problem() -> Problem {
        TestCase::Stream.build(ProblemScale::tiny(), 42)
    }

    #[test]
    fn spawn_count_and_bounds() {
        let p = problem();
        let particles = spawn_particles(&p);
        assert_eq!(particles.len(), p.n_particles);
        for part in &particles {
            assert!(p.source.contains(part.x, part.y));
            let norm = part.omega_x.hypot(part.omega_y);
            assert!((norm - 1.0).abs() < 1e-12);
            assert!(part.mfp_to_collision > 0.0);
            assert_eq!(part.energy, p.initial_energy_ev);
            assert_eq!(part.weight, 1.0);
            assert_eq!(part.rng_counter, 4);
            assert!(!part.dead);
        }
    }

    #[test]
    fn spawn_is_deterministic_in_seed() {
        let p = problem();
        let a = spawn_particles(&p);
        let b = spawn_particles(&p);
        assert_eq!(a, b);

        let mut p2 = problem();
        p2.seed = 43;
        let c = spawn_particles(&p2);
        assert_ne!(a, c);
    }

    #[test]
    fn spawn_cells_match_positions() {
        let p = problem();
        for part in spawn_particles(&p) {
            let (ix, iy) = p.mesh.locate(part.x, part.y);
            assert_eq!((part.cellx as usize, part.celly as usize), (ix, iy));
        }
    }

    #[test]
    fn total_weighted_energy_sums_alive_only() {
        let p = problem();
        let mut particles = spawn_particles(&p);
        let full = total_weighted_energy(&particles);
        assert!((full - p.n_particles as f64 * p.initial_energy_ev).abs() < 1e-3);
        particles[0].dead = true;
        let less = total_weighted_energy(&particles);
        assert!((full - less - p.initial_energy_ev).abs() < 1e-3);
    }

    #[test]
    fn particles_spread_across_source() {
        let p = problem();
        let particles = spawn_particles(&p);
        let mean_x: f64 = particles.iter().map(|p| p.x).sum::<f64>() / particles.len() as f64;
        let centre = 0.5 * (p.source.x0 + p.source.x1);
        assert!((mean_x - centre).abs() < 0.01);
    }
}
