//! Particle state and source sampling.
//!
//! The Array-of-Structures layout here is the paper's preferred CPU layout
//! (§VI-D): one cache-resident struct per particle, loaded once and worked
//! on for the whole history. The Structure-of-Arrays alternative lives in
//! [`crate::soa`].

use crate::arena::{apply_permutation_in_place, radix_sort_pairs, ScratchArena};
use crate::config::{Problem, RegroupPolicy};
use crate::scheduler::{parallel_for_owned_scratch, Schedule};
use neutral_rng::{dist, CounterStream, Threefry2x64};
use neutral_xs::XsHints;

/// One Monte Carlo particle (AoS layout).
///
/// Mirrors the original mini-app's particle record: position, direction,
/// energy, weight, the two event timers (`dt_to_census`,
/// `mfp_to_collision`), the containing cell, and the cached cross-section
/// table indices. The RNG key/counter pair implements the per-particle
/// counter-based stream (paper §IV-F).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Particle {
    /// x position (m).
    pub x: f64,
    /// y position (m).
    pub y: f64,
    /// x direction cosine (unit vector with `omega_y`).
    pub omega_x: f64,
    /// y direction cosine.
    pub omega_y: f64,
    /// Kinetic energy (eV).
    pub energy: f64,
    /// Statistical weight (paper §IV-E).
    pub weight: f64,
    /// Remaining time to census in this timestep (s).
    pub dt_to_census: f64,
    /// Remaining mean-free-paths until the next collision.
    pub mfp_to_collision: f64,
    /// Containing cell, x index.
    pub cellx: u32,
    /// Containing cell, y index.
    pub celly: u32,
    /// Cached cross-section lookup hints.
    pub xs_hints: XsHints,
    /// Per-particle RNG stream id.
    pub key: u64,
    /// Per-particle RNG draw counter.
    pub rng_counter: u64,
    /// Whether the history has been terminated.
    pub dead: bool,
}

impl Particle {
    /// Linear (row-major) cell index in a mesh with `nx` columns.
    #[inline]
    #[must_use]
    pub fn cell_index(&self, nx: usize) -> usize {
        self.celly as usize * nx + self.cellx as usize
    }

    /// Weighted energy carried by this particle (eV).
    #[inline]
    #[must_use]
    pub fn weighted_energy(&self) -> f64 {
        self.weight * self.energy
    }
}

/// Sample the initial particle population for `problem`.
///
/// Birth draws, in stream order: x, y, direction angle, initial
/// mean-free-paths — four draws per particle, after which the particle's
/// counter is left positioned for its first collision draw.
#[must_use]
pub fn spawn_particles(problem: &Problem) -> Vec<Particle> {
    let rng = Threefry2x64::new([problem.seed, 0]);
    let src = problem.source;
    (0..problem.n_particles)
        .map(|id| {
            let key = id as u64;
            let mut counter = 0u64;
            let mut stream = CounterStream::new(&rng, key);
            let x = dist::uniform_range(&mut stream, &mut counter, src.x0, src.x1);
            let y = dist::uniform_range(&mut stream, &mut counter, src.y0, src.y1);
            let (omega_x, omega_y) = dist::isotropic_direction(&mut stream, &mut counter);
            let mfp = dist::exponential_mfp(&mut stream, &mut counter);
            let (cellx, celly) = problem.mesh.locate(x, y);
            // Seed the cross-section hints with a binary search into the
            // *birth cell's* material tables: there is no previous lookup
            // to walk from at birth, and walking from index 0 would be a
            // pathological cold start.
            let lib = problem
                .materials
                .library(problem.mesh.material(cellx, celly));
            let xs_hints = XsHints {
                absorb: lib.absorb.bin_index_binary(problem.initial_energy_ev) as u32,
                scatter: lib.scatter.bin_index_binary(problem.initial_energy_ev) as u32,
            };
            Particle {
                x,
                y,
                omega_x,
                omega_y,
                energy: problem.initial_energy_ev,
                weight: 1.0,
                dt_to_census: problem.dt,
                mfp_to_collision: mfp,
                cellx: cellx as u32,
                celly: celly as u32,
                xs_hints,
                key,
                rng_counter: counter,
                dead: false,
            }
        })
        .collect()
}

/// Total weighted energy of a population (eV) — the conservation budget.
#[must_use]
pub fn total_weighted_energy(particles: &[Particle]) -> f64 {
    particles
        .iter()
        .filter(|p| !p.dead)
        .map(Particle::weighted_energy)
        .sum()
}

/// [`total_weighted_energy`] accumulated in **identity** (`key`) order:
/// `order[k]` is the physical position of the particle with key `k` (the
/// inverse of the regroup permutation). A regrouped run must report the
/// exact bits an unregrouped run reports, and this `f64` fold is one of
/// the order-sensitive reductions the bitwise contract anchors to key
/// order.
#[must_use]
pub fn total_weighted_energy_ordered(particles: &[Particle], order: &[u32]) -> f64 {
    order
        .iter()
        .map(|&pos| &particles[pos as usize])
        .filter(|p| !p.dead)
        .map(Particle::weighted_energy)
        .sum()
}

/// Energy-band key of the regroup/sort stages: the exponent plus the top
/// 8 mantissa bits, monotone for the positive energies in play (~0.4%
/// bands) — the same banding the [`crate::config::SortPolicy`] lane sort
/// uses.
#[inline]
#[must_use]
pub fn energy_band(energy_ev: f64) -> u32 {
    (energy_ev.to_bits() >> 44) as u32
}

/// Physically regroup the population for the next timestep (DESIGN.md
/// §14): within each tally-lane block of `lane_size` particles, stably
/// permute the records into the grouping `policy` asks for, dead
/// particles always last. Identity — `key`, the RNG counter, the cached
/// hints — moves with each record; lane membership is preserved because
/// the permutation never crosses a lane boundary, which (together with
/// the drivers' identity-order accumulation anchors) keeps merged
/// tallies and counters bitwise identical to [`RegroupPolicy::Off`].
///
/// Returns `true` if any particle actually moved. All staging lives in
/// `scratch` (`sort_keys`/`sort_tmp`/`perm`), so repeated calls allocate
/// nothing once warm.
pub fn regroup_particles(
    particles: &mut [Particle],
    policy: RegroupPolicy,
    nx: usize,
    lane_size: usize,
    scratch: &mut ScratchArena,
) -> bool {
    if policy == RegroupPolicy::Off || particles.is_empty() {
        return false;
    }
    let lane_size = lane_size.max(1);
    let mut moved = false;
    for lane in particles.chunks_mut(lane_size) {
        moved |= regroup_block(lane, policy, nx, scratch);
    }
    moved
}

/// Regroup one lane block in place (the per-lane body of
/// [`regroup_particles`]); returns `true` if any particle moved.
fn regroup_block(
    lane: &mut [Particle],
    policy: RegroupPolicy,
    nx: usize,
    scratch: &mut ScratchArena,
) -> bool {
    scratch.sort_keys.clear();
    for (i, p) in lane.iter().enumerate() {
        let group = match policy {
            RegroupPolicy::Off => unreachable!("rejected by the entry points"),
            RegroupPolicy::ByAlive => u32::from(p.dead),
            RegroupPolicy::ByCell => {
                if p.dead {
                    u32::MAX
                } else {
                    p.cell_index(nx) as u32
                }
            }
            RegroupPolicy::ByEnergyBand => {
                if p.dead {
                    u32::MAX
                } else {
                    energy_band(p.energy)
                }
            }
        };
        scratch.sort_keys.push((group, i as u32));
    }
    // Stable by construction (payloads are insertion indices), so
    // equal-group particles keep ascending key order within the lane.
    radix_sort_pairs(&mut scratch.sort_keys, &mut scratch.sort_tmp);
    if scratch
        .sort_keys
        .iter()
        .enumerate()
        .any(|(k, &(_, src))| src as usize != k)
    {
        scratch.perm.clear();
        scratch
            .perm
            .extend(scratch.sort_keys.iter().map(|&(_, src)| src));
        apply_permutation_in_place(lane, &mut scratch.perm);
        return true;
    }
    false
}

/// [`regroup_particles`] with the lane blocks scheduled across `workers`
/// workers through the lane scheduler (the same item-owned dispatch the
/// tally drivers use, at lane granularity).
///
/// Each lane block is an independent, deterministic permutation — no lane
/// reads or writes another — so the regrouped array is **identical for
/// any worker count and any schedule** to the serial
/// [`regroup_particles`]; only wall-clock changes. `scratches` is grown
/// to `workers` arenas and reused across calls (one arena per worker, as
/// in [`parallel_for_owned_scratch`]).
pub fn regroup_particles_parallel(
    particles: &mut [Particle],
    policy: RegroupPolicy,
    nx: usize,
    lane_size: usize,
    workers: usize,
    schedule: Schedule,
    scratches: &mut Vec<ScratchArena>,
) -> bool {
    if policy == RegroupPolicy::Off || particles.is_empty() {
        return false;
    }
    if scratches.is_empty() {
        scratches.push(ScratchArena::new());
    }
    let lane_size = lane_size.max(1);
    if workers <= 1 || particles.len() <= lane_size {
        return regroup_particles(particles, policy, nx, lane_size, &mut scratches[0]);
    }
    if scratches.len() < workers {
        scratches.resize_with(workers, ScratchArena::new);
    }
    let mut lanes: Vec<(&mut [Particle], bool)> = particles
        .chunks_mut(lane_size)
        .map(|lane| (lane, false))
        .collect();
    parallel_for_owned_scratch(
        schedule.lane_granular(),
        &mut lanes,
        &mut scratches[..workers],
        |_, (lane, moved), scratch| {
            *moved = regroup_block(lane, policy, nx, scratch);
        },
    );
    lanes.iter().any(|&(_, moved)| moved)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ProblemScale, TestCase};

    fn problem() -> Problem {
        TestCase::Stream.build(ProblemScale::tiny(), 42)
    }

    #[test]
    fn spawn_count_and_bounds() {
        let p = problem();
        let particles = spawn_particles(&p);
        assert_eq!(particles.len(), p.n_particles);
        for part in &particles {
            assert!(p.source.contains(part.x, part.y));
            let norm = part.omega_x.hypot(part.omega_y);
            assert!((norm - 1.0).abs() < 1e-12);
            assert!(part.mfp_to_collision > 0.0);
            assert_eq!(part.energy, p.initial_energy_ev);
            assert_eq!(part.weight, 1.0);
            assert_eq!(part.rng_counter, 4);
            assert!(!part.dead);
        }
    }

    #[test]
    fn spawn_is_deterministic_in_seed() {
        let p = problem();
        let a = spawn_particles(&p);
        let b = spawn_particles(&p);
        assert_eq!(a, b);

        let mut p2 = problem();
        p2.seed = 43;
        let c = spawn_particles(&p2);
        assert_ne!(a, c);
    }

    #[test]
    fn spawn_cells_match_positions() {
        let p = problem();
        for part in spawn_particles(&p) {
            let (ix, iy) = p.mesh.locate(part.x, part.y);
            assert_eq!((part.cellx as usize, part.celly as usize), (ix, iy));
        }
    }

    #[test]
    fn total_weighted_energy_sums_alive_only() {
        let p = problem();
        let mut particles = spawn_particles(&p);
        let full = total_weighted_energy(&particles);
        assert!((full - p.n_particles as f64 * p.initial_energy_ev).abs() < 1e-3);
        particles[0].dead = true;
        let less = total_weighted_energy(&particles);
        assert!((full - less - p.initial_energy_ev).abs() < 1e-3);
    }

    #[test]
    fn regroup_groups_within_lanes_and_keeps_identity() {
        let p = problem();
        let nx = p.mesh.nx();
        let mut particles = spawn_particles(&p);
        let n = particles.len();
        // Kill a scattered subset and scramble cells so grouping is
        // non-trivial.
        for (i, part) in particles.iter_mut().enumerate() {
            if i % 3 == 0 {
                part.dead = true;
            }
            part.cellx = (i as u32 * 7) % 11;
            part.celly = (i as u32 * 3) % 5;
        }
        let original = particles.clone();
        let lane_size = 16;
        let mut scratch = ScratchArena::new();
        for policy in [
            RegroupPolicy::ByAlive,
            RegroupPolicy::ByCell,
            RegroupPolicy::ByEnergyBand,
        ] {
            let mut pop = original.clone();
            let moved = regroup_particles(&mut pop, policy, nx, lane_size, &mut scratch);
            assert!(moved, "{policy:?}");
            let mut start = 0;
            while start < n {
                let end = (start + lane_size).min(n);
                let lane = &pop[start..end];
                // Same multiset of records (identity travels with the
                // particle and never crosses a lane boundary)...
                let mut keys: Vec<u64> = lane.iter().map(|p| p.key).collect();
                keys.sort_unstable();
                let expect: Vec<u64> = (start as u64..end as u64).collect();
                assert_eq!(keys, expect, "{policy:?}: lane {start}..{end} membership");
                for part in lane {
                    assert_eq!(
                        *part, original[part.key as usize],
                        "{policy:?}: record moved intact"
                    );
                }
                // ...grouped by the policy key, dead last, stable within
                // equal groups (ascending key).
                let group = |p: &Particle| match policy {
                    RegroupPolicy::ByAlive => u64::from(p.dead),
                    RegroupPolicy::ByCell => {
                        if p.dead {
                            u64::MAX
                        } else {
                            p.cell_index(nx) as u64
                        }
                    }
                    _ => {
                        if p.dead {
                            u64::MAX
                        } else {
                            u64::from(energy_band(p.energy))
                        }
                    }
                };
                for w in lane.windows(2) {
                    let (ga, gb) = (group(&w[0]), group(&w[1]));
                    assert!(ga <= gb, "{policy:?}: lane not grouped");
                    if ga == gb {
                        assert!(w[0].key < w[1].key, "{policy:?}: equal group not stable");
                    }
                }
                start = end;
            }
        }
        // Off and an already-grouped lane report no movement.
        let mut pop = original.clone();
        assert!(!regroup_particles(
            &mut pop,
            RegroupPolicy::Off,
            nx,
            lane_size,
            &mut scratch
        ));
        assert_eq!(pop, original);
        let mut grouped = original.clone();
        regroup_particles(
            &mut grouped,
            RegroupPolicy::ByAlive,
            nx,
            lane_size,
            &mut scratch,
        );
        let snapshot = grouped.clone();
        assert!(!regroup_particles(
            &mut grouped,
            RegroupPolicy::ByAlive,
            nx,
            lane_size,
            &mut scratch
        ));
        assert_eq!(grouped, snapshot);
    }

    #[test]
    fn parallel_regroup_matches_serial_for_any_worker_count() {
        let p = problem();
        let nx = p.mesh.nx();
        let mut original = spawn_particles(&p);
        for (i, part) in original.iter_mut().enumerate() {
            part.dead = i % 5 == 0;
            part.cellx = (i as u32 * 13) % 17;
            part.celly = (i as u32 * 7) % 9;
        }
        let lane_size = 16;
        for policy in [
            RegroupPolicy::ByAlive,
            RegroupPolicy::ByCell,
            RegroupPolicy::ByEnergyBand,
        ] {
            let mut serial = original.clone();
            let mut scratch = ScratchArena::new();
            let moved = regroup_particles(&mut serial, policy, nx, lane_size, &mut scratch);
            for workers in [1usize, 2, 7] {
                for schedule in [
                    Schedule::Static { chunk: None },
                    Schedule::Dynamic { chunk: 16 },
                    Schedule::Guided { min_chunk: 2 },
                ] {
                    let mut par = original.clone();
                    let mut scratches = Vec::new();
                    let par_moved = regroup_particles_parallel(
                        &mut par,
                        policy,
                        nx,
                        lane_size,
                        workers,
                        schedule,
                        &mut scratches,
                    );
                    assert_eq!(par_moved, moved, "{policy:?}/{workers}/{schedule:?}");
                    assert_eq!(par, serial, "{policy:?}/{workers}/{schedule:?}");
                }
            }
        }
        // Off injects nothing regardless of worker count.
        let mut par = original.clone();
        let mut scratches = Vec::new();
        assert!(!regroup_particles_parallel(
            &mut par,
            RegroupPolicy::Off,
            nx,
            lane_size,
            4,
            Schedule::Dynamic { chunk: 1 },
            &mut scratches,
        ));
        assert_eq!(par, original);
    }

    #[test]
    fn ordered_energy_matches_identity_order() {
        let p = problem();
        let mut particles = spawn_particles(&p);
        for (i, part) in particles.iter_mut().enumerate() {
            // Distinct magnitudes so summation order matters in f64.
            part.energy = 10f64.powi((i % 13) as i32 - 6);
            part.dead = i % 4 == 0;
        }
        let baseline = total_weighted_energy(&particles);
        let mut scratch = ScratchArena::new();
        let mut pop = particles.clone();
        regroup_particles(
            &mut pop,
            RegroupPolicy::ByEnergyBand,
            p.mesh.nx(),
            8,
            &mut scratch,
        );
        let mut order = vec![0u32; pop.len()];
        for (pos, part) in pop.iter().enumerate() {
            order[part.key as usize] = pos as u32;
        }
        let ordered = total_weighted_energy_ordered(&pop, &order);
        assert_eq!(
            ordered.to_bits(),
            baseline.to_bits(),
            "identity-order fold must reproduce the unregrouped bits"
        );
        // Physical-order fold over the regrouped population generally
        // does NOT (that is the hazard the ordered fold exists for).
        let physical = total_weighted_energy(&pop);
        assert!((physical - baseline).abs() <= 1e-9 * baseline.abs());
    }

    #[test]
    fn particles_spread_across_source() {
        let p = problem();
        let particles = spawn_particles(&p);
        let mean_x: f64 = particles.iter().map(|p| p.x).sum::<f64>() / particles.len() as f64;
        let centre = 0.5 * (p.source.x0 + p.source.x1);
        assert!((mean_x - centre).abs() < 0.01);
    }
}
