//! Sharded solves with fault-tolerant shard execution (DESIGN.md §18).
//!
//! A sharded solve cuts the population's **global lane space** into
//! contiguous shard ranges and runs each timestep of each shard as an
//! independent, stateless attempt on its own worker thread: the attempt
//! receives a clone of the shard's census-boundary particles, rebuilds
//! all transport state from scratch, runs the partitioned lane drivers
//! with the *global* lane geometry, and hands back a serialized
//! `ShardResult` (per-lane tally partials, per-lane counters, post-step
//! particle records). The coordinator then replays exactly the reductions
//! an unsharded [`crate::sim::SolveCore`] would run — the pairwise lane
//! merge of [`neutral_mesh::accum::merge_lanes_pairwise`], the
//! deterministic counter merge, and the key-order census-energy fold —
//! so the merged tallies, counters and final particle records are
//! **bitwise identical to the unsharded run for any shard count**.
//!
//! On top of that determinism sits the fault model: a per-shard
//! supervisor with a heartbeat deadline, deterministic fault injection
//! ([`ShardFaultPlan`]: `kill@S`, `hang@S`, `corrupt@S`, `panic@S`),
//! bounded retry with exponential backoff re-running a failed shard from
//! its census-boundary input (optionally reloaded through a per-shard
//! [`CheckpointStore`], exercising the crash-safe on-disk protocol), and
//! quarantine with a named [`ShardError`] once retries are exhausted.
//! Because attempts are stateless and their inputs are census-boundary
//! snapshots, a retried shard reproduces the clean run's bits exactly.

use crate::checkpoint::{
    config_fingerprint, fnv1a64, put_counters, put_particle, read_counters, read_particle,
    Checkpoint, CheckpointError, CheckpointStore, Reader, COUNTERS_RECORD_LEN, PARTICLE_RECORD_LEN,
};
use crate::counters::EventCounters;
use crate::history::TransportCtx;
use crate::over_events::run_over_events_lanes_partitioned;
use crate::over_particles::run_lanes_partitioned;
use crate::particle::{regroup_particles_parallel, spawn_particles, Particle};
use crate::sim::{execution_workers, Execution, Layout, RunOptions, RunReport, Scheme, Simulation};
use crate::soa::{run_lanes_soa_partitioned, ParticleSoA};
use neutral_mesh::accum::{merge_lanes_pairwise, DEFAULT_LANES};
use neutral_mesh::{LanePartition, TallyAccum};
use std::fmt;
use std::ops::Range;
use std::path::PathBuf;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// How the global lane space of a solve is cut into shards.
///
/// Shard boundaries always fall on **lane** boundaries: each shard owns a
/// contiguous run of whole lanes, and with them the contiguous particle
/// range those lanes cover. Because the lane decomposition is the unit of
/// every deterministic reduction (tally merge, counter merge, regroup
/// blocks), lane-aligned shards can each reproduce their lanes' partial
/// results bit-for-bit and the coordinator can replay the global merges
/// unchanged.
#[derive(Clone, Copy, Debug)]
pub struct ShardPlan {
    /// The global lane partition of the whole population — identical to
    /// the one an unsharded solve would compute.
    pub part: LanePartition,
    /// Number of shards the lane space is cut into.
    pub n_shards: usize,
}

impl ShardPlan {
    /// Plan `n_shards` shards over a population of `n_items` particles,
    /// using the same fixed global lane count an unsharded solve uses.
    #[must_use]
    pub fn new(n_items: usize, n_shards: usize) -> Self {
        assert!(n_shards >= 1, "need at least one shard");
        Self {
            part: LanePartition::new(n_items, DEFAULT_LANES),
            n_shards,
        }
    }

    /// The global lanes shard `shard` owns (may be empty when there are
    /// more shards than lanes).
    #[must_use]
    pub fn lane_range(&self, shard: usize) -> Range<usize> {
        assert!(shard < self.n_shards, "shard index out of range");
        let l = self.part.n_lanes;
        (shard * l / self.n_shards)..((shard + 1) * l / self.n_shards)
    }

    /// The global particle positions shard `shard` owns — the particles
    /// of its lanes. Particle keys in this range are global birth
    /// indices; they are the RNG stream identities and never re-based.
    #[must_use]
    pub fn particle_range(&self, shard: usize) -> Range<usize> {
        let lanes = self.lane_range(shard);
        let lo = (lanes.start * self.part.lane_size).min(self.part.n_items);
        let hi = (lanes.end * self.part.lane_size).min(self.part.n_items);
        lo..hi
    }
}

/// A fault the harness injects into shard attempts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardFaultKind {
    /// The attempt thread dies silently without reporting a result.
    Kill,
    /// The attempt stops making progress (and misses its heartbeat
    /// deadline) without exiting.
    Hang,
    /// The attempt reports a result whose bytes were corrupted in flight
    /// (detected by the result checksum).
    Corrupt,
    /// The attempt panics; the panic is caught and reported.
    Panic,
}

impl fmt::Display for ShardFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ShardFaultKind::Kill => "kill",
            ShardFaultKind::Hang => "hang",
            ShardFaultKind::Corrupt => "corrupt",
            ShardFaultKind::Panic => "panic",
        })
    }
}

impl FromStr for ShardFaultKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "kill" => Ok(ShardFaultKind::Kill),
            "hang" => Ok(ShardFaultKind::Hang),
            "corrupt" => Ok(ShardFaultKind::Corrupt),
            "panic" => Ok(ShardFaultKind::Panic),
            other => Err(format!(
                "unknown shard fault kind {other:?} (expected kill|hang|corrupt|panic)"
            )),
        }
    }
}

/// One injected shard fault: `kind@shard[:count]` — affect the next
/// `count` attempts of `shard` (default 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardFault {
    /// What goes wrong.
    pub kind: ShardFaultKind,
    /// Which shard it strikes.
    pub shard: usize,
    /// How many attempts of that shard it strikes (across the whole
    /// solve) before burning out.
    pub count: usize,
}

impl fmt::Display for ShardFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 1 {
            write!(f, "{}@{}", self.kind, self.shard)
        } else {
            write!(f, "{}@{}:{}", self.kind, self.shard, self.count)
        }
    }
}

impl FromStr for ShardFault {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = || format!("bad shard fault {s:?} (expected kind@shard[:count])");
        let (kind, rest) = s.split_once('@').ok_or_else(bad)?;
        let kind = kind.parse()?;
        let (shard, count) = match rest.split_once(':') {
            None => (rest, 1),
            Some((shard, count)) => (shard, count.parse::<usize>().map_err(|_| bad())?),
        };
        let shard = shard.parse::<usize>().map_err(|_| bad())?;
        if count == 0 {
            return Err(format!(
                "shard fault {s:?} has count 0 — it would never fire"
            ));
        }
        Ok(ShardFault { kind, shard, count })
    }
}

/// A comma-separated list of injected shard faults, e.g.
/// `kill@1,corrupt@0:2`. The empty plan injects nothing.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardFaultPlan {
    faults: Vec<ShardFault>,
}

impl ShardFaultPlan {
    /// A plan holding `faults`.
    #[must_use]
    pub fn new(faults: Vec<ShardFault>) -> Self {
        Self { faults }
    }

    /// Whether the plan injects nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The faults of the plan.
    #[must_use]
    pub fn faults(&self) -> &[ShardFault] {
        &self.faults
    }

    /// Consume one charge of the first unexhausted fault aimed at
    /// `shard`, returning its kind.
    fn take(&mut self, shard: usize) -> Option<ShardFaultKind> {
        let fault = self
            .faults
            .iter_mut()
            .find(|f| f.shard == shard && f.count > 0)?;
        fault.count -= 1;
        Some(fault.kind)
    }
}

impl fmt::Display for ShardFaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, fault) in self.faults.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{fault}")?;
        }
        Ok(())
    }
}

impl FromStr for ShardFaultPlan {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.trim().is_empty() {
            return Ok(Self::default());
        }
        let faults = s
            .split(',')
            .map(|part| part.trim().parse())
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { faults })
    }
}

/// Why a shard attempt (or the whole shard) failed.
#[derive(Debug)]
pub enum ShardError {
    /// The shard's worker died without reporting a result.
    Killed {
        /// The shard that failed.
        shard: usize,
    },
    /// The shard missed its heartbeat deadline and was abandoned.
    Hung {
        /// The shard that failed.
        shard: usize,
    },
    /// The shard reported a result that failed checksum or consistency
    /// validation.
    Corrupt {
        /// The shard that failed.
        shard: usize,
        /// What the validation rejected.
        detail: String,
    },
    /// The shard's worker panicked.
    Panicked {
        /// The shard that failed.
        shard: usize,
        /// The panic payload, when printable.
        detail: String,
    },
    /// The shard exhausted its retry budget and was quarantined; the
    /// solve fails with the last attempt's cause.
    Quarantined {
        /// The quarantined shard.
        shard: usize,
        /// Total attempts made (first try + retries).
        attempts: usize,
        /// Why the final attempt failed.
        cause: Box<ShardError>,
    },
    /// A per-shard checkpoint save/load failed.
    Checkpoint(CheckpointError),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Killed { shard } => {
                write!(f, "shard {shard} worker died without reporting a result")
            }
            ShardError::Hung { shard } => {
                write!(f, "shard {shard} missed its heartbeat deadline")
            }
            ShardError::Corrupt { shard, detail } => {
                write!(f, "shard {shard} returned a corrupt result: {detail}")
            }
            ShardError::Panicked { shard, detail } => {
                write!(f, "shard {shard} panicked: {detail}")
            }
            ShardError::Quarantined {
                shard,
                attempts,
                cause,
            } => write!(
                f,
                "shard {shard} quarantined after {attempts} attempts: {cause}"
            ),
            ShardError::Checkpoint(e) => write!(f, "shard checkpoint failed: {e}"),
        }
    }
}

impl std::error::Error for ShardError {}

/// Configuration of a sharded solve's execution and fault handling.
#[derive(Clone, Debug)]
pub struct ShardConfig {
    /// Number of shards to cut the lane space into (≥ 1).
    pub n_shards: usize,
    /// Retries allowed per failed shard attempt before quarantine
    /// (total attempts = `max_retries + 1`).
    pub max_retries: usize,
    /// Base backoff slept before retry `a` (doubling each retry);
    /// `Duration::ZERO` disables backoff.
    pub backoff: Duration,
    /// How long a shard may go without heartbeat progress before it is
    /// declared hung and abandoned.
    pub heartbeat_timeout: Duration,
    /// Deterministic fault injection plan (empty = no faults).
    pub fault_plan: ShardFaultPlan,
    /// When set, each shard checkpoints its census-boundary input to
    /// `<base>.shard<k>` through the crash-safe [`CheckpointStore`]
    /// protocol, and retries reload from disk instead of memory.
    pub checkpoint_base: Option<PathBuf>,
}

impl ShardConfig {
    /// A configuration with `n_shards` shards and default fault
    /// handling: 3 retries, 10 ms base backoff, 10 s heartbeat deadline,
    /// no injected faults, no on-disk shard checkpoints.
    #[must_use]
    pub fn new(n_shards: usize) -> Self {
        Self {
            n_shards,
            max_retries: 3,
            backoff: Duration::from_millis(10),
            heartbeat_timeout: Duration::from_secs(10),
            fault_plan: ShardFaultPlan::default(),
            checkpoint_base: None,
        }
    }
}

/// Counters of the fault-handling machinery, exposed through the solve
/// registry's `/stats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard attempts launched (including retries).
    pub attempts: u64,
    /// Failed attempts that were retried.
    pub retries: u64,
    /// `(step, shard)` units that succeeded only after at least one
    /// retry — i.e. work that had to be re-queued.
    pub requeues: u64,
    /// Shards that exhausted their retry budget and were quarantined.
    pub quarantined: u64,
}

impl ShardStats {
    /// Accumulate `other` into `self`.
    pub fn merge(&mut self, other: &ShardStats) {
        self.attempts += other.attempts;
        self.retries += other.retries;
        self.requeues += other.requeues;
        self.quarantined += other.quarantined;
    }
}

/// The serialized unit a shard attempt hands back to the coordinator:
/// per-lane tally partials, per-lane counters (census energy left to the
/// coordinator's fold), and the post-step particle records. Always
/// round-tripped through bytes — shard attempts behave like remote
/// processes, which both exercises the codec on every step and gives the
/// `corrupt` fault a realistic surface.
#[derive(Debug)]
struct ShardResult {
    shard: u64,
    step: u64,
    base0: u64,
    cells: u64,
    footprint: u64,
    lane_counters: Vec<EventCounters>,
    lane_tallies: Vec<Vec<f64>>,
    particles: Vec<Particle>,
}

const SHARD_MAGIC: &[u8; 8] = b"NEUTSHRD";
const SHARD_VERSION: u32 = 1;
/// magic + version + payload length.
const SHARD_HEADER_LEN: usize = 8 + 4 + 8;

impl ShardResult {
    fn to_bytes(&self) -> Vec<u8> {
        let n_lanes = self.lane_counters.len();
        let payload_len = 6 * 8
            + n_lanes * (COUNTERS_RECORD_LEN + self.cells as usize * 8)
            + 8
            + self.particles.len() * PARTICLE_RECORD_LEN;
        let mut out = Vec::with_capacity(SHARD_HEADER_LEN + payload_len + 8);
        out.extend_from_slice(SHARD_MAGIC);
        out.extend_from_slice(&SHARD_VERSION.to_le_bytes());
        out.extend_from_slice(&(payload_len as u64).to_le_bytes());

        for v in [
            self.shard,
            self.step,
            self.base0,
            self.cells,
            self.footprint,
            n_lanes as u64,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for c in &self.lane_counters {
            put_counters(&mut out, c);
        }
        for lane in &self.lane_tallies {
            for v in lane {
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        out.extend_from_slice(&(self.particles.len() as u64).to_le_bytes());
        for p in &self.particles {
            put_particle(&mut out, p);
        }

        debug_assert_eq!(out.len(), SHARD_HEADER_LEN + payload_len);
        let checksum = fnv1a64(out.iter().copied());
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    fn from_bytes(buf: &[u8]) -> Result<Self, String> {
        if buf.len() < SHARD_HEADER_LEN + 8 {
            return Err("truncated shard result".to_owned());
        }
        if &buf[..8] != SHARD_MAGIC {
            return Err("bad shard result magic".to_owned());
        }
        let version = u32::from_le_bytes(buf[8..12].try_into().unwrap());
        if version != SHARD_VERSION {
            return Err(format!("unsupported shard result version {version}"));
        }
        let payload_len = u64::from_le_bytes(buf[12..20].try_into().unwrap());
        let total_wide = SHARD_HEADER_LEN as u128 + payload_len as u128 + 8;
        if buf.len() as u128 != total_wide {
            return Err("shard result length mismatch".to_owned());
        }
        let total = buf.len();
        let expected = u64::from_le_bytes(buf[total - 8..].try_into().unwrap());
        let found = fnv1a64(buf[..total - 8].iter().copied());
        if expected != found {
            return Err(format!(
                "shard result checksum mismatch (expected {expected:#018x}, found {found:#018x})"
            ));
        }

        let mut r = Reader::new(&buf[SHARD_HEADER_LEN..total - 8]);
        let fail = |e: CheckpointError| e.to_string();
        let shard = r.u64().map_err(fail)?;
        let step = r.u64().map_err(fail)?;
        let base0 = r.u64().map_err(fail)?;
        let cells = r.u64().map_err(fail)?;
        let footprint = r.u64().map_err(fail)?;
        let n_lanes = r.u64().map_err(fail)? as usize;

        let lane_bytes = n_lanes
            .checked_mul(COUNTERS_RECORD_LEN + cells as usize * 8)
            .filter(|&b| b <= r.remaining())
            .ok_or_else(|| format!("lane count {n_lanes} exceeds payload"))?;
        let _ = lane_bytes;
        let mut lane_counters = Vec::with_capacity(n_lanes);
        for _ in 0..n_lanes {
            lane_counters.push(read_counters(&mut r).map_err(fail)?);
        }
        let mut lane_tallies = Vec::with_capacity(n_lanes);
        for _ in 0..n_lanes {
            let mut lane = Vec::with_capacity(cells as usize);
            for _ in 0..cells {
                lane.push(r.f64().map_err(fail)?);
            }
            lane_tallies.push(lane);
        }
        let n_particles = r.u64().map_err(fail)? as usize;
        if n_particles
            .checked_mul(PARTICLE_RECORD_LEN)
            .is_none_or(|b| b != r.remaining())
        {
            return Err(format!(
                "particle count {n_particles} inconsistent with payload size"
            ));
        }
        let mut particles = Vec::with_capacity(n_particles);
        for _ in 0..n_particles {
            particles.push(read_particle(&mut r).map_err(fail)?);
        }

        Ok(Self {
            shard,
            step,
            base0,
            cells,
            footprint,
            lane_counters,
            lane_tallies,
            particles,
        })
    }
}

/// Everything one shard attempt needs, owned so the attempt thread is
/// `'static` and can be abandoned if it hangs.
struct AttemptTask {
    sim: Arc<Simulation>,
    options: RunOptions,
    particles: Vec<Particle>,
    step: usize,
    shard: usize,
    /// Global lane size — a tail shard must NOT recompute this locally.
    lane_size: usize,
    /// Lanes this shard owns.
    n_lanes: usize,
    /// Global particle index of `particles[0]`.
    base0: usize,
    cells: usize,
    heartbeat: Arc<AtomicU64>,
}

/// One stateless shard attempt: census-boundary dt reset, shard-local
/// regroup with the global lane size, identity-map rebuild, one step of
/// the scheme's partitioned lane driver, serialization. Pure function of
/// its inputs — re-running it reproduces the same bytes.
fn run_attempt(task: AttemptTask) -> Vec<u8> {
    let AttemptTask {
        sim,
        options,
        mut particles,
        step,
        shard,
        lane_size,
        n_lanes,
        base0,
        cells,
        heartbeat,
    } = task;
    let problem = sim.problem();
    let ctx = TransportCtx {
        mesh: &problem.mesh,
        materials: &problem.materials,
        rng: sim.rng(),
        cfg: &problem.transport,
    };
    let (workers, schedule) = execution_workers(options.execution);
    if step > 0 {
        for p in particles.iter_mut().filter(|p| !p.dead) {
            p.dt_to_census = problem.dt;
        }
        // The census-boundary regroup permutes within lane blocks only,
        // and this shard's lanes are whole global lanes — so regrouping
        // the shard slice with the GLOBAL lane size produces exactly the
        // global regroup's arrangement of these positions.
        let mut scratches = Vec::new();
        regroup_particles_parallel(
            &mut particles,
            problem.transport.regroup_policy,
            problem.mesh.nx(),
            lane_size,
            workers,
            schedule,
            &mut scratches,
        );
    }
    heartbeat.fetch_add(1, Ordering::Relaxed);

    // Keys are global birth indices; the local identity map indexes them
    // relative to the shard's base. Deriving `permuted` from the actual
    // storage order (rather than carrying it across steps) matches the
    // checkpoint/restart semantics, which are proven bitwise-neutral.
    let base = base0 as u64;
    let permuted = particles
        .iter()
        .enumerate()
        .any(|(pos, p)| p.key != base + pos as u64);
    let mut order = Vec::new();
    if permuted {
        order = vec![0u32; particles.len()];
        for (pos, p) in particles.iter().enumerate() {
            order[(p.key - base) as usize] = pos as u32;
        }
    }
    let order_ref = permuted.then_some(order.as_slice());
    let part = LanePartition {
        n_items: particles.len(),
        lane_size,
        n_lanes,
    };
    let mut accum = TallyAccum::new(problem.transport.tally_strategy, cells, n_lanes.max(1));

    let mut lane_counters = match options.scheme {
        Scheme::OverEvents => {
            let mut state = None;
            // The event driver reads particle columns; the AoS records
            // here are the shard's census-transfer serialization format.
            let mut soa = ParticleSoA::default();
            soa.copy_from_aos(&particles);
            let (counters, _timings) = run_over_events_lanes_partitioned(
                &mut soa,
                &ctx,
                &mut accum,
                options.backend,
                workers,
                schedule,
                &mut state,
                order_ref,
                part,
                base0 as u32,
            );
            soa.write_aos(&mut particles);
            counters
        }
        Scheme::OverParticles => match options.layout {
            Layout::Aos => run_lanes_partitioned(
                &mut particles,
                &ctx,
                &mut accum,
                workers,
                schedule,
                order_ref,
                part,
            ),
            layout @ (Layout::Soa | Layout::SoaEventStepped) => {
                let mut soa = ParticleSoA::default();
                soa.copy_from_aos(&particles);
                let mut arenas = Vec::new();
                let counters = run_lanes_soa_partitioned(
                    &mut soa,
                    &ctx,
                    &mut accum,
                    workers,
                    schedule,
                    layout == Layout::SoaEventStepped,
                    &mut arenas,
                    order_ref,
                    part,
                );
                soa.write_aos(&mut particles);
                counters
            }
        },
    };
    // Empty populations can yield fewer (or one placeholder) counter
    // slots; normalize to exactly one per owned lane.
    lane_counters.resize(n_lanes, EventCounters::default());
    lane_counters.truncate(n_lanes);
    heartbeat.fetch_add(1, Ordering::Relaxed);

    let lane_tallies = (0..n_lanes).map(|l| accum.lane_partial(l)).collect();
    let result = ShardResult {
        shard: shard as u64,
        step: step as u64,
        base0: base,
        cells: cells as u64,
        footprint: accum.footprint_bytes() as u64,
        lane_counters,
        lane_tallies,
        particles,
    };
    let bytes = result.to_bytes();
    heartbeat.fetch_add(1, Ordering::Relaxed);
    bytes
}

/// A resumable solve executed as independent, supervised shards whose
/// merged results are bitwise identical to an unsharded
/// [`crate::sim::SolveCore`] run (see the module docs for the fault
/// model).
pub struct ShardedSolve {
    options: RunOptions,
    config: ShardConfig,
    fingerprint: u64,
    n_timesteps: usize,
    plan: ShardPlan,
    /// Census-boundary particles per shard, physical storage order.
    shards: Vec<Vec<Particle>>,
    counters: EventCounters,
    tally: Vec<f64>,
    tally_footprint: usize,
    initial_energy_ev: f64,
    step: usize,
    elapsed: Duration,
    stats: ShardStats,
    stores: Option<Vec<CheckpointStore>>,
}

impl ShardedSolve {
    /// Start a fresh sharded solve of `sim`'s problem.
    ///
    /// Panics if the configured tally strategy is not deterministic or
    /// the execution is `ScheduledPrivatized` — sharding is defined on
    /// the lane-decomposed drivers only (callers such as the CLI upgrade
    /// atomic configurations to `replicated` before getting here).
    #[must_use]
    pub fn new(sim: &Simulation, options: RunOptions, config: ShardConfig) -> Self {
        assert!(config.n_shards >= 1, "need at least one shard");
        let problem = sim.problem();
        assert!(
            problem.transport.tally_strategy.is_deterministic(),
            "sharded solves require a deterministic tally strategy"
        );
        assert!(
            !matches!(options.execution, Execution::ScheduledPrivatized { .. }),
            "sharded solves require a lane-decomposed execution"
        );
        let particles = spawn_particles(problem);
        let initial_energy_ev = particles.len() as f64 * problem.initial_energy_ev;
        problem.materials.prepare(problem.transport.xs_search);
        let plan = ShardPlan::new(particles.len(), config.n_shards);
        let mut shards: Vec<Vec<Particle>> = Vec::with_capacity(config.n_shards);
        for shard in 0..config.n_shards {
            shards.push(particles[plan.particle_range(shard)].to_vec());
        }
        let fingerprint = config_fingerprint(problem);
        let stores = config.checkpoint_base.as_ref().map(|base| {
            (0..config.n_shards)
                .map(|shard| {
                    let mut path = base.as_os_str().to_owned();
                    path.push(format!(".shard{shard}"));
                    CheckpointStore::new(PathBuf::from(path))
                })
                .collect()
        });
        Self {
            options,
            fingerprint,
            n_timesteps: problem.n_timesteps,
            plan,
            shards,
            counters: EventCounters::default(),
            tally: vec![0.0; problem.mesh.num_cells()],
            tally_footprint: 0,
            initial_energy_ev,
            step: 0,
            elapsed: Duration::ZERO,
            stats: ShardStats::default(),
            stores,
            config,
        }
    }

    /// Whether every timestep has been executed.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.step >= self.n_timesteps
    }

    /// Timesteps completed so far.
    #[must_use]
    pub fn steps_done(&self) -> usize {
        self.step
    }

    /// Total timesteps of the solve.
    #[must_use]
    pub fn n_timesteps(&self) -> usize {
        self.n_timesteps
    }

    /// The shard plan in force.
    #[must_use]
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Fault-handling counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> ShardStats {
        self.stats
    }

    /// The fingerprint a shard's on-disk checkpoint carries: the config
    /// fingerprint mixed with the shard's coordinates, so a shard file
    /// can never resume the wrong shard (or the wrong shard count).
    #[must_use]
    pub fn shard_fingerprint(&self, shard: usize) -> u64 {
        let mut bytes = Vec::with_capacity(24);
        bytes.extend_from_slice(&self.fingerprint.to_le_bytes());
        bytes.extend_from_slice(&(shard as u64).to_le_bytes());
        bytes.extend_from_slice(&(self.plan.n_shards as u64).to_le_bytes());
        fnv1a64(bytes.into_iter())
    }

    /// Execute the next timestep: supervise every shard (with retry on
    /// failure), then replay the unsharded reductions over the shard
    /// results. Returns `Ok(false)` (doing nothing) once all timesteps
    /// have run; a quarantined shard surfaces as
    /// [`ShardError::Quarantined`] and leaves the solve at the failed
    /// census boundary.
    pub fn step(&mut self, sim: &Arc<Simulation>) -> Result<bool, ShardError> {
        debug_assert_eq!(
            config_fingerprint(sim.problem()),
            self.fingerprint,
            "ShardedSolve stepped against a different simulation"
        );
        if self.is_done() {
            return Ok(false);
        }
        let start = Instant::now();
        self.save_shard_checkpoints()?;
        let mut results = Vec::with_capacity(self.plan.n_shards);
        for shard in 0..self.plan.n_shards {
            if self.plan.lane_range(shard).is_empty() {
                continue;
            }
            let result = self.run_shard_with_retry(sim, shard)?;
            results.push((shard, result));
        }
        self.merge_step(results);
        self.elapsed += start.elapsed();
        self.step += 1;
        Ok(true)
    }

    /// Snapshot the complete resumable state at the current census
    /// boundary, identical in shape to an unsharded solve's checkpoint
    /// (the particle concatenation IS the unsharded physical order).
    #[must_use]
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            fingerprint: self.fingerprint,
            next_step: self.step,
            n_timesteps: self.n_timesteps,
            elapsed: self.elapsed,
            tally_footprint_bytes: self.tally_footprint,
            counters: self.counters,
            tally: self.tally.clone(),
            particles: self.shards.concat(),
        }
    }

    /// Finish the solve and build the report. The concatenated shard
    /// populations, merged counters and merged tally are bitwise
    /// identical to the unsharded run's. (`kernel_timings` is `None` for
    /// sharded runs; timings are diagnostics, excluded from the bitwise
    /// contract.)
    #[must_use]
    pub fn finish(self) -> RunReport {
        let particles = self.shards.concat();
        let alive = particles.iter().filter(|p| !p.dead).count();
        RunReport {
            elapsed: self.elapsed,
            counters: self.counters,
            tally: self.tally,
            kernel_timings: None,
            alive,
            initial_energy_ev: self.initial_energy_ev,
            tally_footprint_bytes: self.tally_footprint,
            timesteps: self.step,
        }
    }

    /// Write each shard's census-boundary input through its crash-safe
    /// store (when configured) so retries can prove durable recovery.
    fn save_shard_checkpoints(&self) -> Result<(), ShardError> {
        let Some(stores) = &self.stores else {
            return Ok(());
        };
        for (shard, store) in stores.iter().enumerate() {
            if self.plan.lane_range(shard).is_empty() {
                continue;
            }
            let ckpt = Checkpoint {
                fingerprint: self.shard_fingerprint(shard),
                next_step: self.step,
                n_timesteps: self.n_timesteps,
                elapsed: Duration::ZERO,
                tally_footprint_bytes: 0,
                counters: EventCounters::default(),
                tally: Vec::new(),
                particles: self.shards[shard].clone(),
            };
            store.save(&ckpt).map_err(ShardError::Checkpoint)?;
        }
        Ok(())
    }

    /// The input population for an attempt of `shard`: the in-memory
    /// census-boundary snapshot, or — on retries with stores configured —
    /// the snapshot reloaded through the on-disk protocol.
    fn attempt_input(&self, shard: usize, retry: bool) -> Result<Vec<Particle>, ShardError> {
        if retry {
            if let Some(stores) = &self.stores {
                let (ckpt, _recovery) = stores[shard].load().map_err(ShardError::Checkpoint)?;
                if ckpt.fingerprint != self.shard_fingerprint(shard) || ckpt.next_step != self.step
                {
                    return Err(ShardError::Corrupt {
                        shard,
                        detail: "shard checkpoint does not match this shard/step".to_owned(),
                    });
                }
                return Ok(ckpt.particles);
            }
        }
        Ok(self.shards[shard].clone())
    }

    fn run_shard_with_retry(
        &mut self,
        sim: &Arc<Simulation>,
        shard: usize,
    ) -> Result<ShardResult, ShardError> {
        let max_retries = self.config.max_retries;
        let mut last_error = None;
        for attempt in 0..=max_retries {
            if attempt > 0 {
                let backoff = self.config.backoff * 2u32.pow((attempt as u32 - 1).min(16));
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                }
            }
            let input = self.attempt_input(shard, attempt > 0)?;
            let fault = self.config.fault_plan.take(shard);
            self.stats.attempts += 1;
            match self.supervise(sim, shard, input, fault) {
                Ok(result) => {
                    if attempt > 0 {
                        self.stats.requeues += 1;
                    }
                    return Ok(result);
                }
                Err(e) => {
                    if attempt < max_retries {
                        self.stats.retries += 1;
                    }
                    last_error = Some(e);
                }
            }
        }
        self.stats.quarantined += 1;
        Err(ShardError::Quarantined {
            shard,
            attempts: max_retries + 1,
            cause: Box::new(last_error.expect("at least one attempt ran")),
        })
    }

    /// Run one attempt of `shard` on its own thread under heartbeat
    /// supervision. `fault`, when set, is injected into the attempt.
    fn supervise(
        &self,
        sim: &Arc<Simulation>,
        shard: usize,
        particles: Vec<Particle>,
        fault: Option<ShardFaultKind>,
    ) -> Result<ShardResult, ShardError> {
        let range = self.plan.particle_range(shard);
        let lanes = self.plan.lane_range(shard);
        let task = AttemptTask {
            sim: Arc::clone(sim),
            options: self.options,
            particles,
            step: self.step,
            shard,
            lane_size: self.plan.part.lane_size,
            n_lanes: lanes.len(),
            base0: range.start,
            cells: self.tally.len(),
            heartbeat: Arc::new(AtomicU64::new(0)),
        };
        let heartbeat = Arc::clone(&task.heartbeat);
        let cancel = Arc::new(AtomicBool::new(false));
        let cancel_attempt = Arc::clone(&cancel);
        let (tx, rx) = mpsc::channel::<Result<Vec<u8>, ShardError>>();

        let handle = std::thread::spawn(move || {
            match fault {
                // A killed worker: exit without reporting anything — the
                // supervisor sees the channel close.
                Some(ShardFaultKind::Kill) => return,
                // A wedged worker: no progress, no exit (until the
                // supervisor abandons the attempt and cancels it).
                Some(ShardFaultKind::Hang) => {
                    while !cancel_attempt.load(Ordering::Relaxed) {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    return;
                }
                _ => {}
            }
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if fault == Some(ShardFaultKind::Panic) {
                    panic!("injected shard panic");
                }
                run_attempt(task)
            }));
            let message = match outcome {
                Ok(mut bytes) => {
                    if fault == Some(ShardFaultKind::Corrupt) {
                        let mid = bytes.len() / 2;
                        bytes[mid] ^= 0xFF;
                    }
                    Ok(bytes)
                }
                Err(payload) => Err(ShardError::Panicked {
                    shard,
                    detail: panic_detail(payload.as_ref()),
                }),
            };
            let _ = tx.send(message);
        });

        let poll = (self.config.heartbeat_timeout / 4)
            .clamp(Duration::from_millis(1), Duration::from_millis(50));
        let mut last_beat = 0;
        let mut last_progress = Instant::now();
        let verdict = loop {
            match rx.recv_timeout(poll) {
                Ok(Ok(bytes)) => break self.decode(shard, &bytes),
                Ok(Err(e)) => break Err(e),
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    let beat = heartbeat.load(Ordering::Relaxed);
                    if beat != last_beat {
                        last_beat = beat;
                        last_progress = Instant::now();
                    } else if last_progress.elapsed() >= self.config.heartbeat_timeout {
                        // Abandon the wedged thread: cancel lets an
                        // injected hang exit; a genuinely stuck thread
                        // leaks, which is the price of not blocking the
                        // whole solve on it.
                        cancel.store(true, Ordering::Relaxed);
                        break Err(ShardError::Hung { shard });
                    }
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    break Err(ShardError::Killed { shard });
                }
            }
        };
        if !matches!(verdict, Err(ShardError::Hung { .. })) {
            let _ = handle.join();
        }
        verdict
    }

    /// Deserialize and validate a shard's reported result.
    fn decode(&self, shard: usize, bytes: &[u8]) -> Result<ShardResult, ShardError> {
        let corrupt = |detail: String| ShardError::Corrupt { shard, detail };
        let result = ShardResult::from_bytes(bytes).map_err(corrupt)?;
        let range = self.plan.particle_range(shard);
        let lanes = self.plan.lane_range(shard);
        if result.shard != shard as u64
            || result.step != self.step as u64
            || result.base0 != range.start as u64
        {
            return Err(corrupt(
                "result identity does not match this shard/step".to_owned(),
            ));
        }
        if result.cells != self.tally.len() as u64 || result.lane_counters.len() != lanes.len() {
            return Err(corrupt(
                "result geometry does not match the shard plan".to_owned(),
            ));
        }
        if result.particles.len() != range.len() {
            return Err(corrupt(format!(
                "result holds {} particles, shard owns {}",
                result.particles.len(),
                range.len()
            )));
        }
        let base = range.start as u64;
        let mut seen = vec![false; range.len()];
        for p in &result.particles {
            let k = p.key.wrapping_sub(base) as usize;
            if k >= seen.len() || seen[k] {
                return Err(corrupt(format!(
                    "particle keys are not a permutation of the shard's range (key {})",
                    p.key
                )));
            }
            seen[k] = true;
        }
        Ok(result)
    }

    /// Replay, over the shard results of one step, exactly the
    /// reductions the unsharded solve runs: the global pairwise lane
    /// merge into the running tally, the deterministic counter merge in
    /// global lane order, and the census-energy fold in key order.
    fn merge_step(&mut self, results: Vec<(usize, ShardResult)>) {
        let n_lanes = self.plan.part.n_lanes;
        let mut lane_counters = Vec::with_capacity(n_lanes);
        let mut lane_tallies: Vec<&Vec<f64>> = Vec::with_capacity(n_lanes);
        for (_, r) in &results {
            lane_counters.extend(r.lane_counters.iter().copied());
            lane_tallies.extend(r.lane_tallies.iter());
        }
        debug_assert_eq!(lane_counters.len(), n_lanes);
        let mut step_counters = EventCounters::merge_deterministic(&lane_counters);
        let merged = merge_lanes_pairwise(n_lanes, &|lane| lane_tallies[lane].clone());
        for (acc, v) in self.tally.iter_mut().zip(&merged) {
            *acc += v;
        }

        // One sequential fold across the whole population in key order —
        // bitwise the fold the unsharded drivers run (key order equals
        // physical order whenever nothing is permuted).
        let mut census = 0.0f64;
        for (shard, r) in &results {
            let base = self.plan.particle_range(*shard).start as u64;
            let mut pos_by_key = vec![0u32; r.particles.len()];
            for (pos, p) in r.particles.iter().enumerate() {
                pos_by_key[(p.key - base) as usize] = pos as u32;
            }
            for &pos in &pos_by_key {
                let p = &r.particles[pos as usize];
                if !p.dead {
                    census += p.weighted_energy();
                }
            }
        }
        step_counters.census_energy_ev = census;

        self.counters.merge(&step_counters);
        // The residual is a snapshot, not a sum across steps.
        self.counters.census_energy_ev = step_counters.census_energy_ev;
        self.tally_footprint = results.iter().map(|(_, r)| r.footprint as usize).sum();
        for (shard, r) in results {
            self.shards[shard] = r.particles;
        }
    }
}

/// Render a caught panic payload for error reporting.
fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plan_round_trips() {
        let plan: ShardFaultPlan = "kill@1,corrupt@0:2,hang@3".parse().unwrap();
        assert_eq!(plan.faults().len(), 3);
        assert_eq!(
            plan.faults()[1],
            ShardFault {
                kind: ShardFaultKind::Corrupt,
                shard: 0,
                count: 2
            }
        );
        assert_eq!(plan.to_string(), "kill@1,corrupt@0:2,hang@3");
        assert_eq!(plan.to_string().parse::<ShardFaultPlan>().unwrap(), plan);
        assert!(ShardFaultPlan::from_str("").unwrap().is_empty());
        assert!("explode@1".parse::<ShardFaultPlan>().is_err());
        assert!("kill@x".parse::<ShardFaultPlan>().is_err());
        assert!("kill@1:0".parse::<ShardFaultPlan>().is_err());
    }

    #[test]
    fn fault_plan_charges_burn_out() {
        let mut plan: ShardFaultPlan = "kill@2:2".parse().unwrap();
        assert_eq!(plan.take(0), None);
        assert_eq!(plan.take(2), Some(ShardFaultKind::Kill));
        assert_eq!(plan.take(2), Some(ShardFaultKind::Kill));
        assert_eq!(plan.take(2), None);
    }

    #[test]
    fn shard_plan_partitions_lanes_and_particles() {
        for n_items in [0usize, 1, 31, 100, 1000, 4096] {
            for n_shards in [1usize, 2, 3, 5, 32, 40] {
                let plan = ShardPlan::new(n_items, n_shards);
                let mut lanes_seen = 0;
                let mut items_seen = 0;
                for shard in 0..n_shards {
                    let lanes = plan.lane_range(shard);
                    let items = plan.particle_range(shard);
                    assert_eq!(lanes.start, lanes_seen, "lanes must be contiguous");
                    assert_eq!(items.start.min(n_items), items_seen.min(n_items));
                    lanes_seen = lanes.end;
                    items_seen = items.end;
                }
                assert_eq!(lanes_seen, plan.part.n_lanes, "lanes must be covered");
                assert_eq!(items_seen, n_items, "particles must be covered");
            }
        }
    }

    #[test]
    fn shard_result_codec_round_trips_and_detects_corruption() {
        let particles = vec![Particle {
            x: 0.5,
            y: 0.25,
            omega_x: 1.0,
            omega_y: 0.0,
            energy: 1.0e6,
            weight: 2.0,
            dt_to_census: 0.1,
            mfp_to_collision: 3.0,
            cellx: 1,
            celly: 2,
            xs_hints: neutral_xs::XsHints::default(),
            key: 7,
            rng_counter: 42,
            dead: false,
        }];
        let result = ShardResult {
            shard: 1,
            step: 3,
            base0: 7,
            cells: 2,
            footprint: 64,
            lane_counters: vec![EventCounters {
                collisions: 11,
                lost_energy_ev: 0.5,
                ..EventCounters::default()
            }],
            lane_tallies: vec![vec![1.25, -3.5]],
            particles,
        };
        let bytes = result.to_bytes();
        let back = ShardResult::from_bytes(&bytes).unwrap();
        assert_eq!(back.shard, 1);
        assert_eq!(back.step, 3);
        assert_eq!(back.lane_counters, result.lane_counters);
        assert_eq!(back.lane_tallies, result.lane_tallies);
        assert_eq!(back.particles.len(), 1);
        assert_eq!(back.particles[0].key, 7);

        let mut torn = bytes.clone();
        torn.truncate(bytes.len() - 3);
        assert!(ShardResult::from_bytes(&torn).is_err());

        let mut flipped = bytes;
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0xFF;
        let err = ShardResult::from_bytes(&flipped).unwrap_err();
        assert!(err.contains("checksum"), "got: {err}");
    }
}
