//! The Over-Particles history loop: follow one particle from its current
//! state to census, death or the runaway guard (paper §V-A, Listing 1).
//!
//! The loop embodies the register-caching behaviour the paper credits for
//! the scheme's CPU advantage (§VII-A-2): the microscopic cross sections
//! are re-looked-up only after collisions (the only events that change the
//! energy) and after material-changing facet crossings (the only events
//! that change the table set), the local density only after facet
//! crossings (the only events that change the cell), and the energy
//! deposit accumulates in a register that is flushed to the tally mesh
//! only at facet encounters and at the end of the history (§VI-A).

use crate::config::TransportConfig;
use crate::counters::EventCounters;
use crate::events::{
    energy_deposition, handle_collision, handle_facet, move_particle, next_event, resolve_micro_xs,
    NextEvent, TallySink,
};
use crate::particle::Particle;
use neutral_mesh::StructuredMesh2D;
use neutral_rng::{CbRng, CounterStream};
use neutral_xs::{macroscopic_per_m, number_density, MaterialId, MaterialSet};

/// Shared read-only context of a transport solve.
pub struct TransportCtx<'a, R: CbRng> {
    /// The computational mesh.
    pub mesh: &'a StructuredMesh2D,
    /// Per-material cross-section libraries, indexed by the mesh's
    /// material map.
    pub materials: &'a MaterialSet,
    /// The simulation's counter-based generator.
    pub rng: &'a R,
    /// Numerical controls.
    pub cfg: &'a TransportConfig,
}

impl<'a, R: CbRng> Clone for TransportCtx<'a, R> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<'a, R: CbRng> Copy for TransportCtx<'a, R> {}

/// How a history ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HistoryEnd {
    /// Reached the end of the timestep.
    Census,
    /// Terminated by the energy/weight cutoff.
    Died,
    /// Abandoned by the runaway guard (counts as `stuck`).
    Stuck,
}

/// Track `p` until census/death, depositing into `tally` and counting
/// events into `counters`.
pub fn track_to_census<R: CbRng, T: TallySink>(
    p: &mut Particle,
    ctx: &TransportCtx<'_, R>,
    tally: &mut T,
    counters: &mut EventCounters,
) -> HistoryEnd {
    track_to_census_inner(p, ctx, tally, counters, None)
}

/// As [`track_to_census`], but the caller has already resolved the
/// particle's microscopic cross sections (e.g. through the batched
/// `lookup_many` lane-block API) — the initial lookup is skipped and
/// `micro` is used in its place. The caller must also have updated the
/// particle's hints, so the trajectory is bitwise identical to the
/// unprimed loop.
pub fn track_to_census_primed<R: CbRng, T: TallySink>(
    p: &mut Particle,
    ctx: &TransportCtx<'_, R>,
    tally: &mut T,
    counters: &mut EventCounters,
    micro: neutral_xs::MicroXs,
) -> HistoryEnd {
    track_to_census_inner(p, ctx, tally, counters, Some(micro))
}

fn track_to_census_inner<R: CbRng, T: TallySink>(
    p: &mut Particle,
    ctx: &TransportCtx<'_, R>,
    tally: &mut T,
    counters: &mut EventCounters,
    primed: Option<neutral_xs::MicroXs>,
) -> HistoryEnd {
    if p.dead {
        return HistoryEnd::Died;
    }
    let mut stream = CounterStream::new(ctx.rng, p.key);

    // State cached "in registers" between events (§V-A): refreshed only by
    // the event that invalidates it. The local material id rides along
    // with the density — both change only at facet crossings.
    let mut local_mat = ctx.mesh.material(p.cellx as usize, p.celly as usize);
    let mut micro = match primed {
        Some(m) => m,
        None => lookup_micro(p, ctx, local_mat, counters),
    };
    let mut local_n = {
        counters.density_reads += 1;
        number_density(ctx.mesh.density(p.cellx as usize, p.celly as usize))
    };
    // Register-accumulated deposit, flushed at facets and at history end.
    let mut deposit_acc = 0.0f64;
    let mut events_this_history = 0u64;

    loop {
        events_this_history += 1;
        if events_this_history > ctx.cfg.max_events_per_history {
            counters.stuck += 1;
            flush(tally, p, ctx.mesh.nx(), &mut deposit_acc, counters);
            p.dead = true;
            return HistoryEnd::Stuck;
        }

        let sigma_t = macroscopic_per_m(micro.total_barns(), local_n);
        let bounds = ctx.mesh.cell_bounds(p.cellx as usize, p.celly as usize);

        match next_event(p, sigma_t, bounds) {
            NextEvent::Census(d) => {
                deposit_acc += energy_deposition(p.energy, p.weight, d, local_n, micro);
                move_particle(p, d, sigma_t);
                p.dt_to_census = 0.0;
                counters.census += 1;
                flush(tally, p, ctx.mesh.nx(), &mut deposit_acc, counters);
                return HistoryEnd::Census;
            }
            NextEvent::Facet(d, facet) => {
                deposit_acc += energy_deposition(p.energy, p.weight, d, local_n, micro);
                move_particle(p, d, sigma_t);
                // "At the end of a facet encounter the value is flushed
                // onto the tally mesh" — one atomic RMW per facet (§VI-A).
                flush(tally, p, ctx.mesh.nx(), &mut deposit_acc, counters);
                handle_facet(p, facet, ctx.mesh, counters);
                // The cached local density must be updated: the random
                // read from the cell-centred density mesh. The material
                // index rides on the same cell read; crossing into a
                // different material invalidates the cached microscopic
                // cross sections too (same energy, different tables).
                counters.density_reads += 1;
                local_n = number_density(ctx.mesh.density(p.cellx as usize, p.celly as usize));
                let mat = ctx.mesh.material(p.cellx as usize, p.celly as usize);
                if mat != local_mat {
                    local_mat = mat;
                    counters.material_switches += 1;
                    micro = lookup_micro(p, ctx, local_mat, counters);
                }
            }
            NextEvent::Collision(d) => {
                deposit_acc += energy_deposition(p.energy, p.weight, d, local_n, micro);
                move_particle(p, d, sigma_t);
                let died = handle_collision(p, &mut stream, micro, ctx.cfg, counters);
                if died {
                    flush(tally, p, ctx.mesh.nx(), &mut deposit_acc, counters);
                    return HistoryEnd::Died;
                }
                // The collision changed the energy: refresh the cached
                // microscopic cross sections (§VI-A).
                micro = lookup_micro(p, ctx, local_mat, counters);
            }
        }
    }
}

/// Look up the microscopic cross sections of material `mat` with the
/// configured [`crate::config::LookupStrategy`] (§VI-A plus the
/// unionized/hashed accelerations), through the shared
/// [`resolve_micro_xs`] seam.
#[inline]
pub(crate) fn lookup_micro<R: CbRng>(
    p: &mut Particle,
    ctx: &TransportCtx<'_, R>,
    mat: MaterialId,
    counters: &mut EventCounters,
) -> neutral_xs::MicroXs {
    resolve_micro_xs(
        ctx.materials.library(mat),
        ctx.cfg.xs_search,
        p.energy,
        &mut p.xs_hints,
        counters,
    )
}

#[inline]
fn flush<T: TallySink>(
    tally: &mut T,
    p: &Particle,
    nx: usize,
    deposit_acc: &mut f64,
    counters: &mut EventCounters,
) {
    if *deposit_acc != 0.0 {
        tally.deposit(p.cell_index(nx), *deposit_acc);
        counters.tally_flushes += 1;
        *deposit_acc = 0.0;
    }
}

/// Outcome of a single-event step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// The history continues.
    Continue,
    /// The history reached census.
    Census,
    /// The history was terminated by a cutoff.
    Died,
}

/// Advance exactly one event **without holding any state across calls**:
/// the microscopic cross sections and local density are re-fetched on
/// every invocation and the deposit is flushed on every event.
///
/// This is the memory behaviour the paper attributes to layouts/compilers
/// that cannot keep history state in registers — the mechanism behind the
/// SoA penalty of §VI-D (in C, aliasing between the field arrays forces
/// exactly these reloads) and the per-particle state streaming of the
/// Over-Events scheme (§V-B). Physics is identical to
/// [`track_to_census`] — same RNG draws, same trajectory — but the
/// bookkeeping counters record the extra lookups, density reads and tally
/// flushes that the caching avoided.
pub fn step_particle_uncached<R: CbRng, T: TallySink>(
    p: &mut Particle,
    ctx: &TransportCtx<'_, R>,
    tally: &mut T,
    counters: &mut EventCounters,
) -> StepOutcome {
    if p.dead {
        return StepOutcome::Died;
    }
    let mut stream = CounterStream::new(ctx.rng, p.key);

    // Re-fetched every event: no caching between calls (material id
    // included — each event re-reads the cell's material).
    let mat = ctx.mesh.material(p.cellx as usize, p.celly as usize);
    let micro = lookup_micro(p, ctx, mat, counters);
    counters.density_reads += 1;
    let local_n = number_density(ctx.mesh.density(p.cellx as usize, p.celly as usize));

    let sigma_t = macroscopic_per_m(micro.total_barns(), local_n);
    let bounds = ctx.mesh.cell_bounds(p.cellx as usize, p.celly as usize);

    match next_event(p, sigma_t, bounds) {
        NextEvent::Census(d) => {
            let mut acc = energy_deposition(p.energy, p.weight, d, local_n, micro);
            move_particle(p, d, sigma_t);
            p.dt_to_census = 0.0;
            counters.census += 1;
            flush(tally, p, ctx.mesh.nx(), &mut acc, counters);
            StepOutcome::Census
        }
        NextEvent::Facet(d, facet) => {
            let mut acc = energy_deposition(p.energy, p.weight, d, local_n, micro);
            move_particle(p, d, sigma_t);
            flush(tally, p, ctx.mesh.nx(), &mut acc, counters);
            handle_facet(p, facet, ctx.mesh, counters);
            StepOutcome::Continue
        }
        NextEvent::Collision(d) => {
            let mut acc = energy_deposition(p.energy, p.weight, d, local_n, micro);
            move_particle(p, d, sigma_t);
            flush(tally, p, ctx.mesh.nx(), &mut acc, counters);
            let died = handle_collision(p, &mut stream, micro, ctx.cfg, counters);
            if died {
                StepOutcome::Died
            } else {
                StepOutcome::Continue
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ProblemScale, TestCase};
    use crate::particle::spawn_particles;
    use neutral_mesh::tally::SequentialTally;
    use neutral_rng::Threefry2x64;

    fn run_case(case: TestCase) -> (Vec<Particle>, EventCounters, SequentialTally) {
        let problem = case.build(ProblemScale::tiny(), 7);
        let mut particles = spawn_particles(&problem);
        let rng = Threefry2x64::new([problem.seed, 1]);
        let ctx = TransportCtx {
            mesh: &problem.mesh,
            materials: &problem.materials,
            rng: &rng,
            cfg: &problem.transport,
        };
        let mut tally = SequentialTally::new(problem.mesh.num_cells());
        let mut counters = EventCounters::default();
        for p in &mut particles {
            track_to_census(p, &ctx, &mut tally, &mut counters);
        }
        (particles, counters, tally)
    }

    #[test]
    fn stream_problem_is_facet_dominated() {
        let (particles, counters, tally) = run_case(TestCase::Stream);
        assert_eq!(counters.census as usize, particles.len());
        assert_eq!(counters.collisions, 0, "vacuum must not collide");
        // At tiny scale (128 cells over 1 m, 1.38 m of track) expect
        // roughly 128 * 1.38 * ~1.27 (mean of |cos|+|sin|) ~ 225
        // facets/history; allow a broad band.
        let fph = counters.facets_per_history();
        assert!(fph > 100.0 && fph < 400.0, "facets/history = {fph}");
        assert!(counters.reflections > 0, "reflective walls must be hit");
        // Essentially nothing deposits in a vacuum.
        assert!(tally.total() < 1e-10);
        // All particles survive at full energy.
        for p in &particles {
            assert!(!p.dead);
            assert_eq!(p.energy, 1.0e6);
            assert_eq!(p.dt_to_census, 0.0);
        }
    }

    #[test]
    fn scatter_problem_is_collision_dominated() {
        let (particles, counters, tally) = run_case(TestCase::Scatter);
        assert!(counters.collisions > counters.facets);
        let cph = counters.collisions_per_history();
        assert!(cph > 50.0, "collisions/history = {cph}");
        assert!(tally.total() > 0.0);
        // Dense medium: most histories terminate (weight/energy cutoff)
        // rather than reaching census.
        let died: usize = particles.iter().filter(|p| p.dead).count();
        assert!(
            died > particles.len() / 2,
            "{died}/{} died",
            particles.len()
        );
        assert_eq!(counters.stuck, 0);
    }

    #[test]
    fn csp_problem_is_mixed() {
        let (_, counters, tally) = run_case(TestCase::Csp);
        assert!(counters.facets > 0 && counters.collisions > 0);
        assert!(tally.total() > 0.0);
        assert_eq!(counters.stuck, 0);
    }

    #[test]
    fn particles_stay_in_domain() {
        for case in TestCase::ALL {
            let (particles, _, _) = run_case(case);
            for p in &particles {
                // Reflective boundaries keep positions inside the domain
                // (up to floating-point dust at the walls).
                assert!(p.x > -1e-9 && p.x < 1.0 + 1e-9, "{case:?}: x={}", p.x);
                assert!(p.y > -1e-9 && p.y < 1.0 + 1e-9, "{case:?}: y={}", p.y);
            }
        }
    }

    #[test]
    fn tracking_is_deterministic() {
        let (a_particles, a_counters, a_tally) = run_case(TestCase::Csp);
        let (b_particles, b_counters, b_tally) = run_case(TestCase::Csp);
        assert_eq!(a_particles, b_particles);
        assert_eq!(a_counters, b_counters);
        assert_eq!(a_tally.values(), b_tally.values());
    }

    #[test]
    fn dead_particles_are_skipped() {
        let problem = TestCase::Stream.build(ProblemScale::tiny(), 7);
        let mut particles = spawn_particles(&problem);
        let rng = Threefry2x64::new([problem.seed, 1]);
        let ctx = TransportCtx {
            mesh: &problem.mesh,
            materials: &problem.materials,
            rng: &rng,
            cfg: &problem.transport,
        };
        let mut tally = SequentialTally::new(problem.mesh.num_cells());
        let mut counters = EventCounters::default();
        particles[0].dead = true;
        let end = track_to_census(&mut particles[0], &ctx, &mut tally, &mut counters);
        assert_eq!(end, HistoryEnd::Died);
        assert_eq!(counters.total_events(), 0);
    }

    #[test]
    fn weight_never_increases_energy_never_increases() {
        let problem = TestCase::Scatter.build(ProblemScale::tiny(), 11);
        let mut particles = spawn_particles(&problem);
        let rng = Threefry2x64::new([problem.seed, 1]);
        let ctx = TransportCtx {
            mesh: &problem.mesh,
            materials: &problem.materials,
            rng: &rng,
            cfg: &problem.transport,
        };
        let mut tally = SequentialTally::new(problem.mesh.num_cells());
        let mut counters = EventCounters::default();
        for p in particles.iter_mut().take(100) {
            let (w0, e0) = (p.weight, p.energy);
            track_to_census(p, &ctx, &mut tally, &mut counters);
            assert!(p.weight <= w0);
            assert!(p.energy <= e0);
        }
    }
}
