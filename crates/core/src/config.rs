//! Problem definitions: the paper's three test cases and the knobs of the
//! transport solve.

use neutral_mesh::{Rect, StructuredMesh2D};
use neutral_xs::{constants, CrossSectionLibrary, MaterialSet};

/// How a collision resolves (DESIGN.md §3 and §10).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CollisionModel {
    /// The mini-app's semi-analogue branch: with probability `p_a` the
    /// collision is an *absorption* (weight is multiplied by `1 - p_a`,
    /// direction unchanged), otherwise an *elastic scatter* (direction and
    /// energy change, weight unchanged). This preserves the two-way branch
    /// whose divergence the paper analyses (§VI-A), and is the default.
    #[default]
    Analogue,
    /// True implicit capture: every collision multiplies the weight by
    /// `1 - p_a` and then scatters. With this model the track-length
    /// estimator is exactly consistent with the population energy balance
    /// (in expectation), which the conservation tests exploit.
    ImplicitCapture,
}

/// How microscopic cross sections are looked up during tracking: the
/// paper's two strategies (§VI-A) plus the unionized-grid and hashed-grid
/// accelerations. Re-exported from `neutral_xs`; see
/// [`neutral_xs::XsLookup`] for the backend contract.
pub use neutral_xs::LookupStrategy;

/// Pre-subsystem name of [`LookupStrategy`] (kept for compatibility; the
/// old `CachedLinear` variant is now called `Hinted`).
pub type XsSearch = LookupStrategy;

/// How energy deposits are accumulated into the tally mesh: the paper's
/// shared-atomic baseline plus the deterministic lane-replicated and
/// cell-block-privatized backends. Re-exported from `neutral_mesh`; see
/// [`neutral_mesh::accum`] for the backend contract and the
/// deterministic-merge invariant.
pub use neutral_mesh::TallyStrategy;

/// How the batched drivers order their compacted iteration lists before
/// each round's kernels (the coherence sort stage; DESIGN.md §13).
///
/// Sorting permutes **iteration order only** — never the physical
/// particle arrays. Lanes, tally lanes and the per-particle counter-based
/// RNG streams are all keyed by fixed particle index, and every
/// order-sensitive `f64` reduction in the kernels is anchored back to
/// ascending index order, so each policy is bitwise identical to
/// [`SortPolicy::Off`]; only the memory-access pattern (and therefore
/// the speed) changes. The one observable that legitimately moves is the
/// [`crate::EventCounters::cs_search_steps`] work meter — reducing search
/// work is the point of [`SortPolicy::ByEnergyBand`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum SortPolicy {
    /// Iterate the compacted list in ascending particle-index order (the
    /// seed behaviour).
    #[default]
    Off,
    /// Stable-sort the iteration list by mesh cell: mesh reads cluster
    /// and the separated tally flush writes each cell's deposits
    /// back-to-back instead of scattering across the tally mesh.
    ByCell,
    /// Stable-sort the iteration list by energy band (exponent plus the
    /// top mantissa bits): batched `lookup_many` gathers walk monotone
    /// energy-grid runs, which the unionized/hashed backends turn into
    /// run-detection hits instead of fresh searches.
    ByEnergyBand,
    /// Autotuned [`SortPolicy::ByCell`]: each breadth-first window keeps a
    /// cheap per-round heuristic (deposits ÷ distinct cells last round)
    /// and enables the clustered flush only when deposits genuinely share
    /// cells. Physics stays bitwise identical everywhere (a clustered
    /// flush computes the same bits); the decisions are visible in the
    /// [`crate::EventCounters::clustered_flushes`] meter, which on the
    /// lane-decomposed drivers (windows cut at the fixed lane
    /// boundaries) is additionally worker-count independent — the legacy
    /// shared-atomic event path sizes windows from the thread count, so
    /// only there the *meter* (never the physics) varies with it.
    Auto,
}

impl SortPolicy {
    /// All policies, in benchmarking order.
    pub const ALL: [SortPolicy; 4] = [
        SortPolicy::Off,
        SortPolicy::ByCell,
        SortPolicy::ByEnergyBand,
        SortPolicy::Auto,
    ];

    /// Stable lower-case name (parameter files, CLI flags, figure output).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SortPolicy::Off => "off",
            SortPolicy::ByCell => "by_cell",
            SortPolicy::ByEnergyBand => "by_energy_band",
            SortPolicy::Auto => "auto",
        }
    }
}

impl std::str::FromStr for SortPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(SortPolicy::Off),
            "by_cell" => Ok(SortPolicy::ByCell),
            "by_energy_band" => Ok(SortPolicy::ByEnergyBand),
            "auto" => Ok(SortPolicy::Auto),
            other => Err(format!(
                "unknown sort policy `{other}` (off|by_cell|by_energy_band|auto)"
            )),
        }
    }
}

impl std::fmt::Display for SortPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Which kernel backend the Over-Events drivers dispatch to (DESIGN.md
/// §19): one value per implementation of the crate's kernel-backend
/// trait, the seam the paper's §VI-G scalar/vectorised comparison
/// generalises into.
///
/// Every backend computes the same per-lane expressions in the same
/// order — no FMA contraction, no reassociation — so all three are
/// **bitwise identical** on every golden fixture; only the instruction
/// selection (and therefore the speed) changes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// Straightforward per-particle loops with early predicate exits.
    #[default]
    Scalar,
    /// Restructured loops: branch-light arithmetic passes over whole
    /// windows (auto-vectorisable), followed by short scalar fix-up
    /// passes for the inherently branchy work (RNG, table walks, cell
    /// updates) — the paper's §VI-G restructuring.
    Vectorized,
    /// Explicit-SIMD distance pass (`core::arch` AVX2 on `x86_64`),
    /// runtime feature-detected; hosts without AVX2 fall back to the
    /// scalar expressions lane for lane, bitwise identically.
    Simd,
}

impl Backend {
    /// All backends, in benchmarking order.
    pub const ALL: [Backend; 3] = [Backend::Scalar, Backend::Vectorized, Backend::Simd];

    /// Stable lower-case name (parameter files, CLI flags, figure output).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Vectorized => "vectorized",
            Backend::Simd => "simd",
        }
    }
}

impl std::str::FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "scalar" => Ok(Backend::Scalar),
            "vectorized" => Ok(Backend::Vectorized),
            "simd" => Ok(Backend::Simd),
            other => Err(format!(
                "unknown backend `{other}` (scalar|vectorized|simd)"
            )),
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How the particle population is **physically regrouped** at each census
/// boundary of a multi-timestep run (DESIGN.md §14).
///
/// Where [`SortPolicy`] permutes iteration order only (and therefore
/// loses on CPU whenever it turns state accesses into random gathers —
/// the §13 finding), regrouping permutes the particles *themselves*, so
/// the hot kernels keep walking plain ascending memory over a population
/// that is now grouped by the chosen key. Identity moves with the
/// physical record: `key`, the RNG stream counter, the cached table
/// hints and the tally-lane assignment all travel with the particle, and
/// the drivers anchor every order-sensitive `f64` accumulation to
/// identity (`key`) order, so merged tallies, counters and
/// RNG-consumption are bitwise identical to [`RegroupPolicy::Off`] for
/// any worker count under the deterministic tally backends.
///
/// The permutation is applied **within each tally lane's block**: lanes
/// are the unit of deterministic scheduling (a lane's windows/ranges are
/// walked independently), so cross-lane movement would buy no extra
/// locality while severing the lane identity that the bitwise-merge
/// invariant rests on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum RegroupPolicy {
    /// Never permute: particles stay at their birth positions (the seed
    /// behaviour, and the baseline every other policy must reproduce
    /// bitwise).
    #[default]
    Off,
    /// Group each lane block by mesh cell (dead particles last): the
    /// decide/collision kernels touch mesh cells in clustered order.
    ByCell,
    /// Group each lane block by energy band (dead particles last):
    /// batched lookups walk monotone energy-grid runs in plain ascending
    /// lane order.
    ByEnergyBand,
    /// Group survivors before dead particles (stream compaction of the
    /// storage itself): live lanes become a contiguous prefix of every
    /// window.
    ByAlive,
}

impl RegroupPolicy {
    /// All policies, in benchmarking order.
    pub const ALL: [RegroupPolicy; 4] = [
        RegroupPolicy::Off,
        RegroupPolicy::ByCell,
        RegroupPolicy::ByEnergyBand,
        RegroupPolicy::ByAlive,
    ];

    /// Stable lower-case name (parameter files, CLI flags, figure output).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RegroupPolicy::Off => "off",
            RegroupPolicy::ByCell => "by_cell",
            RegroupPolicy::ByEnergyBand => "by_energy_band",
            RegroupPolicy::ByAlive => "by_alive",
        }
    }
}

impl std::str::FromStr for RegroupPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(RegroupPolicy::Off),
            "by_cell" => Ok(RegroupPolicy::ByCell),
            "by_energy_band" => Ok(RegroupPolicy::ByEnergyBand),
            "by_alive" => Ok(RegroupPolicy::ByAlive),
            other => Err(format!(
                "unknown regroup policy `{other}` (off|by_cell|by_energy_band|by_alive)"
            )),
        }
    }
}

impl std::fmt::Display for RegroupPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What happens when a particle's weight falls below the cutoff
/// (variance-reduction policy, paper §IV-E).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LowWeightPolicy {
    /// Terminate the history (the mini-app's behaviour: "once the weight
    /// has reduced past a fixed point ... we terminate").
    Terminate,
    /// Russian roulette: survive with probability `w / target` carrying
    /// weight `target`, else die — unbiased in expectation, bounding the
    /// history count without the systematic loss of plain termination.
    Roulette {
        /// Weight assigned to survivors (as a fraction of birth weight);
        /// must exceed the weight cutoff.
        target: f64,
    },
}

/// Numerical controls of the transport solve.
#[derive(Clone, Copy, Debug)]
pub struct TransportConfig {
    /// Histories end when the particle energy falls below this (eV).
    pub min_energy_ev: f64,
    /// Histories end when the weight falls below this fraction of the
    /// birth weight (paper §IV-E: "once the weight has reduced past a
    /// fixed point").
    pub weight_cutoff: f64,
    /// Collision resolution model.
    pub collision_model: CollisionModel,
    /// Cross-section lookup strategy (§VI-A and the unionized/hashed
    /// accelerations).
    pub xs_search: LookupStrategy,
    /// Tally-accumulation backend (§VI-F: shared atomics vs replication
    /// vs cell-block privatization).
    pub tally_strategy: TallyStrategy,
    /// Coherence sort of the batched drivers' iteration lists
    /// (DESIGN.md §13; bitwise identical physics under every policy).
    pub sort_policy: SortPolicy,
    /// Physical regrouping of the particle population at census
    /// boundaries (DESIGN.md §14; bitwise identical physics under every
    /// policy — identity moves with the particle).
    pub regroup_policy: RegroupPolicy,
    /// Low-weight policy (termination vs Russian roulette).
    pub low_weight: LowWeightPolicy,
    /// Safety valve: abandon a history after this many events and count it
    /// in [`crate::EventCounters::stuck`] (must stay zero in practice).
    pub max_events_per_history: u64,
}

impl Default for TransportConfig {
    fn default() -> Self {
        Self {
            min_energy_ev: constants::MIN_ENERGY_OF_INTEREST_EV,
            weight_cutoff: 1.0e-6,
            collision_model: CollisionModel::Analogue,
            xs_search: LookupStrategy::Hinted,
            tally_strategy: TallyStrategy::Atomic,
            sort_policy: SortPolicy::Off,
            regroup_policy: RegroupPolicy::Off,
            low_weight: LowWeightPolicy::Terminate,
            max_events_per_history: 1_000_000,
        }
    }
}

/// A fully-built transport problem: mesh, materials, source and timestep
/// controls.
#[derive(Clone, Debug)]
pub struct Problem {
    /// The computational mesh with its density field and per-cell
    /// material indices.
    pub mesh: StructuredMesh2D,
    /// Per-material cross-section libraries, indexed by the mesh's
    /// material map. The paper's problems carry a single material
    /// (`MaterialSet::single`); scenario problems carry several.
    pub materials: MaterialSet,
    /// Particles are born uniformly inside this region.
    pub source: Rect,
    /// Number of particle histories per timestep.
    pub n_particles: usize,
    /// Timestep (seconds). The paper fixes 1e-7 s "to control the number
    /// of events that occurred per timestep" (§IV-A/B).
    pub dt: f64,
    /// Number of timesteps to run (the paper's plots use one).
    pub n_timesteps: usize,
    /// Master RNG seed.
    pub seed: u64,
    /// Birth energy (eV).
    pub initial_energy_ev: f64,
    /// Transport controls.
    pub transport: TransportConfig,
}

/// Scaling of a canonical test case, so the same problem shapes run from
/// unit-test size up to the paper's full size.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProblemScale {
    /// Cells along each mesh axis.
    pub mesh_cells: usize,
    /// Divide the paper's particle count by this factor.
    pub particle_divisor: usize,
}

impl ProblemScale {
    /// The paper's full scale: 4000^2 mesh, 1e6/1e7 particles (§IV-B).
    #[must_use]
    pub fn paper() -> Self {
        Self {
            mesh_cells: 4000,
            particle_divisor: 1,
        }
    }

    /// Benchmark scale: 1000^2 mesh, 1/100th of the particles. Keeps every
    /// figure regenerable in seconds while preserving the event mix.
    #[must_use]
    pub fn small() -> Self {
        Self {
            mesh_cells: 1000,
            particle_divisor: 100,
        }
    }

    /// Test scale: 128^2 mesh, 1/2000th of the particles.
    #[must_use]
    pub fn tiny() -> Self {
        Self {
            mesh_cells: 128,
            particle_divisor: 2000,
        }
    }
}

/// The paper's three test problems (§IV-B, Figure 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TestCase {
    /// Homogeneous near-vacuum (1e-30 kg/m^3); particles born in the
    /// centre stream across the mesh, reflecting off the walls — ~7000
    /// facet events per particle, essentially no collisions.
    Stream,
    /// Homogeneous dense medium (1e3 kg/m^3); particles collide inside or
    /// near their birth cell until the weight/energy cutoffs fire.
    Scatter,
    /// "Center square problem": low-density background with a dense square
    /// in the middle; particles born bottom-left stream until they strike
    /// the square. The paper calls this the most realistic case.
    Csp,
}

impl TestCase {
    /// All three cases, in the order the paper plots them.
    pub const ALL: [TestCase; 3] = [TestCase::Stream, TestCase::Scatter, TestCase::Csp];

    /// Display name used in figure output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TestCase::Stream => "stream",
            TestCase::Scatter => "scatter",
            TestCase::Csp => "csp",
        }
    }

    /// The paper's particle count for this case (§IV-B).
    #[must_use]
    pub fn paper_particles(self) -> usize {
        match self {
            TestCase::Stream | TestCase::Csp => 1_000_000,
            TestCase::Scatter => 10_000_000,
        }
    }

    /// Build the problem at the given scale with the given seed.
    ///
    /// Domain is 1 m x 1 m (giving the ~0.25 mm cells at paper scale that
    /// yield ~7000 facet crossings per 1.38 m of 1 MeV track).
    #[must_use]
    pub fn build(self, scale: ProblemScale, seed: u64) -> Problem {
        let n = scale.mesh_cells;
        let (width, height) = (1.0, 1.0);
        let n_particles = (self.paper_particles() / scale.particle_divisor).max(1);
        let xs = CrossSectionLibrary::synthetic(30_000, seed ^ 0xc5_0dd);

        let (mesh, source) = match self {
            TestCase::Stream => {
                let mesh = StructuredMesh2D::uniform(n, n, width, height, 1.0e-30);
                // Small box in the centre of the space.
                let source = Rect::new(0.45, 0.55, 0.45, 0.55);
                (mesh, source)
            }
            TestCase::Scatter => {
                let mesh = StructuredMesh2D::uniform(n, n, width, height, 1.0e3);
                let source = Rect::new(0.45, 0.55, 0.45, 0.55);
                (mesh, source)
            }
            TestCase::Csp => {
                let mut mesh = StructuredMesh2D::uniform(n, n, width, height, 0.05);
                // Dense square in the centre, side = 1/4 of the domain.
                mesh.set_region(Rect::new(0.375, 0.625, 0.375, 0.625), 1.0e3);
                // Particles start in the bottom left of the mesh.
                let source = Rect::new(0.0, 0.1, 0.0, 0.1);
                (mesh, source)
            }
        };

        Problem {
            mesh,
            materials: MaterialSet::single(xs),
            source,
            n_particles,
            dt: 1.0e-7,
            n_timesteps: 1,
            seed,
            initial_energy_ev: constants::INITIAL_ENERGY_EV,
            transport: TransportConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_particle_counts() {
        assert_eq!(TestCase::Stream.paper_particles(), 1_000_000);
        assert_eq!(TestCase::Scatter.paper_particles(), 10_000_000);
        assert_eq!(TestCase::Csp.paper_particles(), 1_000_000);
    }

    #[test]
    fn scales_divide_particles() {
        let p = TestCase::Csp.build(ProblemScale::tiny(), 1);
        assert_eq!(p.n_particles, 500);
        assert_eq!(p.mesh.nx(), 128);
    }

    #[test]
    fn csp_has_dense_centre_square() {
        let p = TestCase::Csp.build(ProblemScale::tiny(), 1);
        let (cx, cy) = p.mesh.locate(0.5, 0.5);
        let (bx, by) = p.mesh.locate(0.05, 0.05);
        assert_eq!(p.mesh.density(cx, cy), 1.0e3);
        assert_eq!(p.mesh.density(bx, by), 0.05);
    }

    #[test]
    fn source_inside_domain() {
        for case in TestCase::ALL {
            let p = case.build(ProblemScale::tiny(), 1);
            assert!(p.source.x0 >= 0.0 && p.source.x1 <= p.mesh.width());
            assert!(p.source.y0 >= 0.0 && p.source.y1 <= p.mesh.height());
        }
    }

    #[test]
    fn default_transport_config_sane() {
        let t = TransportConfig::default();
        assert_eq!(t.min_energy_ev, 1.0);
        assert!(t.weight_cutoff > 0.0 && t.weight_cutoff < 1.0);
        assert_eq!(t.collision_model, CollisionModel::Analogue);
        assert_eq!(t.sort_policy, SortPolicy::Off);
        assert_eq!(t.regroup_policy, RegroupPolicy::Off);
    }

    #[test]
    fn policy_names_round_trip() {
        for p in SortPolicy::ALL {
            assert_eq!(p.name().parse::<SortPolicy>().unwrap(), p);
        }
        for p in RegroupPolicy::ALL {
            assert_eq!(p.name().parse::<RegroupPolicy>().unwrap(), p);
        }
        assert!("fastest".parse::<SortPolicy>().is_err());
        assert!("fastest".parse::<RegroupPolicy>().is_err());
    }
}
