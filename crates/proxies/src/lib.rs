//! Comparator mini-apps from the `arch` project.
//!
//! The paper measures neutral's parallel efficiency against two other
//! mini-apps from the same suite (§VI-B):
//!
//! * [`flow`] — "a highly optimised hydrodynamics application": here a 2D
//!   compressible-Euler finite-volume solver with dimension-split Rusanov
//!   fluxes. Its sweeps are long streaming passes over large arrays, so it
//!   is **memory-bandwidth bound** — the property that makes its scaling
//!   curve the foil for neutral's latency-bound curve in Figure 3, and
//!   that makes it *lose* from hyperthreading in Figure 6.
//! * [`hot`] — "a conjugate gradient based heat conduction linear solver":
//!   an implicit heat-conduction step solved by CG on a 5-point stencil,
//!   dominated by SpMV and dot-product streams (also bandwidth bound).
//!
//! Both are real solvers with physics validation tests (Sod shock tube,
//! manufactured diffusion solutions), not stubs — the reproduction treats
//! the baselines as first-class systems.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod flow;
pub mod hot;
