//! `flow`: a 2D compressible-Euler finite-volume hydrodynamics mini-app.
//!
//! First-order Godunov-type scheme with Rusanov (local Lax–Friedrichs)
//! numerical fluxes and dimension splitting, on a uniform Cartesian grid
//! with an ideal-gas equation of state. Every step makes several complete
//! streaming passes over four conserved-variable arrays, which is what
//! makes the mini-app memory-bandwidth bound and near-perfectly scalable
//! until the memory controllers saturate (paper §VI-B).

use rayon::prelude::*;

/// Ratio of specific heats (diatomic ideal gas).
pub const GAMMA: f64 = 1.4;

/// Boundary condition applied in both directions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowBc {
    /// Wrap-around (conserves mass/momentum/energy to round-off).
    Periodic,
    /// Zero-gradient outflow.
    Transmissive,
}

/// Conserved state on a 2D grid: density, x/y momentum, total energy.
#[derive(Clone, Debug)]
pub struct FlowState {
    nx: usize,
    ny: usize,
    dx: f64,
    dy: f64,
    bc: FlowBc,
    /// Mass density.
    pub rho: Vec<f64>,
    /// x momentum density.
    pub mx: Vec<f64>,
    /// y momentum density.
    pub my: Vec<f64>,
    /// Total energy density.
    pub e: Vec<f64>,
}

impl FlowState {
    /// Uniform quiescent gas.
    #[must_use]
    pub fn uniform(
        nx: usize,
        ny: usize,
        width: f64,
        height: f64,
        rho: f64,
        p: f64,
        bc: FlowBc,
    ) -> Self {
        assert!(nx >= 3 && ny >= 1, "flow mesh too small");
        let n = nx * ny;
        let e = p / (GAMMA - 1.0);
        Self {
            nx,
            ny,
            dx: width / nx as f64,
            dy: height / ny as f64,
            bc,
            rho: vec![rho; n],
            mx: vec![0.0; n],
            my: vec![0.0; n],
            e: vec![e; n],
        }
    }

    /// The classic Sod shock tube along x (uniform in y): left state
    /// (ρ=1, p=1), right state (ρ=0.125, p=0.1), diaphragm at mid-domain.
    #[must_use]
    pub fn sod_x(nx: usize, ny: usize, bc: FlowBc) -> Self {
        let mut s = Self::uniform(nx, ny, 1.0, 1.0, 1.0, 1.0, bc);
        for iy in 0..ny {
            for ix in nx / 2..nx {
                let i = iy * nx + ix;
                s.rho[i] = 0.125;
                s.e[i] = 0.1 / (GAMMA - 1.0);
            }
        }
        s
    }

    /// Cells along x.
    #[must_use]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Cells along y.
    #[must_use]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Pressure of cell `i` from the ideal-gas EOS.
    #[inline]
    #[must_use]
    pub fn pressure(&self, i: usize) -> f64 {
        let rho = self.rho[i];
        let ke = 0.5 * (self.mx[i] * self.mx[i] + self.my[i] * self.my[i]) / rho;
        (GAMMA - 1.0) * (self.e[i] - ke)
    }

    /// Largest |u| + c over the grid (for the CFL condition).
    #[must_use]
    pub fn max_wave_speed(&self) -> f64 {
        (0..self.rho.len())
            .map(|i| {
                let rho = self.rho[i];
                let u = (self.mx[i] / rho).abs().max((self.my[i] / rho).abs());
                let c = (GAMMA * self.pressure(i).max(0.0) / rho).sqrt();
                u + c
            })
            .fold(0.0, f64::max)
    }

    /// CFL-limited timestep.
    #[must_use]
    pub fn cfl_dt(&self, cfl: f64) -> f64 {
        cfl * self.dx.min(self.dy) / self.max_wave_speed()
    }

    /// Totals of the conserved quantities `(mass, momentum_x, momentum_y,
    /// energy)` — exactly conserved by periodic runs.
    #[must_use]
    pub fn totals(&self) -> (f64, f64, f64, f64) {
        let cell = self.dx * self.dy;
        (
            self.rho.iter().sum::<f64>() * cell,
            self.mx.iter().sum::<f64>() * cell,
            self.my.iter().sum::<f64>() * cell,
            self.e.iter().sum::<f64>() * cell,
        )
    }

    /// Advance one timestep (x-sweep then y-sweep). `parallel` runs the
    /// sweeps on Rayon's current pool.
    pub fn step(&mut self, dt: f64, parallel: bool) {
        self.sweep_x(dt, parallel);
        self.sweep_y(dt, parallel);
    }

    /// Neighbour index with boundary handling.
    #[inline]
    fn nbr(&self, ix: isize, iy: isize) -> usize {
        let (nx, ny) = (self.nx as isize, self.ny as isize);
        let (ix, iy) = match self.bc {
            FlowBc::Periodic => ((ix + nx) % nx, (iy + ny) % ny),
            FlowBc::Transmissive => (ix.clamp(0, nx - 1), iy.clamp(0, ny - 1)),
        };
        (iy * nx + ix) as usize
    }

    fn sweep_x(&mut self, dt: f64, parallel: bool) {
        let lambda = dt / self.dx;
        let nx = self.nx;
        let flux = self.compute_fluxes(true, parallel);
        self.apply_fluxes(&flux, lambda, nx, 1, parallel);
    }

    fn sweep_y(&mut self, dt: f64, parallel: bool) {
        let lambda = dt / self.dy;
        let nx = self.nx;
        let flux = self.compute_fluxes(false, parallel);
        self.apply_fluxes(&flux, lambda, nx, nx, parallel);
    }

    /// Rusanov flux at the *left/lower* face of every cell, for the given
    /// sweep direction. Returns four arrays (mass, mom-normal,
    /// mom-transverse, energy) of length `nx*ny`.
    fn compute_fluxes(&self, xdir: bool, parallel: bool) -> [Vec<f64>; 4] {
        let n = self.rho.len();
        let nx = self.nx;
        let mut f0 = vec![0.0; n];
        let mut f1 = vec![0.0; n];
        let mut f2 = vec![0.0; n];
        let mut f3 = vec![0.0; n];

        let face = |i: usize, out: (&mut f64, &mut f64, &mut f64, &mut f64)| {
            let ix = (i % nx) as isize;
            let iy = (i / nx) as isize;
            let (il, ir) = if xdir {
                (self.nbr(ix - 1, iy), i)
            } else {
                (self.nbr(ix, iy - 1), i)
            };
            let (fl, sl) = self.phys_flux(il, xdir);
            let (fr, sr) = self.phys_flux(ir, xdir);
            let smax = sl.max(sr);
            let ul = [self.rho[il], self.mx[il], self.my[il], self.e[il]];
            let ur = [self.rho[ir], self.mx[ir], self.my[ir], self.e[ir]];
            *out.0 = 0.5 * (fl[0] + fr[0]) - 0.5 * smax * (ur[0] - ul[0]);
            *out.1 = 0.5 * (fl[1] + fr[1]) - 0.5 * smax * (ur[1] - ul[1]);
            *out.2 = 0.5 * (fl[2] + fr[2]) - 0.5 * smax * (ur[2] - ul[2]);
            *out.3 = 0.5 * (fl[3] + fr[3]) - 0.5 * smax * (ur[3] - ul[3]);
        };

        if parallel {
            (
                f0.par_iter_mut(),
                (f1.par_iter_mut(), (f2.par_iter_mut(), f3.par_iter_mut())),
            )
                .into_par_iter()
                .enumerate()
                .for_each(|(i, (a, (b, (c, d))))| face(i, (a, b, c, d)));
        } else {
            for i in 0..n {
                // Split borrows: take raw pointers per element is overkill;
                // use index-wise writes through a small closure instead.
                let mut a = 0.0;
                let mut b = 0.0;
                let mut c = 0.0;
                let mut d = 0.0;
                face(i, (&mut a, &mut b, &mut c, &mut d));
                f0[i] = a;
                f1[i] = b;
                f2[i] = c;
                f3[i] = d;
            }
        }
        [f0, f1, f2, f3]
    }

    /// Physical Euler flux of cell `i` in the sweep direction, plus the
    /// local max wave speed |u| + c.
    #[inline]
    fn phys_flux(&self, i: usize, xdir: bool) -> ([f64; 4], f64) {
        let rho = self.rho[i];
        let u = self.mx[i] / rho;
        let v = self.my[i] / rho;
        let p = self.pressure(i).max(0.0);
        let c = (GAMMA * p / rho).sqrt();
        if xdir {
            (
                [
                    self.mx[i],
                    self.mx[i] * u + p,
                    self.my[i] * u,
                    (self.e[i] + p) * u,
                ],
                u.abs() + c,
            )
        } else {
            (
                [
                    self.my[i],
                    self.mx[i] * v,
                    self.my[i] * v + p,
                    (self.e[i] + p) * v,
                ],
                v.abs() + c,
            )
        }
    }

    /// Conservative update: `U[i] -= lambda * (flux[right_face] - flux[i])`.
    /// `stride` is 1 for x sweeps and `nx` for y sweeps.
    fn apply_fluxes(
        &mut self,
        flux: &[Vec<f64>; 4],
        lambda: f64,
        nx: usize,
        stride: usize,
        parallel: bool,
    ) {
        let n = self.rho.len();
        let ny = self.ny;
        let bc = self.bc;
        let right_face = |i: usize| -> usize {
            // Index of the face array entry holding this cell's
            // right/upper face = left face of the next cell along stride.
            let ix = i % nx;
            let iy = i / nx;
            if stride == 1 {
                let nxt = match bc {
                    FlowBc::Periodic => (ix + 1) % nx,
                    FlowBc::Transmissive => (ix + 1).min(nx - 1),
                };
                iy * nx + nxt
            } else {
                let nyt = match bc {
                    FlowBc::Periodic => (iy + 1) % ny,
                    FlowBc::Transmissive => (iy + 1).min(ny - 1),
                };
                nyt * nx + ix
            }
        };

        let update = |i: usize, rho: &mut f64, mx: &mut f64, my: &mut f64, e: &mut f64| {
            let r = right_face(i);
            // At a transmissive edge the "next" cell is the cell itself, so
            // the outflow face reuses the physical flux of the cell — a
            // zero-gradient approximation.
            *rho -= lambda * (flux[0][r] - flux[0][i]);
            *mx -= lambda * (flux[1][r] - flux[1][i]);
            *my -= lambda * (flux[2][r] - flux[2][i]);
            *e -= lambda * (flux[3][r] - flux[3][i]);
        };

        if parallel {
            (
                self.rho.par_iter_mut(),
                (
                    self.mx.par_iter_mut(),
                    (self.my.par_iter_mut(), self.e.par_iter_mut()),
                ),
            )
                .into_par_iter()
                .enumerate()
                .for_each(|(i, (r, (mx, (my, e))))| update(i, r, mx, my, e));
        } else {
            for i in 0..n {
                let (mut r, mut mx, mut my, mut e) =
                    (self.rho[i], self.mx[i], self.my[i], self.e[i]);
                update(i, &mut r, &mut mx, &mut my, &mut e);
                self.rho[i] = r;
                self.mx[i] = mx;
                self.my[i] = my;
                self.e[i] = e;
            }
        }
    }
}

/// Run `steps` CFL-limited steps; returns the final state. This is the
/// fixed workload the figure harness times at different thread counts.
pub fn run_flow_workload(nx: usize, ny: usize, steps: usize, parallel: bool) -> FlowState {
    let mut s = FlowState::sod_x(nx, ny, FlowBc::Transmissive);
    for _ in 0..steps {
        let dt = s.cfl_dt(0.4);
        s.step(dt, parallel);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_state_is_steady() {
        let mut s = FlowState::uniform(32, 32, 1.0, 1.0, 1.0, 1.0, FlowBc::Periodic);
        let before = s.rho.clone();
        for _ in 0..5 {
            let dt = s.cfl_dt(0.4);
            s.step(dt, false);
        }
        for (a, b) in before.iter().zip(&s.rho) {
            assert!((a - b).abs() < 1e-12, "uniform state drifted");
        }
    }

    #[test]
    fn periodic_run_conserves_everything() {
        let mut s = FlowState::sod_x(64, 8, FlowBc::Periodic);
        let (m0, px0, py0, e0) = s.totals();
        for _ in 0..20 {
            let dt = s.cfl_dt(0.4);
            s.step(dt, false);
        }
        let (m1, px1, py1, e1) = s.totals();
        assert!((m0 - m1).abs() / m0 < 1e-12, "mass drift");
        assert!((px0 - px1).abs() < 1e-10, "x momentum drift");
        assert!((py0 - py1).abs() < 1e-12, "y momentum drift");
        assert!((e0 - e1).abs() / e0 < 1e-12, "energy drift");
    }

    /// Sod shock tube structure at t ~ 0.2: density behind the shock,
    /// in the contact region and in the untouched states should follow the
    /// classic profile ordering (left state > rarefied > contact > shocked
    /// > right state), and all values stay within the initial extremes.
    #[test]
    fn sod_shock_tube_structure() {
        let nx = 400;
        let mut s = FlowState::sod_x(nx, 1, FlowBc::Transmissive);
        let mut t = 0.0;
        while t < 0.2 {
            let dt = s.cfl_dt(0.4).min(0.2 - t);
            s.step(dt, false);
            t += dt;
        }
        // All densities within [0.125, 1.0] (no over/undershoot blow-ups).
        for &r in &s.rho {
            assert!(r > 0.1 && r < 1.01, "density out of range: {r}");
        }
        // Ends remain at the initial states.
        assert!((s.rho[5] - 1.0).abs() < 1e-6);
        assert!((s.rho[nx - 5] - 0.125).abs() < 1e-6);
        // The exact solution has a plateau at rho ~ 0.426 (contact) and
        // ~0.266 (shocked right gas); with first-order Rusanov at nx=400
        // the profile should pass near both.
        let near = |target: f64, tol: f64| s.rho.iter().any(|&r| (r - target).abs() < tol);
        assert!(near(0.426, 0.05), "missing contact plateau");
        assert!(near(0.266, 0.04), "missing shocked state");
        // Pressure stays positive everywhere.
        for i in 0..nx {
            assert!(s.pressure(i) > 0.0);
        }
    }

    #[test]
    fn parallel_and_serial_steps_agree() {
        let mut a = FlowState::sod_x(64, 16, FlowBc::Periodic);
        let mut b = a.clone();
        for _ in 0..5 {
            let dt = a.cfl_dt(0.4);
            a.step(dt, false);
            b.step(dt, true);
        }
        for (x, y) in a.rho.iter().zip(&b.rho) {
            assert_eq!(x.to_bits(), y.to_bits(), "parallel sweep diverged");
        }
    }

    #[test]
    fn workload_runs() {
        let s = run_flow_workload(64, 8, 3, false);
        assert_eq!(s.nx(), 64);
        assert!(s.rho.iter().all(|&r| r > 0.0));
    }
}
