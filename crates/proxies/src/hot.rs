//! `hot`: a conjugate-gradient heat-conduction mini-app.
//!
//! Solves one implicit timestep of the heat equation,
//! `(I - alpha dt Laplacian) T_new = T_old`, on a uniform 2D grid with a
//! 5-point stencil and homogeneous Dirichlet boundaries, using (optionally
//! Rayon-parallel) conjugate gradients. The operator is symmetric positive
//! definite, so CG converges monotonically; the solver's cost profile is
//! SpMV + dots + axpys — long streaming passes, memory-bandwidth bound
//! like `flow` (paper §VI-B).

use rayon::prelude::*;

/// The implicit heat operator `A = I - k * Laplacian_h` on an `nx x ny`
/// grid with homogeneous Dirichlet boundaries.
#[derive(Clone, Debug)]
pub struct HeatOperator {
    nx: usize,
    ny: usize,
    /// `alpha * dt / h^2` — the stencil weight.
    k: f64,
}

impl HeatOperator {
    /// Build the operator for diffusivity `alpha`, timestep `dt` and cell
    /// width `h`.
    #[must_use]
    pub fn new(nx: usize, ny: usize, alpha: f64, dt: f64, h: f64) -> Self {
        assert!(nx > 0 && ny > 0);
        assert!(alpha > 0.0 && dt > 0.0 && h > 0.0);
        Self {
            nx,
            ny,
            k: alpha * dt / (h * h),
        }
    }

    /// Grid size.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nx * self.ny
    }

    /// Whether the grid is empty (never for a constructed operator).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `y = A x` (5-point stencil SpMV).
    pub fn apply(&self, x: &[f64], y: &mut [f64], parallel: bool) {
        assert_eq!(x.len(), self.len());
        assert_eq!(y.len(), self.len());
        let (nx, ny, k) = (self.nx, self.ny, self.k);
        let stencil = |i: usize, yi: &mut f64| {
            let ix = i % nx;
            let iy = i / nx;
            let c = x[i];
            let w = if ix > 0 { x[i - 1] } else { 0.0 };
            let e = if ix + 1 < nx { x[i + 1] } else { 0.0 };
            let s = if iy > 0 { x[i - nx] } else { 0.0 };
            let n = if iy + 1 < ny { x[i + nx] } else { 0.0 };
            *yi = c + k * (4.0 * c - w - e - s - n);
        };
        if parallel {
            y.par_iter_mut()
                .enumerate()
                .for_each(|(i, yi)| stencil(i, yi));
        } else {
            for (i, yi) in y.iter_mut().enumerate() {
                stencil(i, yi);
            }
        }
    }
}

fn dot(a: &[f64], b: &[f64], parallel: bool) -> f64 {
    if parallel {
        a.par_iter().zip(b).map(|(x, y)| x * y).sum()
    } else {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }
}

fn axpy(alpha: f64, x: &[f64], y: &mut [f64], parallel: bool) {
    if parallel {
        y.par_iter_mut()
            .zip(x)
            .for_each(|(yi, xi)| *yi += alpha * xi);
    } else {
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += alpha * xi;
        }
    }
}

/// Result of a CG solve.
#[derive(Clone, Debug)]
pub struct CgResult {
    /// The solution vector.
    pub x: Vec<f64>,
    /// Iterations used.
    pub iterations: usize,
    /// Final residual norm `||b - Ax||`.
    pub residual: f64,
    /// Residual norm after every iteration (for convergence tests).
    pub residual_history: Vec<f64>,
}

/// Conjugate gradients on the SPD heat operator.
pub fn cg_solve(
    op: &HeatOperator,
    b: &[f64],
    tol: f64,
    max_iter: usize,
    parallel: bool,
) -> CgResult {
    let n = op.len();
    assert_eq!(b.len(), n);
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut ap = vec![0.0; n];
    let mut rr = dot(&r, &r, parallel);
    let b_norm = rr.sqrt().max(1e-300);
    let mut history = Vec::with_capacity(max_iter);

    let mut iterations = 0;
    while iterations < max_iter && rr.sqrt() / b_norm > tol {
        op.apply(&p, &mut ap, parallel);
        let alpha = rr / dot(&p, &ap, parallel);
        axpy(alpha, &p, &mut x, parallel);
        axpy(-alpha, &ap, &mut r, parallel);
        let rr_new = dot(&r, &r, parallel);
        let beta = rr_new / rr;
        if parallel {
            p.par_iter_mut()
                .zip(&r)
                .for_each(|(pi, ri)| *pi = ri + beta * *pi);
        } else {
            for (pi, ri) in p.iter_mut().zip(&r) {
                *pi = ri + beta * *pi;
            }
        }
        rr = rr_new;
        iterations += 1;
        history.push(rr.sqrt());
    }

    CgResult {
        x,
        iterations,
        residual: rr.sqrt(),
        residual_history: history,
    }
}

/// One implicit heat step: the fixed workload the figure harness times at
/// different thread counts. Returns the new temperature field.
pub fn run_hot_workload(nx: usize, ny: usize, parallel: bool) -> CgResult {
    let op = HeatOperator::new(nx, ny, 1.0, 0.1, 1.0 / nx as f64);
    // A hot square in the middle of a cold domain.
    let mut b = vec![0.0; op.len()];
    for iy in ny / 4..3 * ny / 4 {
        for ix in nx / 4..3 * nx / 4 {
            b[iy * nx + ix] = 1.0;
        }
    }
    cg_solve(&op, &b, 1e-8, 2000, parallel)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operator_is_symmetric() {
        let op = HeatOperator::new(8, 6, 0.7, 0.1, 0.125);
        let n = op.len();
        // <Au, v> == <u, Av> for a few random-ish vectors.
        let u: Vec<f64> = (0..n).map(|i| ((i * 37 % 11) as f64) - 5.0).collect();
        let v: Vec<f64> = (0..n).map(|i| ((i * 13 % 7) as f64) - 3.0).collect();
        let mut au = vec![0.0; n];
        let mut av = vec![0.0; n];
        op.apply(&u, &mut au, false);
        op.apply(&v, &mut av, false);
        let lhs = dot(&au, &v, false);
        let rhs = dot(&u, &av, false);
        assert!((lhs - rhs).abs() < 1e-9 * lhs.abs().max(1.0));
    }

    #[test]
    fn operator_is_positive_definite() {
        let op = HeatOperator::new(8, 8, 1.0, 0.1, 0.125);
        let n = op.len();
        let u: Vec<f64> = (0..n).map(|i| ((i * 29 % 17) as f64) - 8.0).collect();
        let mut au = vec![0.0; n];
        op.apply(&u, &mut au, false);
        assert!(dot(&u, &au, false) > 0.0);
    }

    #[test]
    fn cg_converges_and_residual_decreases() {
        let r = run_hot_workload(32, 32, false);
        assert!(r.residual < 1e-6);
        assert!(r.iterations > 1);
        // Residual history is (essentially) monotone for SPD CG.
        let mut decreasing = 0;
        for w in r.residual_history.windows(2) {
            if w[1] <= w[0] * 1.5 {
                decreasing += 1;
            }
        }
        assert!(decreasing as f64 >= 0.9 * (r.residual_history.len() - 1) as f64);
    }

    #[test]
    fn cg_solution_satisfies_system() {
        let op = HeatOperator::new(24, 24, 1.0, 0.05, 1.0 / 24.0);
        let b: Vec<f64> = (0..op.len()).map(|i| (i % 5) as f64).collect();
        let r = cg_solve(&op, &b, 1e-10, 2000, false);
        let mut ax = vec![0.0; op.len()];
        op.apply(&r.x, &mut ax, false);
        let err: f64 = ax
            .iter()
            .zip(&b)
            .map(|(a, bb)| (a - bb) * (a - bb))
            .sum::<f64>()
            .sqrt();
        let b_norm: f64 = dot(&b, &b, false).sqrt();
        assert!(err / b_norm < 1e-8, "relative residual {}", err / b_norm);
    }

    #[test]
    fn diffusion_smooths_and_preserves_positivity() {
        let r = run_hot_workload(48, 48, false);
        // Solution of (I - k L) T = b with b in [0,1]: T bounded by the
        // maximum principle and smoothed (interior max below source max).
        assert!(r.x.iter().all(|&t| t > -1e-9 && t < 1.0 + 1e-9));
        let max = r.x.iter().cloned().fold(0.0, f64::max);
        assert!(max > 0.1 && max < 1.0);
    }

    #[test]
    fn parallel_matches_serial() {
        let op = HeatOperator::new(32, 32, 1.0, 0.1, 1.0 / 32.0);
        let b: Vec<f64> = (0..op.len()).map(|i| ((i * 7) % 13) as f64).collect();
        let a = cg_solve(&op, &b, 1e-9, 500, false);
        let c = cg_solve(&op, &b, 1e-9, 500, true);
        // Parallel dot products reorder additions; allow tiny drift.
        let diff: f64 =
            a.x.iter()
                .zip(&c.x)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0, f64::max);
        assert!(diff < 1e-6, "parallel CG diverged by {diff}");
    }
}
