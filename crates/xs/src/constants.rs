//! Physical constants of the transport model.
//!
//! CODATA-2018 values for universal constants; material parameters follow
//! the original mini-app's single homogeneous non-multiplying medium with
//! mass number 100.

/// Neutron rest mass in kg (CODATA 2018).
pub const NEUTRON_MASS_KG: f64 = 1.674_927_498_04e-27;

/// One electronvolt in joules (exact, SI 2019).
pub const EV_TO_J: f64 = 1.602_176_634e-19;

/// Avogadro's number (exact, SI 2019).
pub const AVOGADRO: f64 = 6.022_140_76e23;

/// One barn in square metres.
pub const BARN_M2: f64 = 1.0e-28;

/// Mass number `A` of the (single) target nuclide.
///
/// Controls elastic-scattering kinematics: the maximum fractional energy
/// loss per collision is `1 - ((A-1)/(A+1))^2 ~ 3.9%` and the mean loss for
/// isotropic centre-of-mass scattering is `2A/(A+1)^2 ~ 1.96%`.
pub const MASS_NO: f64 = 100.0;

/// Molar mass of the target material in kg/mol (A = 100 -> 100 g/mol).
pub const MOLAR_MASS_KG_MOL: f64 = 0.1;

/// Initial particle energy in eV (1 MeV), giving a speed of ~1.38e7 m/s
/// and therefore ~1.38 m of track per 1e-7 s timestep — which yields the
/// ~7000 facet events per streaming particle quoted in the paper (§IV-B).
pub const INITIAL_ENERGY_EV: f64 = 1.0e6;

/// Particles below this energy are terminated ("reached a low enough
/// energy", §IV-E).
pub const MIN_ENERGY_OF_INTEREST_EV: f64 = 1.0;

/// Speed (m/s) of a non-relativistic neutron with kinetic energy
/// `energy_ev`: `v = sqrt(2 E / m)`.
#[inline]
#[must_use]
pub fn speed_m_per_s(energy_ev: f64) -> f64 {
    (2.0 * energy_ev * EV_TO_J / NEUTRON_MASS_KG).sqrt()
}

/// Mean fraction of its energy a particle retains after one isotropic
/// centre-of-mass elastic scatter off a nucleus of mass number `a`:
/// `(a^2 + 1) / (a + 1)^2`.
#[inline]
#[must_use]
pub fn mean_elastic_retention(a: f64) -> f64 {
    (a * a + 1.0) / ((a + 1.0) * (a + 1.0))
}

/// Minimum possible retained energy fraction after one elastic scatter
/// (backscatter, `mu = -1`): `((a - 1)/(a + 1))^2`.
#[inline]
#[must_use]
pub fn min_elastic_retention(a: f64) -> f64 {
    let r = (a - 1.0) / (a + 1.0);
    r * r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_mev_neutron_speed() {
        let v = speed_m_per_s(INITIAL_ENERGY_EV);
        assert!((v / 1.383e7 - 1.0).abs() < 1e-3, "v = {v}");
    }

    #[test]
    fn speed_scales_with_sqrt_energy() {
        let v1 = speed_m_per_s(1.0e4);
        let v2 = speed_m_per_s(4.0e4);
        assert!((v2 / v1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn elastic_retention_bounds() {
        let mean = mean_elastic_retention(MASS_NO);
        let min = min_elastic_retention(MASS_NO);
        assert!(min < mean && mean < 1.0);
        // A = 100: mean loss ~ 2A/(A+1)^2 = 1.96%.
        assert!((1.0 - mean - 0.0196).abs() < 1e-3);
        // Max loss ~ 4A/(A+1)^2 = 3.92%.
        assert!((1.0 - min - 0.0392).abs() < 1e-3);
    }
}
