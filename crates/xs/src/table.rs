//! Continuous-energy cross-section tables.
//!
//! A table is a strictly-increasing energy grid with one cross-section
//! value per point; evaluation finds the containing energy bin and linearly
//! interpolates (paper §IV-D-1: "a search is performed to find the energy
//! bin for the particle's continuous energy, and a linear interpolation
//! gives an accurate approximation to the true microscopic cross section").
//!
//! Two search strategies are provided, because their difference is one of
//! the paper's measured optimisations (§VI-A):
//!
//! * [`CrossSection::value_binary`] — `O(log n)` binary search, the
//!   obvious baseline;
//! * [`CrossSection::value_hinted`] — a linear walk from the caller's
//!   cached index. Between consecutive collisions a particle's energy
//!   changes by at most ~4% (elastic scattering off A=100), so the walk is
//!   short and touches adjacent cache lines, "instead of performing a more
//!   expensive binary search at each step. This particular optimisation
//!   improved the performance of the csp problem by 1.3x".

/// Linear interpolation over one grid segment — the single arithmetic
/// kernel shared by every lookup backend, so that any backend that finds
/// the same containing bin produces bitwise-identical values.
#[inline]
#[must_use]
pub fn lerp_segment(e: f64, e0: f64, e1: f64, v0: f64, v1: f64) -> f64 {
    let t = ((e - e0) / (e1 - e0)).clamp(0.0, 1.0);
    v0 + t * (v1 - v0)
}

/// A continuous-energy cross-section table (energies in eV, values in
/// barns), linearly interpolated between grid points and clamped to the
/// end values outside the tabulated range.
#[derive(Clone, Debug, PartialEq)]
pub struct CrossSection {
    energy: Vec<f64>,
    value: Vec<f64>,
}

impl CrossSection {
    /// Build a table from `(energy, value)` pairs.
    ///
    /// # Panics
    /// If fewer than two points are given, energies are not strictly
    /// increasing, or any value is negative or non-finite.
    #[must_use]
    pub fn new(points: Vec<(f64, f64)>) -> Self {
        assert!(points.len() >= 2, "need at least two table points");
        for w in points.windows(2) {
            assert!(
                w[0].0 < w[1].0,
                "energy grid must be strictly increasing ({} !< {})",
                w[0].0,
                w[1].0
            );
        }
        for &(e, v) in &points {
            assert!(e.is_finite() && e > 0.0, "energies must be positive");
            assert!(v.is_finite() && v >= 0.0, "values must be non-negative");
        }
        let (energy, value) = points.into_iter().unzip();
        Self { energy, value }
    }

    /// Number of grid points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.energy.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.energy.is_empty()
    }

    /// The energy grid.
    #[must_use]
    pub fn energies(&self) -> &[f64] {
        &self.energy
    }

    /// The tabulated values.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.value
    }

    /// Lowest and highest tabulated energies.
    #[must_use]
    pub fn energy_range(&self) -> (f64, f64) {
        (self.energy[0], *self.energy.last().unwrap())
    }

    /// Interpolate within bin `i` (callers guarantee `e` has been clamped
    /// into the table range and `i < len-1`).
    #[inline]
    pub(crate) fn lerp(&self, i: usize, e: f64) -> f64 {
        lerp_segment(
            e,
            self.energy[i],
            self.energy[i + 1],
            self.value[i],
            self.value[i + 1],
        )
    }

    /// Evaluate at `energy_ev` given the containing bin `bin` (as returned
    /// by [`Self::bin_index_binary`] or any of the lookup backends),
    /// applying exactly the same out-of-range clamping as
    /// [`Self::value_binary`]. The accelerated backends replicate this
    /// clamp-then-interpolate structure internally (property tests pin
    /// them bitwise to it); this method is the public single-table
    /// equivalent for callers that already hold a bin index.
    #[inline]
    #[must_use]
    pub fn value_at_bin(&self, energy_ev: f64, bin: usize) -> f64 {
        let n = self.energy.len();
        if energy_ev <= self.energy[0] {
            return self.value[0];
        }
        if energy_ev >= self.energy[n - 1] {
            return self.value[n - 1];
        }
        self.lerp(bin.min(n - 2), energy_ev)
    }

    /// Index of the energy bin containing `energy_ev` (clamped to the
    /// table), found by binary search. Used to seed a particle's cached
    /// lookup hint at birth, where there is no previous lookup to walk
    /// from.
    #[inline]
    #[must_use]
    pub fn bin_index_binary(&self, energy_ev: f64) -> usize {
        let n = self.energy.len();
        if energy_ev <= self.energy[0] {
            return 0;
        }
        if energy_ev >= self.energy[n - 1] {
            return n - 2;
        }
        self.energy.partition_point(|&g| g <= energy_ev) - 1
    }

    /// Evaluate by binary search.
    #[inline]
    #[must_use]
    pub fn value_binary(&self, energy_ev: f64) -> f64 {
        let n = self.energy.len();
        if energy_ev <= self.energy[0] {
            return self.value[0];
        }
        if energy_ev >= self.energy[n - 1] {
            return self.value[n - 1];
        }
        // partition_point returns the first index with energy > e; the
        // containing bin starts one before it.
        let hi = self.energy.partition_point(|&g| g <= energy_ev);
        self.lerp(hi - 1, energy_ev)
    }

    /// Evaluate by a linear walk from `*hint`, updating the hint to the
    /// containing bin.
    #[inline]
    #[must_use]
    pub fn value_hinted(&self, energy_ev: f64, hint: &mut usize) -> f64 {
        self.value_hinted_counted(energy_ev, hint).0
    }

    /// As [`Self::value_hinted`] but also reporting the number of grid
    /// steps walked (instrumentation for the performance model).
    #[inline]
    pub fn value_hinted_counted(&self, energy_ev: f64, hint: &mut usize) -> (f64, u32) {
        let n = self.energy.len();
        let mut i = (*hint).min(n - 2);
        let mut steps = 0u32;
        if energy_ev <= self.energy[0] {
            *hint = 0;
            return (self.value[0], steps);
        }
        if energy_ev >= self.energy[n - 1] {
            *hint = n - 2;
            return (self.value[n - 1], steps);
        }
        // Walk up while the bin is below the energy...
        while self.energy[i + 1] <= energy_ev {
            i += 1;
            steps += 1;
        }
        // ...or down while the bin is above it.
        while self.energy[i] > energy_ev {
            i -= 1;
            steps += 1;
        }
        *hint = i;
        (self.lerp(i, energy_ev), steps)
    }

    /// Resident bytes of the table data.
    #[must_use]
    pub fn footprint_bytes(&self) -> usize {
        (self.energy.len() + self.value.len()) * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> CrossSection {
        CrossSection::new(vec![(1.0, 10.0), (2.0, 20.0), (4.0, 10.0), (8.0, 40.0)])
    }

    #[test]
    fn exact_at_grid_points() {
        let t = table();
        for (i, &e) in t.energies().iter().enumerate() {
            assert_eq!(t.value_binary(e), t.values()[i]);
        }
    }

    #[test]
    fn interpolates_midpoints() {
        let t = table();
        assert_eq!(t.value_binary(1.5), 15.0);
        assert_eq!(t.value_binary(3.0), 15.0);
        assert_eq!(t.value_binary(6.0), 25.0);
    }

    #[test]
    fn clamps_out_of_range() {
        let t = table();
        assert_eq!(t.value_binary(0.5), 10.0);
        assert_eq!(t.value_binary(100.0), 40.0);
        let mut hint = 2;
        assert_eq!(t.value_hinted(0.5, &mut hint), 10.0);
        assert_eq!(hint, 0);
        assert_eq!(t.value_hinted(100.0, &mut hint), 40.0);
        assert_eq!(hint, t.len() - 2);
    }

    #[test]
    fn hinted_agrees_with_binary_from_any_hint() {
        let t = table();
        for e in [1.0, 1.3, 2.0, 2.7, 3.99, 4.0, 5.5, 7.9, 8.0] {
            for h in 0..t.len() {
                let mut hint = h;
                assert_eq!(
                    t.value_hinted(e, &mut hint),
                    t.value_binary(e),
                    "e={e} hint={h}"
                );
            }
        }
    }

    #[test]
    fn hint_is_updated_to_containing_bin() {
        let t = table();
        let mut hint = 0;
        let _ = t.value_hinted(6.0, &mut hint);
        assert_eq!(hint, 2);
        let (_, steps) = t.value_hinted_counted(6.5, &mut hint);
        assert_eq!(steps, 0, "nearby lookup should not walk");
    }

    /// Satellite lock-down: below-range and above-range lookups clamp to
    /// the end values and leave the hint at the clamped bin (0 below,
    /// `len - 2` above) for *both* search strategies, including queries
    /// exactly on the grid ends and hints that start out of range.
    #[test]
    fn clamp_consistency_binary_vs_hinted() {
        let t = table();
        let n = t.len();
        let cases = [
            (0.5, t.values()[0], 0usize),      // below range
            (1.0, t.values()[0], 0),           // exactly at the low end
            (8.0, t.values()[n - 1], n - 2),   // exactly at the high end
            (100.0, t.values()[n - 1], n - 2), // above range
        ];
        for (e, expect, expect_hint) in cases {
            assert_eq!(
                t.value_binary(e).to_bits(),
                expect.to_bits(),
                "binary E={e}"
            );
            for start in [0usize, 1, n - 2, n + 50] {
                let mut hint = start;
                let v = t.value_hinted(e, &mut hint);
                assert_eq!(v.to_bits(), expect.to_bits(), "hinted E={e} start={start}");
                assert_eq!(hint, expect_hint, "hint after clamp E={e} start={start}");
            }
            assert_eq!(
                t.value_at_bin(e, 1).to_bits(),
                expect.to_bits(),
                "value_at_bin clamps E={e}"
            );
        }
    }

    #[test]
    fn value_at_bin_matches_binary_in_range() {
        let t = table();
        for e in [1.0, 1.5, 2.0, 3.0, 3.999, 4.0, 6.0, 7.999, 8.0] {
            let bin = t.bin_index_binary(e);
            assert_eq!(
                t.value_at_bin(e, bin).to_bits(),
                t.value_binary(e).to_bits()
            );
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_grid() {
        let _ = CrossSection::new(vec![(2.0, 1.0), (1.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_values() {
        let _ = CrossSection::new(vec![(1.0, -1.0), (2.0, 1.0)]);
    }
}
