//! Cross-sectional data for the `neutral` mini-app.
//!
//! "In order to determine if a collision event has occurred, we have to
//! perform a lookup of cross sectional data. ... Two dummy data tables have
//! been generated that mimic the capture and scatter cross sections for a
//! single material" (Martineau & McIntosh-Smith, CLUSTER 2017, §IV-D).
//!
//! This crate provides:
//!
//! * [`constants`] — the physical constants of the transport model;
//! * [`CrossSection`] — a continuous-energy table with linear
//!   interpolation, looked up either by binary search or by a *cached
//!   linear search* that walks from the previous lookup's index. The
//!   cached search exploits the small energy jumps between consecutive
//!   collisions and bought the paper a 1.3x speedup on `csp` (§VI-A);
//! * [`CrossSectionLibrary`] — capture + elastic-scatter tables plus the
//!   microscopic → macroscopic conversion through the local mass density
//!   (§IV-D: the macroscopic cross section is what couples every particle
//!   to the computational mesh);
//! * [`LookupStrategy`] / [`XsLookup`] — the pluggable lookup-backend
//!   layer: `Binary` and `Hinted` (the paper's two strategies) plus the
//!   `Unionized` merged-grid and `Hashed` log-bucket accelerations in the
//!   XSBench/OpenMC lineage, all bitwise-equivalent, all supporting the
//!   batched [`XsLookup::lookup_many`] lane-block API;
//! * [`MaterialSet`] / [`MaterialKind`] — the multi-material layer: an
//!   indexed collection of per-material libraries (resolvable through any
//!   lookup backend, per material) plus named synthetic-material
//!   archetypes for the scenario catalogue (DESIGN.md §12).
//!
//! # Example
//!
//! ```
//! use neutral_xs::{CrossSectionLibrary, XsHints, constants};
//!
//! let lib = CrossSectionLibrary::synthetic(4096, 1234);
//! let mut hints = XsHints::default();
//! let micro = lib.lookup(constants::INITIAL_ENERGY_EV, &mut hints);
//! assert!(micro.total_barns() > 0.0);
//!
//! // Macroscopic cross section in a cell of density 1e3 kg/m^3:
//! let n = neutral_xs::number_density(1.0e3);
//! let sigma_t = neutral_xs::macroscopic_per_m(micro.total_barns(), n);
//! assert!(sigma_t > 0.0);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod constants;
mod lookup;
mod material;
mod synth;
mod table;

pub use lookup::{
    BinaryLookup, HashedGrid, HashedLookup, HintedLookup, LookupStrategy, UnionizedGrid,
    UnionizedLookup, XsLookup,
};
pub use material::{LaneScratch, MaterialId, MaterialKind, MaterialSet, MaterialSpec};
pub use synth::{synthetic_capture, synthetic_scatter, SynthParams};
pub use table::{lerp_segment, CrossSection};

use constants::{AVOGADRO, BARN_M2, MOLAR_MASS_KG_MOL};
use std::sync::OnceLock;

/// Cached table indices from a particle's previous cross-section lookup.
///
/// Stored in the particle state (one hint per table) so that the next
/// lookup can do a short, cache-friendly linear walk instead of a binary
/// search from scratch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct XsHints {
    /// Last energy-bin index used in the capture table.
    pub absorb: u32,
    /// Last energy-bin index used in the scatter table.
    pub scatter: u32,
}

/// Microscopic cross sections at a particle's energy, in barns.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MicroXs {
    /// Capture (absorption) cross section.
    pub absorb_barns: f64,
    /// Elastic scattering cross section.
    pub scatter_barns: f64,
}

impl MicroXs {
    /// Total microscopic cross section.
    #[inline]
    #[must_use]
    pub fn total_barns(&self) -> f64 {
        self.absorb_barns + self.scatter_barns
    }

    /// Absorption probability at a collision, `sigma_a / sigma_t`.
    #[inline]
    #[must_use]
    pub fn absorb_probability(&self) -> f64 {
        self.absorb_barns / self.total_barns()
    }
}

/// Nuclear number density (atoms per m^3) of the homogeneous material at
/// mass density `rho_kg_m3`: `n = rho / M * N_A`.
#[inline]
#[must_use]
pub fn number_density(rho_kg_m3: f64) -> f64 {
    rho_kg_m3 / MOLAR_MASS_KG_MOL * AVOGADRO
}

/// Macroscopic cross section (per metre) from a microscopic cross section
/// in barns and a number density in atoms/m^3.
#[inline]
#[must_use]
pub fn macroscopic_per_m(micro_barns: f64, number_density_m3: f64) -> f64 {
    micro_barns * BARN_M2 * number_density_m3
}

/// The capture and elastic-scatter tables of the single material, plus
/// lazily-built lookup acceleration structures (union grid, hash
/// buckets) shared by all [`LookupStrategy`] backends.
#[derive(Clone, Debug)]
pub struct CrossSectionLibrary {
    /// Capture (absorption) cross-section table.
    pub absorb: CrossSection,
    /// Elastic scattering cross-section table.
    pub scatter: CrossSection,
    /// Union-grid accelerator, built on first use of
    /// [`LookupStrategy::Unionized`] (or by [`Self::prepare`]).
    unionized: OnceLock<UnionizedGrid>,
    /// Hash-bucket accelerator, built on first use of
    /// [`LookupStrategy::Hashed`] (or by [`Self::prepare`]).
    hashed: OnceLock<HashedGrid>,
}

impl CrossSectionLibrary {
    /// Generate the dummy tables described in §IV-D with `n_points`
    /// log-spaced energy points each, using `seed` for the synthetic
    /// resonance structure. Defaults live in [`SynthParams`].
    #[must_use]
    pub fn synthetic(n_points: usize, seed: u64) -> Self {
        let params = SynthParams::default();
        Self::from_tables(
            synthetic_capture(n_points, seed, &params),
            synthetic_scatter(n_points, seed ^ 0x5eed_5eed, &params),
        )
    }

    /// Build a library from explicit tables.
    #[must_use]
    pub fn from_tables(absorb: CrossSection, scatter: CrossSection) -> Self {
        Self {
            absorb,
            scatter,
            unionized: OnceLock::new(),
            hashed: OnceLock::new(),
        }
    }

    /// The union-grid accelerator, built on first call.
    pub fn unionized(&self) -> &UnionizedGrid {
        self.unionized
            .get_or_init(|| UnionizedGrid::build(&self.absorb, &self.scatter))
    }

    /// The hash-bucket accelerator, built on first call.
    pub fn hashed(&self) -> &HashedGrid {
        self.hashed
            .get_or_init(|| HashedGrid::build(&self.absorb, &self.scatter))
    }

    /// Force-build the acceleration structure `strategy` needs (if any),
    /// so construction cost stays out of timed transport regions.
    pub fn prepare(&self, strategy: LookupStrategy) {
        match strategy {
            LookupStrategy::Binary | LookupStrategy::Hinted => {}
            LookupStrategy::Unionized => {
                let _ = self.unionized();
            }
            LookupStrategy::Hashed => {
                let _ = self.hashed();
            }
        }
    }

    /// A trait-object view of the backend for `strategy` (benchmarking
    /// and generic tooling; the transport hot path uses
    /// [`Self::lookup_with`] instead, which dispatches statically).
    #[must_use]
    pub fn backend(&self, strategy: LookupStrategy) -> Box<dyn XsLookup + '_> {
        match strategy {
            LookupStrategy::Binary => Box::new(BinaryLookup::new(self)),
            LookupStrategy::Hinted => Box::new(HintedLookup::new(self)),
            LookupStrategy::Unionized => Box::new(UnionizedLookup::new(self.unionized())),
            LookupStrategy::Hashed => Box::new(HashedLookup::new(self, self.hashed())),
        }
    }

    /// Look up both tables with the chosen strategy, updating `hints` to
    /// the containing bins and returning the microscopic cross sections
    /// plus the linear-search steps walked (instrumentation).
    ///
    /// All strategies return bitwise-identical values (the backends share
    /// the clamping and interpolation arithmetic of
    /// [`CrossSection::value_binary`]).
    #[inline]
    pub fn lookup_with(
        &self,
        strategy: LookupStrategy,
        energy_ev: f64,
        hints: &mut XsHints,
    ) -> (MicroXs, u32) {
        match strategy {
            LookupStrategy::Binary => BinaryLookup::new(self).lookup(energy_ev, hints),
            LookupStrategy::Hinted => HintedLookup::new(self).lookup(energy_ev, hints),
            LookupStrategy::Unionized => {
                UnionizedLookup::new(self.unionized()).lookup(energy_ev, hints)
            }
            LookupStrategy::Hashed => {
                HashedLookup::new(self, self.hashed()).lookup(energy_ev, hints)
            }
        }
    }

    /// Batched [`Self::lookup_with`]: resolve a whole lane block of
    /// energies in one call (see [`XsLookup::lookup_many`]). Returns the
    /// total linear-search steps walked.
    pub fn lookup_many_with(
        &self,
        strategy: LookupStrategy,
        energies: &[f64],
        hints_absorb: &mut [u32],
        hints_scatter: &mut [u32],
        out_absorb: &mut [f64],
        out_scatter: &mut [f64],
    ) -> u64 {
        match strategy {
            LookupStrategy::Binary => BinaryLookup::new(self).lookup_many(
                energies,
                hints_absorb,
                hints_scatter,
                out_absorb,
                out_scatter,
            ),
            LookupStrategy::Hinted => HintedLookup::new(self).lookup_many(
                energies,
                hints_absorb,
                hints_scatter,
                out_absorb,
                out_scatter,
            ),
            LookupStrategy::Unionized => UnionizedLookup::new(self.unionized()).lookup_many(
                energies,
                hints_absorb,
                hints_scatter,
                out_absorb,
                out_scatter,
            ),
            LookupStrategy::Hashed => HashedLookup::new(self, self.hashed()).lookup_many(
                energies,
                hints_absorb,
                hints_scatter,
                out_absorb,
                out_scatter,
            ),
        }
    }

    /// Look up both microscopic cross sections at `energy_ev`, using and
    /// updating the particle's cached indices (hinted linear search).
    #[inline]
    #[must_use]
    pub fn lookup(&self, energy_ev: f64, hints: &mut XsHints) -> MicroXs {
        let (a, s) = self.lookup_counted(energy_ev, hints).0;
        MicroXs {
            absorb_barns: a,
            scatter_barns: s,
        }
    }

    /// As [`Self::lookup`], also returning the number of linear-search
    /// steps taken (for the event-counter instrumentation feeding the
    /// architecture performance model).
    #[inline]
    pub fn lookup_counted(&self, energy_ev: f64, hints: &mut XsHints) -> ((f64, f64), u32) {
        let mut ia = hints.absorb as usize;
        let mut is = hints.scatter as usize;
        let (a, na) = self.absorb.value_hinted_counted(energy_ev, &mut ia);
        let (s, ns) = self.scatter.value_hinted_counted(energy_ev, &mut is);
        hints.absorb = ia as u32;
        hints.scatter = is as u32;
        ((a, s), na + ns)
    }

    /// Look up both tables by binary search (the baseline the cached
    /// linear search is compared against, §VI-A).
    #[inline]
    #[must_use]
    pub fn lookup_binary(&self, energy_ev: f64) -> MicroXs {
        MicroXs {
            absorb_barns: self.absorb.value_binary(energy_ev),
            scatter_barns: self.scatter.value_binary(energy_ev),
        }
    }

    /// Resident bytes of both tables.
    #[must_use]
    pub fn footprint_bytes(&self) -> usize {
        self.absorb.footprint_bytes() + self.scatter.footprint_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_density_of_water_like_material() {
        // rho = 1e3 kg/m^3, M = 0.1 kg/mol -> 6.022e27 atoms/m^3.
        let n = number_density(1.0e3);
        assert!((n / 6.022_140_76e27 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn macroscopic_is_linear_in_density() {
        let sigma = 10.0; // barns
        let a = macroscopic_per_m(sigma, number_density(1.0));
        let b = macroscopic_per_m(sigma, number_density(2.0));
        assert!((b / a - 2.0).abs() < 1e-12);
    }

    #[test]
    fn hinted_and_binary_lookups_agree() {
        let lib = CrossSectionLibrary::synthetic(2048, 7);
        let mut hints = XsHints::default();
        for i in 0..500 {
            let e = 1e-4 * 1.07f64.powi(i % 300) * 10f64.powi(i % 7);
            let hinted = lib.lookup(e, &mut hints);
            let binary = lib.lookup_binary(e);
            assert_eq!(hinted, binary, "mismatch at E={e}");
        }
    }

    #[test]
    fn absorb_probability_in_unit_interval() {
        let lib = CrossSectionLibrary::synthetic(1024, 99);
        let mut hints = XsHints::default();
        for p in [1.0, 1e2, 1e4, 1e6] {
            let m = lib.lookup(p, &mut hints);
            let pa = m.absorb_probability();
            assert!((0.0..=1.0).contains(&pa), "p_abs {pa} at {p} eV");
        }
    }

    #[test]
    fn lookup_counted_reports_steps() {
        let lib = CrossSectionLibrary::synthetic(4096, 3);
        let mut hints = XsHints::default();
        // First lookup from hint 0 to ~1 MeV must take many steps...
        let (_, steps_far) = lib.lookup_counted(1e6, &mut hints);
        // ...then a nearby lookup should take very few.
        let (_, steps_near) = lib.lookup_counted(0.98e6, &mut hints);
        assert!(steps_far > 100, "far lookup took {steps_far} steps");
        assert!(steps_near < 64, "near lookup took {steps_near} steps");
    }
}
